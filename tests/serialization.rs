//! Index persistence: save / load / corrupt-detect, end to end through
//! the public API.

use bwt_kmismatch::bwt::{FmBuildConfig, FmIndex, SerializeError};
use bwt_kmismatch::{KMismatchIndex, Method};

fn build(genome: &[u8]) -> (KMismatchIndex, Vec<u8>) {
    let idx = KMismatchIndex::new(genome.to_vec());
    let mut bytes = Vec::new();
    idx.fm()
        .save(&mut bytes)
        .expect("in-memory save cannot fail");
    (idx, bytes)
}

#[test]
fn loaded_index_answers_identically() {
    let genome = kmm_dna::genome::markov(20_000, &kmm_dna::genome::MarkovConfig::default(), 44);
    let (fresh, bytes) = build(&genome);
    let fm = FmIndex::load(&bytes[..]).unwrap();
    let loaded = {
        let mut rev = fm.reconstruct_text();
        rev.pop();
        rev.reverse();
        KMismatchIndex::from_parts(rev, fm)
    };
    assert_eq!(loaded.text(), fresh.text());
    let reads = kmm_dna::paper_reads(&genome, 10, 70, 5);
    for r in &reads {
        for method in [Method::ALGORITHM_A, Method::Bwt { use_phi: true }] {
            assert_eq!(
                loaded.search(&r.seq, 3, method).occurrences,
                fresh.search(&r.seq, 3, method).occurrences
            );
        }
    }
}

#[test]
fn every_flipped_header_byte_is_rejected() {
    let genome = kmm_dna::genome::uniform(500, 9);
    let (_, bytes) = build(&genome);
    // Flipping any of the first 12 bytes (magic + version) must yield a
    // clean error, never a wrong index.
    for i in 0..12 {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x5a;
        match FmIndex::load(&corrupt[..]) {
            Err(_) => {}
            Ok(_) => panic!("byte {i} flip went undetected"),
        }
    }
}

#[test]
fn payload_corruption_detected_by_checksum() {
    let genome = kmm_dna::genome::uniform(2_000, 10);
    let (_, bytes) = build(&genome);
    // Flip a sample of payload bytes; every one must be caught (by the
    // checksum or by a structural validation error).
    for frac in [0.3, 0.5, 0.7, 0.9] {
        let mut corrupt = bytes.clone();
        let pos = (bytes.len() as f64 * frac) as usize;
        corrupt[pos] ^= 0x01;
        assert!(
            FmIndex::load(&corrupt[..]).is_err(),
            "flip at {pos}/{} undetected",
            bytes.len()
        );
    }
}

#[test]
fn truncations_at_any_point_are_rejected() {
    let genome = kmm_dna::genome::uniform(300, 11);
    let (_, bytes) = build(&genome);
    for keep in [0, 4, 8, 12, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            FmIndex::load(&bytes[..keep]).is_err(),
            "truncation to {keep} bytes undetected"
        );
    }
}

#[test]
fn version_gate() {
    let genome = kmm_dna::genome::uniform(100, 12);
    let (_, mut bytes) = build(&genome);
    bytes[8] = 0x2a; // version field (little-endian u32 after 8-byte magic)
    match FmIndex::load(&bytes[..]) {
        Err(SerializeError::BadVersion {
            found: 0x2a,
            supported,
        }) => {
            assert_eq!(supported, FmIndex::SUPPORTED_VERSIONS);
        }
        other => panic!("expected BadVersion, got {other:?}"),
    }
}

#[test]
fn old_format_versions_fail_cleanly() {
    // Version 1 indexes (pre interleaved-block rank layout) and version
    // 2 indexes (pre section-table container) must be refused with a
    // precise BadVersion error naming the migration path — not a panic,
    // not a garbage index parsed under the new layout.
    let genome = kmm_dna::genome::uniform(400, 21);
    let (_, mut bytes) = build(&genome);
    const { assert!(FmIndex::FORMAT_VERSION >= 3, "layout bump must be recorded") };
    for old in [1u8, 2] {
        bytes[8] = old; // little-endian u32 version field after the magic
        bytes[9] = 0;
        bytes[10] = 0;
        bytes[11] = 0;
        match FmIndex::load(&bytes[..]) {
            Err(SerializeError::BadVersion { found, supported }) => {
                assert_eq!(found, old as u32);
                // The error must tell a v2 holder how to migrate.
                assert!(supported.contains("kmm index upgrade"), "{supported}");
            }
            other => panic!("expected BadVersion for a v{old} file, got {other:?}"),
        }
    }
}

#[test]
fn upgrade_path_preserves_answers() {
    // v2 bytes -> legacy reader -> v3 save -> v3 load must answer like
    // the fresh index (this is `kmm index upgrade` without the CLI).
    let genome = kmm_dna::genome::uniform(2_500, 33);
    let (fresh, _) = build(&genome);
    let mut v2 = Vec::new();
    fresh.fm().save_legacy_v2(&mut v2).unwrap();
    let upgraded = FmIndex::load_legacy_v2(&v2[..]).unwrap();
    let mut v3 = Vec::new();
    upgraded.save(&mut v3).unwrap();
    let fm = FmIndex::load(&v3[..]).unwrap();
    let probe: Vec<u8> = genome[40..90].iter().rev().copied().collect();
    assert_eq!(
        fm.backward_search(&probe),
        fresh.fm().backward_search(&probe)
    );
}

#[test]
fn paper_layout_roundtrips_too() {
    let genome = kmm_dna::genome::uniform(3_000, 13);
    let mut rev = genome.clone();
    rev.reverse();
    rev.push(0);
    let fm = FmIndex::new(&rev, FmBuildConfig::paper());
    let mut bytes = Vec::new();
    fm.save(&mut bytes).unwrap();
    let loaded = FmIndex::load(&bytes[..]).unwrap();
    let probe: Vec<u8> = genome[100..140].iter().rev().copied().collect();
    assert_eq!(loaded.backward_search(&probe), fm.backward_search(&probe));
}
