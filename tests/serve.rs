//! End-to-end tests for the `kmm serve` HTTP daemon, driven over real
//! sockets against an in-process server on an ephemeral port.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bwt_kmismatch::dna::genome::{markov, MarkovConfig};
use bwt_kmismatch::serve::{ServeConfig, Server};
use bwt_kmismatch::telemetry::events::{self, EventLog};
use bwt_kmismatch::telemetry::{Json, LogLevel};
use bwt_kmismatch::{KMismatchIndex, Method};

fn test_index() -> KMismatchIndex {
    KMismatchIndex::new(markov(8_000, &MarkovConfig::default(), 31))
}

/// All serve tests share one quiet JSON event log, installed by the
/// first test to start a server: server threads then never write to the
/// harness's stderr, and the access-log test can read the lines back.
fn event_log_path() -> &'static std::path::PathBuf {
    static PATH: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();
    PATH.get_or_init(|| {
        let path =
            std::env::temp_dir().join(format!("kmm-serve-events-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        events::init_global(
            EventLog::new(LogLevel::Debug)
                .quiet()
                .with_json_sink(&path)
                .expect("json sink"),
        );
        path
    })
}

/// Minimal blocking HTTP/1.1 client: one request, one response.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "GET", path, "")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(addr, "POST", path, body)
}

/// Decode a 60 bp probe from the indexed text so searches actually hit.
fn probe(idx: &KMismatchIndex, at: usize) -> String {
    bwt_kmismatch::dna::decode_string(&idx.text()[at..at + 60])
}

fn start(config: ServeConfig) -> (Server, KMismatchIndex) {
    event_log_path();
    let idx = test_index();
    let server = Server::start(test_index(), config).expect("server start");
    (server, idx)
}

#[test]
fn serves_health_stats_and_metrics() {
    let (server, _idx) = start(ServeConfig::default());
    let addr = server.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = get(addr, "/stats.json");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("stats.json parses");
    assert!(doc.get("schema").and_then(Json::as_str).is_some());

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.lines().any(|l| l.starts_with("# TYPE ")), "{body}");
    assert!(body.contains("kmm_http_requests_total"), "{body}");
    // The earlier requests in this test are already accounted for.
    assert!(
        body.contains("kmm_http_requests_total{endpoint=\"/healthz\"} 1"),
        "{body}"
    );

    let (status, _) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    let summary = server.join();
    assert!(summary.contains("served"), "{summary}");
}

#[test]
fn post_search_matches_direct_index_search() {
    let (server, idx) = start(ServeConfig {
        threads: 3,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    for at in [100usize, 500, 2000, 4000] {
        let pattern = probe(&idx, at);
        let body = format!("{{\"pattern\": \"{pattern}\", \"k\": 2}}");
        let (status, response) = post(addr, "/search", &body);
        assert_eq!(status, 200, "{response}");
        let doc = Json::parse(&response).unwrap();

        let encoded = bwt_kmismatch::dna::encode(pattern.as_bytes()).unwrap();
        let want = idx.search(&encoded, 2, Method::ALGORITHM_A);
        assert_eq!(
            doc.get("count").and_then(Json::as_u64),
            Some(want.occurrences.len() as u64)
        );
        let got: Vec<(u64, u64)> = doc
            .get("occurrences")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|o| {
                (
                    o.get("position").and_then(Json::as_u64).unwrap(),
                    o.get("mismatches").and_then(Json::as_u64).unwrap(),
                )
            })
            .collect();
        let want: Vec<(u64, u64)> = want
            .occurrences
            .iter()
            .map(|o| (o.position as u64, o.mismatches as u64))
            .collect();
        assert_eq!(got, want, "HTTP /search diverged from the library at {at}");
    }

    // The served queries populated the flight recorder.
    let (status, body) = get(addr, "/slow.json");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).unwrap();
    let queries = doc.get("slowest").and_then(Json::as_array).unwrap();
    assert!(!queries.is_empty(), "flight recorder saw no queries");

    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn bidir_search_and_explain_default_over_mirrored_index() {
    event_log_path();
    let idx = test_index();
    let served = test_index();
    // Materialise the reverse-BWT mirror up front, as an index loaded
    // from a `kmm index --bidir` file would arrive.
    served.mirror();
    let server = Server::start(served, ServeConfig::default()).expect("server start");
    let addr = server.addr();

    // POST /search accepts method=bidir and matches the library.
    let pattern = probe(&idx, 700);
    let body = format!("{{\"pattern\": \"{pattern}\", \"k\": 2, \"method\": \"bidir\"}}");
    let (status, response) = post(addr, "/search", &body);
    assert_eq!(status, 200, "{response}");
    let doc = Json::parse(&response).unwrap();
    let encoded = bwt_kmismatch::dna::encode(pattern.as_bytes()).unwrap();
    let want = idx.search(&encoded, 2, Method::Bidirectional);
    assert_eq!(
        doc.get("count").and_then(Json::as_u64),
        Some(want.occurrences.len() as u64)
    );

    // With the mirror resident, the default /explain comparison set
    // grows to include the bidirectional method.
    let body = format!("{{\"pattern\": \"{pattern}\", \"k\": 2}}");
    let (status, response) = post(addr, "/explain", &body);
    assert_eq!(status, 200, "{response}");
    let doc = Json::parse(&response).unwrap();
    let labels: Vec<String> = doc
        .get("methods")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|m| m.get("method").and_then(Json::as_str).unwrap().to_string())
        .collect();
    assert!(labels.iter().any(|l| l == "Bidir"), "{labels:?}");

    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn post_map_returns_alignments() {
    let (server, idx) = start(ServeConfig::default());
    let addr = server.addr();
    let read = probe(&idx, 1234);
    let (status, response) = post(addr, "/map", &format!("{{\"read\": \"{read}\"}}"));
    assert_eq!(status, 200, "{response}");
    let doc = Json::parse(&response).unwrap();
    // An error-free read sampled from the text maps uniquely to its origin.
    assert_eq!(doc.get("outcome").and_then(Json::as_str), Some("unique"));
    let aligned = doc.get("alignments").and_then(Json::as_array).unwrap();
    assert!(aligned
        .iter()
        .any(|a| a.get("position").and_then(Json::as_u64) == Some(1234)));
    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn bad_requests_get_4xx_not_a_wedge() {
    let (server, _idx) = start(ServeConfig::default());
    let addr = server.addr();
    assert_eq!(get(addr, "/no-such-route").0, 404);
    assert_eq!(get(addr, "/search").0, 405);
    assert_eq!(post(addr, "/search", "not json").0, 400);
    assert_eq!(post(addr, "/search", "{\"k\": 1}").0, 400);
    assert_eq!(
        post(addr, "/search", "{\"pattern\": \"QQQ\"}").0,
        400,
        "non-DNA pattern"
    );
    // The server is still healthy afterwards.
    assert_eq!(get(addr, "/healthz").0, 200);
    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn handler_panic_is_isolated_and_counted() {
    let (server, idx) = start(ServeConfig {
        threads: 2,
        panic_pattern: Some("ACGTACGT".to_string()),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // The injected fault panics inside the handler: the client sees a
    // 500 and the worker survives.
    let (status, body) = post(addr, "/search", "{\"pattern\": \"ACGTACGT\"}");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("panicked"), "{body}");

    // The very next request on the same server works.
    let pattern = probe(&idx, 300);
    let (status, _) = post(addr, "/search", &format!("{{\"pattern\": \"{pattern}\"}}"));
    assert_eq!(status, 200);
    assert_eq!(get(addr, "/healthz").0, 200);

    // The error is visible in both accounting layers.
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("kmm_serve_errors_total 1"),
        "serve.errors missing: {metrics}"
    );
    assert!(
        metrics.contains("kmm_http_errors_total{endpoint=\"/search\"} 1"),
        "{metrics}"
    );
    let (_, stats) = get(addr, "/stats.json");
    let doc = Json::parse(&stats).unwrap();
    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get("serve.errors"))
            .and_then(Json::as_u64),
        Some(1)
    );

    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn trace_json_exports_served_queries() {
    let (server, idx) = start(ServeConfig::default());
    let addr = server.addr();
    let pattern = probe(&idx, 600);
    post(addr, "/search", &format!("{{\"pattern\": \"{pattern}\"}}"));
    let (status, body) = get(addr, "/trace.json");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).unwrap();
    let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
    assert!(!events.is_empty(), "no spans exported for served queries");
    post(addr, "/shutdown", "");
    server.join();
}

/// Raw request writer for malformed-framing tests the `http` helper
/// can't express (it always sends a Content-Length).
fn raw(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

#[test]
fn post_without_content_length_gets_411() {
    let (server, _idx) = start(ServeConfig::default());
    let addr = server.addr();
    let (status, body) = raw(
        addr,
        "POST /search HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 411, "{body}");
    // GETs without a length are fine, and the server is still healthy.
    assert_eq!(get(addr, "/healthz").0, 200);
    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn unparseable_content_length_gets_400() {
    let (server, _idx) = start(ServeConfig::default());
    let addr = server.addr();
    let (status, body) = raw(
        addr,
        "POST /search HTTP/1.1\r\nHost: test\r\nContent-Length: banana\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 400, "{body}");
    assert_eq!(get(addr, "/healthz").0, 200);
    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn oversized_declared_body_gets_413_before_reading_it() {
    let (server, _idx) = start(ServeConfig {
        max_body_bytes: 1024,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    // Declare a 100 MB body but never send a byte of it: the refusal
    // must come from the declared length alone.
    let (status, body) = raw(
        addr,
        "POST /search HTTP/1.1\r\nHost: test\r\nContent-Length: 104857600\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("exceeds"), "{body}");
    // A request inside the cap still works.
    assert_eq!(get(addr, "/healthz").0, 200);
    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn expired_deadline_returns_504_with_truncated_marker() {
    let (server, idx) = start(ServeConfig::default());
    let addr = server.addr();
    let pattern = probe(&idx, 900);

    // timeout_ms 0 = already expired at entry: deterministic truncation.
    let (status, body) = post(
        addr,
        "/search",
        &format!("{{\"pattern\": \"{pattern}\", \"k\": 2, \"timeout_ms\": 0}}"),
    );
    assert_eq!(status, 504, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("truncated").and_then(Json::as_bool), Some(true));
    assert!(doc.get("occurrences").and_then(Json::as_array).is_some());

    // Same for /map.
    let (status, body) = post(
        addr,
        "/map",
        &format!("{{\"read\": \"{pattern}\", \"timeout_ms\": 0}}"),
    );
    assert_eq!(status, 504, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("truncated").and_then(Json::as_bool), Some(true));

    // A generous budget completes with the marker set to false and the
    // exact no-deadline results.
    let (status, body) = post(
        addr,
        "/search",
        &format!("{{\"pattern\": \"{pattern}\", \"k\": 2, \"timeout_ms\": 600000}}"),
    );
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("truncated").and_then(Json::as_bool), Some(false));
    let encoded = bwt_kmismatch::dna::encode(pattern.as_bytes()).unwrap();
    let want = idx.search(&encoded, 2, Method::ALGORITHM_A);
    assert_eq!(
        doc.get("count").and_then(Json::as_u64),
        Some(want.occurrences.len() as u64)
    );

    // The timeout is visible in the metrics.
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("kmm_search_timeouts_total"),
        "search.timeouts series missing: {metrics}"
    );
    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn server_side_default_timeout_applies_without_body_field() {
    let (server, idx) = start(ServeConfig {
        timeout_ms: Some(600_000),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let pattern = probe(&idx, 1500);
    let (status, body) = post(
        addr,
        "/search",
        &format!("{{\"pattern\": \"{pattern}\", \"k\": 1}}"),
    );
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    // The deadline path ran (marker present) but the budget was ample.
    assert_eq!(doc.get("truncated").and_then(Json::as_bool), Some(false));
    post(addr, "/shutdown", "");
    server.join();
}

/// A `/search` error body carries a `request_id`, and the server's
/// access log has a `serve.access` line with the same id and status —
/// the client-quoted id is enough to find the server-side record.
#[test]
fn search_error_response_id_matches_access_log_line() {
    let (server, _idx) = start(ServeConfig::default());
    let addr = server.addr();

    let (status, body) = post(addr, "/search", "{\"k\": 1}");
    assert_eq!(status, 400, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(
        doc.get("error").and_then(Json::as_str),
        Some("missing \"pattern\"")
    );
    let req_id = doc
        .get("request_id")
        .and_then(Json::as_str)
        .expect("request_id in error body")
        .to_string();
    assert!(req_id.starts_with("req-"), "{req_id}");

    post(addr, "/shutdown", "");
    server.join();

    let logged = std::fs::read_to_string(event_log_path()).expect("event log file");
    let mut matched = false;
    for line in logged.lines() {
        let Ok(event) = Json::parse(line) else {
            continue;
        };
        if event.get("target").and_then(Json::as_str) != Some("serve.access") {
            continue;
        }
        let Some(fields) = event.get("fields") else {
            continue;
        };
        if fields.get("request_id").and_then(Json::as_str) == Some(req_id.as_str()) {
            assert_eq!(fields.get("status").and_then(Json::as_str), Some("400"));
            assert_eq!(event.get("level").and_then(Json::as_str), Some("warn"));
            matched = true;
        }
    }
    assert!(matched, "no serve.access line for {req_id}:\n{logged}");
}

/// `/metrics` is shape-stable: endpoints that have served nothing still
/// expose their window gauges (zeros, percentile 0), the allocator
/// families are present, and every `# TYPE`d family has a `# HELP`.
#[test]
fn metrics_expose_idle_endpoints_and_memory_families() {
    let (server, _idx) = start(ServeConfig::default());
    let addr = server.addr();

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    // /map is idle, yet all its series are emitted.
    assert!(
        body.contains("kmm_http_window_requests{endpoint=\"/map\"} 0"),
        "{body}"
    );
    assert!(
        body.contains("kmm_http_window_errors{endpoint=\"/map\"} 0"),
        "{body}"
    );
    assert!(
        body.contains("kmm_http_latency_ns{endpoint=\"/map\",quantile=\"0.99\"} 0"),
        "{body}"
    );
    assert!(body.contains("# TYPE kmm_mem_live_bytes gauge"), "{body}");
    assert!(
        body.contains("kmm_mem_phase_allocated_bytes_total{mem_phase=\"serve\"}"),
        "{body}"
    );
    for line in body.lines().filter(|l| l.starts_with("# TYPE ")) {
        let name = line.split_whitespace().nth(2).unwrap();
        assert!(
            body.contains(&format!("# HELP {name} ")),
            "no HELP for {name}"
        );
    }

    post(addr, "/shutdown", "");
    server.join();
}

/// `kmm serve --mmap` end to end: the daemon opens the index zero-copy,
/// reports `index.load.mode = 2` (mmap) on `/stats.json`, and answers
/// searches identically to the in-memory path.
#[test]
fn serve_run_with_mmap_reports_load_mode_and_answers_match() {
    event_log_path();
    let idx = test_index();
    let dir = std::env::temp_dir().join(format!("kmm-serve-mmap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let idx_path = dir.join("serve.idx");
    let mut w = std::io::BufWriter::new(std::fs::File::create(&idx_path).unwrap());
    idx.fm().save(&mut w).unwrap();
    drop(w);
    let port_file = dir.join("serve.port");
    let _ = std::fs::remove_file(&port_file);

    let config = ServeConfig {
        prefer_mmap: true,
        port_file: Some(port_file.clone()),
        ..ServeConfig::default()
    };
    let handle = {
        let idx_path = idx_path.clone();
        std::thread::spawn(move || bwt_kmismatch::serve::run(&idx_path, config))
    };
    // `run` writes the ephemeral port once bound.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let port: u16 = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(port) = text.trim().parse() {
                break port;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "port file never appeared"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();

    let (status, stats) = get(addr, "/stats.json");
    assert_eq!(status, 200);
    let doc = Json::parse(&stats).expect("stats json");
    let counters = doc.get("counters").expect("counters object");
    // On linux/x86_64 the map succeeds and mode is 2 (mmap) with zero
    // read bytes; a platform without mmap support falls back to 1 (read).
    let mode = counters
        .get("index.load.mode")
        .and_then(Json::as_u64)
        .expect("index.load.mode counter");
    if mode == 2 {
        assert_eq!(
            counters.get("index.load.io_bytes").and_then(Json::as_u64),
            Some(0)
        );
        assert!(
            counters
                .get("index.load.bytes_mapped")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                > 0
        );
    } else {
        assert_eq!(mode, 1, "mode must be read (1) or mmap (2)");
    }

    let pattern = probe(&idx, 400);
    let body = format!("{{\"pattern\": \"{pattern}\", \"k\": 1}}");
    let (status, response) = post(addr, "/search", &body);
    assert_eq!(status, 200, "{response}");
    let doc = Json::parse(&response).unwrap();
    let served: Vec<u64> = doc
        .get("occurrences")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(|o| o.get("position").and_then(Json::as_u64))
        .collect();
    let direct: Vec<u64> = idx
        .search(
            &bwt_kmismatch::dna::encode(pattern.as_bytes()).unwrap(),
            1,
            Method::ALGORITHM_A,
        )
        .occurrences
        .iter()
        .map(|o| o.position as u64)
        .collect();
    assert_eq!(served, direct);

    post(addr, "/shutdown", "");
    handle.join().unwrap().unwrap();
}

/// Read exactly one `Content-Length`-framed response off a keep-alive
/// stream (the `http` helper reads to EOF, which keep-alive never hits).
/// `carry` holds bytes past the end of this response — the server may
/// coalesce pipelined responses into one write, so anything after the
/// framed body belongs to the NEXT response and must survive this call.
fn read_one_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String, String) {
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response headers");
        assert!(n > 0, "EOF before response headers");
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&carry[..header_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            if name.eq_ignore_ascii_case("content-length") {
                value.trim().parse().ok()
            } else {
                None
            }
        })
        .expect("content-length header");
    let total = header_end + 4 + content_length;
    while carry.len() < total {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "EOF mid response body");
        carry.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&carry[header_end + 4..total]).to_string();
    carry.drain(..total);
    (status, head, body)
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_socket() {
    let (server, _idx) = start(ServeConfig::default());
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    // No Connection header: HTTP/1.1 defaults to keep-alive.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n")
        .unwrap();
    let mut carry = Vec::new();
    let (status, head, body) = read_one_response(&mut stream, &mut carry);
    assert_eq!((status, body.as_str()), (200, "ok\n"), "{head}");
    assert!(head.contains("Connection: keep-alive"), "{head}");

    // Second request on the very same socket.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, head, body) = read_one_response(&mut stream, &mut carry);
    assert_eq!((status, body.as_str()), (200, "ok\n"), "{head}");
    assert!(head.contains("Connection: close"), "{head}");
    // The close is real: the stream reaches EOF.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();

    let (_, metrics) = get(addr, "/metrics");
    let reuses: u64 = metrics
        .lines()
        .find(|l| l.starts_with("kmm_serve_keepalive_reuses_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .expect("kmm_serve_keepalive_reuses_total series");
    assert!(reuses >= 1, "no keep-alive reuse counted:\n{metrics}");

    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (server, idx) = start(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let pattern = probe(&idx, 700);
    let search = format!("{{\"pattern\": \"{pattern}\", \"k\": 1}}");

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    // Three requests in a single write; the last one closes.
    let burst = format!(
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
         POST /search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{search}\
         GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        search.len()
    );
    stream.write_all(burst.as_bytes()).unwrap();

    let mut carry = Vec::new();
    let (s1, _, b1) = read_one_response(&mut stream, &mut carry);
    let (s2, _, b2) = read_one_response(&mut stream, &mut carry);
    let (s3, _, b3) = read_one_response(&mut stream, &mut carry);
    assert_eq!((s1, b1.as_str()), (200, "ok\n"));
    assert_eq!(s2, 200, "{b2}");
    let doc = Json::parse(&b2).unwrap();
    let encoded = bwt_kmismatch::dna::encode(pattern.as_bytes()).unwrap();
    let want = idx.search(&encoded, 1, Method::ALGORITHM_A);
    assert_eq!(
        doc.get("count").and_then(Json::as_u64),
        Some(want.occurrences.len() as u64),
        "pipelined /search diverged"
    );
    assert_eq!((s3, b3.as_str()), (200, "ok\n"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "bytes after the closing response");

    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn tenant_rate_limit_sheds_with_429() {
    let (server, _idx) = start(ServeConfig {
        tenant_rate: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let as_tenant = |name: &str| {
        raw(
            addr,
            &format!(
                "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Kmm-Tenant: {name}\r\nConnection: close\r\n\r\n"
            ),
        )
    };

    // Burst of 3 as alice inside one second: the bucket holds 1 token
    // (burst = rate = 1), so at least one request must be shed.
    let alice: Vec<u16> = (0..3).map(|_| as_tenant("alice").0).collect();
    assert_eq!(alice[0], 200, "first request must be admitted: {alice:?}");
    assert!(
        alice.iter().any(|&s| s == 429),
        "burst of 3 at rate 1 never shed: {alice:?}"
    );
    // bob has his own bucket: admitted regardless of alice's burst.
    assert_eq!(as_tenant("bob").0, 200);

    let (_, metrics) = get(addr, "/metrics");
    let shed: u64 = metrics
        .lines()
        .find(|l| l.starts_with("kmm_serve_shed_tenant_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .expect("kmm_serve_shed_tenant_total series");
    assert!(shed >= 1, "tenant shed not counted:\n{metrics}");

    // /shutdown is control-plane: exempt from admission.
    assert_eq!(post(addr, "/shutdown", "").0, 200);
    server.join();
}

#[test]
fn slow_loris_connection_is_evicted_with_408() {
    let (server, _idx) = start(ServeConfig {
        idle_timeout_ms: 150,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Half a request line, then silence: the idle deadline must evict.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(b"GET /healthz HTT").unwrap();
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("eviction notice");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .unwrap();
    assert_eq!(status, 408, "{response}");

    let (_, metrics) = get(addr, "/metrics");
    let stalls: u64 = metrics
        .lines()
        .find(|l| l.starts_with("kmm_serve_shed_stall_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .expect("kmm_serve_shed_stall_total series");
    assert!(stalls >= 1, "stall eviction not counted:\n{metrics}");

    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn connections_past_max_conns_get_429_without_being_read() {
    let (server, _idx) = start(ServeConfig {
        max_conns: 2,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Two connections hold the cap without sending anything.
    let mut a = TcpStream::connect(addr).unwrap();
    a.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let _b = TcpStream::connect(addr).unwrap();
    // Give the event loop a beat to accept both.
    std::thread::sleep(Duration::from_millis(50));

    // The third is refused before it sends a byte.
    let mut c = TcpStream::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut refusal = String::new();
    c.read_to_string(&mut refusal).expect("refusal response");
    assert!(refusal.starts_with("HTTP/1.1 429"), "{refusal}");
    assert!(refusal.contains("Retry-After:"), "{refusal}");

    // Connection `a` was admitted: it still works, and can shut down.
    a.write_all(
        b"POST /shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    let mut response = String::new();
    a.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    server.join();
}

/// The connection/shed series are emitted from startup (zeros included):
/// a dashboard or alert never sees a disappearing series.
#[test]
fn serve_connection_counters_are_emitted_at_zero_from_startup() {
    let (server, _idx) = start(ServeConfig::default());
    let addr = server.addr();

    // The very first request: every serve series already exists.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    for series in [
        "kmm_serve_keepalive_reuses_total 0",
        "kmm_serve_shed_tenant_total 0",
        "kmm_serve_shed_stall_total 0",
        "kmm_serve_shed_conns_total 0",
        "kmm_serve_shed_total 0",
        // This request's own connection is the one open connection.
        "kmm_serve_open_connections 1",
        "kmm_serve_conns_opened_total 1",
    ] {
        assert!(metrics.contains(series), "missing '{series}':\n{metrics}");
    }

    post(addr, "/shutdown", "");
    server.join();
}
