//! End-to-end tests for the `kmm serve` HTTP daemon, driven over real
//! sockets against an in-process server on an ephemeral port.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bwt_kmismatch::dna::genome::{markov, MarkovConfig};
use bwt_kmismatch::serve::{ServeConfig, Server};
use bwt_kmismatch::telemetry::events::{self, EventLog};
use bwt_kmismatch::telemetry::{Json, LogLevel};
use bwt_kmismatch::{KMismatchIndex, Method};

fn test_index() -> KMismatchIndex {
    KMismatchIndex::new(markov(8_000, &MarkovConfig::default(), 31))
}

/// All serve tests share one quiet JSON event log, installed by the
/// first test to start a server: server threads then never write to the
/// harness's stderr, and the access-log test can read the lines back.
fn event_log_path() -> &'static std::path::PathBuf {
    static PATH: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();
    PATH.get_or_init(|| {
        let path =
            std::env::temp_dir().join(format!("kmm-serve-events-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        events::init_global(
            EventLog::new(LogLevel::Debug)
                .quiet()
                .with_json_sink(&path)
                .expect("json sink"),
        );
        path
    })
}

/// Minimal blocking HTTP/1.1 client: one request, one response.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "GET", path, "")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(addr, "POST", path, body)
}

/// Decode a 60 bp probe from the indexed text so searches actually hit.
fn probe(idx: &KMismatchIndex, at: usize) -> String {
    bwt_kmismatch::dna::decode_string(&idx.text()[at..at + 60])
}

fn start(config: ServeConfig) -> (Server, KMismatchIndex) {
    event_log_path();
    let idx = test_index();
    let server = Server::start(test_index(), config).expect("server start");
    (server, idx)
}

#[test]
fn serves_health_stats_and_metrics() {
    let (server, _idx) = start(ServeConfig::default());
    let addr = server.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = get(addr, "/stats.json");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("stats.json parses");
    assert!(doc.get("schema").and_then(Json::as_str).is_some());

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.lines().any(|l| l.starts_with("# TYPE ")), "{body}");
    assert!(body.contains("kmm_http_requests_total"), "{body}");
    // The earlier requests in this test are already accounted for.
    assert!(
        body.contains("kmm_http_requests_total{endpoint=\"/healthz\"} 1"),
        "{body}"
    );

    let (status, _) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    let summary = server.join();
    assert!(summary.contains("served"), "{summary}");
}

#[test]
fn post_search_matches_direct_index_search() {
    let (server, idx) = start(ServeConfig {
        threads: 3,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    for at in [100usize, 500, 2000, 4000] {
        let pattern = probe(&idx, at);
        let body = format!("{{\"pattern\": \"{pattern}\", \"k\": 2}}");
        let (status, response) = post(addr, "/search", &body);
        assert_eq!(status, 200, "{response}");
        let doc = Json::parse(&response).unwrap();

        let encoded = bwt_kmismatch::dna::encode(pattern.as_bytes()).unwrap();
        let want = idx.search(&encoded, 2, Method::ALGORITHM_A);
        assert_eq!(
            doc.get("count").and_then(Json::as_u64),
            Some(want.occurrences.len() as u64)
        );
        let got: Vec<(u64, u64)> = doc
            .get("occurrences")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|o| {
                (
                    o.get("position").and_then(Json::as_u64).unwrap(),
                    o.get("mismatches").and_then(Json::as_u64).unwrap(),
                )
            })
            .collect();
        let want: Vec<(u64, u64)> = want
            .occurrences
            .iter()
            .map(|o| (o.position as u64, o.mismatches as u64))
            .collect();
        assert_eq!(got, want, "HTTP /search diverged from the library at {at}");
    }

    // The served queries populated the flight recorder.
    let (status, body) = get(addr, "/slow.json");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).unwrap();
    let queries = doc.get("slowest").and_then(Json::as_array).unwrap();
    assert!(!queries.is_empty(), "flight recorder saw no queries");

    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn post_map_returns_alignments() {
    let (server, idx) = start(ServeConfig::default());
    let addr = server.addr();
    let read = probe(&idx, 1234);
    let (status, response) = post(addr, "/map", &format!("{{\"read\": \"{read}\"}}"));
    assert_eq!(status, 200, "{response}");
    let doc = Json::parse(&response).unwrap();
    // An error-free read sampled from the text maps uniquely to its origin.
    assert_eq!(doc.get("outcome").and_then(Json::as_str), Some("unique"));
    let aligned = doc.get("alignments").and_then(Json::as_array).unwrap();
    assert!(aligned
        .iter()
        .any(|a| a.get("position").and_then(Json::as_u64) == Some(1234)));
    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn bad_requests_get_4xx_not_a_wedge() {
    let (server, _idx) = start(ServeConfig::default());
    let addr = server.addr();
    assert_eq!(get(addr, "/no-such-route").0, 404);
    assert_eq!(get(addr, "/search").0, 405);
    assert_eq!(post(addr, "/search", "not json").0, 400);
    assert_eq!(post(addr, "/search", "{\"k\": 1}").0, 400);
    assert_eq!(
        post(addr, "/search", "{\"pattern\": \"QQQ\"}").0,
        400,
        "non-DNA pattern"
    );
    // The server is still healthy afterwards.
    assert_eq!(get(addr, "/healthz").0, 200);
    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn handler_panic_is_isolated_and_counted() {
    let (server, idx) = start(ServeConfig {
        threads: 2,
        panic_pattern: Some("ACGTACGT".to_string()),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // The injected fault panics inside the handler: the client sees a
    // 500 and the worker survives.
    let (status, body) = post(addr, "/search", "{\"pattern\": \"ACGTACGT\"}");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("panicked"), "{body}");

    // The very next request on the same server works.
    let pattern = probe(&idx, 300);
    let (status, _) = post(addr, "/search", &format!("{{\"pattern\": \"{pattern}\"}}"));
    assert_eq!(status, 200);
    assert_eq!(get(addr, "/healthz").0, 200);

    // The error is visible in both accounting layers.
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("kmm_serve_errors_total 1"),
        "serve.errors missing: {metrics}"
    );
    assert!(
        metrics.contains("kmm_http_errors_total{endpoint=\"/search\"} 1"),
        "{metrics}"
    );
    let (_, stats) = get(addr, "/stats.json");
    let doc = Json::parse(&stats).unwrap();
    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get("serve.errors"))
            .and_then(Json::as_u64),
        Some(1)
    );

    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn trace_json_exports_served_queries() {
    let (server, idx) = start(ServeConfig::default());
    let addr = server.addr();
    let pattern = probe(&idx, 600);
    post(addr, "/search", &format!("{{\"pattern\": \"{pattern}\"}}"));
    let (status, body) = get(addr, "/trace.json");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).unwrap();
    let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
    assert!(!events.is_empty(), "no spans exported for served queries");
    post(addr, "/shutdown", "");
    server.join();
}

/// Raw request writer for malformed-framing tests the `http` helper
/// can't express (it always sends a Content-Length).
fn raw(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

#[test]
fn post_without_content_length_gets_411() {
    let (server, _idx) = start(ServeConfig::default());
    let addr = server.addr();
    let (status, body) = raw(
        addr,
        "POST /search HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 411, "{body}");
    // GETs without a length are fine, and the server is still healthy.
    assert_eq!(get(addr, "/healthz").0, 200);
    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn unparseable_content_length_gets_400() {
    let (server, _idx) = start(ServeConfig::default());
    let addr = server.addr();
    let (status, body) = raw(
        addr,
        "POST /search HTTP/1.1\r\nHost: test\r\nContent-Length: banana\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 400, "{body}");
    assert_eq!(get(addr, "/healthz").0, 200);
    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn oversized_declared_body_gets_413_before_reading_it() {
    let (server, _idx) = start(ServeConfig {
        max_body_bytes: 1024,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    // Declare a 100 MB body but never send a byte of it: the refusal
    // must come from the declared length alone.
    let (status, body) = raw(
        addr,
        "POST /search HTTP/1.1\r\nHost: test\r\nContent-Length: 104857600\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("exceeds"), "{body}");
    // A request inside the cap still works.
    assert_eq!(get(addr, "/healthz").0, 200);
    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn expired_deadline_returns_504_with_truncated_marker() {
    let (server, idx) = start(ServeConfig::default());
    let addr = server.addr();
    let pattern = probe(&idx, 900);

    // timeout_ms 0 = already expired at entry: deterministic truncation.
    let (status, body) = post(
        addr,
        "/search",
        &format!("{{\"pattern\": \"{pattern}\", \"k\": 2, \"timeout_ms\": 0}}"),
    );
    assert_eq!(status, 504, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("truncated").and_then(Json::as_bool), Some(true));
    assert!(doc.get("occurrences").and_then(Json::as_array).is_some());

    // Same for /map.
    let (status, body) = post(
        addr,
        "/map",
        &format!("{{\"read\": \"{pattern}\", \"timeout_ms\": 0}}"),
    );
    assert_eq!(status, 504, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("truncated").and_then(Json::as_bool), Some(true));

    // A generous budget completes with the marker set to false and the
    // exact no-deadline results.
    let (status, body) = post(
        addr,
        "/search",
        &format!("{{\"pattern\": \"{pattern}\", \"k\": 2, \"timeout_ms\": 600000}}"),
    );
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("truncated").and_then(Json::as_bool), Some(false));
    let encoded = bwt_kmismatch::dna::encode(pattern.as_bytes()).unwrap();
    let want = idx.search(&encoded, 2, Method::ALGORITHM_A);
    assert_eq!(
        doc.get("count").and_then(Json::as_u64),
        Some(want.occurrences.len() as u64)
    );

    // The timeout is visible in the metrics.
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("kmm_search_timeouts_total"),
        "search.timeouts series missing: {metrics}"
    );
    post(addr, "/shutdown", "");
    server.join();
}

#[test]
fn server_side_default_timeout_applies_without_body_field() {
    let (server, idx) = start(ServeConfig {
        timeout_ms: Some(600_000),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let pattern = probe(&idx, 1500);
    let (status, body) = post(
        addr,
        "/search",
        &format!("{{\"pattern\": \"{pattern}\", \"k\": 1}}"),
    );
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    // The deadline path ran (marker present) but the budget was ample.
    assert_eq!(doc.get("truncated").and_then(Json::as_bool), Some(false));
    post(addr, "/shutdown", "");
    server.join();
}

/// A `/search` error body carries a `request_id`, and the server's
/// access log has a `serve.access` line with the same id and status —
/// the client-quoted id is enough to find the server-side record.
#[test]
fn search_error_response_id_matches_access_log_line() {
    let (server, _idx) = start(ServeConfig::default());
    let addr = server.addr();

    let (status, body) = post(addr, "/search", "{\"k\": 1}");
    assert_eq!(status, 400, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(
        doc.get("error").and_then(Json::as_str),
        Some("missing \"pattern\"")
    );
    let req_id = doc
        .get("request_id")
        .and_then(Json::as_str)
        .expect("request_id in error body")
        .to_string();
    assert!(req_id.starts_with("req-"), "{req_id}");

    post(addr, "/shutdown", "");
    server.join();

    let logged = std::fs::read_to_string(event_log_path()).expect("event log file");
    let mut matched = false;
    for line in logged.lines() {
        let Ok(event) = Json::parse(line) else {
            continue;
        };
        if event.get("target").and_then(Json::as_str) != Some("serve.access") {
            continue;
        }
        let Some(fields) = event.get("fields") else {
            continue;
        };
        if fields.get("request_id").and_then(Json::as_str) == Some(req_id.as_str()) {
            assert_eq!(fields.get("status").and_then(Json::as_str), Some("400"));
            assert_eq!(event.get("level").and_then(Json::as_str), Some("warn"));
            matched = true;
        }
    }
    assert!(matched, "no serve.access line for {req_id}:\n{logged}");
}

/// `/metrics` is shape-stable: endpoints that have served nothing still
/// expose their window gauges (zeros, percentile 0), the allocator
/// families are present, and every `# TYPE`d family has a `# HELP`.
#[test]
fn metrics_expose_idle_endpoints_and_memory_families() {
    let (server, _idx) = start(ServeConfig::default());
    let addr = server.addr();

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    // /map is idle, yet all its series are emitted.
    assert!(
        body.contains("kmm_http_window_requests{endpoint=\"/map\"} 0"),
        "{body}"
    );
    assert!(
        body.contains("kmm_http_window_errors{endpoint=\"/map\"} 0"),
        "{body}"
    );
    assert!(
        body.contains("kmm_http_latency_ns{endpoint=\"/map\",quantile=\"0.99\"} 0"),
        "{body}"
    );
    assert!(body.contains("# TYPE kmm_mem_live_bytes gauge"), "{body}");
    assert!(
        body.contains("kmm_mem_phase_allocated_bytes_total{mem_phase=\"serve\"}"),
        "{body}"
    );
    for line in body.lines().filter(|l| l.starts_with("# TYPE ")) {
        let name = line.split_whitespace().nth(2).unwrap();
        assert!(
            body.contains(&format!("# HELP {name} ")),
            "no HELP for {name}"
        );
    }

    post(addr, "/shutdown", "");
    server.join();
}

/// `kmm serve --mmap` end to end: the daemon opens the index zero-copy,
/// reports `index.load.mode = 2` (mmap) on `/stats.json`, and answers
/// searches identically to the in-memory path.
#[test]
fn serve_run_with_mmap_reports_load_mode_and_answers_match() {
    event_log_path();
    let idx = test_index();
    let dir = std::env::temp_dir().join(format!("kmm-serve-mmap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let idx_path = dir.join("serve.idx");
    let mut w = std::io::BufWriter::new(std::fs::File::create(&idx_path).unwrap());
    idx.fm().save(&mut w).unwrap();
    drop(w);
    let port_file = dir.join("serve.port");
    let _ = std::fs::remove_file(&port_file);

    let config = ServeConfig {
        prefer_mmap: true,
        port_file: Some(port_file.clone()),
        ..ServeConfig::default()
    };
    let handle = {
        let idx_path = idx_path.clone();
        std::thread::spawn(move || bwt_kmismatch::serve::run(&idx_path, config))
    };
    // `run` writes the ephemeral port once bound.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let port: u16 = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(port) = text.trim().parse() {
                break port;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "port file never appeared"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();

    let (status, stats) = get(addr, "/stats.json");
    assert_eq!(status, 200);
    let doc = Json::parse(&stats).expect("stats json");
    let counters = doc.get("counters").expect("counters object");
    // On linux/x86_64 the map succeeds and mode is 2 (mmap) with zero
    // read bytes; a platform without mmap support falls back to 1 (read).
    let mode = counters
        .get("index.load.mode")
        .and_then(Json::as_u64)
        .expect("index.load.mode counter");
    if mode == 2 {
        assert_eq!(
            counters.get("index.load.io_bytes").and_then(Json::as_u64),
            Some(0)
        );
        assert!(
            counters
                .get("index.load.bytes_mapped")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                > 0
        );
    } else {
        assert_eq!(mode, 1, "mode must be read (1) or mmap (2)");
    }

    let pattern = probe(&idx, 400);
    let body = format!("{{\"pattern\": \"{pattern}\", \"k\": 1}}");
    let (status, response) = post(addr, "/search", &body);
    assert_eq!(status, 200, "{response}");
    let doc = Json::parse(&response).unwrap();
    let served: Vec<u64> = doc
        .get("occurrences")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(|o| o.get("position").and_then(Json::as_u64))
        .collect();
    let direct: Vec<u64> = idx
        .search(
            &bwt_kmismatch::dna::encode(pattern.as_bytes()).unwrap(),
            1,
            Method::ALGORITHM_A,
        )
        .occurrences
        .iter()
        .map(|o| o.position as u64)
        .collect();
    assert_eq!(served, direct);

    post(addr, "/shutdown", "");
    handle.join().unwrap().unwrap();
}
