//! End-to-end pipeline tests: FASTA in, index, batch search, stats out —
//! the full workflow a downstream user would run.

use bwt_kmismatch::{KMismatchIndex, Method};
use kmm_dna::fasta;

#[test]
fn fasta_to_search_pipeline() {
    // Write a small genome as FASTA, read it back, index, search.
    let genome = kmm_dna::genome::markov(5_000, &kmm_dna::genome::MarkovConfig::default(), 21);
    let rec = fasta::FastaRecord {
        id: "chr_test".into(),
        seq: genome.clone(),
    };
    let mut buf = Vec::new();
    fasta::write_fasta(&mut buf, &[rec]).unwrap();

    let parsed = fasta::read_fasta(&buf[..]).unwrap();
    assert_eq!(parsed.len(), 1);
    assert_eq!(parsed[0].seq, genome);

    let index = KMismatchIndex::new(parsed[0].seq.clone());
    let probe = genome[1000..1050].to_vec();
    let hits = index.search(&probe, 0, Method::ALGORITHM_A);
    assert!(hits.occurrences.iter().any(|o| o.position == 1000));
}

#[test]
fn batch_search_over_simulated_reads() {
    let genome = kmm_dna::genome::markov(20_000, &kmm_dna::genome::MarkovConfig::default(), 5);
    let index = KMismatchIndex::new(genome.clone());
    let reads = kmm_dna::paper_reads(&genome, 20, 80, 17);
    let seqs: Vec<&[u8]> = reads.iter().map(|r| r.seq.as_slice()).collect();
    let (results, stats) = index.search_batch(seqs.iter().copied(), 4, Method::ALGORITHM_A);
    assert_eq!(results.len(), 20);
    let total: usize = results.iter().map(|r| r.len()).sum();
    assert_eq!(stats.occurrences as usize, total);
    // With wgsim's 2% error rate and k = 4, at least three quarters of the
    // 80 bp reads must map back to their origin.
    let recovered = reads
        .iter()
        .zip(&results)
        .filter(|(r, occ)| occ.iter().any(|o| o.position == r.origin))
        .count();
    assert!(recovered >= 15, "only {recovered}/20 reads mapped home");
}

#[test]
fn rebuilding_with_paper_layout_is_equivalent() {
    use bwt_kmismatch::bwt::FmBuildConfig;
    let genome = kmm_dna::genome::uniform(3_000, 9);
    let default_idx = KMismatchIndex::new(genome.clone());
    let paper_idx = KMismatchIndex::with_config(genome.clone(), FmBuildConfig::paper());
    let probe = genome[500..540].to_vec();
    for k in 0..3 {
        assert_eq!(
            default_idx
                .search(&probe, k, Method::ALGORITHM_A)
                .occurrences,
            paper_idx.search(&probe, k, Method::ALGORITHM_A).occurrences
        );
    }
}

#[test]
fn stats_reflect_method_behaviour() {
    let genome = kmm_dna::genome::markov(50_000, &kmm_dna::genome::MarkovConfig::default(), 33);
    let index = KMismatchIndex::new(genome.clone());
    let probe = genome[10_000..10_100].to_vec();

    let a = index.search(&probe, 3, Method::ALGORITHM_A);
    assert!(a.stats.leaves > 0);
    assert!(a.stats.rank_extensions > 0);
    assert!(a.stats.nodes_visited >= a.stats.leaves);

    // Scanning methods report zeroed tree counters.
    let naive = index.search(&probe, 3, Method::Naive);
    assert_eq!(naive.stats.leaves, 0);
    assert_eq!(naive.stats.rank_extensions, 0);
    assert_eq!(naive.occurrences, a.occurrences);
}
