//! Span-tracing guarantees across the search and map stacks.
//!
//! Attaching a [`TraceRecorder`] must never change results — search and
//! map output stay bit-identical to untraced runs — and the traces it
//! collects must be structurally sound: every span nests inside its
//! parent's interval, every trace is rooted, and a parallel batch
//! produces the same per-query span multiset as a serial one at any
//! thread width (only worker attribution may differ).

use std::collections::BTreeMap;

use bwt_kmismatch::core::{MapperConfig, ReadMapper};
use bwt_kmismatch::dna::genome::{markov, MarkovConfig};
use bwt_kmismatch::dna::paper_reads;
use bwt_kmismatch::par::ThreadPool;
use bwt_kmismatch::telemetry::{
    chrome_trace_json, Json, NoopRecorder, QueryTrace, Recorder, TraceConfig, TraceRecorder,
};
use bwt_kmismatch::{KMismatchIndex, Method};

const THREAD_WIDTHS: [usize; 3] = [1, 2, 8];

fn test_corpus() -> (KMismatchIndex, Vec<Vec<u8>>) {
    let genome = markov(20_000, &MarkovConfig::default(), 777);
    let reads: Vec<Vec<u8>> = paper_reads(&genome, 60, 40, 5)
        .into_iter()
        .map(|r| r.seq)
        .collect();
    (KMismatchIndex::new(genome), reads)
}

/// Every span must lie inside its parent's interval and reference a
/// parent that appears earlier in the span list (spans[0] is the root).
fn assert_well_nested(trace: &QueryTrace) {
    assert!(!trace.spans.is_empty(), "trace without spans");
    let root = &trace.spans[0];
    assert_eq!(root.parent, 0, "spans[0] must be the root");
    for (i, span) in trace.spans.iter().enumerate() {
        if i == 0 {
            continue;
        }
        let parent = trace
            .spans
            .iter()
            .find(|p| p.id == span.parent)
            .unwrap_or_else(|| panic!("span {} has unknown parent {}", span.id, span.parent));
        assert!(
            span.start_ns >= parent.start_ns && span.end_ns() <= parent.end_ns(),
            "span {} [{}, {}] escapes parent {} [{}, {}]",
            span.id,
            span.start_ns,
            span.end_ns(),
            parent.id,
            parent.start_ns,
            parent.end_ns(),
        );
    }
}

/// The order-independent signature of one query's trace: the multiset of
/// phase names in its span tree, keyed by the `q=N` annotation.
fn span_multisets(traces: &[QueryTrace]) -> BTreeMap<String, BTreeMap<&'static str, usize>> {
    let mut out = BTreeMap::new();
    for t in traces {
        let q = t
            .label
            .split_whitespace()
            .find(|w| w.starts_with("q="))
            .unwrap_or_else(|| panic!("trace label missing q= tag: {:?}", t.label))
            .to_string();
        let mut multiset = BTreeMap::new();
        for s in &t.spans {
            *multiset.entry(s.phase.name()).or_insert(0) += 1;
        }
        let prev = out.insert(q, multiset);
        assert!(prev.is_none(), "duplicate query tag in {:?}", t.label);
    }
    out
}

#[test]
fn traced_search_results_are_bit_identical() {
    let (idx, reads) = test_corpus();
    for method in [Method::ALGORITHM_A, Method::Bwt { use_phi: true }] {
        for read in reads.iter().take(10) {
            let plain = idx.search(read, 2, method);
            let rec = TraceRecorder::new();
            let traced = idx.search_recorded(read, 2, method, &rec);
            assert_eq!(plain.occurrences, traced.occurrences);
            assert_eq!(plain.stats, traced.stats);
        }
    }
}

#[test]
fn traced_map_results_are_bit_identical() {
    let (idx, reads) = test_corpus();
    let mapper = ReadMapper::new(
        &idx,
        MapperConfig {
            k: 3,
            both_strands: true,
            method: Method::ALGORITHM_A,
        },
    );
    for read in reads.iter().take(10) {
        let plain = mapper.map_recorded(read, &NoopRecorder);
        let rec = TraceRecorder::new();
        let traced = mapper.map_recorded(read, &rec);
        assert_eq!(plain, traced);
        // Each mapped read produced exactly one rooted trace.
        assert_eq!(rec.traces().len(), 1);
    }
}

#[test]
fn spans_nest_within_their_parents() {
    let (idx, reads) = test_corpus();
    let rec = TraceRecorder::new();
    for read in reads.iter().take(20) {
        idx.search_recorded(read, 2, Method::ALGORITHM_A, &rec);
    }
    let traces = rec.traces();
    assert_eq!(traces.len(), 20);
    for t in &traces {
        assert_well_nested(t);
        // Algorithm A walks at least one mismatching tree per query.
        assert!(t.spans.len() >= 2, "no child spans under the root");
    }
}

#[test]
fn batch_widths_produce_same_span_multiset_per_query() {
    let (idx, reads) = test_corpus();
    let serial = TraceRecorder::new();
    idx.search_batch_recorded(
        reads.iter().map(|r| r.as_slice()).collect::<Vec<_>>(),
        2,
        Method::ALGORITHM_A,
        &serial,
    );
    let want = span_multisets(&serial.traces());
    assert_eq!(want.len(), reads.len());
    for threads in THREAD_WIDTHS {
        let pool = ThreadPool::new(threads);
        let rec = TraceRecorder::new();
        idx.search_batch_par_recorded(&reads, 2, Method::ALGORITHM_A, &pool, &rec);
        let got = span_multisets(&rec.traces());
        assert_eq!(got, want, "span multisets diverged at threads={threads}");
    }
}

#[test]
fn flight_recorder_keeps_the_k_slowest_sorted() {
    let (idx, reads) = test_corpus();
    let rec = TraceRecorder::with_config(TraceConfig {
        flight_capacity: 4,
        ..TraceConfig::default()
    });
    for read in &reads {
        idx.search_recorded(read, 2, Method::ALGORITHM_A, &rec);
    }
    let slowest = rec.flight().slowest();
    assert_eq!(slowest.len(), 4);
    assert!(
        slowest.windows(2).all(|w| w[0].dur_ns >= w[1].dur_ns),
        "flight entries not sorted slowest-first"
    );
    // The retained floor really is the maximum over everything seen:
    // every trace in the full buffer is no slower than the flight floor.
    let floor = slowest.last().unwrap().dur_ns;
    let all = rec.traces();
    let mut durations: Vec<u64> = all.iter().map(|t| t.dur_ns).collect();
    durations.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(floor, durations[3], "flight floor is not the 4th slowest");
}

#[test]
fn chrome_trace_export_is_loadable_json() {
    let (idx, reads) = test_corpus();
    let rec = TraceRecorder::new();
    for read in reads.iter().take(5) {
        idx.search_recorded(read, 2, Method::ALGORITHM_A, &rec);
    }
    let doc = rec.chrome_trace();
    // Round-trip through the serialised form, as Perfetto would read it.
    let parsed = Json::parse(&doc.to_pretty()).unwrap();
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        assert!(e.get("dur").and_then(Json::as_f64).is_some());
    }
    // The free-function export over the same traces agrees.
    let again = chrome_trace_json(&rec.traces());
    assert_eq!(
        again
            .get("traceEvents")
            .and_then(Json::as_array)
            .map(|a| a.len()),
        Some(events.len())
    );
}

#[test]
fn noop_recorder_reports_no_span_interest() {
    // The zero-overhead contract: a NoopRecorder must tell the hot path
    // not to bother with spans or clock reads at all.
    assert!(!NoopRecorder.wants_spans());
    assert!(NoopRecorder.trace_epoch().is_none());
    assert!(!NoopRecorder.enabled());
}
