//! Determinism guarantees of the parallel batch paths.
//!
//! Every `*_par` entry point must return results bit-identical to the
//! serial path, in input order, at any thread count — with or without a
//! `MetricsRecorder` attached — and the merged telemetry must equal a
//! serial run for every order-independent aggregate. These tests pin
//! that contract at thread widths {1, 2, 8} on a single machine; the
//! scheduler's chunk claiming is the only nondeterministic ingredient,
//! and it only affects which worker computes a result, never the result.

use bwt_kmismatch::core::{MapperConfig, MultiIndex, ReadMapper};
use bwt_kmismatch::dna::genome::{markov, MarkovConfig};
use bwt_kmismatch::dna::paper_reads;
use bwt_kmismatch::par::ThreadPool;
use bwt_kmismatch::telemetry::{Counter, Hist, MetricsRecorder, Phase};
use bwt_kmismatch::{KMismatchIndex, Method};

const THREAD_WIDTHS: [usize; 3] = [1, 2, 8];

fn test_corpus() -> (KMismatchIndex, Vec<Vec<u8>>) {
    let genome = markov(30_000, &MarkovConfig::default(), 4242);
    let reads: Vec<Vec<u8>> = paper_reads(&genome, 120, 50, 99)
        .into_iter()
        .map(|r| r.seq)
        .collect();
    (KMismatchIndex::new(genome), reads)
}

#[test]
fn search_batch_par_is_bit_identical_across_widths() {
    let (idx, reads) = test_corpus();
    for method in [Method::ALGORITHM_A, Method::Bwt { use_phi: true }] {
        let refs: Vec<&[u8]> = reads.iter().map(|r| r.as_slice()).collect();
        let (serial_occ, serial_stats) = idx.search_batch(refs, 2, method);
        for threads in THREAD_WIDTHS {
            let pool = ThreadPool::new(threads);
            let (occ, stats) = idx.search_batch_par(&reads, 2, method, &pool);
            assert_eq!(occ, serial_occ, "occurrences diverged at threads={threads}");
            assert_eq!(stats, serial_stats, "stats diverged at threads={threads}");
        }
    }
}

#[test]
fn search_batch_par_matches_serial_with_recorder_attached() {
    let (idx, reads) = test_corpus();
    let serial_rec = MetricsRecorder::new();
    let refs: Vec<&[u8]> = reads.iter().map(|r| r.as_slice()).collect();
    let (serial_occ, serial_stats) =
        idx.search_batch_recorded(refs, 2, Method::ALGORITHM_A, &serial_rec);
    for threads in THREAD_WIDTHS {
        let pool = ThreadPool::new(threads);
        let rec = MetricsRecorder::new();
        let (occ, stats) =
            idx.search_batch_par_recorded(&reads, 2, Method::ALGORITHM_A, &pool, &rec);
        assert_eq!(occ, serial_occ, "threads={threads}");
        assert_eq!(stats, serial_stats, "threads={threads}");
        // Order-independent aggregates merged from worker shards must
        // equal the serial recorder exactly. (Latency *values* differ
        // run to run; their event counts may not.)
        for counter in Counter::ALL {
            assert_eq!(
                rec.counter(counter),
                serial_rec.counter(counter),
                "counter {} diverged at threads={threads}",
                counter.name()
            );
        }
        let snap = rec.snapshot();
        let serial_snap = serial_rec.snapshot();
        assert_eq!(
            snap.phase(Phase::SearchQuery).entries,
            serial_snap.phase(Phase::SearchQuery).entries,
            "threads={threads}"
        );
        assert_eq!(
            snap.histogram(Hist::SearchLatencyNs).unwrap().count,
            serial_snap.histogram(Hist::SearchLatencyNs).unwrap().count,
            "threads={threads}"
        );
    }
}

#[test]
fn map_batch_is_bit_identical_across_widths() {
    let (idx, reads) = test_corpus();
    let mapper = ReadMapper::new(
        &idx,
        MapperConfig {
            k: 2,
            ..Default::default()
        },
    );
    let serial: Vec<_> = reads.iter().map(|r| mapper.map(r)).collect();
    for threads in THREAD_WIDTHS {
        let pool = ThreadPool::new(threads);
        assert_eq!(mapper.map_batch(&reads, &pool), serial, "threads={threads}");

        let rec = MetricsRecorder::new();
        let recorded = mapper.map_batch_recorded(&reads, &pool, &rec);
        assert_eq!(recorded, serial, "recorded, threads={threads}");
        assert_eq!(rec.counter(Counter::ReadsTotal), reads.len() as u64);
        assert_eq!(
            rec.counter(Counter::ReadsMapped),
            serial
                .iter()
                .filter(|report| !report.all.is_empty())
                .count() as u64
        );
    }
}

#[test]
fn multi_index_batch_is_bit_identical_across_widths() {
    let chr1 = markov(8_000, &MarkovConfig::default(), 7);
    let chr2 = markov(5_000, &MarkovConfig::default(), 8);
    let reads: Vec<Vec<u8>> = paper_reads(&chr1, 60, 40, 17)
        .into_iter()
        .map(|r| r.seq)
        .collect();
    let idx = MultiIndex::new(vec![("chr1".into(), chr1), ("chr2".into(), chr2)]);
    let serial: Vec<_> = reads
        .iter()
        .map(|r| idx.search(r, 2, Method::ALGORITHM_A).0)
        .collect();
    for threads in THREAD_WIDTHS {
        let pool = ThreadPool::new(threads);
        let (occ, _) = idx.search_batch_par(&reads, 2, Method::ALGORITHM_A, &pool);
        assert_eq!(occ, serial, "threads={threads}");
    }
}

#[test]
fn index_construction_is_byte_identical_across_widths() {
    use bwt_kmismatch::bwt::{FmBuildConfig, FmIndex};
    let genome = {
        let mut g = markov(20_000, &MarkovConfig::default(), 555);
        g.push(0);
        g
    };
    let mut serial_bytes = Vec::new();
    FmIndex::new(&genome, FmBuildConfig::default())
        .save(&mut serial_bytes)
        .unwrap();
    for threads in THREAD_WIDTHS {
        let fm = FmIndex::try_new(&genome, FmBuildConfig::default().with_threads(threads)).unwrap();
        let mut bytes = Vec::new();
        fm.save(&mut bytes).unwrap();
        assert_eq!(bytes, serial_bytes, "threads={threads}");
    }
}
