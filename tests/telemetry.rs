//! Telemetry integration tests: a recorder is an observer, never a
//! participant. Recording must not change any search result, and the
//! recorded metrics must agree with the statistics the search returns.

use bwt_kmismatch::telemetry::{
    Counter, Hist, MetricsRecorder, MetricsSnapshot, NoopRecorder, Phase,
};
use bwt_kmismatch::{KMismatchIndex, Method};
use proptest::prelude::*;

// The full observability stack is armed for this whole test binary —
// counting allocator, phase ledgers, event log — precisely to prove
// none of it perturbs search results.
#[global_allocator]
static ALLOC: bwt_kmismatch::telemetry::CountingAlloc = bwt_kmismatch::telemetry::CountingAlloc;

fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(1u8..=4, 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Algorithm A returns bit-identical occurrences and statistics
    /// whether it reports to the no-op recorder or to a live
    /// `MetricsRecorder`.
    #[test]
    fn algorithm_a_is_identical_under_recording(
        text in dna(300),
        pattern in dna(24),
        k in 0usize..5,
    ) {
        let index = KMismatchIndex::new(text);
        let quiet = index.search_recorded(&pattern, k, Method::ALGORITHM_A, &NoopRecorder);
        let recorder = MetricsRecorder::new();
        let loud = index.search_recorded(&pattern, k, Method::ALGORITHM_A, &recorder);
        prop_assert_eq!(quiet.occurrences, loud.occurrences);
        prop_assert_eq!(quiet.stats, loud.stats);
        // The recorder mirrors the returned stats rather than inventing
        // its own numbers.
        prop_assert_eq!(recorder.counter(Counter::Queries), 1);
        prop_assert_eq!(recorder.counter(Counter::Leaves), loud.stats.leaves);
        prop_assert_eq!(recorder.counter(Counter::Occurrences), loud.stats.occurrences);
        prop_assert_eq!(recorder.counter(Counter::ReuseHits), loud.stats.reuse_hits);
    }

    /// The S-tree baseline under the same invariant.
    #[test]
    fn stree_baseline_is_identical_under_recording(
        text in dna(200),
        pattern in dna(16),
        k in 0usize..4,
    ) {
        let index = KMismatchIndex::new(text);
        let quiet = index.search(&pattern, k, Method::Bwt { use_phi: true });
        let recorder = MetricsRecorder::new();
        let loud =
            index.search_recorded(&pattern, k, Method::Bwt { use_phi: true }, &recorder);
        prop_assert_eq!(quiet.occurrences, loud.occurrences);
        prop_assert_eq!(quiet.stats, loud.stats);
        prop_assert_eq!(recorder.counter(Counter::PhiPrunes), loud.stats.phi_prunes);
    }
}

#[test]
fn snapshot_reflects_a_real_search_session() {
    let genome = bwt_kmismatch::dna::genome::uniform(5_000, 7);
    let recorder = MetricsRecorder::new();
    let index = KMismatchIndex::with_config_recorded(
        genome.clone(),
        bwt_kmismatch::bwt::FmBuildConfig::default(),
        &recorder,
    );
    for start in [100usize, 900, 2_500] {
        let pattern = genome[start..start + 40].to_vec();
        let res = index.search_recorded(&pattern, 2, Method::ALGORITHM_A, &recorder);
        assert!(res.occurrences.iter().any(|o| o.position == start));
    }
    let snap = recorder.snapshot();
    // Every query ticked the search phase and the latency histogram.
    assert_eq!(snap.counter(Counter::Queries), 3);
    assert_eq!(snap.phase(Phase::SearchQuery).entries, 3);
    assert!(snap.phase(Phase::SearchQuery).total_ns > 0);
    let latency = snap
        .histogram(Hist::SearchLatencyNs)
        .expect("latency histogram");
    assert_eq!(latency.count, 3);
    // Index construction phases were timed.
    for phase in [
        Phase::IndexSa,
        Phase::IndexBwt,
        Phase::IndexRankall,
        Phase::IndexSampledSa,
    ] {
        assert_eq!(snap.phase(phase).entries, 1, "{:?}", phase);
    }
    // The snapshot survives its own JSON encoding.
    let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(back.counter(Counter::Queries), 3);
    assert_eq!(
        back.phase(Phase::SearchQuery).total_ns,
        snap.phase(Phase::SearchQuery).total_ns
    );
}

/// The whole observability stack — counting allocator, phase ledgers,
/// JSON event log — is an observer: results under it are bit-identical
/// to the plain `NoopRecorder` path, and the instruments actually see
/// the work (heap tracked, events written).
#[test]
fn full_observability_stack_does_not_perturb_results() {
    use bwt_kmismatch::telemetry::alloc::{mem_stats, phase_scope, MemPhase};
    use bwt_kmismatch::telemetry::events::{self, EventLog};
    use bwt_kmismatch::telemetry::LogLevel;

    let log_path =
        std::env::temp_dir().join(format!("kmm-telemetry-events-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    events::init_global(
        EventLog::new(LogLevel::Debug)
            .quiet()
            .with_json_sink(&log_path)
            .expect("json sink"),
    );

    let genome = bwt_kmismatch::dna::genome::uniform(4_000, 11);
    let index = {
        let _build = phase_scope(MemPhase::Build);
        KMismatchIndex::new(genome.clone())
    };

    let mut quiet_results = Vec::new();
    for start in [50usize, 700, 1_900, 3_200] {
        let pattern = genome[start..start + 32].to_vec();
        quiet_results.push(index.search_recorded(&pattern, 2, Method::ALGORITHM_A, &NoopRecorder));
    }

    let recorder = MetricsRecorder::new();
    let loud_results: Vec<_> = {
        let _search = phase_scope(MemPhase::Search);
        [50usize, 700, 1_900, 3_200]
            .iter()
            .map(|&start| {
                let pattern = genome[start..start + 32].to_vec();
                events::debug("test.search", "query", &[("start", start.to_string())]);
                index.search_recorded(&pattern, 2, Method::ALGORITHM_A, &recorder)
            })
            .collect()
    };

    for (quiet, loud) in quiet_results.iter().zip(&loud_results) {
        assert_eq!(quiet.occurrences, loud.occurrences);
        assert_eq!(quiet.stats, loud.stats);
    }

    // The allocator saw the build (this binary registers CountingAlloc,
    // and the root crate's default `alloc-track` feature is on).
    let mem = mem_stats();
    assert!(mem.enabled, "alloc tracking should be live in this binary");
    assert!(mem.peak_bytes > 0);
    assert!(mem.phase(MemPhase::Build).allocated_bytes > 0);

    // The event log captured the queries as JSON lines.
    let logged = std::fs::read_to_string(&log_path).expect("event log file");
    assert!(logged.lines().count() >= 4);
    for line in logged.lines().filter(|l| l.contains("test.search")) {
        let doc = bwt_kmismatch::telemetry::Json::parse(line).expect("valid json event");
        assert_eq!(
            doc.get("target").and_then(|t| t.as_str().map(String::from)),
            Some("test.search".to_string())
        );
    }
    let _ = std::fs::remove_file(&log_path);
}
