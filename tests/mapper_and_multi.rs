//! Integration tests for the read mapper and the chromosome-aware
//! multi-sequence index through the public façade.

use bwt_kmismatch::core::{MapOutcome, MapperConfig, Method, MultiIndex, ReadMapper, Strand};
use bwt_kmismatch::KMismatchIndex;
use kmm_dna::genome::{markov, MarkovConfig};
use kmm_dna::reads::{ReadSimConfig, ReadSimulator};

#[test]
fn simulated_paired_strand_batch_maps_accurately() {
    let genome = markov(60_000, &MarkovConfig::default(), 77);
    let index = KMismatchIndex::new(genome.clone());
    let mapper = ReadMapper::new(
        &index,
        MapperConfig {
            k: 5,
            ..Default::default()
        },
    );

    // Strand-symmetric simulation, like real sequencing.
    let mut sim = ReadSimulator::new(
        &genome,
        ReadSimConfig {
            read_len: 80,
            reverse_strand_prob: 0.5,
            ..Default::default()
        },
        9,
    );
    let reads = sim.reads(60);
    let mut recovered = 0usize;
    let mut reverse_seen = 0usize;
    for read in &reads {
        let report = mapper.map(&read.seq);
        let want_strand = if read.reverse {
            Strand::Reverse
        } else {
            Strand::Forward
        };
        if report
            .all
            .iter()
            .any(|a| a.position == read.origin && a.strand == want_strand)
        {
            recovered += 1;
            if read.reverse {
                reverse_seen += 1;
            }
        }
    }
    assert!(recovered >= 50, "only {recovered}/60 recovered");
    assert!(
        reverse_seen >= 10,
        "too few reverse reads exercised: {reverse_seen}"
    );
}

#[test]
fn mapper_outcomes_partition() {
    let genome = markov(30_000, &MarkovConfig::default(), 13);
    let index = KMismatchIndex::new(genome.clone());
    let mapper = ReadMapper::new(
        &index,
        MapperConfig {
            k: 3,
            ..Default::default()
        },
    );
    let reads = kmm_dna::paper_reads(&genome, 30, 70, 4);
    for read in &reads {
        let report = mapper.map(&read.seq);
        match &report.outcome {
            MapOutcome::Unmapped => assert!(report.all.is_empty()),
            MapOutcome::Unique(best) => {
                assert_eq!(report.all[0], *best);
                // No other alignment ties the best score.
                assert!(report.all[1..]
                    .iter()
                    .all(|a| a.mismatches > best.mismatches));
            }
            MapOutcome::Multi(ties) => {
                assert!(ties.len() >= 2);
                assert_eq!(report.mapq, 0);
                let best = ties[0].mismatches;
                assert!(ties.iter().all(|a| a.mismatches == best));
            }
        }
    }
}

#[test]
fn multi_index_over_five_stand_in_chromosomes() {
    // Five small "chromosomes" with one marker planted in chromosome 3.
    let mut records: Vec<(String, Vec<u8>)> = (0..5)
        .map(|i| {
            (
                format!("chr{}", i + 1),
                markov(4_000, &MarkovConfig::default(), 100 + i),
            )
        })
        .collect();
    let marker = kmm_dna::encode(b"acgtgacctgatcgaggtcaatgca").unwrap();
    records[2].1[1_000..1_000 + marker.len()].copy_from_slice(&marker);
    let multi = MultiIndex::new(records);

    let (hits, _) = multi.search(&marker, 1, Method::ALGORITHM_A);
    assert!(hits
        .iter()
        .any(|h| h.record == 2 && h.offset == 1_000 && h.mismatches == 0));
    // Names and lengths survive.
    assert_eq!(multi.names()[2], "chr3");
    assert_eq!(multi.record_len(0), 4_000);
    assert_eq!(multi.record_count(), 5);
}

#[test]
fn multi_index_boundary_window_arithmetic() {
    // Tiny records: every boundary case for the window-fit filter.
    let multi = MultiIndex::new(vec![
        ("a".into(), kmm_dna::encode(b"acgt").unwrap()),
        ("b".into(), kmm_dna::encode(b"acgt").unwrap()),
    ]);
    let pat = kmm_dna::encode(b"acgt").unwrap();
    let (hits, _) = multi.search(&pat, 0, Method::ALGORITHM_A);
    // Exactly one exact hit per record, at offset 0.
    assert_eq!(hits.len(), 2);
    assert!(hits.iter().all(|h| h.offset == 0 && h.mismatches == 0));
    // A pattern longer than a record can never match within one.
    let long = kmm_dna::encode(b"acgta").unwrap();
    let (hits, _) = multi.search(&long, 2, Method::ALGORITHM_A);
    assert!(hits.is_empty(), "got {hits:?}");
}
