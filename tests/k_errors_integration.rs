//! Integration tests for the k-errors (Levenshtein) extension through the
//! public `KMismatchIndex` API.

use bwt_kmismatch::core::k_errors::find_k_errors_naive;
use bwt_kmismatch::{KMismatchIndex, Method};
use rand::{Rng, SeedableRng};

#[test]
fn api_agrees_with_reference() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2121);
    for _ in 0..20 {
        let n = rng.gen_range(10..150);
        let text: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
        let index = KMismatchIndex::new(text.clone());
        let m = rng.gen_range(2..=n.min(10));
        let pattern: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
        for k in 0..3usize {
            let (got, stats) = index.search_k_errors(&pattern, k);
            assert_eq!(got, find_k_errors_naive(&text, &pattern, k));
            assert_eq!(stats.occurrences as usize, got.len());
        }
    }
}

#[test]
fn deletion_insertion_substitution_each_found() {
    // Reference locus: "gattaca" planted in a random background.
    let mut genome = kmm_dna::genome::uniform(2_000, 5);
    let locus = 700;
    let marker = kmm_dna::encode(b"gattacagatta").unwrap();
    genome[locus..locus + marker.len()].copy_from_slice(&marker);
    let index = KMismatchIndex::new(genome.clone());

    // Substituted probe (Hamming distance 1).
    let mut probe = marker.clone();
    probe[5] = if probe[5] == 1 { 2 } else { 1 };
    let (hits, _) = index.search_k_errors(&probe, 1);
    assert!(hits.iter().any(|h| h.position == locus && h.distance == 1));

    // Probe with one base deleted (pattern shorter): the locus window of
    // full marker length matches with one insertion.
    let mut probe = marker.clone();
    probe.remove(4);
    let (hits, _) = index.search_k_errors(&probe, 1);
    assert!(hits
        .iter()
        .any(|h| h.position == locus && h.length == marker.len() && h.distance == 1));

    // Probe with one extra base inserted.
    let mut probe = marker.clone();
    probe.insert(6, 3);
    let (hits, _) = index.search_k_errors(&probe, 1);
    assert!(hits
        .iter()
        .any(|h| h.position == locus && h.length == marker.len() && h.distance == 1));
}

#[test]
fn k_errors_at_zero_matches_exact_search() {
    let genome = kmm_dna::genome::markov(5_000, &kmm_dna::genome::MarkovConfig::default(), 3);
    let index = KMismatchIndex::new(genome.clone());
    let probe = genome[1234..1284].to_vec();
    let (edit_hits, _) = index.search_k_errors(&probe, 0);
    let exact = index.search(&probe, 0, Method::ALGORITHM_A).occurrences;
    let edit_positions: Vec<usize> = edit_hits
        .iter()
        .filter(|h| h.distance == 0 && h.length == probe.len())
        .map(|h| h.position)
        .collect();
    assert_eq!(
        edit_positions,
        exact.iter().map(|o| o.position).collect::<Vec<_>>()
    );
}

#[test]
fn edit_hits_verify_against_text() {
    let genome = kmm_dna::genome::uniform(800, 21);
    let index = KMismatchIndex::new(genome.clone());
    let probe = kmm_dna::encode(b"acgtacgt").unwrap();
    let (hits, _) = index.search_k_errors(&probe, 2);
    for h in hits {
        let window = &genome[h.position..h.position + h.length];
        // Recompute the edit distance directly.
        let d = levenshtein(window, &probe);
        assert_eq!(d, h.distance, "window {window:?}");
        assert!(d <= 2);
    }
}

fn levenshtein(a: &[u8], b: &[u8]) -> usize {
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &x) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &y) in b.iter().enumerate() {
            let cur = row[j + 1];
            row[j + 1] = (cur + 1).min(row[j] + 1).min(prev + usize::from(x != y));
            prev = cur;
        }
    }
    row[b.len()]
}
