//! Integration tests replaying every worked example in the paper, end to
//! end through the public API.

use bwt_kmismatch::bwt::{bwt, FmBuildConfig, FmIndex};
use bwt_kmismatch::core::{merge, mismatches_direct, RTable};
use bwt_kmismatch::{KMismatchIndex, Method, Occurrence};

/// Section I: r = aaaaacaaac occurs at the third position (1-based) of
/// s = ccacacagaagcc with exactly 4 mismatches.
#[test]
fn section1_intro_occurrence() {
    let index = KMismatchIndex::from_ascii(b"ccacacagaagcc").unwrap();
    let r = kmm_dna::encode(b"aaaaacaaac").unwrap();
    let hits = index.search(&r, 4, Method::ALGORITHM_A);
    assert!(hits.occurrences.contains(&Occurrence {
        position: 2,
        mismatches: 4
    }));
    // With k = 3 that occurrence must disappear.
    let hits = index.search(&r, 3, Method::ALGORITHM_A);
    assert!(!hits.occurrences.iter().any(|o| o.position == 2));
}

/// Section III-A / Fig. 1: BWT(acagaca$) = acg$caaa.
#[test]
fn figure1_bwt() {
    let text = kmm_dna::encode_text(b"acagaca").unwrap();
    assert_eq!(
        kmm_dna::decode_string(&bwt(&text, kmm_dna::SIGMA)),
        "acg$caaa"
    );
}

/// Section III-A: the search of r = aca against BWT(s) proceeds through
/// the pairs <a,[1,4]>, <c,[1,2]>, <a,[2,3]> and finds two occurrences.
#[test]
fn section3_search_sequence() {
    let text = kmm_dna::encode_text(b"acagaca").unwrap();
    let fm = FmIndex::new(&text, FmBuildConfig::paper());
    let r = kmm_dna::encode(b"aca").unwrap();

    let s1 = fm.f_block(1);
    assert_eq!(fm.pair(1, s1).to_string(), "<a, [1, 4]>");
    let s2 = fm.extend_backward(s1, 2);
    assert_eq!(fm.pair(2, s2).to_string(), "<c, [1, 2]>");
    let s3 = fm.extend_backward(s2, 1);
    assert_eq!(fm.pair(1, s3).to_string(), "<a, [2, 3]>");

    assert_eq!(fm.locate(fm.backward_search(&r)), vec![0, 4]);
}

/// Section IV-A / Fig. 3: r = tcaca in s = acagaca with k = 2 has exactly
/// the two occurrences s[1..5] and s[3..7] (1-based), each with 2
/// mismatches — via every implemented method.
#[test]
fn figure3_two_occurrences_all_methods() {
    let index = KMismatchIndex::from_ascii(b"acagaca").unwrap();
    let r = kmm_dna::encode(b"tcaca").unwrap();
    let want = vec![
        Occurrence {
            position: 0,
            mismatches: 2,
        },
        Occurrence {
            position: 2,
            mismatches: 2,
        },
    ];
    for method in [
        Method::Naive,
        Method::Kangaroo,
        Method::Amir,
        Method::Cole,
        Method::Bwt { use_phi: true },
        Method::Bwt { use_phi: false },
        Method::ALGORITHM_A,
        Method::AlgorithmA { reuse: false },
    ] {
        assert_eq!(
            index.search(&r, 2, method).occurrences,
            want,
            "{}",
            method.label()
        );
    }
}

/// Section IV-A: the mismatch arrays recorded for the four root-to-leaf
/// paths of Fig. 3 are B1 = [1,4], B2 = [1,2], B3 = [1,2,3], B4 = [1,2,3]
/// (1-based). We verify the equivalent 0-based mismatch sets of the two
/// successful paths against the actual windows.
#[test]
fn figure3_mismatch_arrays() {
    let s = kmm_dna::encode(b"acagaca").unwrap();
    let r = kmm_dna::encode(b"tcaca").unwrap();
    // P1 spells s[0..5] = acaga; mismatches vs tcaca at 0-based {0, 3}.
    assert_eq!(kmm_dna::mismatch_positions(&s[0..5], &r, 10), vec![0, 3]);
    // P2 spells s[2..7] = agaca; mismatches at {0, 1}.
    assert_eq!(kmm_dna::mismatch_positions(&s[2..7], &r, 10), vec![0, 1]);
}

/// Section IV-B / Fig. 4: the R-table of r = tcacg.
#[test]
fn figure4_r_table() {
    let r = kmm_dna::encode(b"tcacg").unwrap();
    let t = RTable::new(&r, 2);
    // 1-based R1 = [1,2,3,4], R2 = [1,3], R3 = [1,2], R4 = [1] become
    // 0-based:
    assert_eq!(t.shift(1), &[0, 1, 2, 3]);
    assert_eq!(t.shift(2), &[0, 2]);
    assert_eq!(t.shift(3), &[0, 1]);
    assert_eq!(t.shift(4), &[0]);
}

/// Section IV-B / Fig. 5: merging R1 and R2 reproduces the mismatches
/// between the shifted copies of the pattern.
#[test]
fn figure5_merge() {
    let r = kmm_dna::encode(b"tcacg").unwrap();
    let a1 = mismatches_direct(&r[0..4], &r[1..5], usize::MAX);
    let a2 = mismatches_direct(&r[0..3], &r[2..5], usize::MAX);
    let merged = merge(&a1, &a2, &r[1..], &r[2..], usize::MAX);
    assert_eq!(merged, mismatches_direct(&r[1..], &r[2..], usize::MAX));
}

/// Section IV-A: the φ heuristic example — φ(1) = 2 for r = tcaca against
/// s = acagaca (1-based), exposed through the BWT baseline's pruning
/// statistics: with k = 1 < φ(1), the whole t-branch is pruned
/// immediately, yet results stay exact.
#[test]
fn phi_heuristic_prunes_but_stays_exact() {
    let index = KMismatchIndex::from_ascii(b"acagaca").unwrap();
    let r = kmm_dna::encode(b"tcaca").unwrap();
    let with_phi = index.search(&r, 1, Method::Bwt { use_phi: true });
    let without = index.search(&r, 1, Method::Bwt { use_phi: false });
    assert_eq!(with_phi.occurrences, without.occurrences);
    assert!(with_phi.stats.phi_prunes > 0);
    assert!(with_phi.stats.nodes_visited <= without.stats.nodes_visited);
}
