//! Chaos tests: every failure path driven deterministically through the
//! `kmm-faults` failpoint layer — no sleeps-and-hope. Failpoints are
//! process-global, so this binary keeps them in their own test file and
//! serialises the armed sections behind a mutex.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

use bwt_kmismatch::dna::genome::{markov, MarkovConfig};
use bwt_kmismatch::serve::{ServeConfig, Server};
use bwt_kmismatch::telemetry::Json;
use bwt_kmismatch::KMismatchIndex;

/// Serialises tests that arm failpoints (they share global state).
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn armed(specs: &str) -> impl Drop {
    struct Disarm<'a>(Option<std::sync::MutexGuard<'a, ()>>);
    impl Drop for Disarm<'_> {
        fn drop(&mut self) {
            kmm_faults::disarm_all();
            self.0.take();
        }
    }
    let guard = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    kmm_faults::disarm_all();
    kmm_faults::arm(specs).expect("valid failpoint spec");
    Disarm(Some(guard))
}

fn test_index() -> KMismatchIndex {
    KMismatchIndex::new(markov(6_000, &MarkovConfig::default(), 19))
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, payload)
}

#[test]
fn worker_panic_failpoint_is_isolated_and_counted() {
    let _armed = armed("pool.worker.panic=panic");
    let server = Server::start(test_index(), ServeConfig::default()).expect("start");
    let addr = server.addr();

    // Every request panics inside the worker; the daemon survives each.
    for _ in 0..3 {
        let (status, _, body) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("panicked"), "{body}");
    }

    // Disarm: the very same server, same workers, is healthy again.
    kmm_faults::disarm_all();
    let (status, _, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "daemon did not survive worker panics: {body}");
    let (_, _, stats) = http(addr, "GET", "/stats.json", "");
    let doc = Json::parse(&stats).unwrap();
    let errors = doc
        .get("counters")
        .and_then(|c| c.get("serve.errors"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(errors >= 3, "serve.errors did not tick: {errors}");

    http(addr, "POST", "/shutdown", "");
    server.join();
}

#[test]
fn handler_err_failpoint_fails_requests_deterministically() {
    let _armed = armed("serve.handler.err=1in2.err");
    let server = Server::start(test_index(), ServeConfig::default()).expect("start");
    let addr = server.addr();

    // `1in2` fires on a deterministic half of the hits: over 10 requests
    // exactly 5 fail with the injected 500.
    let mut injected = 0;
    for _ in 0..10 {
        let (status, _, body) = http(addr, "GET", "/healthz", "");
        match status {
            500 => {
                assert!(body.contains("injected fault"), "{body}");
                injected += 1;
            }
            200 => {}
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert_eq!(injected, 5, "1in2 is exactly one per 2-hit block");
    assert_eq!(kmm_faults::fired("serve.handler.err"), 5);

    // Disarm before shutting down: the failpoint sits at route entry,
    // so an injected 500 on the shutdown request would leave the server
    // running and `join` below would never return.
    kmm_faults::disarm_all();
    http(addr, "POST", "/shutdown", "");
    server.join();
}

#[test]
fn full_queue_sheds_with_429_and_retry_after() {
    // One worker (thread 0 accepts), queue capacity threads*4 = 8, and
    // every handled request stalls 300 ms at the slow failpoint — so a
    // burst of 30 concurrent requests must overflow the queue and the
    // overflow must be shed, not block the acceptor.
    let _armed = armed("serve.handler.slow=sleep300");
    let server = Server::start(
        test_index(),
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr();

    let results: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..30)
            .map(|_| {
                scope.spawn(move || {
                    let (status, head, _) = http(addr, "GET", "/healthz", "");
                    (status, head)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let shed: Vec<_> = results.iter().filter(|(s, _)| *s == 429).collect();
    let served = results.iter().filter(|(s, _)| *s == 200).count();
    assert!(
        !shed.is_empty(),
        "burst of 30 against 1 slow worker never shed; statuses: {:?}",
        results.iter().map(|(s, _)| *s).collect::<Vec<_>>()
    );
    assert!(served >= 1, "nothing was served at all");
    for (_, head) in &shed {
        assert!(
            head.contains("Retry-After:"),
            "429 without Retry-After: {head}"
        );
    }

    // Shedding is visible in metrics, and the acceptor never wedged:
    // this probe goes straight through once the burst drains.
    kmm_faults::disarm_all();
    let (status, _, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let shed_line = metrics
        .lines()
        .find(|l| l.starts_with("kmm_serve_shed_total"))
        .expect("kmm_serve_shed_total series");
    let count: u64 = shed_line
        .split_whitespace()
        .last()
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(count as usize, shed.len());

    http(addr, "POST", "/shutdown", "");
    server.join();
}

#[test]
fn shutdown_drains_queued_requests() {
    // Slow handler, several queued requests, then a shutdown: every
    // already-accepted request still gets its response (drain), and the
    // server exits afterwards.
    let _armed = armed("serve.handler.slow=sleep100");
    let server = Server::start(
        test_index(),
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr();

    let summary = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..4)
            .map(|_| scope.spawn(move || http(addr, "GET", "/healthz", "").0))
            .collect();
        // Give the burst a moment to be accepted and queued, then ask
        // for shutdown; the shutdown request itself queues behind them.
        std::thread::sleep(Duration::from_millis(50));
        let (status, _, _) = http(addr, "POST", "/shutdown", "");
        assert_eq!(status, 200);
        for c in clients {
            assert_eq!(c.join().unwrap(), 200, "queued request dropped on drain");
        }
        server.join()
    });
    assert!(summary.contains("served"), "{summary}");
}

#[test]
fn index_load_failpoint_surfaces_as_cli_error() {
    let _armed = armed("index.load.io=err");
    let err = bwt_kmismatch::cli::load_index(std::path::Path::new("/tmp/kmm-chaos-any.idx"))
        .expect_err("armed load must fail");
    assert!(
        err.to_string().contains("injected fault"),
        "unexpected error: {err}"
    );
}

#[test]
fn index_save_failpoint_leaves_no_tmp_and_keeps_the_old_index() {
    let dir = std::env::temp_dir().join("kmm-chaos-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let fa = dir.join("save.fa");
    let idx = dir.join("save.idx");
    let tmp = dir.join("save.idx.tmp");
    let _ = std::fs::remove_file(&idx);
    let _ = std::fs::remove_file(&tmp);

    bwt_kmismatch::cli::generate(
        bwt_kmismatch::dna::genome::ReferenceGenome::CMerolae,
        0.01,
        &fa,
    )
    .unwrap();

    // First save succeeds and leaves a loadable index.
    bwt_kmismatch::cli::index(&fa, &idx, 1).unwrap();
    let before = std::fs::read(&idx).unwrap();

    // Re-indexing with the save failpoint armed fails…
    {
        let _armed = armed("index.save.io=err");
        let err = bwt_kmismatch::cli::index(&fa, &idx, 1).expect_err("armed save must fail");
        assert!(err.to_string().contains("cannot save"), "{err}");
    }
    // …without leaving a temp file and without touching the old index:
    // the atomic rename never happened.
    assert!(!tmp.exists(), "failed save left {} behind", tmp.display());
    assert_eq!(
        std::fs::read(&idx).unwrap(),
        before,
        "failed re-index corrupted the existing index"
    );
    assert!(bwt_kmismatch::cli::load_index(&idx).is_ok());
}

#[test]
fn bad_failpoint_specs_are_rejected_wholesale() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    kmm_faults::disarm_all();
    // One bad spec rejects the whole batch: nothing is half-armed.
    assert!(kmm_faults::arm("a=err;b=frobnicate").is_err());
    assert!(kmm_faults::armed_sites().is_empty());
    assert!(kmm_faults::arm("=err").is_err());
    assert!(kmm_faults::arm("site=1in0.err").is_err());
}

// ---------------------------------------------------------------------------
// Event-loop front end under load: connection-level chaos. These drive the
// nonblocking state machine with hundreds of concurrent keep-alive sockets
// while slow-loris peers, aborted uploads, and the `serve.conn.*` failpoints
// are all in play, and assert the deterministic counters that fall out.
// ---------------------------------------------------------------------------

/// Install a quiet process-global event log before the storm tests run:
/// they provoke thousands of access/shed events and the default stderr
/// log would drown the harness output.
fn quiet_log() {
    use bwt_kmismatch::telemetry::events::{self, EventLog};
    use bwt_kmismatch::telemetry::LogLevel;
    static ONCE: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    ONCE.get_or_init(|| {
        let path =
            std::env::temp_dir().join(format!("kmm-chaos-events-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        events::init_global(
            EventLog::new(bwt_kmismatch::telemetry::LogLevel::Warn)
                .quiet()
                .with_json_sink(&path)
                .expect("json sink"),
        );
        let _ = LogLevel::Warn; // silence unused-import lint paths
    });
}

/// A keep-alive client socket with response framing. The carry buffer
/// is essential under load: the server coalesces pipelined responses
/// into one write, so a single `read` often returns the tail of the
/// next response too — bytes that must survive for the next call.
struct KeepAlive {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl KeepAlive {
    fn connect(addr: SocketAddr) -> KeepAlive {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(20)).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        KeepAlive {
            stream,
            carry: Vec::new(),
        }
    }

    fn send(&mut self, request: &str) {
        self.stream.write_all(request.as_bytes()).expect("send");
    }

    /// Read exactly one `Content-Length`-framed response, keeping any
    /// extra bytes for the next call.
    fn read_one(&mut self) -> (u16, String, String) {
        let mut chunk = [0u8; 4096];
        let header_end = loop {
            if let Some(pos) = self.carry.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk).unwrap_or_else(|e| {
                panic!(
                    "read response headers (local {:?}): {e}",
                    self.stream.local_addr()
                )
            });
            assert!(
                n > 0,
                "EOF before response headers (local {:?})",
                self.stream.local_addr()
            );
            self.carry.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.carry[..header_end]).to_string();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                if name.eq_ignore_ascii_case("content-length") {
                    value.trim().parse().ok()
                } else {
                    None
                }
            })
            .expect("content-length header");
        let total = header_end + 4 + content_length;
        while self.carry.len() < total {
            let n = self.stream.read(&mut chunk).expect("read response body");
            assert!(n > 0, "EOF mid response body");
            self.carry.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8_lossy(&self.carry[header_end + 4..total]).to_string();
        self.carry.drain(..total);
        (status, head, body)
    }

    /// Drain to EOF; panics if any unframed bytes remain.
    fn expect_eof(&mut self) {
        let mut rest = Vec::new();
        self.stream.read_to_end(&mut rest).unwrap();
        assert!(
            self.carry.is_empty() && rest.is_empty(),
            "bytes after the final response"
        );
    }
}

/// Scrape one `kmm_*` series value off `/metrics`.
fn metric(addr: SocketAddr, series: &str) -> u64 {
    let (status, _, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    body.lines()
        .find(|l| l.starts_with(series) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {series} series in /metrics"))
}

#[test]
fn storm_of_500_keepalive_conns_survives_loris_and_aborts() {
    // No failpoints armed, but the storm still holds the fault lock so a
    // concurrently scheduled chaos test cannot arm one mid-flight.
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    kmm_faults::disarm_all();
    quiet_log();

    const THREADS: usize = 16;
    const CONNS: usize = 32; // 16 * 32 = 512 held keep-alive connections
    const LORIS: usize = 12;
    const ABORTS: usize = 12;
    const ROUNDS: usize = 2;

    let idx = test_index();
    let server = Server::start(
        test_index(),
        ServeConfig {
            threads: 4,
            // The shed/retry churn below can burn hundreds of responses
            // per connection; the per-connection request budget must not
            // close the socket mid-storm (budget semantics have their
            // own tests in the serve suite).
            keep_alive_requests: 1_000_000,
            // Generous idle window: on a loaded single-core box the herd
            // phases themselves take seconds, and a held connection must
            // not be idle-evicted between its turns. The loris sockets
            // below are evicted on this same deadline, so the test's
            // tail latency is roughly this value.
            idle_timeout_ms: 12_000,
            max_conns: 2_048,
            ..ServeConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr();

    // Reference answer, fetched once before the storm: every concurrent
    // /search response must be byte-identical to it, and it must agree
    // with the single-threaded index answer.
    let pattern = bwt_kmismatch::dna::decode_string(&idx.text()[700..760]);
    let search = format!("{{\"pattern\": \"{pattern}\", \"k\": 1}}");
    let (status, _, reference) = http(addr, "POST", "/search", &search);
    assert_eq!(status, 200, "{reference}");
    let encoded = bwt_kmismatch::dna::encode(pattern.as_bytes()).unwrap();
    let want = idx
        .search(&encoded, 1, bwt_kmismatch::Method::ALGORITHM_A)
        .occurrences
        .len() as u64;
    assert_eq!(
        Json::parse(&reference)
            .unwrap()
            .get("count")
            .and_then(Json::as_u64),
        Some(want),
        "reference /search disagrees with the index"
    );

    // Slow-loris sockets: half a request line, then silence. They sit in
    // ReadingHeaders until the idle deadline evicts them with a 408.
    let mut loris: Vec<KeepAlive> = (0..LORIS)
        .map(|_| {
            let mut s = KeepAlive::connect(addr);
            s.send("GET /hea");
            s
        })
        .collect();
    // Aborted uploads: partial request, then the socket is dropped on the
    // floor. The server answers 400 into a dead socket and must shrug.
    for _ in 0..ABORTS {
        let mut s = TcpStream::connect(addr).expect("abort connect");
        let _ = s.write_all(b"POST /search HTTP/1.1\r\nContent-Length: 10\r\n");
        drop(s);
    }

    let healthz = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    let search_req = format!(
        "POST /search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{search}",
        search.len()
    );
    let burst = format!("{healthz}{search_req}");
    let barrier = std::sync::Barrier::new(THREADS + 1);

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let (barrier, burst, reference) = (&barrier, &burst, &reference);
            scope.spawn(move || {
                // Phase A: open and warm this thread's share of the herd.
                let mut conns: Vec<KeepAlive> = (0..CONNS)
                    .map(|_| {
                        let mut s = KeepAlive::connect(addr);
                        // 512 near-simultaneous arrivals against a small
                        // dispatch queue: a transient 429 is the shed
                        // tier doing its job — retry on the same socket.
                        let mut attempts = 0;
                        loop {
                            attempts += 1;
                            assert!(attempts <= 500, "warm-up shed never cleared");
                            s.send(healthz);
                            let (status, _, body) = s.read_one();
                            match status {
                                200 => break,
                                429 => std::thread::sleep(Duration::from_millis(2)),
                                other => panic!("unexpected status {other}: {body}"),
                            }
                        }
                        s
                    })
                    .collect();
                barrier.wait(); // all 512 connections are open

                // Phase B: pipelined keep-alive bursts on every held
                // connection. A transient queue-full 429 is legitimate
                // load shedding — drain the pair and retry the burst.
                for _ in 0..ROUNDS {
                    for s in conns.iter_mut() {
                        let mut attempts = 0;
                        loop {
                            attempts += 1;
                            assert!(attempts <= 500, "queue shed never cleared");
                            s.send(burst);
                            let (s1, _, b1) = s.read_one();
                            let (s2, _, b2) = s.read_one();
                            if s1 == 429 || s2 == 429 {
                                std::thread::sleep(Duration::from_millis(2));
                                continue;
                            }
                            assert_eq!((s1, b1.as_str()), (200, "ok\n"));
                            assert_eq!(s2, 200, "{b2}");
                            assert_eq!(
                                &b2, reference,
                                "concurrent /search diverged from the reference answer"
                            );
                            break;
                        }
                    }
                }
                // Phase C: drop the herd (client-side FIN).
            });
        }

        // The herd is fully open and stays open through the burst phase
        // (every socket is held until its thread finishes), so the gauge
        // can be read while the storm rages.
        barrier.wait(); // all threads report their connections open
        let open = metric(addr, "kmm_serve_open_connections");
        assert!(
            open >= 500,
            "only {open} connections open at the top of the storm"
        );

        // Probe while the storm rages: a fresh connection must still get
        // through — no worker is pinned by a held or half-dead socket.
        std::thread::sleep(Duration::from_millis(30));
        let mut probe_status = 0;
        for _ in 0..200 {
            probe_status = http(addr, "GET", "/healthz", "").0;
            if probe_status == 200 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(probe_status, 200, "fresh connection starved mid-storm");
    });

    // Every loris socket is evicted with a 408 and a hard close — and
    // nothing else was stall-evicted, so the counter lands exactly on
    // the loris head-count.
    for s in loris.iter_mut() {
        let (status, head, _) = s.read_one();
        assert_eq!(status, 408, "loris connection not evicted");
        assert!(
            head.to_ascii_lowercase().contains("connection: close"),
            "{head}"
        );
        s.expect_eof();
    }
    assert_eq!(
        metric(addr, "kmm_serve_shed_stall_total"),
        LORIS as u64,
        "stall evictions != loris connections"
    );
    // 512 connections each served 1 warm-up + ROUNDS pipelined pairs:
    // at least 2*ROUNDS reuses per connection (retries only add more).
    let reuses = metric(addr, "kmm_serve_keepalive_reuses_total");
    assert!(
        reuses >= (THREADS * CONNS * 2 * ROUNDS) as u64,
        "keep-alive reuse undercounted: {reuses}"
    );

    let (status, _, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    let summary = server.join();
    assert!(summary.contains("served"), "{summary}");
}

#[test]
fn conn_stall_failpoint_evicts_exactly_one_per_block() {
    quiet_log();
    // `1in4` stalls exactly one accept per 4-connection block: the
    // stalled socket is admitted but never read, so the idle deadline
    // evicts it with a 408 — a synthetic slow-loris, deterministically.
    let _armed = armed("serve.conn.stall=1in4.err");
    let server = Server::start(
        test_index(),
        ServeConfig {
            threads: 2,
            idle_timeout_ms: 150,
            ..ServeConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr();

    let mut evicted = 0;
    let mut served = 0;
    for _ in 0..40 {
        let (status, _, body) = http(addr, "GET", "/healthz", "");
        match status {
            408 => evicted += 1,
            200 => served += 1,
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert_eq!(evicted, 10, "1in4 is exactly one stall per 4-accept block");
    assert_eq!(served, 30);
    assert_eq!(kmm_faults::fired("serve.conn.stall"), 10);

    // Disarm before scraping metrics: the scrape is itself an accept.
    kmm_faults::disarm_all();
    assert_eq!(metric(addr, "kmm_serve_shed_stall_total"), 10);

    http(addr, "POST", "/shutdown", "");
    server.join();
}

#[test]
fn conn_reset_failpoint_drops_connections_at_accept() {
    quiet_log();
    // `1in3` resets exactly one accept per 3-connection block: the
    // socket is dropped on the floor before a single byte is read, so
    // the client sees an immediate EOF or ECONNRESET.
    let _armed = armed("serve.conn.reset=1in3.err");
    let server = Server::start(test_index(), ServeConfig::default()).expect("start");
    let addr = server.addr();

    let mut resets = 0;
    let mut served = 0;
    for _ in 0..30 {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        let sent = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
        let mut buf = String::new();
        match sent.and_then(|()| s.read_to_string(&mut buf)) {
            Ok(_) if buf.is_empty() => resets += 1,
            Ok(_) => {
                assert!(buf.starts_with("HTTP/1.1 200"), "{buf}");
                served += 1;
            }
            Err(_) => resets += 1,
        }
    }
    assert_eq!(resets, 10, "1in3 is exactly one reset per 3-accept block");
    assert_eq!(served, 20);
    assert_eq!(kmm_faults::fired("serve.conn.reset"), 10);

    // The daemon itself never blinked.
    kmm_faults::disarm_all();
    let (status, _, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    http(addr, "POST", "/shutdown", "");
    server.join();
}
