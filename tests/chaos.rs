//! Chaos tests: every failure path driven deterministically through the
//! `kmm-faults` failpoint layer — no sleeps-and-hope. Failpoints are
//! process-global, so this binary keeps them in their own test file and
//! serialises the armed sections behind a mutex.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

use bwt_kmismatch::dna::genome::{markov, MarkovConfig};
use bwt_kmismatch::serve::{ServeConfig, Server};
use bwt_kmismatch::telemetry::Json;
use bwt_kmismatch::KMismatchIndex;

/// Serialises tests that arm failpoints (they share global state).
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn armed(specs: &str) -> impl Drop {
    struct Disarm<'a>(Option<std::sync::MutexGuard<'a, ()>>);
    impl Drop for Disarm<'_> {
        fn drop(&mut self) {
            kmm_faults::disarm_all();
            self.0.take();
        }
    }
    let guard = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    kmm_faults::disarm_all();
    kmm_faults::arm(specs).expect("valid failpoint spec");
    Disarm(Some(guard))
}

fn test_index() -> KMismatchIndex {
    KMismatchIndex::new(markov(6_000, &MarkovConfig::default(), 19))
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, payload)
}

#[test]
fn worker_panic_failpoint_is_isolated_and_counted() {
    let _armed = armed("pool.worker.panic=panic");
    let server = Server::start(test_index(), ServeConfig::default()).expect("start");
    let addr = server.addr();

    // Every request panics inside the worker; the daemon survives each.
    for _ in 0..3 {
        let (status, _, body) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("panicked"), "{body}");
    }

    // Disarm: the very same server, same workers, is healthy again.
    kmm_faults::disarm_all();
    let (status, _, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "daemon did not survive worker panics: {body}");
    let (_, _, stats) = http(addr, "GET", "/stats.json", "");
    let doc = Json::parse(&stats).unwrap();
    let errors = doc
        .get("counters")
        .and_then(|c| c.get("serve.errors"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(errors >= 3, "serve.errors did not tick: {errors}");

    http(addr, "POST", "/shutdown", "");
    server.join();
}

#[test]
fn handler_err_failpoint_fails_requests_deterministically() {
    let _armed = armed("serve.handler.err=1in2.err");
    let server = Server::start(test_index(), ServeConfig::default()).expect("start");
    let addr = server.addr();

    // `1in2` fires on a deterministic half of the hits: over 10 requests
    // exactly 5 fail with the injected 500.
    let mut injected = 0;
    for _ in 0..10 {
        let (status, _, body) = http(addr, "GET", "/healthz", "");
        match status {
            500 => {
                assert!(body.contains("injected fault"), "{body}");
                injected += 1;
            }
            200 => {}
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert_eq!(injected, 5, "1in2 is exactly one per 2-hit block");
    assert_eq!(kmm_faults::fired("serve.handler.err"), 5);

    // Disarm before shutting down: the failpoint sits at route entry,
    // so an injected 500 on the shutdown request would leave the server
    // running and `join` below would never return.
    kmm_faults::disarm_all();
    http(addr, "POST", "/shutdown", "");
    server.join();
}

#[test]
fn full_queue_sheds_with_429_and_retry_after() {
    // One worker (thread 0 accepts), queue capacity threads*4 = 8, and
    // every handled request stalls 300 ms at the slow failpoint — so a
    // burst of 30 concurrent requests must overflow the queue and the
    // overflow must be shed, not block the acceptor.
    let _armed = armed("serve.handler.slow=sleep300");
    let server = Server::start(
        test_index(),
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr();

    let results: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..30)
            .map(|_| {
                scope.spawn(move || {
                    let (status, head, _) = http(addr, "GET", "/healthz", "");
                    (status, head)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let shed: Vec<_> = results.iter().filter(|(s, _)| *s == 429).collect();
    let served = results.iter().filter(|(s, _)| *s == 200).count();
    assert!(
        !shed.is_empty(),
        "burst of 30 against 1 slow worker never shed; statuses: {:?}",
        results.iter().map(|(s, _)| *s).collect::<Vec<_>>()
    );
    assert!(served >= 1, "nothing was served at all");
    for (_, head) in &shed {
        assert!(
            head.contains("Retry-After:"),
            "429 without Retry-After: {head}"
        );
    }

    // Shedding is visible in metrics, and the acceptor never wedged:
    // this probe goes straight through once the burst drains.
    kmm_faults::disarm_all();
    let (status, _, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let shed_line = metrics
        .lines()
        .find(|l| l.starts_with("kmm_serve_shed_total"))
        .expect("kmm_serve_shed_total series");
    let count: u64 = shed_line
        .split_whitespace()
        .last()
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(count as usize, shed.len());

    http(addr, "POST", "/shutdown", "");
    server.join();
}

#[test]
fn shutdown_drains_queued_requests() {
    // Slow handler, several queued requests, then a shutdown: every
    // already-accepted request still gets its response (drain), and the
    // server exits afterwards.
    let _armed = armed("serve.handler.slow=sleep100");
    let server = Server::start(
        test_index(),
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr();

    let summary = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..4)
            .map(|_| scope.spawn(move || http(addr, "GET", "/healthz", "").0))
            .collect();
        // Give the burst a moment to be accepted and queued, then ask
        // for shutdown; the shutdown request itself queues behind them.
        std::thread::sleep(Duration::from_millis(50));
        let (status, _, _) = http(addr, "POST", "/shutdown", "");
        assert_eq!(status, 200);
        for c in clients {
            assert_eq!(c.join().unwrap(), 200, "queued request dropped on drain");
        }
        server.join()
    });
    assert!(summary.contains("served"), "{summary}");
}

#[test]
fn index_load_failpoint_surfaces_as_cli_error() {
    let _armed = armed("index.load.io=err");
    let err = bwt_kmismatch::cli::load_index(std::path::Path::new("/tmp/kmm-chaos-any.idx"))
        .expect_err("armed load must fail");
    assert!(
        err.to_string().contains("injected fault"),
        "unexpected error: {err}"
    );
}

#[test]
fn index_save_failpoint_leaves_no_tmp_and_keeps_the_old_index() {
    let dir = std::env::temp_dir().join("kmm-chaos-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let fa = dir.join("save.fa");
    let idx = dir.join("save.idx");
    let tmp = dir.join("save.idx.tmp");
    let _ = std::fs::remove_file(&idx);
    let _ = std::fs::remove_file(&tmp);

    bwt_kmismatch::cli::generate(
        bwt_kmismatch::dna::genome::ReferenceGenome::CMerolae,
        0.01,
        &fa,
    )
    .unwrap();

    // First save succeeds and leaves a loadable index.
    bwt_kmismatch::cli::index(&fa, &idx, 1).unwrap();
    let before = std::fs::read(&idx).unwrap();

    // Re-indexing with the save failpoint armed fails…
    {
        let _armed = armed("index.save.io=err");
        let err = bwt_kmismatch::cli::index(&fa, &idx, 1).expect_err("armed save must fail");
        assert!(err.to_string().contains("cannot save"), "{err}");
    }
    // …without leaving a temp file and without touching the old index:
    // the atomic rename never happened.
    assert!(!tmp.exists(), "failed save left {} behind", tmp.display());
    assert_eq!(
        std::fs::read(&idx).unwrap(),
        before,
        "failed re-index corrupted the existing index"
    );
    assert!(bwt_kmismatch::cli::load_index(&idx).is_ok());
}

#[test]
fn bad_failpoint_specs_are_rejected_wholesale() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    kmm_faults::disarm_all();
    // One bad spec rejects the whole batch: nothing is half-armed.
    assert!(kmm_faults::arm("a=err;b=frobnicate").is_err());
    assert!(kmm_faults::armed_sites().is_empty());
    assert!(kmm_faults::arm("=err").is_err());
    assert!(kmm_faults::arm("site=1in0.err").is_err());
}
