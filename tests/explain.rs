//! EXPLAIN determinism, end to end: the `kmm explain` CLI must print
//! byte-identical output across thread widths and SIMD kernels (its
//! verdict comes from deterministic counters, never wall-clock), arming
//! the explain recorder must not perturb search results, and the serve
//! surface (`POST /explain`, `GET /dashboard`) must work over real
//! sockets.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::Command;
use std::sync::OnceLock;
use std::time::Duration;

use bwt_kmismatch::dna::genome::{markov, MarkovConfig, ReferenceGenome};
use bwt_kmismatch::serve::{ServeConfig, Server};
use bwt_kmismatch::telemetry::events::{self, EventLog};
use bwt_kmismatch::telemetry::{ExplainRecorder, Json, LogLevel};
use bwt_kmismatch::{cli, KMismatchIndex, Method};

/// One saved CMerolae index (plus a probe pattern read from its genome),
/// shared by every CLI subprocess test in this binary.
fn cli_fixture() -> &'static (PathBuf, String) {
    static FIXTURE: OnceLock<(PathBuf, String)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("kmm-explain-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fa = dir.join("ref.fa");
        let idx = dir.join("ref.idx");
        cli::generate(ReferenceGenome::CMerolae, 0.02, &fa).unwrap();
        cli::index(&fa, &idx, 2).unwrap();
        // cli::generate writes generate_scaled(scale) verbatim, so the
        // same call reproduces the indexed text for probe extraction.
        let genome = ReferenceGenome::CMerolae.generate_scaled(0.02);
        let probe = bwt_kmismatch::dna::decode_string(&genome[200..250]);
        (idx, probe)
    })
}

/// Run the real `kmm` binary and return its stdout.
fn kmm(args: &[&str], envs: &[(&str, &str)]) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_kmm"));
    cmd.args(args).arg("--quiet");
    for (key, value) in envs {
        cmd.env(key, value);
    }
    let out = cmd.output().expect("spawn kmm");
    assert!(
        out.status.success(),
        "kmm {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn explain_json_is_byte_identical_across_threads_and_simd() {
    let (idx, probe) = cli_fixture();
    let idx = idx.to_str().unwrap();
    let base_args = [
        "explain",
        "--index",
        idx,
        "--pattern",
        probe,
        "-k",
        "2",
        "--json",
    ];
    let with = |extra: &[&str], envs: &[(&str, &str)]| {
        let mut args: Vec<&str> = base_args.to_vec();
        args.extend_from_slice(extra);
        kmm(&args, envs)
    };
    let reference = with(&["--threads", "1"], &[]);
    // The report parses and carries the explain schema.
    let doc = Json::parse(&reference).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("kmm-explain/v1")
    );
    assert!(doc.get("verdict").is_some());
    // Thread width must not move a byte: explain runs methods serially
    // and its verdict never reads a clock.
    assert_eq!(reference, with(&["--threads", "8"], &[]));
    // Neither must the occ kernel: SIMD and scalar tallies are
    // bit-identical, and nothing else in the report can see the kernel.
    assert_eq!(
        reference,
        with(&["--threads", "1"], &[("KMM_NO_SIMD", "1")])
    );
    // The human table is deterministic too.
    let table = kmm(
        &["explain", "--index", idx, "--pattern", probe, "-k", "2"],
        &[],
    );
    assert!(table.contains("EXPLAIN pattern="), "{table}");
    assert!(table.contains("verdict:"), "{table}");
    assert_eq!(
        table,
        kmm(
            &[
                "explain",
                "--index",
                idx,
                "--pattern",
                probe,
                "-k",
                "2",
                "--threads",
                "4"
            ],
            &[]
        )
    );
}

#[test]
fn arming_explain_does_not_perturb_search_results() {
    let genome = markov(6_000, &MarkovConfig::default(), 47);
    let index = KMismatchIndex::new(genome.clone());
    let pattern = genome[1_500..1_560].to_vec();
    for k in [0usize, 1, 3] {
        for method in [
            Method::Bwt { use_phi: true },
            Method::ALGORITHM_A,
            Method::Kangaroo,
        ] {
            let plain = index.search(&pattern, k, method);
            let armed = index.search_recorded(&pattern, k, method, &ExplainRecorder::new());
            assert_eq!(
                armed.occurrences,
                plain.occurrences,
                "k={k} {}: occurrence lists diverged under explain",
                method.label()
            );
            assert_eq!(
                armed.stats,
                plain.stats,
                "k={k} {}: counters diverged under explain",
                method.label()
            );
        }
    }
}

#[test]
fn explain_report_agrees_with_plain_search() {
    let genome = markov(6_000, &MarkovConfig::default(), 47);
    let index = KMismatchIndex::new(genome.clone());
    let pattern = genome[2_000..2_050].to_vec();
    let methods = [Method::Bwt { use_phi: true }, Method::ALGORITHM_A];
    let report = index.explain(&pattern, 2, &methods);
    assert_eq!(report.methods.len(), 2);
    for (cost, &method) in report.methods.iter().zip(&methods) {
        let plain = index.search(&pattern, 2, method);
        assert_eq!(cost.occurrences, plain.occurrences.len() as u64);
    }
}

/// Minimal blocking HTTP/1.1 client returning (status, headers, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let (head, payload) = response.split_once("\r\n\r\n").expect("header terminator");
    (status, head.to_string(), payload.to_string())
}

#[test]
fn serve_explain_and_dashboard_end_to_end() {
    // Keep server threads off the harness stderr.
    events::init_global(EventLog::new(LogLevel::Warn).quiet());
    let genome = markov(8_000, &MarkovConfig::default(), 31);
    let pattern = bwt_kmismatch::dna::decode_string(&genome[3_000..3_040]);
    let index = KMismatchIndex::new(genome);
    let server = Server::start(index, ServeConfig::default()).expect("server start");
    let addr = server.addr();

    // The dashboard is one self-contained HTML document.
    let (status, head, body) = http(addr, "GET", "/dashboard", "");
    assert_eq!(status, 200);
    assert!(head.contains("text/html"), "{head}");
    assert!(body.starts_with("<!DOCTYPE html>"), "not HTML: {body:.60}");
    for endpoint in ["/stats.json", "/slow.json", "/explain"] {
        assert!(body.contains(endpoint), "dashboard never uses {endpoint}");
    }

    // POST /explain with the default method set (BWT vs Algorithm A).
    let req = format!("{{\"pattern\": \"{pattern}\", \"k\": 2}}");
    let (status, _, body) = http(addr, "POST", "/explain", &req);
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("kmm-explain/v1")
    );
    let methods = doc.get("methods").and_then(Json::as_array).unwrap();
    assert_eq!(methods.len(), 2);
    for m in methods {
        assert!(m.get("work_units").and_then(Json::as_u64).unwrap() > 0);
        assert!(!m.get("depths").and_then(Json::as_array).unwrap().is_empty());
    }

    // An explicit methods list is honoured.
    let req = format!("{{\"pattern\": \"{pattern}\", \"k\": 1, \"methods\": [\"a\"]}}");
    let (status, _, body) = http(addr, "POST", "/explain", &req);
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).unwrap();
    let methods = doc.get("methods").and_then(Json::as_array).unwrap();
    assert_eq!(methods.len(), 1);
    assert_eq!(
        methods[0].get("method").and_then(Json::as_str),
        Some("A(.)")
    );

    // Bad requests are 400s with a request id, and GET is a 405.
    let (status, _, body) = http(addr, "POST", "/explain", "{\"k\": 2}");
    assert_eq!(status, 400);
    assert!(body.contains("pattern"), "{body}");
    let (status, _, body) = http(
        addr,
        "POST",
        "/explain",
        "{\"pattern\": \"ACGT\", \"methods\": []}",
    );
    assert_eq!(status, 400, "{body}");
    let (status, _, _) = http(addr, "GET", "/explain", "");
    assert_eq!(status, 405);

    // The same explain request twice is byte-identical over the wire.
    let req = format!("{{\"pattern\": \"{pattern}\", \"k\": 2}}");
    let (_, _, first) = http(addr, "POST", "/explain", &req);
    let (_, _, second) = http(addr, "POST", "/explain", &req);
    assert_eq!(first, second);

    let (status, _, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.join();
}
