//! Cross-method equivalence: every matcher in the suite must return the
//! identical occurrence list on the identical query — the suite's central
//! integration invariant, exercised over targeted regimes (repetitive,
//! periodic, biased, realistic) that stress different code paths.

use bwt_kmismatch::{KMismatchIndex, Method, Occurrence};
use rand::{Rng, SeedableRng};

const ALL_METHODS: [Method; 10] = [
    Method::Naive,
    Method::Kangaroo,
    Method::Amir,
    Method::Cole,
    Method::Bwt { use_phi: true },
    Method::Bwt { use_phi: false },
    Method::AlgorithmA { reuse: true },
    Method::AlgorithmA { reuse: false },
    Method::SeedFilter,
    Method::Bidirectional,
];

fn assert_all_agree(text: &[u8], pattern: &[u8], k: usize) -> Vec<Occurrence> {
    let index = KMismatchIndex::new(text.to_vec());
    let want = index.search(pattern, k, Method::Naive).occurrences;
    for method in ALL_METHODS {
        let got = index.search(pattern, k, method).occurrences;
        assert_eq!(
            got,
            want,
            "{} disagrees: text len {}, pattern {:?}, k {}",
            method.label(),
            text.len(),
            pattern,
            k
        );
    }
    want
}

#[test]
fn uniform_random_queries() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for _ in 0..30 {
        let n = rng.gen_range(20..400);
        let text: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
        let m = rng.gen_range(1..=n.min(25));
        let pattern: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
        let k = rng.gen_range(0..6);
        assert_all_agree(&text, &pattern, k);
    }
}

#[test]
fn periodic_targets_and_patterns() {
    // Tandem repeats are where S-tree pair sharing actually fires; make
    // sure correctness holds there.
    for (unit, copies) in [(&b"ac"[..], 80), (b"acg", 60), (b"aacgt", 40), (b"a", 150)] {
        let text = kmm_dna::encode(&unit.repeat(copies)).unwrap();
        for (pu, pc) in [(&b"ac"[..], 5), (b"acg", 4), (b"ca", 6)] {
            let pattern = kmm_dna::encode(&pu.repeat(pc)).unwrap();
            for k in 0..4 {
                assert_all_agree(&text, &pattern, k);
            }
        }
    }
}

#[test]
fn low_complexity_binary_texts() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for _ in 0..20 {
        let n = rng.gen_range(30..300);
        let text: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=2)).collect();
        let m = rng.gen_range(2..=n.min(15));
        let pattern: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=2)).collect();
        for k in 0..4 {
            assert_all_agree(&text, &pattern, k);
        }
    }
}

#[test]
fn realistic_reads_map_home() {
    let genome = kmm_dna::genome::markov(30_000, &kmm_dna::genome::MarkovConfig::default(), 11);
    let index = KMismatchIndex::new(genome.clone());
    let reads = kmm_dna::paper_reads(&genome, 15, 60, 3);
    for read in &reads {
        let k = read.edits.max(2);
        let want = index.search(&read.seq, k, Method::Naive).occurrences;
        assert!(
            want.iter().any(|o| o.position == read.origin),
            "read from {} not found",
            read.origin
        );
        for method in ALL_METHODS {
            assert_eq!(
                index.search(&read.seq, k, method).occurrences,
                want,
                "{}",
                method.label()
            );
        }
    }
}

#[test]
fn pattern_edge_sizes() {
    let text = kmm_dna::encode(b"acgtacgtacgcatgacgtacagt").unwrap();
    let index = KMismatchIndex::new(text.clone());
    // Single-symbol patterns.
    for sym in 1..=4u8 {
        for k in 0..2 {
            assert_all_agree(&text, &[sym], k);
        }
    }
    // Pattern of the full text length.
    assert_all_agree(&text, &text, 3);
    // Pattern longer than the text: all methods return nothing.
    let long = kmm_dna::encode(b"acgtacgtacgcatgacgtacagta").unwrap();
    for method in ALL_METHODS {
        assert!(index.search(&long, 5, method).occurrences.is_empty());
    }
}

#[test]
fn k_larger_than_or_equal_to_pattern() {
    let text = kmm_dna::encode(b"ttgacagtacca").unwrap();
    let pattern = kmm_dna::encode(b"gg").unwrap();
    // k = m: everything matches.
    let occ = assert_all_agree(&text, &pattern, 2);
    assert_eq!(occ.len(), text.len() - 1);
    // k > m behaves the same.
    assert_all_agree(&text, &pattern, 5);
}

#[test]
fn bidirectional_is_bit_identical_across_methods_and_thread_widths() {
    // The tentpole invariant: bidirectional scheme search returns the
    // byte-identical occurrence lists of A(.) and the S-tree at every
    // budget, and parallel batches at widths {1, 8} match the serial
    // run exactly.
    let genome = kmm_dna::genome::markov(20_000, &kmm_dna::genome::MarkovConfig::default(), 17);
    let index = KMismatchIndex::new(genome.clone());
    let reads = kmm_dna::paper_reads(&genome, 12, 30, 2);
    let patterns: Vec<Vec<u8>> = reads.into_iter().map(|r| r.seq).collect();
    for k in 0..=3usize {
        let (serial, _) = index.search_batch(
            patterns.iter().map(|p| p.as_slice()),
            k,
            Method::Bidirectional,
        );
        for (p, hits) in patterns.iter().zip(&serial) {
            assert_eq!(
                &index
                    .search(p, k, Method::AlgorithmA { reuse: true })
                    .occurrences,
                hits,
                "A(.) disagrees at k={k}"
            );
            assert_eq!(
                &index
                    .search(p, k, Method::Bwt { use_phi: true })
                    .occurrences,
                hits,
                "S-tree disagrees at k={k}"
            );
        }
        for threads in [1usize, 8] {
            let pool = kmm_par::ThreadPool::new(threads);
            let (par, _) = index.search_batch_par(&patterns, k, Method::Bidirectional, &pool);
            assert_eq!(par, serial, "threads={threads} k={k}");
        }
    }
}

#[test]
fn mismatch_counts_are_exact_hamming_distances() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let text: Vec<u8> = (0..300).map(|_| rng.gen_range(1..=4)).collect();
    let pattern: Vec<u8> = (0..12).map(|_| rng.gen_range(1..=4)).collect();
    let index = KMismatchIndex::new(text.clone());
    for method in ALL_METHODS {
        for occ in index.search(&pattern, 4, method).occurrences {
            let window = &text[occ.position..occ.position + pattern.len()];
            assert_eq!(
                occ.mismatches,
                kmm_dna::hamming(window, &pattern),
                "{} at {}",
                method.label(),
                occ.position
            );
        }
    }
}
