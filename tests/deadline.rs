//! Deadline semantics end to end: a generous budget reproduces the
//! no-deadline results bit for bit, a zero budget truncates immediately
//! for every method, and a ~1 ms budget stops an adversarial k=8 query
//! on repetitive text quickly instead of running to exhaustion.

use std::time::{Duration, Instant};

use bwt_kmismatch::core::{CancelToken, Outcome};
use bwt_kmismatch::dna::genome::{markov, MarkovConfig};
use bwt_kmismatch::{KMismatchIndex, Method};

const METHODS: [Method; 7] = [
    Method::ALGORITHM_A,
    Method::Bwt { use_phi: true },
    Method::Naive,
    Method::Kangaroo,
    Method::Amir,
    Method::Cole,
    Method::SeedFilter,
];

fn plain_index() -> KMismatchIndex {
    KMismatchIndex::new(markov(12_000, &MarkovConfig::default(), 11))
}

/// Low-entropy text: long A-runs with sparse substitutions, the worst
/// case for mismatch-tolerant search (every window is a near-match).
fn repetitive_index() -> KMismatchIndex {
    // Base codes are 1..=4 (0 is the sentinel).
    let mut text = vec![1u8; 60_000];
    for i in (0..text.len()).step_by(151) {
        text[i] = 2 + ((i / 151) % 3) as u8;
    }
    KMismatchIndex::new(text)
}

#[test]
fn generous_deadline_is_bit_identical_to_no_deadline() {
    let idx = plain_index();
    let pattern = idx.text()[700..760].to_vec();
    for method in METHODS {
        let plain = idx.search(&pattern, 3, method);
        let token = CancelToken::with_deadline(Duration::from_secs(600));
        match idx.search_with_deadline(&pattern, 3, method, &token) {
            Outcome::Complete(got) => {
                assert_eq!(
                    got.occurrences,
                    plain.occurrences,
                    "{} diverged under a generous deadline",
                    method.label()
                );
                assert_eq!(got.stats.timeouts, 0);
            }
            Outcome::Truncated(_) => {
                panic!("{} truncated under a 600 s budget", method.label())
            }
        }
    }
}

#[test]
fn zero_budget_truncates_every_method() {
    let idx = plain_index();
    let pattern = idx.text()[700..760].to_vec();
    for method in METHODS {
        let token = CancelToken::with_deadline(Duration::ZERO);
        let outcome = idx.search_with_deadline(&pattern, 3, method, &token);
        assert!(
            outcome.is_truncated(),
            "{} ignored an already-expired deadline",
            method.label()
        );
        assert_eq!(outcome.value().stats.timeouts, 1, "{}", method.label());
    }
}

#[test]
fn cancelled_token_truncates_without_a_deadline() {
    let idx = plain_index();
    let pattern = idx.text()[700..760].to_vec();
    let token = CancelToken::new();
    token.cancel();
    let outcome = idx.search_with_deadline(&pattern, 3, Method::ALGORITHM_A, &token);
    assert!(outcome.is_truncated());
}

#[test]
fn adversarial_query_stops_quickly_under_tiny_budget() {
    let idx = repetitive_index();
    // Repetitive pattern + k=8 on low-entropy text: the search space is
    // enormous (nearly every alignment is within 8 mismatches).
    let pattern = idx.text()[1000..1064].to_vec();
    let k = 8;

    let token = CancelToken::with_deadline(Duration::from_millis(1));
    let start = Instant::now();
    let outcome = idx.search_with_deadline(&pattern, k, Method::ALGORITHM_A, &token);
    let elapsed = start.elapsed();
    assert!(
        outcome.is_truncated(),
        "a 1 ms budget should not complete this query"
    );
    // The cooperative poll interval bounds overshoot; allow a wide
    // margin for loaded CI machines.
    assert!(
        elapsed < Duration::from_millis(500),
        "took {elapsed:?} to notice a 1 ms deadline"
    );
    // Partial results are real, verified matches — spot-check a few.
    let result = outcome.into_inner();
    assert_eq!(result.stats.timeouts, 1);
    for occ in result.occurrences.iter().take(16) {
        let window = &idx.text()[occ.position..occ.position + pattern.len()];
        let mismatches = window.iter().zip(&pattern).filter(|(a, b)| a != b).count();
        assert_eq!(mismatches, occ.mismatches, "bogus partial match");
        assert!(mismatches <= k);
    }
}

#[test]
fn batch_deadline_is_per_query_and_flags_each_outcome() {
    let idx = repetitive_index();
    let easy = idx.text()[2_000..2_064].to_vec();
    let patterns = vec![easy.clone(), easy];
    // A generous per-query budget completes both queries with results
    // identical to the no-deadline batch.
    let (outcomes, stats) = idx.search_batch_with_deadline(
        patterns.iter().map(Vec::as_slice),
        1,
        Method::ALGORITHM_A,
        Duration::from_secs(600),
    );
    assert_eq!(outcomes.len(), 2);
    assert_eq!(stats.timeouts, 0);
    let plain = idx.search(&patterns[0], 1, Method::ALGORITHM_A);
    for outcome in outcomes {
        match outcome {
            Outcome::Complete(occs) => assert_eq!(occs, plain.occurrences),
            Outcome::Truncated(_) => panic!("generous batch budget truncated"),
        }
    }

    // A zero budget truncates every query and counts each timeout.
    let (outcomes, stats) = idx.search_batch_with_deadline(
        patterns.iter().map(Vec::as_slice),
        8,
        Method::ALGORITHM_A,
        Duration::ZERO,
    );
    assert!(outcomes.iter().all(Outcome::is_truncated));
    assert_eq!(stats.timeouts, 2);
}

#[test]
fn mapper_deadline_flags_truncated_reads() {
    use bwt_kmismatch::core::{MapperConfig, ReadMapper};
    let idx = plain_index();
    let mapper = ReadMapper::new(
        &idx,
        MapperConfig {
            k: 2,
            both_strands: true,
            method: Method::ALGORITHM_A,
        },
    );
    let read = idx.text()[300..400].to_vec();

    let generous = CancelToken::with_deadline(Duration::from_secs(600));
    let complete = mapper.map_with_deadline(&read, &generous);
    assert!(!complete.is_truncated());
    assert_eq!(
        complete.value().all,
        mapper.map(&read).all,
        "generous mapper deadline changed the alignments"
    );

    let expired = CancelToken::with_deadline(Duration::ZERO);
    assert!(mapper.map_with_deadline(&read, &expired).is_truncated());
}
