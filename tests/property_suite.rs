//! Workspace-level property tests: the global invariants that tie the
//! crates together, driven by proptest over generated workloads.

use bwt_kmismatch::{KMismatchIndex, Method};
use proptest::prelude::*;

fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(1u8..=4, 1..max)
}

/// A text made of a repeated unit with scattered corruption — the regime
/// where index structures are most easily broken (heavy interval sharing,
/// long BWT runs, deep LCP intervals).
fn corrupted_periodic() -> impl Strategy<Value = Vec<u8>> {
    (
        dna(6),
        10usize..60,
        proptest::collection::vec((any::<prop::sample::Index>(), 1u8..=4), 0..8),
    )
        .prop_map(|(unit, copies, edits)| {
            let mut text: Vec<u8> = unit
                .iter()
                .copied()
                .cycle()
                .take(unit.len() * copies)
                .collect();
            for (idx, sym) in edits {
                let p = idx.index(text.len());
                text[p] = sym;
            }
            text
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_index_methods_equal_naive(
        text in dna(250),
        pattern in dna(20),
        k in 0usize..5,
    ) {
        let index = KMismatchIndex::new(text);
        let want = index.search(&pattern, k, Method::Naive).occurrences;
        for method in [
            Method::ALGORITHM_A,
            Method::Bwt { use_phi: true },
            Method::Cole,
            Method::SeedFilter,
            Method::Amir,
        ] {
            prop_assert_eq!(
                index.search(&pattern, k, method).occurrences.clone(),
                want.clone(),
                "{}", method.label()
            );
        }
    }

    #[test]
    fn periodic_texts_hold_all_invariants(
        text in corrupted_periodic(),
        pattern in dna(12),
        k in 0usize..4,
    ) {
        let index = KMismatchIndex::new(text.clone());
        let want = index.search(&pattern, k, Method::Naive).occurrences;
        let got = index.search(&pattern, k, Method::ALGORITHM_A).occurrences;
        prop_assert_eq!(&got, &want);
        // Occurrence annotations are true Hamming distances.
        for o in &got {
            let w = &text[o.position..o.position + pattern.len()];
            prop_assert_eq!(o.mismatches, kmm_dna::hamming(w, &pattern));
        }
    }

    #[test]
    fn monotonicity_in_k(text in dna(200), pattern in dna(15)) {
        // Raising k can only add occurrences, and every k-level hit set is
        // a prefix-filtered superset of the previous.
        let index = KMismatchIndex::new(text);
        let mut prev: Vec<usize> = Vec::new();
        for k in 0..5 {
            let cur: Vec<usize> = index
                .search(&pattern, k, Method::ALGORITHM_A)
                .occurrences
                .iter()
                .map(|o| o.position)
                .collect();
            for p in &prev {
                prop_assert!(cur.contains(p), "k={k} lost position {p}");
            }
            prev = cur;
        }
    }

    #[test]
    fn index_survives_serialization(text in dna(300), pattern in dna(10)) {
        let index = KMismatchIndex::new(text);
        let mut bytes = Vec::new();
        index.fm().save(&mut bytes).unwrap();
        let fm = bwt_kmismatch::bwt::FmIndex::load(&bytes[..]).unwrap();
        let mut rev = fm.reconstruct_text();
        rev.pop();
        rev.reverse();
        let loaded = KMismatchIndex::from_parts(rev, fm);
        for k in 0..3 {
            prop_assert_eq!(
                loaded.search(&pattern, k, Method::ALGORITHM_A).occurrences,
                index.search(&pattern, k, Method::ALGORITHM_A).occurrences
            );
        }
    }

    #[test]
    fn k_errors_contains_k_mismatches(
        text in dna(120),
        pattern in dna(8),
        k in 0usize..3,
    ) {
        let index = KMismatchIndex::new(text);
        let hamming = index.search(&pattern, k, Method::ALGORITHM_A).occurrences;
        let (edits, _) = index.search_k_errors(&pattern, k);
        for h in hamming {
            prop_assert!(
                edits.iter().any(|e| e.position == h.position
                    && e.length == pattern.len()
                    && e.distance <= h.mismatches),
                "hamming hit at {} not covered", h.position
            );
        }
    }
}
