//! Corruption-matrix tests for the saved index format: flip one byte in
//! each region of a real serialized index (magic, version, C array,
//! payload, length prefixes, checksum) and assert the load fails with
//! the matching [`SerializeError`] variant — never a panic, and never a
//! runaway allocation from a corrupt length prefix.

use bwt_kmismatch::bwt::{FmIndex, SerializeError};
use bwt_kmismatch::dna::genome::{markov, MarkovConfig};

/// A real serialized index, as `kmm index` would write it.
fn saved_index() -> Vec<u8> {
    let text = markov(4_000, &MarkovConfig::default(), 7);
    let idx = bwt_kmismatch::KMismatchIndex::new(text);
    let mut buf = Vec::new();
    idx.fm().save(&mut buf).expect("save to memory");
    buf
}

fn load(bytes: &[u8]) -> Result<FmIndex, SerializeError> {
    FmIndex::load(bytes)
}

#[test]
fn clean_bytes_load() {
    let buf = saved_index();
    assert!(load(&buf).is_ok());
}

#[test]
fn flipped_magic_is_bad_magic() {
    let buf = saved_index();
    // Every byte of the 8-byte magic tag is load-bearing.
    for off in 0..8 {
        let mut bad = buf.clone();
        bad[off] ^= 0x01;
        assert!(
            matches!(load(&bad), Err(SerializeError::BadMagic)),
            "offset {off} should trip the magic check"
        );
    }
}

#[test]
fn flipped_version_is_bad_version() {
    let buf = saved_index();
    // Bytes 8..12 hold the little-endian format version.
    for off in 8..12 {
        let mut bad = buf.clone();
        bad[off] ^= 0x10;
        match load(&bad) {
            Err(SerializeError::BadVersion { found, expected }) => {
                assert_ne!(found, expected, "offset {off}");
            }
            other => panic!(
                "offset {off}: expected BadVersion, got {other:?}",
                other = other.err()
            ),
        }
    }
}

#[test]
fn flipped_checksum_is_corrupt() {
    let buf = saved_index();
    // The trailing 8 bytes are the FNV checksum of everything before.
    for off in buf.len() - 8..buf.len() {
        let mut bad = buf.clone();
        bad[off] ^= 0x01;
        assert!(
            matches!(load(&bad), Err(SerializeError::Corrupt)),
            "offset {off} should trip the checksum"
        );
    }
}

#[test]
fn flipped_payload_never_loads_cleanly() {
    let buf = saved_index();
    // A single flipped bit anywhere in the payload (between the header
    // and the checksum) must surface as *some* error: usually Corrupt
    // (checksum catches it), sometimes Io/Malformed when the flip lands
    // in a length prefix and the stream runs dry first. Never Ok, never
    // a panic.
    let mut checked = 0usize;
    for off in (12..buf.len() - 8).step_by(97) {
        let mut bad = buf.clone();
        bad[off] ^= 0x01;
        match load(&bad) {
            Err(SerializeError::Corrupt | SerializeError::Io(_) | SerializeError::Malformed(_)) => {
            }
            Err(other) => panic!("offset {off}: unexpected variant {other}"),
            Ok(_) => panic!("offset {off}: corrupt index loaded cleanly"),
        }
        checked += 1;
    }
    assert!(checked > 20, "sweep covered only {checked} offsets");
}

#[test]
fn corrupt_length_prefix_fails_without_huge_allocation() {
    let buf = saved_index();
    // The first vector length prefix sits right after the 36-byte header
    // (magic 8 + version 4 + C array 24). Setting its high bytes claims
    // a multi-billion-element vector; the loader must fail when the
    // stream runs dry (or via the sanity cap) without committing the
    // claimed capacity up front.
    for high_byte in [39usize, 40, 41, 42] {
        let mut bad = buf.clone();
        bad[high_byte] = 0xff;
        match load(&bad) {
            Err(SerializeError::Io(_) | SerializeError::Malformed(_) | SerializeError::Corrupt) => {
            }
            Err(other) => panic!("byte {high_byte}: unexpected variant {other}"),
            Ok(_) => panic!("byte {high_byte}: absurd length accepted"),
        }
    }
}

#[test]
fn truncated_file_is_an_error_everywhere() {
    let buf = saved_index();
    // Cut the file at a spread of points, including mid-header.
    for cut in [0usize, 5, 11, 20, 36, buf.len() / 2, buf.len() - 1] {
        let bad = &buf[..cut];
        assert!(load(bad).is_err(), "truncation at {cut} loaded cleanly");
    }
}
