//! Corruption-matrix tests for the v3 container format: flip one byte
//! in each region of a real serialized index (magic, version, section
//! table, section payloads, padding) and assert the load fails with the
//! matching [`SerializeError`] variant — never a panic, and never a
//! runaway allocation from a corrupt table entry. The same matrix runs
//! against the zero-copy `open_path` so the borrowed path is typed-safe
//! too.

use bwt_kmismatch::bwt::serialize::TABLE_ENTRY_BYTES;
use bwt_kmismatch::bwt::{FmIndex, SectionTable, SerializeError};
use bwt_kmismatch::dna::genome::{markov, MarkovConfig};

/// A real serialized index, as `kmm index` would write it.
fn saved_index() -> Vec<u8> {
    let text = markov(4_000, &MarkovConfig::default(), 7);
    let idx = bwt_kmismatch::KMismatchIndex::new(text);
    let mut buf = Vec::new();
    idx.fm().save(&mut buf).expect("save to memory");
    buf
}

fn load(bytes: &[u8]) -> Result<FmIndex, SerializeError> {
    FmIndex::load(bytes)
}

/// Byte ranges of the image that are covered by a checksum: the header
/// plus table (its own FNV) and each section payload (per-entry FNV).
/// Alignment padding between them is deliberately uncovered.
fn covered_ranges(buf: &[u8]) -> Vec<(usize, usize)> {
    let table = SectionTable::parse(buf, FmIndex::MAGIC).expect("clean image parses");
    let table_end = 16 + table.entries.len() * TABLE_ENTRY_BYTES;
    let mut ranges = vec![(0usize, table_end + 8)];
    for e in &table.entries {
        ranges.push((e.offset, e.offset + e.len));
    }
    ranges
}

#[test]
fn clean_bytes_load() {
    let buf = saved_index();
    assert!(load(&buf).is_ok());
}

#[test]
fn flipped_magic_is_bad_magic() {
    let buf = saved_index();
    // Every byte of the 8-byte magic tag is load-bearing.
    for off in 0..8 {
        let mut bad = buf.clone();
        bad[off] ^= 0x01;
        assert!(
            matches!(load(&bad), Err(SerializeError::BadMagic)),
            "offset {off} should trip the magic check"
        );
    }
}

#[test]
fn flipped_version_is_bad_version() {
    let buf = saved_index();
    // Bytes 8..12 hold the little-endian format version; the version
    // gate fires before the header checksum so old files get the
    // migration hint, not a corruption report.
    for off in 8..12 {
        let mut bad = buf.clone();
        bad[off] ^= 0x10;
        match load(&bad) {
            Err(SerializeError::BadVersion { found, supported }) => {
                assert_ne!(found, FmIndex::FORMAT_VERSION, "offset {off}");
                assert_eq!(supported, FmIndex::SUPPORTED_VERSIONS);
            }
            other => panic!(
                "offset {off}: expected BadVersion, got {other:?}",
                other = other.err()
            ),
        }
    }
}

#[test]
fn flipped_table_bytes_are_typed_errors() {
    let buf = saved_index();
    let table_end = {
        let table = SectionTable::parse(&buf, FmIndex::MAGIC).unwrap();
        16 + table.entries.len() * TABLE_ENTRY_BYTES
    };
    // Section count, every table entry field, and the header checksum
    // itself: a flip anywhere in [12, table_end + 8) must be caught by
    // the header FNV or by structural validation — as a typed error in
    // both the read path and the zero-copy (no payload checksum) path.
    for off in 12..table_end + 8 {
        let mut bad = buf.clone();
        bad[off] ^= 0x01;
        match load(&bad) {
            Err(SerializeError::Corrupt | SerializeError::Malformed(_)) => {}
            Err(other) => panic!("offset {off}: unexpected variant {other}"),
            Ok(_) => panic!("offset {off}: corrupt table loaded cleanly"),
        }
    }
}

#[test]
fn flipped_payload_never_loads_cleanly() {
    let buf = saved_index();
    // A single flipped bit anywhere inside a checksummed section must
    // surface as Corrupt (the per-section FNV) or Malformed (when the
    // flip lands in metadata that fails a structural check first).
    // Never Ok, never a panic.
    let ranges = covered_ranges(&buf);
    let mut checked = 0usize;
    for off in (12..buf.len()).step_by(97) {
        if !ranges.iter().any(|&(a, b)| off >= a && off < b) {
            continue; // padding: exercised separately below
        }
        let mut bad = buf.clone();
        bad[off] ^= 0x01;
        match load(&bad) {
            Err(SerializeError::Corrupt | SerializeError::Malformed(_)) => {}
            Err(other) => panic!("offset {off}: unexpected variant {other}"),
            Ok(_) => panic!("offset {off}: corrupt index loaded cleanly"),
        }
        checked += 1;
    }
    assert!(checked > 20, "sweep covered only {checked} offsets");
}

#[test]
fn padding_bytes_are_not_load_bearing() {
    let buf = saved_index();
    // Alignment padding sits outside every checksum on purpose (it
    // carries no data). Flipping it must not change any answer.
    let ranges = covered_ranges(&buf);
    let clean = load(&buf).unwrap();
    let mut padded = buf.clone();
    let mut flipped = 0usize;
    for off in 12..padded.len() {
        if !ranges.iter().any(|&(a, b)| off >= a && off < b) {
            padded[off] ^= 0xff;
            flipped += 1;
        }
    }
    assert!(flipped > 0, "v3 images always contain alignment padding");
    let loaded = load(&padded).expect("padding flips must not fail the load");
    assert_eq!(loaded.reconstruct_text(), clean.reconstruct_text());
}

#[test]
fn hostile_table_entries_fail_without_huge_allocation() {
    let buf = saved_index();
    // The first table entry starts at byte 16 (id, reserved, offset,
    // len, checksum). Blowing up its length field claims a section of
    // billions of bytes; the loader must fail on the header checksum or
    // the bounds check without committing the claimed capacity.
    for high_byte in [36usize, 37, 38, 39] {
        let mut bad = buf.clone();
        bad[high_byte] = 0xff;
        match load(&bad) {
            Err(SerializeError::Malformed(_) | SerializeError::Corrupt) => {}
            Err(other) => panic!("byte {high_byte}: unexpected variant {other}"),
            Ok(_) => panic!("byte {high_byte}: absurd length accepted"),
        }
    }
}

#[test]
fn truncated_file_is_an_error_everywhere() {
    let buf = saved_index();
    // Cut the file at a spread of points, including mid-header,
    // mid-table, and mid-section.
    for cut in [0usize, 5, 11, 20, 36, 100, buf.len() / 2, buf.len() - 1] {
        let bad = &buf[..cut];
        assert!(load(bad).is_err(), "truncation at {cut} loaded cleanly");
    }
}

#[test]
fn borrowed_open_rejects_table_corruption() {
    // The mmap path skips payload checksums, but the section table is
    // still fully validated: magic, version, header FNV, alignment and
    // bounds. Flips across the whole header region must fail typed when
    // opened zero-copy from a real file.
    let buf = saved_index();
    let dir = std::env::temp_dir().join(format!("kmm-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.v3");
    let table_end = {
        let table = SectionTable::parse(&buf, FmIndex::MAGIC).unwrap();
        16 + table.entries.len() * TABLE_ENTRY_BYTES
    };
    for off in (0..table_end + 8).step_by(7) {
        let mut bad = buf.clone();
        bad[off] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        match FmIndex::open_path(&path, true) {
            Err(
                SerializeError::BadMagic
                | SerializeError::BadVersion { .. }
                | SerializeError::Corrupt
                | SerializeError::Malformed(_),
            ) => {}
            Err(other) => panic!("offset {off}: unexpected variant {other}"),
            Ok(_) => panic!("offset {off}: corrupt header mapped cleanly"),
        }
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();
}
