//! Read mapping: the paper's motivating application (Section I).
//!
//! Simulates a genome and a batch of error-bearing sequencing reads with
//! the wgsim-style simulator, maps every read back with Algorithm A, and
//! reports mapping accuracy and throughput — the workflow a DNA database
//! would run for "locating all the appearances of a read in a genome".
//!
//! ```sh
//! cargo run --release --example read_mapping
//! ```

use std::time::Instant;

use bwt_kmismatch::{KMismatchIndex, Method};
use kmm_dna::genome::{markov, MarkovConfig};
use kmm_dna::reads::{ReadSimConfig, ReadSimulator};

fn main() {
    let genome_len = 2_000_000;
    let read_len = 100;
    let read_count = 200;
    let k = 5;

    println!("simulating a {genome_len} bp genome ...");
    let genome = markov(genome_len, &MarkovConfig::default(), 7);

    println!("indexing (BWT of the reversed genome) ...");
    let t0 = Instant::now();
    let index = KMismatchIndex::new(genome.clone());
    println!("  built in {:?}", t0.elapsed());

    println!("simulating {read_count} reads x {read_len} bp (wgsim default error model) ...");
    let mut sim = ReadSimulator::new(&genome, ReadSimConfig::paper(read_len), 1234);
    let reads = sim.reads(read_count);

    let t0 = Instant::now();
    let mut mapped = 0usize;
    let mut correct = 0usize;
    let mut multi = 0usize;
    for read in &reads {
        let result = index.search(&read.seq, k, Method::ALGORITHM_A);
        if result.occurrences.is_empty() {
            continue;
        }
        mapped += 1;
        if result.occurrences.len() > 1 {
            multi += 1;
        }
        if result.occurrences.iter().any(|o| o.position == read.origin) {
            correct += 1;
        }
    }
    let elapsed = t0.elapsed();

    println!("\nmapping results (k = {k}):");
    println!("  reads mapped     : {mapped}/{read_count}");
    println!("  origin recovered : {correct}/{read_count}");
    println!("  multi-mapping    : {multi}");
    println!(
        "  throughput       : {:.0} reads/s ({:?} total)",
        read_count as f64 / elapsed.as_secs_f64(),
        elapsed
    );

    // With a 2 % error rate, a 100 bp read carries > 5 errors with
    // probability ~5 %, so the vast majority must map back to its origin.
    assert!(correct * 10 >= read_count * 8, "unexpectedly low accuracy");
}
