//! Edit-distance scanning: find a probe despite insertions and deletions.
//!
//! The paper's Section II separates *k mismatches* (Hamming) from
//! *k errors* (Levenshtein). This example exercises the suite's k-errors
//! extension: a probe with a deleted base still finds its locus, which
//! pure k-mismatch search cannot do.
//!
//! ```sh
//! cargo run --release --example edit_distance_scan
//! ```

use bwt_kmismatch::{KMismatchIndex, Method};
use kmm_dna::genome::{markov, MarkovConfig};

fn main() {
    let genome = markov(300_000, &MarkovConfig::default(), 321);
    let index = KMismatchIndex::new(genome.clone());

    // A 40 bp probe from a known locus, with one base deleted (a common
    // sequencing artefact in homopolymer runs).
    let locus = 123_000;
    let mut probe = genome[locus..locus + 40].to_vec();
    probe.remove(17);
    println!("probe: 40 bp from position {locus}, with base 17 deleted");

    // Hamming search cannot bridge an indel: the deletion shifts every
    // downstream base, so even k = 8 usually finds nothing at the locus.
    let hamming = index.search(&probe, 8, Method::ALGORITHM_A);
    println!(
        "k-mismatch search (k = 8): {} hits at the locus",
        hamming
            .occurrences
            .iter()
            .filter(|o| o.position == locus)
            .count()
    );

    // k-errors search recovers it with a single edit.
    let (edits, stats) = index.search_k_errors(&probe, 1);
    println!("k-errors search  (k = 1): {} hit(s) total", edits.len());
    for h in &edits {
        println!(
            "  position {:>6}, matched {} bp, edit distance {}",
            h.position, h.length, h.distance
        );
    }
    println!(
        "  ({} trie nodes visited, {} backward extensions)",
        stats.nodes_visited, stats.rank_extensions
    );
    assert!(
        edits.iter().any(|h| h.position == locus && h.distance == 1),
        "locus must be recovered via one deletion"
    );
}
