//! Index explorer: walk through the paper's Section III example by hand.
//!
//! Prints the Burrows–Wheeler matrix of `s = acagaca$` (paper Fig. 1), the
//! F/L columns with rankall values (Fig. 2), and then replays the backward
//! search of `r = aca` as the sequence of `<x, [α, β]>` pairs from
//! Section III-A.
//!
//! ```sh
//! cargo run --example index_explorer
//! ```

use bwt_kmismatch::bwt::{bwt, FmBuildConfig, FmIndex, Interval};

fn main() {
    let s = b"acagaca";
    let text = kmm_dna::encode_text(s).expect("valid DNA");

    // --- Fig. 1: the sorted rotation matrix --------------------------------
    println!("BWM({}$):", String::from_utf8_lossy(s));
    let mut rotations: Vec<Vec<u8>> = (0..text.len())
        .map(|i| {
            let mut row = text[i..].to_vec();
            row.extend_from_slice(&text[..i]);
            row
        })
        .collect();
    rotations.sort();
    for row in &rotations {
        println!("  {}", kmm_dna::decode_string(row));
    }

    // --- Fig. 2: F and L columns ------------------------------------------
    let l = bwt(&text, kmm_dna::SIGMA);
    let mut f = text.clone();
    f.sort_unstable();
    println!("\n  i  F  L");
    for i in 0..text.len() {
        println!(
            "  {}  {}  {}",
            i,
            kmm_dna::decode_base(f[i]) as char,
            kmm_dna::decode_base(l[i]) as char
        );
    }
    println!("\nBWT(s) = {}", kmm_dna::decode_string(&l));

    // --- Section III-A: the search of r = aca ------------------------------
    // The k-mismatch index searches r against BWT(s̄); to mirror the paper's
    // exact-search walkthrough we search r̄ = aca against BWT(s) instead.
    let fm = FmIndex::new(&text, FmBuildConfig::paper());
    let r = kmm_dna::encode(b"aca").expect("valid DNA");
    println!("\nbackward search of r = aca (consumed right to left):");
    let mut iv = fm.whole();
    for (step, &sym) in r.iter().rev().enumerate() {
        iv = fm.extend_backward(iv, sym);
        println!(
            "  step {}: consume '{}' -> rows {} = pair {}",
            step + 1,
            kmm_dna::decode_base(sym) as char,
            iv,
            fm.pair(sym, iv)
        );
    }
    let positions = fm.locate(iv);
    println!("  occurrences of aca in acagaca at positions {positions:?}");
    assert_eq!(positions, vec![0, 4]);
    assert_eq!(iv, Interval::new(2, 4));
}
