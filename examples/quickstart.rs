//! Quickstart: index a target string and find all occurrences of a pattern
//! with up to k mismatches.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bwt_kmismatch::{KMismatchIndex, Method};

fn main() {
    // The running example of the paper (Sections III-IV): target
    // s = acagaca, pattern r = tcaca, k = 2.
    let index = KMismatchIndex::from_ascii(b"acagaca").expect("valid DNA");
    let pattern = kmm_dna::encode(b"tcaca").expect("valid DNA");

    let result = index.search(&pattern, 2, Method::ALGORITHM_A);
    println!("pattern tcaca in acagaca with k = 2:");
    for occ in &result.occurrences {
        let window = &index.text()[occ.position..occ.position + pattern.len()];
        println!(
            "  position {:>2}: {} ({} mismatches)",
            occ.position,
            kmm_dna::decode_string(window),
            occ.mismatches
        );
    }

    // A bigger, synthetic target: find a probe in a 100 kbp genome.
    let genome = kmm_dna::genome::markov(100_000, &kmm_dna::genome::MarkovConfig::default(), 42);
    let index = KMismatchIndex::new(genome.clone());
    // Take a 60 bp probe from the genome and corrupt three bases.
    let mut probe = genome[5_000..5_060].to_vec();
    for (i, sym) in [(7usize, 1u8), (23, 2), (51, 4)] {
        probe[i] = if probe[i] == sym { sym % 4 + 1 } else { sym };
    }

    println!("\n60 bp probe with 3 planted errors, k = 3:");
    let result = index.search(&probe, 3, Method::ALGORITHM_A);
    for occ in &result.occurrences {
        println!(
            "  found at {} with {} mismatches",
            occ.position, occ.mismatches
        );
    }
    println!(
        "  search stats: {} tree leaves, {} backward extensions",
        result.stats.leaves, result.stats.rank_extensions
    );

    // Every method agrees — swap in any of the paper's baselines.
    for method in [Method::Bwt { use_phi: true }, Method::Amir, Method::Cole] {
        let alt = index.search(&probe, 3, method);
        assert_eq!(alt.occurrences, result.occurrences);
        println!(
            "  {} agrees ({} occurrences)",
            method.label(),
            alt.occurrences.len()
        );
    }
}
