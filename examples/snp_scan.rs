//! SNP scanning: locate a conserved marker across diverged individuals.
//!
//! The paper's introduction motivates k-mismatch search with polymorphisms
//! between individuals: the same locus differs at isolated positions. This
//! example builds a reference genome plus several "individual" genomes
//! carrying SNPs, then uses the index to find a reference marker in every
//! individual and report the mismatching (SNP) positions.
//!
//! ```sh
//! cargo run --release --example snp_scan
//! ```

use bwt_kmismatch::{KMismatchIndex, Method};
use kmm_dna::genome::{markov, MarkovConfig};
use rand::{Rng, SeedableRng};

fn main() {
    let reference = markov(500_000, &MarkovConfig::default(), 99);
    // A 80 bp marker from a known locus of the reference.
    let locus = 123_456;
    let marker = reference[locus..locus + 80].to_vec();

    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    for individual in 0..4 {
        // Each individual = reference + ~0.3 % SNPs.
        let genome: Vec<u8> = reference
            .iter()
            .map(|&b| {
                if rng.gen_bool(0.003) {
                    let mut nb = rng.gen_range(1..=4u8);
                    while nb == b {
                        nb = rng.gen_range(1..=4);
                    }
                    nb
                } else {
                    b
                }
            })
            .collect();

        let index = KMismatchIndex::new(genome.clone());
        let hits = index.search(&marker, 4, Method::ALGORITHM_A);
        println!("individual {individual}:");
        for occ in &hits.occurrences {
            let window = &genome[occ.position..occ.position + marker.len()];
            let snps = kmm_dna::mismatch_positions(window, &marker, 8);
            println!(
                "  marker at {} with {} SNP(s) at offsets {:?}",
                occ.position, occ.mismatches, snps
            );
            // Cross-check each reported SNP.
            for &p in &snps {
                assert_ne!(window[p], marker[p]);
            }
        }
        assert!(
            hits.occurrences.iter().any(|o| o.position == locus),
            "marker lost in individual {individual}"
        );
    }
    println!("\nmarker recovered in every individual.");
}
