//! Chromosome-aware scanning: search a probe across a multi-record
//! reference without phantom cross-boundary matches.
//!
//! ```sh
//! cargo run --release --example chromosome_scan
//! ```

use bwt_kmismatch::core::{Method, MultiIndex};
use kmm_dna::genome::{markov, MarkovConfig};

fn main() {
    // A reference of four synthetic chromosomes.
    let mut records: Vec<(String, Vec<u8>)> = (0..4)
        .map(|i| {
            (
                format!("chr{}", i + 1),
                markov(150_000, &MarkovConfig::default(), 2_000 + i),
            )
        })
        .collect();

    // Plant the same 50 bp marker in chr2 and (with one SNP) in chr4.
    let marker = records[0].1[40_000..40_050].to_vec();
    let m = marker.len();
    records[1].1[90_000..90_000 + m].copy_from_slice(&marker);
    let mut variant = marker.clone();
    variant[25] = variant[25] % 4 + 1;
    records[3].1[12_345..12_345 + m].copy_from_slice(&variant);

    println!("indexing 4 chromosomes ({} bp total) ...", 4 * 150_000);
    let index = MultiIndex::new(records);

    let (hits, stats) = index.search(&marker, 2, Method::ALGORITHM_A);
    println!("marker hits with k = 2:");
    for h in &hits {
        println!(
            "  {}:{:>7}  ({} mismatches)",
            index.names()[h.record],
            h.offset,
            h.mismatches
        );
    }
    println!(
        "  ({} tree leaves, {} backward extensions)",
        stats.leaves, stats.rank_extensions
    );

    // The three planted sites must all be found, in per-chromosome
    // coordinates.
    assert!(hits
        .iter()
        .any(|h| h.record == 0 && h.offset == 40_000 && h.mismatches == 0));
    assert!(hits
        .iter()
        .any(|h| h.record == 1 && h.offset == 90_000 && h.mismatches == 0));
    assert!(hits
        .iter()
        .any(|h| h.record == 3 && h.offset == 12_345 && h.mismatches == 1));
    println!("all planted sites recovered.");
}
