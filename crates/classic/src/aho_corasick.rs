//! Aho–Corasick multi-pattern exact matching.
//!
//! Cited in the paper's related work (\[1\]) and used here as the marking
//! engine of the Amir baseline: all pattern blocks are located in a single
//! `O(Σ|r_i| + n + z)` pass over the target.

use kmm_dna::SIGMA;

/// One reported match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AcMatch {
    /// 0-based start position in the text.
    pub start: usize,
    /// Index of the matched pattern in the constructor slice.
    pub pattern: usize,
}

#[derive(Debug, Clone)]
struct AcNode {
    children: [u32; SIGMA],
    fail: u32,
    /// Patterns ending at this node.
    output: Vec<u32>,
}

impl AcNode {
    fn new() -> Self {
        AcNode {
            children: [u32::MAX; SIGMA],
            fail: 0,
            output: Vec::new(),
        }
    }
}

/// The automaton. Patterns may repeat and may be prefixes of one another.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<AcNode>,
    pattern_lens: Vec<usize>,
}

impl AhoCorasick {
    /// Build the automaton over the given patterns (empty patterns are
    /// rejected).
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        let mut nodes = vec![AcNode::new()];
        let mut pattern_lens = Vec::with_capacity(patterns.len());
        for (idx, p) in patterns.iter().enumerate() {
            let p = p.as_ref();
            assert!(!p.is_empty(), "pattern {idx} is empty");
            pattern_lens.push(p.len());
            let mut v = 0usize;
            for &c in p {
                let c = c as usize;
                assert!(c < SIGMA, "symbol out of alphabet");
                if nodes[v].children[c] == u32::MAX {
                    nodes[v].children[c] = nodes.len() as u32;
                    nodes.push(AcNode::new());
                }
                v = nodes[v].children[c] as usize;
            }
            nodes[v].output.push(idx as u32);
        }
        // BFS to fill failure links and convert to a goto automaton
        // (missing transitions resolved through fails up front).
        let mut queue = std::collections::VecDeque::new();
        for c in 0..SIGMA {
            let u = nodes[0].children[c];
            if u == u32::MAX {
                nodes[0].children[c] = 0;
            } else {
                nodes[u as usize].fail = 0;
                queue.push_back(u);
            }
        }
        while let Some(v) = queue.pop_front() {
            let v = v as usize;
            let fail = nodes[v].fail as usize;
            // Merge outputs along the failure chain.
            let inherited: Vec<u32> = nodes[fail].output.clone();
            nodes[v].output.extend(inherited);
            for c in 0..SIGMA {
                let u = nodes[v].children[c];
                if u == u32::MAX {
                    nodes[v].children[c] = nodes[fail].children[c];
                } else {
                    nodes[u as usize].fail = nodes[fail].children[c];
                    queue.push_back(u);
                }
            }
        }
        AhoCorasick {
            nodes,
            pattern_lens,
        }
    }

    /// All matches of all patterns in `text`, in increasing end-position
    /// order.
    pub fn find_all(&self, text: &[u8]) -> Vec<AcMatch> {
        let mut out = Vec::new();
        let mut v = 0usize;
        for (i, &c) in text.iter().enumerate() {
            v = self.nodes[v].children[c as usize] as usize;
            for &p in &self.nodes[v].output {
                let len = self.pattern_lens[p as usize];
                out.push(AcMatch {
                    start: i + 1 - len,
                    pattern: p as usize,
                });
            }
        }
        out
    }

    /// Stream matches into a callback (avoids the output vector for the
    /// marking phase of the Amir baseline).
    pub fn for_each_match(&self, text: &[u8], mut f: impl FnMut(AcMatch)) {
        let mut v = 0usize;
        for (i, &c) in text.iter().enumerate() {
            v = self.nodes[v].children[c as usize] as usize;
            for &p in &self.nodes[v].output {
                let len = self.pattern_lens[p as usize];
                f(AcMatch {
                    start: i + 1 - len,
                    pattern: p as usize,
                });
            }
        }
    }

    /// Number of automaton states.
    pub fn state_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::find_exact;

    fn enc(s: &[u8]) -> Vec<u8> {
        kmm_dna::encode(s).unwrap()
    }

    #[test]
    fn single_pattern_matches_naive() {
        let t = enc(b"acagacacaga");
        let p = enc(b"aca");
        let ac = AhoCorasick::new(std::slice::from_ref(&p));
        let starts: Vec<usize> = ac.find_all(&t).into_iter().map(|m| m.start).collect();
        assert_eq!(starts, find_exact(&t, &p));
    }

    #[test]
    fn multiple_patterns_including_prefixes() {
        let t = enc(b"acgacga");
        let pats = [enc(b"acg"), enc(b"ac"), enc(b"cga")];
        let ac = AhoCorasick::new(&pats);
        let mut got = ac.find_all(&t);
        got.sort();
        let mut want = Vec::new();
        for (idx, p) in pats.iter().enumerate() {
            for s in find_exact(&t, p) {
                want.push(AcMatch {
                    start: s,
                    pattern: idx,
                });
            }
        }
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_patterns_both_reported() {
        let t = enc(b"aaa");
        let pats = [enc(b"aa"), enc(b"aa")];
        let ac = AhoCorasick::new(&pats);
        let got = ac.find_all(&t);
        assert_eq!(got.len(), 4); // two starts x two pattern ids
    }

    #[test]
    fn random_multi_pattern_vs_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        for _ in 0..40 {
            let n = rng.gen_range(1..300);
            let t: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let np = rng.gen_range(1..6);
            let pats: Vec<Vec<u8>> = (0..np)
                .map(|_| {
                    let m = rng.gen_range(1..6);
                    (0..m).map(|_| rng.gen_range(1..=4)).collect()
                })
                .collect();
            let ac = AhoCorasick::new(&pats);
            let mut got = ac.find_all(&t);
            got.sort();
            let mut want = Vec::new();
            for (idx, p) in pats.iter().enumerate() {
                for s in find_exact(&t, p) {
                    want.push(AcMatch {
                        start: s,
                        pattern: idx,
                    });
                }
            }
            want.sort();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn callback_agrees_with_find_all() {
        let t = enc(b"gattacagattaca");
        let pats = [enc(b"atta"), enc(b"ga")];
        let ac = AhoCorasick::new(&pats);
        let mut streamed = Vec::new();
        ac.for_each_match(&t, |m| streamed.push(m));
        assert_eq!(streamed, ac.find_all(&t));
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn rejects_empty_pattern() {
        AhoCorasick::new(&[Vec::<u8>::new()]);
    }

    #[test]
    fn state_count_is_bounded() {
        let pats = [enc(b"acgt"), enc(b"acga")];
        let ac = AhoCorasick::new(&pats);
        assert!(ac.state_count() <= 9);
    }
}
