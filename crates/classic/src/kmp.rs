//! Knuth–Morris–Pratt exact matching.
//!
//! Cited in the paper's related-work section (\[26\]) as the origin of the
//! shift-information ("failure function") idea that Aho–Corasick and the
//! mismatch-array machinery build on. `O(m + n)`.

/// The failure function: `next[i]` is the length of the longest proper
/// border of `pattern[..=i]`.
pub fn failure_function(pattern: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    let mut next = vec![0usize; m];
    let mut k = 0usize;
    for i in 1..m {
        while k > 0 && pattern[k] != pattern[i] {
            k = next[k - 1];
        }
        if pattern[k] == pattern[i] {
            k += 1;
        }
        next[i] = k;
    }
    next
}

/// All start positions of exact occurrences of `pattern` in `text`.
pub fn find(text: &[u8], pattern: &[u8]) -> Vec<usize> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return Vec::new();
    }
    let next = failure_function(pattern);
    let mut out = Vec::new();
    let mut q = 0usize;
    for (i, &c) in text.iter().enumerate() {
        while q > 0 && pattern[q] != c {
            q = next[q - 1];
        }
        if pattern[q] == c {
            q += 1;
        }
        if q == pattern.len() {
            out.push(i + 1 - q);
            q = next[q - 1];
        }
    }
    out
}

/// The smallest period of `pattern` (from the failure function). A string
/// is periodic in Amir's sense when its period is at most half its length.
pub fn smallest_period(pattern: &[u8]) -> usize {
    if pattern.is_empty() {
        return 0;
    }
    let next = failure_function(pattern);
    pattern.len() - next[pattern.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::find_exact;

    #[test]
    fn failure_function_known() {
        // Pattern "acacag": borders 0 0 1 2 3 0.
        let p = kmm_dna::encode(b"acacag").unwrap();
        assert_eq!(failure_function(&p), vec![0, 0, 1, 2, 3, 0]);
    }

    #[test]
    fn finds_paper_pattern() {
        let t = kmm_dna::encode(b"acagaca").unwrap();
        let p = kmm_dna::encode(b"aca").unwrap();
        assert_eq!(find(&t, &p), vec![0, 4]);
    }

    #[test]
    fn overlapping_occurrences() {
        let t = kmm_dna::encode(b"aaaa").unwrap();
        let p = kmm_dna::encode(b"aa").unwrap();
        assert_eq!(find(&t, &p), vec![0, 1, 2]);
    }

    #[test]
    fn random_matches_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for _ in 0..100 {
            let n = rng.gen_range(0..200);
            let t: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let m = rng.gen_range(1..8);
            let p: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=2)).collect();
            assert_eq!(find(&t, &p), find_exact(&t, &p));
        }
    }

    #[test]
    fn period_detection() {
        assert_eq!(smallest_period(&kmm_dna::encode(b"acacac").unwrap()), 2);
        assert_eq!(smallest_period(&kmm_dna::encode(b"aaaa").unwrap()), 1);
        assert_eq!(smallest_period(&kmm_dna::encode(b"acgt").unwrap()), 4);
        assert_eq!(smallest_period(&[]), 0);
    }

    #[test]
    fn empty_cases() {
        assert!(find(&[], &[1]).is_empty());
        assert!(find(&[1, 2], &[]).is_empty());
    }
}
