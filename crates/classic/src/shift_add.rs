//! Shift-Add k-mismatch matching (Baeza-Yates & Gonnet counting).
//!
//! One of the `O(mn)`-class online methods the paper's related-work
//! section groups under \[5, 18, 48\]-style approaches: every alignment
//! keeps a mismatch counter packed into a machine word, and each text
//! symbol advances *all* counters with one shift and one add. Counters
//! are sized to hold the maximum possible count `m`, so they can never
//! overflow or carry into a neighbour — the original formulation of the
//! algorithm. For read-length patterns that fit the 128-bit state word it
//! is extremely fast in practice and serves the suite as another
//! independent oracle.

use kmm_dna::SIGMA;

use crate::naive::Occurrence;

/// Outcome of a Shift-Add run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShiftAddResult {
    /// Matches found (possibly none).
    Matches(Vec<Occurrence>),
    /// The pattern does not fit the 128-bit state word; holds the maximum
    /// supported pattern length.
    PatternTooLong {
        /// Longest pattern this implementation can handle.
        max_len: usize,
    },
}

/// Bits per counter for a pattern of length `m`: counters must hold the
/// maximum possible mismatch count, `m` itself.
fn counter_bits(m: usize) -> usize {
    (usize::BITS - m.leading_zeros()) as usize
}

/// Maximum pattern length supported by the 128-bit state word
/// (25 symbols: 25 counters x 5 bits = 125 bits).
pub fn max_pattern_len() -> usize {
    (1..=128)
        .rev()
        .find(|&m| m * counter_bits(m) <= 128)
        .unwrap_or(1)
}

/// All occurrences of `pattern` in `text` with at most `k` mismatches.
pub fn find_k_mismatch(text: &[u8], pattern: &[u8], k: usize) -> ShiftAddResult {
    let m = pattern.len();
    if m == 0 {
        return ShiftAddResult::Matches(Vec::new());
    }
    let b = counter_bits(m);
    if m * b > 128 {
        return ShiftAddResult::PatternTooLong {
            max_len: max_pattern_len(),
        };
    }

    // Per-symbol increment masks: slot i holds 1 iff pattern[i] != c.
    let mut inc = [0u128; SIGMA];
    for (c, mask) in inc.iter_mut().enumerate() {
        for (i, &p) in pattern.iter().enumerate() {
            if p as usize != c {
                *mask |= 1u128 << (i * b);
            }
        }
    }

    // After processing text[pos], slot i holds the number of mismatches of
    // pattern[0..=i] against text[pos-i ..= pos] (valid once pos >= i).
    // Counters hold at most m < 2^b, so additions never carry across
    // slots.
    let mut state: u128 = 0;
    let slot_mask = (1u128 << b) - 1;
    let final_shift = ((m - 1) * b) as u32;
    let mut out = Vec::new();
    for (pos, &c) in text.iter().enumerate() {
        state = (state << b) + inc[c as usize];
        if pos + 1 >= m {
            let count = ((state >> final_shift) & slot_mask) as usize;
            if count <= k {
                out.push(Occurrence {
                    position: pos + 1 - m,
                    mismatches: count,
                });
            }
        }
    }
    ShiftAddResult::Matches(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn matches(text: &[u8], pattern: &[u8], k: usize) -> Vec<Occurrence> {
        match find_k_mismatch(text, pattern, k) {
            ShiftAddResult::Matches(v) => v,
            ShiftAddResult::PatternTooLong { max_len } => {
                panic!("pattern too long (max {max_len})")
            }
        }
    }

    #[test]
    fn paper_intro_example() {
        let s = kmm_dna::encode(b"ccacacagaagcc").unwrap();
        let r = kmm_dna::encode(b"aaaaacaaac").unwrap();
        assert_eq!(matches(&s, &r, 4), naive::find_k_mismatch(&s, &r, 4));
    }

    #[test]
    fn exact_as_k0() {
        let t = kmm_dna::encode(b"acagaca").unwrap();
        let p = kmm_dna::encode(b"aca").unwrap();
        let got: Vec<usize> = matches(&t, &p, 0).iter().map(|o| o.position).collect();
        assert_eq!(got, vec![0, 4]);
    }

    #[test]
    fn random_agrees_with_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(73);
        let mmax = max_pattern_len().min(20);
        for _ in 0..200 {
            let n = rng.gen_range(1..250);
            let t: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let k = rng.gen_range(0..6usize);
            let m = rng.gen_range(1..=mmax);
            let p: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            assert_eq!(
                matches(&t, &p, k),
                naive::find_k_mismatch(&t, &p, k),
                "t={t:?} p={p:?} k={k}"
            );
        }
    }

    #[test]
    fn counters_never_wrap() {
        // All-mismatching text: counters climb to m and must stay there.
        let t = kmm_dna::encode(&b"t".repeat(64)).unwrap();
        let p = kmm_dna::encode(b"aaaaaaaaaaaa").unwrap(); // 12 a's
        for k in 0..4 {
            assert!(matches(&t, &p, k).is_empty(), "k={k}");
        }
        // And with k = m every window matches with count = m.
        let occ = matches(&t, &p, 12);
        assert_eq!(occ.len(), 64 - 12 + 1);
        assert!(occ.iter().all(|o| o.mismatches == 12));
    }

    #[test]
    fn capacity_bounds() {
        assert_eq!(max_pattern_len(), 25);
        let t = kmm_dna::encode(b"acgt").unwrap();
        let long: Vec<u8> = (0..100).map(|i| (i % 4 + 1) as u8).collect();
        assert!(matches!(
            find_k_mismatch(&t, &long, 1),
            ShiftAddResult::PatternTooLong { max_len: 25 }
        ));
        // A 25-symbol pattern works.
        let p: Vec<u8> = (0..25).map(|i| (i % 4 + 1) as u8).collect();
        let mut t = vec![2u8; 5];
        t.extend_from_slice(&p);
        let got = matches(&t, &p, 0);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].position, 5);
    }

    #[test]
    fn reported_counts_are_hamming() {
        let t = kmm_dna::encode(b"acgtacgtac").unwrap();
        let p = kmm_dna::encode(b"aggt").unwrap();
        for occ in matches(&t, &p, 3) {
            let w = &t[occ.position..occ.position + 4];
            assert_eq!(occ.mismatches, kmm_dna::hamming(w, &p));
        }
    }
}
