//! Shift-Or (bitap) exact matching.
//!
//! The bit-parallel counterpart of the automaton matchers: one machine
//! word tracks all active prefix states, advancing by a shift and an OR
//! per text symbol — `O(n)` for patterns up to 128 symbols, with a
//! constant factor that is hard to beat for short reads.

use kmm_dna::SIGMA;

/// Maximum supported pattern length (bits in the state word).
pub const MAX_PATTERN: usize = 128;

/// All start positions of exact occurrences of `pattern` in `text`.
///
/// Returns `None` when the pattern is longer than [`MAX_PATTERN`] (the
/// caller should fall back to KMP/Horspool).
pub fn find(text: &[u8], pattern: &[u8]) -> Option<Vec<usize>> {
    let m = pattern.len();
    if m == 0 || m > MAX_PATTERN {
        return if m == 0 { Some(Vec::new()) } else { None };
    }
    // masks[c] has bit i CLEAR iff pattern[i] == c (Shift-Or convention).
    let mut masks = [u128::MAX; SIGMA];
    for (i, &c) in pattern.iter().enumerate() {
        masks[c as usize] &= !(1u128 << i);
    }
    let accept = 1u128 << (m - 1);
    let mut state = u128::MAX;
    let mut out = Vec::new();
    for (i, &c) in text.iter().enumerate() {
        state = (state << 1) | masks[c as usize];
        if state & accept == 0 {
            out.push(i + 1 - m);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::find_exact;

    #[test]
    fn finds_paper_pattern() {
        let t = kmm_dna::encode(b"acagaca").unwrap();
        let p = kmm_dna::encode(b"aca").unwrap();
        assert_eq!(find(&t, &p).unwrap(), vec![0, 4]);
    }

    #[test]
    fn random_matches_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(45);
        for _ in 0..150 {
            let n = rng.gen_range(0..300);
            let t: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let m = rng.gen_range(1..12);
            let p: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=2)).collect();
            assert_eq!(find(&t, &p).unwrap(), find_exact(&t, &p));
        }
    }

    #[test]
    fn full_width_pattern() {
        // Exactly 128 symbols works; 129 does not.
        let p: Vec<u8> = (0..128).map(|i| (i % 4 + 1) as u8).collect();
        let mut t = vec![4u8, 4];
        t.extend_from_slice(&p);
        t.push(1);
        assert_eq!(find(&t, &p).unwrap(), vec![2]);
        let p129: Vec<u8> = (0..129).map(|i| (i % 4 + 1) as u8).collect();
        assert!(find(&t, &p129).is_none());
    }

    #[test]
    fn empty_pattern_is_empty_result() {
        assert_eq!(find(&[1, 2, 3], &[]).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn overlapping_hits() {
        let t = kmm_dna::encode(b"aaaaa").unwrap();
        let p = kmm_dna::encode(b"aa").unwrap();
        assert_eq!(find(&t, &p).unwrap(), vec![0, 1, 2, 3]);
    }
}
