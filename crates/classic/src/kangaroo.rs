//! The Landau–Vishkin "kangaroo" method: `O(kn)` k-mismatch matching.
//!
//! This is the classic online technique behind the `O(kn + m log m)`
//! methods the paper cites (\[19, 30\] family): concatenate `text # pattern`,
//! build a suffix structure with O(1) longest-common-extension queries,
//! then verify every alignment with at most `k + 1` LCE "jumps". It doubles
//! as the verification engine of our Amir baseline.

use kmm_dna::SIGMA;
use kmm_suffix::EnhancedSuffixArray;

use crate::naive::Occurrence;

/// Separator symbol between text and pattern in the concatenation; it is
/// outside the DNA alphabet so no LCE can cross it.
const SEPARATOR: u8 = SIGMA as u8;

/// Kangaroo-jump verifier for one (text, pattern) pair.
///
/// `text` and `pattern` are sentinel-free encoded sequences.
#[derive(Debug)]
pub struct Kangaroo {
    esa: EnhancedSuffixArray,
    text_len: usize,
    pattern_len: usize,
}

impl Kangaroo {
    /// Preprocess `text # pattern $` (O((n + m) log(n + m)) for the RMQ).
    pub fn new(text: &[u8], pattern: &[u8]) -> Self {
        assert!(!pattern.is_empty(), "pattern must be non-empty");
        let mut concat = Vec::with_capacity(text.len() + pattern.len() + 2);
        concat.extend_from_slice(text);
        concat.push(SEPARATOR);
        concat.extend_from_slice(pattern);
        concat.push(0);
        let esa = EnhancedSuffixArray::new(concat, SIGMA + 1);
        Kangaroo {
            esa,
            text_len: text.len(),
            pattern_len: pattern.len(),
        }
    }

    /// Longest common extension between `text[i..]` and `pattern[j..]`.
    #[inline]
    pub fn lce_text_pattern(&self, i: usize, j: usize) -> usize {
        self.esa.lce(i, self.text_len + 1 + j)
    }

    /// Hamming distance of the window at `pos` against the pattern, if it
    /// is at most `k`; `None` otherwise. At most `k + 1` jumps.
    pub fn verify(&self, pos: usize, k: usize) -> Option<usize> {
        debug_assert!(pos + self.pattern_len <= self.text_len);
        let m = self.pattern_len;
        let mut mism = 0usize;
        let mut offset = 0usize;
        loop {
            let ext = self.lce_text_pattern(pos + offset, offset);
            offset += ext;
            if offset >= m {
                return Some(mism);
            }
            // A genuine mismatch at `offset`.
            mism += 1;
            if mism > k {
                return None;
            }
            offset += 1;
            if offset >= m {
                return Some(mism);
            }
        }
    }

    /// All k-mismatch occurrences by verifying every alignment: `O(kn)`.
    pub fn find_all(&self, k: usize) -> Vec<Occurrence> {
        if self.pattern_len > self.text_len {
            return Vec::new();
        }
        let mut out = Vec::new();
        for pos in 0..=self.text_len - self.pattern_len {
            if let Some(mismatches) = self.verify(pos, k) {
                out.push(Occurrence {
                    position: pos,
                    mismatches,
                });
            }
        }
        out
    }

    /// Pattern length.
    pub fn pattern_len(&self) -> usize {
        self.pattern_len
    }

    /// Text length.
    pub fn text_len(&self) -> usize {
        self.text_len
    }
}

/// One-shot convenience wrapper around [`Kangaroo::find_all`].
pub fn find_k_mismatch(text: &[u8], pattern: &[u8], k: usize) -> Vec<Occurrence> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return Vec::new();
    }
    Kangaroo::new(text, pattern).find_all(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn paper_intro_example() {
        let s = kmm_dna::encode(b"ccacacagaagcc").unwrap();
        let r = kmm_dna::encode(b"aaaaacaaac").unwrap();
        let occ = find_k_mismatch(&s, &r, 4);
        assert_eq!(occ, naive::find_k_mismatch(&s, &r, 4));
        assert!(occ.iter().any(|o| o.position == 2 && o.mismatches == 4));
    }

    #[test]
    fn exact_matching_as_k0() {
        let t = kmm_dna::encode(b"acagaca").unwrap();
        let p = kmm_dna::encode(b"aca").unwrap();
        let occ = find_k_mismatch(&t, &p, 0);
        assert_eq!(
            occ.iter().map(|o| o.position).collect::<Vec<_>>(),
            vec![0, 4]
        );
    }

    #[test]
    fn random_agrees_with_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        for _ in 0..60 {
            let n = rng.gen_range(1..200);
            let t: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let m = rng.gen_range(1..=n.min(12));
            let p: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            for k in 0..4 {
                assert_eq!(
                    find_k_mismatch(&t, &p, k),
                    naive::find_k_mismatch(&t, &p, k),
                    "n={n} m={m} k={k}"
                );
            }
        }
    }

    #[test]
    fn verify_counts_exactly() {
        let t = kmm_dna::encode(b"acgtacgt").unwrap();
        let p = kmm_dna::encode(b"aggt").unwrap();
        let kang = Kangaroo::new(&t, &p);
        // window "acgt" vs "aggt" -> 1 mismatch.
        assert_eq!(kang.verify(0, 4), Some(1));
        assert_eq!(kang.verify(0, 1), Some(1));
        assert_eq!(kang.verify(0, 0), None);
        // window "cgta" vs "aggt" -> 3 mismatches (only g/g matches).
        assert_eq!(kang.verify(1, 4), Some(3));
        assert_eq!(kang.verify(1, 3), Some(3));
        assert_eq!(kang.verify(1, 2), None);
    }

    #[test]
    fn lce_does_not_cross_separator() {
        // Text suffix equal to whole pattern: LCE must stop at m.
        let t = kmm_dna::encode(b"acgt").unwrap();
        let p = kmm_dna::encode(b"acgt").unwrap();
        let kang = Kangaroo::new(&t, &p);
        assert_eq!(kang.lce_text_pattern(0, 0), 4);
    }

    #[test]
    fn pattern_longer_than_text_is_empty() {
        let t = kmm_dna::encode(b"ac").unwrap();
        let p = kmm_dna::encode(b"acgt").unwrap();
        assert!(find_k_mismatch(&t, &p, 3).is_empty());
    }
}
