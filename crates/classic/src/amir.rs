//! The "Amir" baseline: mark-and-verify k-mismatch matching.
//!
//! Section V of the paper describes Amir's algorithm \[2\] as: divide the
//! pattern into periodic stretches separated by ~2k aperiodic *breaks*;
//! locate every occurrence of every break in the target, marking the
//! implied pattern start; discard starts with too few marks; verify the
//! survivors. We reproduce that two-phase structure with pigeonhole block
//! seeds instead of the periodicity decomposition (DESIGN.md D4):
//!
//! * the pattern is cut into `B` contiguous blocks (`B ≈ 2k`, clamped so
//!   blocks stay informative and `B > k`);
//! * a k-mismatch occurrence can destroy at most `k` blocks, so at least
//!   `B - k` blocks must occur *exactly* at their offsets — the mark
//!   threshold;
//! * blocks are located in one Aho–Corasick pass, surviving candidates are
//!   verified with `O(k)` kangaroo jumps.
//!
//! Worst case `O(kn + m log m)`-shaped like the original; exact and
//! complete for every input (verified against the naive scan).

use crate::aho_corasick::AhoCorasick;
use crate::naive::Occurrence;

/// Counters describing one Amir run (exposed for the experiments binary).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AmirStats {
    /// Number of seed blocks used.
    pub blocks: usize,
    /// Mark threshold (`blocks - k`).
    pub threshold: usize,
    /// Total block hits produced by the marking pass.
    pub marks: usize,
    /// Candidates that reached the threshold and were verified.
    pub candidates: usize,
}

/// The block decomposition: `(offset, length)` per block, covering the
/// pattern exactly.
fn blocks_of(m: usize, k: usize) -> Vec<(usize, usize)> {
    // B in [k+1, 2k] with blocks of >= 8 symbols when possible (shorter
    // seeds flood the marking phase on a 4-letter alphabet); always B <= m.
    let ideal = (m / 8).max(1);
    let b = ideal.clamp(k + 1, (2 * k).max(1)).min(m);
    let base = m / b;
    let extra = m % b;
    let mut out = Vec::with_capacity(b);
    let mut off = 0usize;
    for i in 0..b {
        let len = base + usize::from(i < extra);
        out.push((off, len));
        off += len;
    }
    debug_assert_eq!(off, m);
    out
}

/// All k-mismatch occurrences of `pattern` in `text` (both sentinel-free).
pub fn find_k_mismatch(text: &[u8], pattern: &[u8], k: usize) -> Vec<Occurrence> {
    find_k_mismatch_with_stats(text, pattern, k).0
}

/// As [`find_k_mismatch`], also returning the filtering statistics.
pub fn find_k_mismatch_with_stats(
    text: &[u8],
    pattern: &[u8],
    k: usize,
) -> (Vec<Occurrence>, AmirStats) {
    let (n, m) = (text.len(), pattern.len());
    if m == 0 || m > n {
        return (Vec::new(), AmirStats::default());
    }
    // Degenerate: every window is within distance k.
    if m <= k {
        let occ = (0..=n - m)
            .map(|position| Occurrence {
                position,
                mismatches: kmm_dna::hamming(&text[position..position + m], pattern),
            })
            .collect();
        return (occ, AmirStats::default());
    }

    let blocks = blocks_of(m, k);
    let b = blocks.len();
    debug_assert!(b > k, "threshold must be positive");
    let threshold = b - k;
    let seeds: Vec<&[u8]> = blocks
        .iter()
        .map(|&(off, len)| &pattern[off..off + len])
        .collect();
    let ac = AhoCorasick::new(&seeds);

    // Marking pass: one counter per candidate start.
    let candidates_len = n - m + 1;
    let mut counts = vec![0u16; candidates_len];
    let mut marks = 0usize;
    ac.for_each_match(text, |hit| {
        let (off, _) = blocks[hit.pattern];
        if hit.start >= off {
            let cand = hit.start - off;
            if cand < candidates_len {
                counts[cand] = counts[cand].saturating_add(1);
                marks += 1;
            }
        }
    });

    // Verification pass over survivors. Amir et al. verify with O(k)
    // kangaroo jumps over a pattern-side suffix structure; a bounded direct
    // comparison has the same early-abort behaviour (expected O(k) per
    // candidate on random text) without the per-query text preprocessing
    // our generic `Kangaroo` would pay (see `kangaroo` module docs).
    let mut out = Vec::new();
    let mut candidates = 0usize;
    for (position, &c) in counts.iter().enumerate() {
        if (c as usize) >= threshold {
            candidates += 1;
            if let Some(mismatches) =
                kmm_dna::hamming_bounded(&text[position..position + m], pattern, k)
            {
                out.push(Occurrence {
                    position,
                    mismatches,
                });
            }
        }
    }
    (
        out,
        AmirStats {
            blocks: b,
            threshold,
            marks,
            candidates,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn blocks_cover_pattern() {
        for m in 1..60 {
            for k in 0..10 {
                let blocks = blocks_of(m, k);
                assert!(!blocks.is_empty());
                assert!(blocks.len() > k || blocks.len() == m.min(k + 1));
                let total: usize = blocks.iter().map(|&(_, l)| l).sum();
                assert_eq!(total, m, "m={m} k={k}");
                // Contiguity.
                let mut off = 0;
                for &(o, l) in &blocks {
                    assert_eq!(o, off);
                    assert!(l >= 1);
                    off += l;
                }
            }
        }
    }

    #[test]
    fn paper_intro_example() {
        let s = kmm_dna::encode(b"ccacacagaagcc").unwrap();
        let r = kmm_dna::encode(b"aaaaacaaac").unwrap();
        assert_eq!(
            find_k_mismatch(&s, &r, 4),
            naive::find_k_mismatch(&s, &r, 4)
        );
    }

    #[test]
    fn k_zero_is_exact() {
        let t = kmm_dna::encode(b"acagacaacaaca").unwrap();
        let p = kmm_dna::encode(b"aca").unwrap();
        let got: Vec<usize> = find_k_mismatch(&t, &p, 0)
            .iter()
            .map(|o| o.position)
            .collect();
        assert_eq!(got, naive::find_k_mismatch_positions(&t, &p, 0));
    }

    #[test]
    fn tiny_pattern_large_k() {
        let t = kmm_dna::encode(b"acgtac").unwrap();
        let p = kmm_dna::encode(b"gg").unwrap();
        assert_eq!(
            find_k_mismatch(&t, &p, 2),
            naive::find_k_mismatch(&t, &p, 2)
        );
        // m <= k path.
        assert_eq!(
            find_k_mismatch(&t, &p, 5),
            naive::find_k_mismatch(&t, &p, 5)
        );
    }

    #[test]
    fn random_agrees_with_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        for _ in 0..60 {
            let n = rng.gen_range(1..300);
            let t: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let m = rng.gen_range(1..=n.min(20));
            let p: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            for k in 0..5 {
                assert_eq!(
                    find_k_mismatch(&t, &p, k),
                    naive::find_k_mismatch(&t, &p, k),
                    "n={n} m={m} k={k}"
                );
            }
        }
    }

    #[test]
    fn repetitive_text_floods_marking_but_stays_correct() {
        let t = kmm_dna::encode(&b"ac".repeat(100)).unwrap();
        let p = kmm_dna::encode(b"acacacacacac").unwrap();
        for k in [0, 1, 2, 3] {
            assert_eq!(
                find_k_mismatch(&t, &p, k),
                naive::find_k_mismatch(&t, &p, k)
            );
        }
    }

    #[test]
    fn stats_are_sane() {
        let t = kmm_dna::encode(&b"acgt".repeat(50)).unwrap();
        let p = kmm_dna::encode(b"acgtacgtacgtacgtacgtacgt").unwrap();
        let (occ, stats) = find_k_mismatch_with_stats(&t, &p, 2);
        assert!(!occ.is_empty());
        assert!(stats.blocks > 2);
        assert_eq!(stats.threshold, stats.blocks - 2);
        assert!(stats.candidates >= occ.len());
        assert!(stats.marks >= stats.candidates);
    }

    #[test]
    fn empty_and_oversized_patterns() {
        let t = kmm_dna::encode(b"acg").unwrap();
        assert!(find_k_mismatch(&t, &[], 1).is_empty());
        let p = kmm_dna::encode(b"acgta").unwrap();
        assert!(find_k_mismatch(&t, &p, 1).is_empty());
    }
}
