//! Boyer–Moore–Horspool exact matching.
//!
//! The Boyer–Moore family (\[9\] in the paper) skips ahead using a bad-
//! character table; Horspool's simplification keeps only that table. On
//! the 4-letter DNA alphabet the expected skip is small, which is exactly
//! why the paper's community moved to index-based methods — but it remains
//! a useful, allocation-free scanner for short patterns.

use kmm_dna::SIGMA;

/// All start positions of exact occurrences of `pattern` in `text`.
pub fn find(text: &[u8], pattern: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    let n = text.len();
    if m == 0 || m > n {
        return Vec::new();
    }
    // Bad-character shift: distance from the last occurrence of each symbol
    // to the end of the pattern (default m).
    let mut shift = [m; SIGMA];
    for (i, &c) in pattern[..m - 1].iter().enumerate() {
        shift[c as usize] = m - 1 - i;
    }
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + m <= n {
        if &text[i..i + m] == pattern {
            out.push(i);
        }
        i += shift[text[i + m - 1] as usize];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::find_exact;

    #[test]
    fn finds_paper_pattern() {
        let t = kmm_dna::encode(b"acagaca").unwrap();
        let p = kmm_dna::encode(b"aca").unwrap();
        assert_eq!(find(&t, &p), vec![0, 4]);
    }

    #[test]
    fn single_char_pattern() {
        let t = kmm_dna::encode(b"agaga").unwrap();
        let p = kmm_dna::encode(b"g").unwrap();
        assert_eq!(find(&t, &p), vec![1, 3]);
    }

    #[test]
    fn pattern_equals_text() {
        let t = kmm_dna::encode(b"acgt").unwrap();
        assert_eq!(find(&t, &t), vec![0]);
    }

    #[test]
    fn random_matches_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..150 {
            let n = rng.gen_range(0..250);
            let t: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let m = rng.gen_range(1..10);
            let p: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=3)).collect();
            assert_eq!(find(&t, &p), find_exact(&t, &p), "t={t:?} p={p:?}");
        }
    }

    #[test]
    fn overlapping_runs() {
        let t = kmm_dna::encode(b"aaaaa").unwrap();
        let p = kmm_dna::encode(b"aaa").unwrap();
        assert_eq!(find(&t, &p), vec![0, 1, 2]);
    }

    #[test]
    fn empty_cases() {
        assert!(find(&[], &[1]).is_empty());
        assert!(find(&[1], &[]).is_empty());
        assert!(find(&[1], &[1, 2]).is_empty());
    }
}
