//! Naive scanning matchers — the ground truth every other algorithm in the
//! suite is verified against.

use kmm_dna::hamming_bounded;

/// All start positions where `pattern` occurs exactly in `text`
/// (`text` may include a trailing sentinel; occurrences never cover it
/// because patterns are sentinel-free). `O(mn)`.
pub fn find_exact(text: &[u8], pattern: &[u8]) -> Vec<usize> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return Vec::new();
    }
    (0..=text.len() - pattern.len())
        .filter(|&i| &text[i..i + pattern.len()] == pattern)
        .collect()
}

/// A k-mismatch occurrence: start position plus the Hamming distance there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Occurrence {
    /// 0-based start position in the target.
    pub position: usize,
    /// Hamming distance between the pattern and the window at `position`.
    pub mismatches: usize,
}

/// All positions where `pattern` occurs in `text` with at most `k`
/// mismatches, by direct `O(mn)` scanning with early abort. This is the
/// reference implementation for the whole suite.
///
/// If `text` ends with a sentinel, pass the sentinel-free prefix or rely on
/// the fact that windows overlapping the sentinel mismatch it (pattern
/// symbols are never the sentinel) — both behaviours are exercised in
/// tests; the canonical usage is a sentinel-free `text`.
pub fn find_k_mismatch(text: &[u8], pattern: &[u8], k: usize) -> Vec<Occurrence> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return Vec::new();
    }
    let m = pattern.len();
    let mut out = Vec::new();
    for i in 0..=text.len() - m {
        if let Some(d) = hamming_bounded(&text[i..i + m], pattern, k) {
            out.push(Occurrence {
                position: i,
                mismatches: d,
            });
        }
    }
    out
}

/// Just the positions of [`find_k_mismatch`], for compact comparisons.
pub fn find_k_mismatch_positions(text: &[u8], pattern: &[u8], k: usize) -> Vec<usize> {
    find_k_mismatch(text, pattern, k)
        .into_iter()
        .map(|o| o.position)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_basics() {
        let t = kmm_dna::encode(b"acagaca").unwrap();
        let p = kmm_dna::encode(b"aca").unwrap();
        assert_eq!(find_exact(&t, &p), vec![0, 4]);
        assert_eq!(find_exact(&t, &[]), Vec::<usize>::new());
        assert_eq!(find_exact(&[], &p), Vec::<usize>::new());
    }

    #[test]
    fn paper_intro_example() {
        // Section I: r = aaaaacaaac occurs at position 3 (1-based) of
        // s = ccacacagaagcc with k = 4 mismatches.
        let s = kmm_dna::encode(b"ccacacagaagcc").unwrap();
        let r = kmm_dna::encode(b"aaaaacaaac").unwrap();
        let occ = find_k_mismatch(&s, &r, 4);
        assert!(occ.contains(&Occurrence {
            position: 2,
            mismatches: 4
        }));
    }

    #[test]
    fn k_zero_equals_exact() {
        let t = kmm_dna::encode(b"acacacac").unwrap();
        let p = kmm_dna::encode(b"cac").unwrap();
        let exact = find_exact(&t, &p);
        let k0 = find_k_mismatch_positions(&t, &p, 0);
        assert_eq!(exact, k0);
    }

    #[test]
    fn k_at_least_m_matches_everywhere() {
        let t = kmm_dna::encode(b"acgtacgt").unwrap();
        let p = kmm_dna::encode(b"ttt").unwrap();
        let occ = find_k_mismatch(&t, &p, 3);
        assert_eq!(occ.len(), t.len() - p.len() + 1);
    }

    #[test]
    fn mismatch_counts_are_reported() {
        let t = kmm_dna::encode(b"aaaa").unwrap();
        let p = kmm_dna::encode(b"at").unwrap();
        let occ = find_k_mismatch(&t, &p, 1);
        assert_eq!(occ.len(), 3);
        assert!(occ.iter().all(|o| o.mismatches == 1));
    }

    #[test]
    fn pattern_longer_than_text() {
        let t = kmm_dna::encode(b"ac").unwrap();
        let p = kmm_dna::encode(b"acgt").unwrap();
        assert!(find_k_mismatch(&t, &p, 4).is_empty());
    }
}
