//! # kmm-classic
//!
//! Classic exact-matching algorithms and online k-mismatch baselines:
//! the naive reference scans, Knuth–Morris–Pratt, Boyer–Moore–Horspool,
//! Aho–Corasick, the Landau–Vishkin kangaroo method, and the Amir-style
//! mark-and-verify matcher compared against Algorithm A in the paper's
//! experiments (Section V).

pub mod aho_corasick;
pub mod amir;
pub mod bitap;
pub mod horspool;
pub mod kangaroo;
pub mod kmp;
pub mod naive;
pub mod shift_add;

pub use aho_corasick::{AcMatch, AhoCorasick};
pub use amir::AmirStats;
pub use kangaroo::Kangaroo;
pub use naive::Occurrence;
pub use shift_add::ShiftAddResult;

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::{amir, kangaroo, naive};

    fn dna_seq(max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(1u8..=4, 1..max)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn kangaroo_equals_naive(
            text in dna_seq(200),
            pattern in dna_seq(16),
            k in 0usize..5,
        ) {
            prop_assert_eq!(
                kangaroo::find_k_mismatch(&text, &pattern, k),
                naive::find_k_mismatch(&text, &pattern, k)
            );
        }

        #[test]
        fn amir_equals_naive(
            text in dna_seq(200),
            pattern in dna_seq(24),
            k in 0usize..5,
        ) {
            prop_assert_eq!(
                amir::find_k_mismatch(&text, &pattern, k),
                naive::find_k_mismatch(&text, &pattern, k)
            );
        }

        #[test]
        fn exact_matchers_agree(text in dna_seq(300), pattern in dna_seq(10)) {
            let want = naive::find_exact(&text, &pattern);
            prop_assert_eq!(crate::kmp::find(&text, &pattern), want.clone());
            prop_assert_eq!(crate::horspool::find(&text, &pattern), want);
        }
    }
}
