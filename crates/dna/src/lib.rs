//! # kmm-dna
//!
//! Substrate crate of the `bwt-kmismatch` suite: the DNA alphabet, 2-bit
//! packed sequences, FASTA I/O, synthetic genome generation and a
//! `wgsim`-style read simulator.
//!
//! All other crates in the workspace operate on *encoded* sequences:
//! `&[u8]` slices whose values are the alphabet codes `0..=4` with
//! `0 = '$' < 1 = 'a' < 2 = 'c' < 3 = 'g' < 4 = 't'` (paper Section III-A).
//! A *text* is an encoded sequence whose final (and only) sentinel is `$`;
//! a *pattern* is sentinel-free.

pub mod alphabet;
pub mod fasta;
pub mod fastq;
pub mod genome;
pub mod hamming;
pub mod packed;
pub mod reads;
pub mod stats;

pub use alphabet::{
    complement, decode, decode_base, decode_string, encode, encode_base, encode_text,
    is_valid_text, reverse_complement, AlphabetError, BASES, BASE_CODES, SENTINEL, SIGMA,
};
pub use hamming::{hamming, hamming_bounded, mismatch_positions};
pub use packed::PackedSeq;
pub use reads::{paper_reads, ErrorProfile, ReadSimConfig, ReadSimulator, SimulatedRead};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::alphabet::{decode, encode, reverse_complement};
    use crate::hamming::{hamming, hamming_bounded};
    use crate::packed::PackedSeq;

    fn dna_codes(max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(1u8..=4, 0..max)
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(codes in dna_codes(256)) {
            let ascii = decode(&codes);
            prop_assert_eq!(encode(&ascii).unwrap(), codes);
        }

        #[test]
        fn packed_roundtrip(codes in dna_codes(512)) {
            let p = PackedSeq::from_codes(&codes);
            prop_assert_eq!(p.to_codes(), codes);
        }

        #[test]
        fn revcomp_is_involution(codes in dna_codes(256)) {
            prop_assert_eq!(reverse_complement(&reverse_complement(&codes)), codes);
        }

        #[test]
        fn hamming_is_a_metric(
            len in 0usize..64,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a: Vec<u8> = (0..len).map(|_| rng.gen_range(1..=4)).collect();
            let b: Vec<u8> = (0..len).map(|_| rng.gen_range(1..=4)).collect();
            let c: Vec<u8> = (0..len).map(|_| rng.gen_range(1..=4)).collect();
            // Symmetry, identity and triangle inequality.
            prop_assert_eq!(hamming(&a, &b), hamming(&b, &a));
            prop_assert_eq!(hamming(&a, &a), 0);
            prop_assert!(hamming(&a, &c) <= hamming(&a, &b) + hamming(&b, &c));
        }

        #[test]
        fn bounded_agrees_with_exact(
            len in 0usize..64,
            bound in 0usize..8,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a: Vec<u8> = (0..len).map(|_| rng.gen_range(1..=4)).collect();
            let b: Vec<u8> = (0..len).map(|_| rng.gen_range(1..=4)).collect();
            let d = hamming(&a, &b);
            match hamming_bounded(&a, &b, bound) {
                Some(x) => { prop_assert_eq!(x, d); prop_assert!(d <= bound); }
                None => prop_assert!(d > bound),
            }
        }
    }
}
