//! Minimal FASTQ reading and writing.
//!
//! Sequencing reads — the pattern workload of the paper's evaluation —
//! ship as FASTQ in practice. This module parses the four-line record
//! format (no multi-line sequences, which virtually no modern tool emits),
//! validates separator/quality consistency, and encodes bases on the fly.

use std::io::{self, BufRead, Write};

use crate::alphabet::{decode_base, encode, AlphabetError};

/// One FASTQ record with its sequence encoded to base codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Header line without the leading `@`.
    pub id: String,
    /// Encoded sequence (codes 1..=4).
    pub seq: Vec<u8>,
    /// Phred+33 quality string, same length as `seq`.
    pub quality: Vec<u8>,
}

impl FastqRecord {
    /// Phred quality scores (0-based, already de-offset).
    pub fn phred_scores(&self) -> impl Iterator<Item = u8> + '_ {
        self.quality.iter().map(|&q| q.saturating_sub(33))
    }

    /// Mean Phred score; 0.0 for an empty record.
    pub fn mean_quality(&self) -> f64 {
        if self.quality.is_empty() {
            return 0.0;
        }
        self.phred_scores().map(|q| q as f64).sum::<f64>() / self.quality.len() as f64
    }
}

/// Errors from FASTQ parsing.
#[derive(Debug)]
pub enum FastqError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Record truncated: fewer than four lines remained.
    Truncated { record: usize },
    /// Header did not start with `@`.
    BadHeader { record: usize },
    /// Separator line did not start with `+`.
    BadSeparator { record: usize },
    /// Sequence and quality lengths differ.
    LengthMismatch {
        record: usize,
        seq: usize,
        quality: usize,
    },
    /// Invalid base character.
    Alphabet {
        record: usize,
        source: AlphabetError,
    },
}

impl std::fmt::Display for FastqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastqError::Io(e) => write!(f, "fastq i/o error: {e}"),
            FastqError::Truncated { record } => {
                write!(f, "record {record}: truncated (needs 4 lines)")
            }
            FastqError::BadHeader { record } => {
                write!(f, "record {record}: header must start with '@'")
            }
            FastqError::BadSeparator { record } => {
                write!(f, "record {record}: separator must start with '+'")
            }
            FastqError::LengthMismatch {
                record,
                seq,
                quality,
            } => write!(
                f,
                "record {record}: sequence ({seq}) and quality ({quality}) lengths differ"
            ),
            FastqError::Alphabet { record, source } => {
                write!(f, "record {record}: {source}")
            }
        }
    }
}

impl std::error::Error for FastqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FastqError::Io(e) => Some(e),
            FastqError::Alphabet { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for FastqError {
    fn from(e: io::Error) -> Self {
        FastqError::Io(e)
    }
}

/// Parse every record from a reader.
pub fn read_fastq<R: BufRead>(reader: R) -> Result<Vec<FastqRecord>, FastqError> {
    let mut lines = reader.lines();
    let mut records = Vec::new();
    let mut index = 0usize;
    while let Some(header) = lines.next() {
        let header = header?;
        if header.trim().is_empty() {
            continue; // tolerate trailing blank lines
        }
        let mut next_line = || -> Result<String, FastqError> {
            lines
                .next()
                .ok_or(FastqError::Truncated { record: index })?
                .map_err(FastqError::from)
        };
        let seq_line = next_line()?;
        let sep = next_line()?;
        let qual = next_line()?;

        let id = header
            .strip_prefix('@')
            .ok_or(FastqError::BadHeader { record: index })?
            .trim()
            .to_string();
        if !sep.starts_with('+') {
            return Err(FastqError::BadSeparator { record: index });
        }
        let seq_bytes = seq_line.trim().as_bytes();
        let quality = qual.trim().as_bytes().to_vec();
        if seq_bytes.len() != quality.len() {
            return Err(FastqError::LengthMismatch {
                record: index,
                seq: seq_bytes.len(),
                quality: quality.len(),
            });
        }
        let seq = encode(seq_bytes).map_err(|source| FastqError::Alphabet {
            record: index,
            source,
        })?;
        records.push(FastqRecord { id, seq, quality });
        index += 1;
    }
    Ok(records)
}

/// Parse FASTQ from an in-memory string.
pub fn read_fastq_str(s: &str) -> Result<Vec<FastqRecord>, FastqError> {
    read_fastq(s.as_bytes())
}

/// Write records in four-line FASTQ format.
pub fn write_fastq<W: Write>(mut w: W, records: &[FastqRecord]) -> io::Result<()> {
    for rec in records {
        assert_eq!(
            rec.seq.len(),
            rec.quality.len(),
            "record '{}' has inconsistent lengths",
            rec.id
        );
        writeln!(w, "@{}", rec.id)?;
        let ascii: Vec<u8> = rec.seq.iter().map(|&c| decode_base(c)).collect();
        w.write_all(&ascii)?;
        w.write_all(b"\n+\n")?;
        w.write_all(&rec.quality)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Render simulated reads as FASTQ with a constant quality (wgsim-style).
pub fn simulated_to_fastq(reads: &[crate::reads::SimulatedRead], phred: u8) -> Vec<FastqRecord> {
    reads
        .iter()
        .enumerate()
        .map(|(i, r)| FastqRecord {
            id: format!(
                "read_{i}_{}_{}",
                r.origin,
                if r.reverse { "rev" } else { "fwd" }
            ),
            seq: r.seq.clone(),
            quality: vec![phred + 33; r.seq.len()],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "@r1 first\nACGT\n+\nIIII\n@r2\nGGA\n+r2\nJJJ\n";

    #[test]
    fn parses_records() {
        let recs = read_fastq_str(SAMPLE).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "r1 first");
        assert_eq!(recs[0].seq, vec![1, 2, 3, 4]);
        assert_eq!(recs[0].quality, b"IIII".to_vec());
        assert_eq!(recs[1].seq, vec![3, 3, 1]);
    }

    #[test]
    fn quality_scores_deoffset() {
        let recs = read_fastq_str(SAMPLE).unwrap();
        // 'I' = 73 -> phred 40.
        assert!(recs[0].phred_scores().all(|q| q == 40));
        assert!((recs[0].mean_quality() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn roundtrip() {
        let recs = read_fastq_str(SAMPLE).unwrap();
        let mut buf = Vec::new();
        write_fastq(&mut buf, &recs).unwrap();
        let again = read_fastq(&buf[..]).unwrap();
        // The separator comment is not preserved (written as bare '+').
        assert_eq!(again.len(), recs.len());
        assert_eq!(again[0], recs[0]);
        assert_eq!(again[1].seq, recs[1].seq);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            read_fastq_str("rX\nAC\n+\nII\n").unwrap_err(),
            FastqError::BadHeader { record: 0 }
        ));
        assert!(matches!(
            read_fastq_str("@r\nAC\nII\nII\n").unwrap_err(),
            FastqError::BadSeparator { record: 0 }
        ));
        assert!(matches!(
            read_fastq_str("@r\nAC\n+\nI\n").unwrap_err(),
            FastqError::LengthMismatch {
                record: 0,
                seq: 2,
                quality: 1
            }
        ));
        assert!(matches!(
            read_fastq_str("@r\nAC\n+\n").unwrap_err(),
            FastqError::Truncated { record: 0 }
        ));
        assert!(matches!(
            read_fastq_str("@r\nAXC\n+\nIII\n").unwrap_err(),
            FastqError::Alphabet { record: 0, .. }
        ));
    }

    #[test]
    fn empty_input_and_blank_tail() {
        assert!(read_fastq_str("").unwrap().is_empty());
        let recs = read_fastq_str("@r\nA\n+\nI\n\n\n").unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn simulated_reads_to_fastq() {
        let g = crate::genome::uniform(500, 3);
        let reads = crate::reads::ReadSimulator::new(&g, crate::reads::ReadSimConfig::paper(50), 1)
            .reads(3);
        let recs = simulated_to_fastq(&reads, 30);
        assert_eq!(recs.len(), 3);
        assert!(recs[0].id.starts_with("read_0_"));
        assert!(recs[0].phred_scores().all(|q| q == 30));
        let mut buf = Vec::new();
        write_fastq(&mut buf, &recs).unwrap();
        assert_eq!(read_fastq(&buf[..]).unwrap().len(), 3);
    }

    #[test]
    fn error_display_strings() {
        let e = FastqError::LengthMismatch {
            record: 3,
            seq: 5,
            quality: 4,
        };
        assert!(e.to_string().contains("record 3"));
        let e = FastqError::Truncated { record: 1 };
        assert!(e.to_string().contains("4 lines"));
    }
}
