//! The DNA alphabet used throughout the suite.
//!
//! Following Section III-A of the paper, every target string terminates with
//! a sentinel `$` that is alphabetically smaller than every other character:
//! `$ < a < c < g < t`. We encode the five symbols as the integer codes
//! `0..=4`, which keeps rank structures tiny and lets the BWT machinery
//! index arrays directly by symbol code.

/// Number of symbols in the indexed alphabet, including the sentinel.
pub const SIGMA: usize = 5;

/// Number of real DNA bases (`a`, `c`, `g`, `t`).
pub const BASES: usize = 4;

/// Integer code of the sentinel `$`.
pub const SENTINEL: u8 = 0;

/// Integer codes of the four bases in alphabetical order.
pub const BASE_CODES: [u8; BASES] = [1, 2, 3, 4];

/// Errors raised when decoding untrusted byte input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlphabetError {
    /// A byte that is not one of `aAcCgGtT$` (or `nN`, which callers may
    /// choose to normalise first) was encountered at the given offset.
    InvalidByte { byte: u8, position: usize },
    /// A sentinel appeared somewhere other than the final position.
    InteriorSentinel { position: usize },
}

impl std::fmt::Display for AlphabetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlphabetError::InvalidByte { byte, position } => {
                write!(f, "invalid DNA byte 0x{byte:02x} at position {position}")
            }
            AlphabetError::InteriorSentinel { position } => {
                write!(
                    f,
                    "sentinel '$' in the interior of a sequence at position {position}"
                )
            }
        }
    }
}

impl std::error::Error for AlphabetError {}

/// Encode one ASCII base (case-insensitive) to its integer code.
///
/// Returns `None` for bytes outside `$aAcCgGtT`.
#[inline]
pub fn encode_base(b: u8) -> Option<u8> {
    match b {
        b'$' => Some(0),
        b'a' | b'A' => Some(1),
        b'c' | b'C' => Some(2),
        b'g' | b'G' => Some(3),
        b't' | b'T' => Some(4),
        _ => None,
    }
}

/// Decode an integer code back to its lowercase ASCII representation.
///
/// # Panics
/// Panics if `code >= SIGMA`.
#[inline]
pub fn decode_base(code: u8) -> u8 {
    const TABLE: [u8; SIGMA] = [b'$', b'a', b'c', b'g', b't'];
    TABLE[code as usize]
}

/// Watson-Crick complement of a base code. The sentinel maps to itself.
///
/// # Panics
/// Panics if `code >= SIGMA`.
#[inline]
pub fn complement(code: u8) -> u8 {
    // $->$, a<->t, c<->g
    const TABLE: [u8; SIGMA] = [0, 4, 3, 2, 1];
    TABLE[code as usize]
}

/// Encode an ASCII DNA string (no sentinel) into integer codes.
///
/// `N`/`n` bytes, common in real FASTA data, are normalised to `a` so that
/// downstream structures never see an out-of-alphabet symbol; every other
/// unknown byte is an error.
pub fn encode(ascii: &[u8]) -> Result<Vec<u8>, AlphabetError> {
    let mut out = Vec::with_capacity(ascii.len());
    for (position, &b) in ascii.iter().enumerate() {
        if b == b'$' {
            return Err(AlphabetError::InteriorSentinel { position });
        }
        let code = match b {
            b'n' | b'N' => 1,
            _ => encode_base(b).ok_or(AlphabetError::InvalidByte { byte: b, position })?,
        };
        out.push(code);
    }
    Ok(out)
}

/// Encode an ASCII DNA string and append the sentinel, producing a text
/// ready for suffix-array / BWT construction.
pub fn encode_text(ascii: &[u8]) -> Result<Vec<u8>, AlphabetError> {
    let mut v = encode(ascii)?;
    v.push(SENTINEL);
    Ok(v)
}

/// Decode integer codes back into an ASCII string (sentinel included if present).
pub fn decode(codes: &[u8]) -> Vec<u8> {
    codes.iter().map(|&c| decode_base(c)).collect()
}

/// Decode into a `String` for display purposes.
pub fn decode_string(codes: &[u8]) -> String {
    String::from_utf8(decode(codes)).expect("decoded DNA is always ASCII")
}

/// Reverse-complement of an encoded (sentinel-free) sequence.
pub fn reverse_complement(codes: &[u8]) -> Vec<u8> {
    codes.iter().rev().map(|&c| complement(c)).collect()
}

/// True if every code is a valid symbol and the sentinel, if present,
/// occurs exactly once and at the end.
pub fn is_valid_text(codes: &[u8]) -> bool {
    if codes.is_empty() {
        return false;
    }
    let last = codes.len() - 1;
    codes
        .iter()
        .enumerate()
        .all(|(i, &c)| (c as usize) < SIGMA && (c != SENTINEL || i == last))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let s = b"acgtACGT";
        let codes = encode(s).unwrap();
        assert_eq!(codes, vec![1, 2, 3, 4, 1, 2, 3, 4]);
        assert_eq!(decode_string(&codes), "acgtacgt");
    }

    #[test]
    fn sentinel_is_smallest() {
        assert!(SENTINEL < BASE_CODES[0]);
        for w in BASE_CODES.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn encode_rejects_garbage() {
        assert_eq!(
            encode(b"acxg"),
            Err(AlphabetError::InvalidByte {
                byte: b'x',
                position: 2
            })
        );
    }

    #[test]
    fn encode_rejects_interior_sentinel() {
        assert_eq!(
            encode(b"ac$g"),
            Err(AlphabetError::InteriorSentinel { position: 2 })
        );
    }

    #[test]
    fn encode_normalises_n() {
        assert_eq!(encode(b"aNnt").unwrap(), vec![1, 1, 1, 4]);
    }

    #[test]
    fn encode_text_appends_sentinel() {
        let t = encode_text(b"acg").unwrap();
        assert_eq!(t, vec![1, 2, 3, 0]);
        assert!(is_valid_text(&t));
    }

    #[test]
    fn complement_is_involution() {
        for c in 0..SIGMA as u8 {
            assert_eq!(complement(complement(c)), c);
        }
        assert_eq!(complement(1), 4); // a -> t
        assert_eq!(complement(2), 3); // c -> g
    }

    #[test]
    fn reverse_complement_known() {
        // acgt -> acgt is its own reverse complement.
        let codes = encode(b"acgt").unwrap();
        assert_eq!(reverse_complement(&codes), codes);
        let codes = encode(b"aacg").unwrap();
        assert_eq!(decode_string(&reverse_complement(&codes)), "cgtt");
    }

    #[test]
    fn validity_checks() {
        assert!(is_valid_text(&[1, 2, 0]));
        assert!(!is_valid_text(&[1, 0, 2]));
        assert!(!is_valid_text(&[]));
        assert!(!is_valid_text(&[1, 9, 0]));
        // A bare sentinel is a valid (empty) text.
        assert!(is_valid_text(&[0]));
        // Sentinel-free sequences are valid as patterns.
        assert!(is_valid_text(&[1, 2, 3, 4]));
    }

    #[test]
    fn error_display() {
        let e = AlphabetError::InvalidByte {
            byte: b'x',
            position: 7,
        };
        assert!(e.to_string().contains("0x78"));
        let e = AlphabetError::InteriorSentinel { position: 3 };
        assert!(e.to_string().contains("position 3"));
    }
}
