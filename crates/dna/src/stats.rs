//! Sequence statistics.
//!
//! Used to validate that the synthetic genomes substitute faithfully for
//! the paper's assemblies (DESIGN.md §3): GC content, k-mer entropy,
//! repeat content (fraction of duplicated k-mers), and homopolymer runs
//! are the statistics that drive S-tree/M-tree branching behaviour.

use std::collections::HashMap;

use crate::alphabet::SIGMA;

/// Count all k-mers of an encoded, sentinel-free sequence.
///
/// # Panics
/// Panics if `k == 0`, `k > 32`, or the sequence contains non-base codes.
pub fn kmer_counts(seq: &[u8], k: usize) -> HashMap<u64, u32> {
    assert!((1..=32).contains(&k), "k must be in 1..=32");
    let mut counts = HashMap::new();
    if seq.len() < k {
        return counts;
    }
    let mask: u64 = if k == 32 {
        u64::MAX
    } else {
        (1u64 << (2 * k)) - 1
    };
    let mut key = 0u64;
    for (i, &c) in seq.iter().enumerate() {
        assert!(c >= 1 && (c as usize) < SIGMA, "non-base code {c}");
        key = ((key << 2) | (c as u64 - 1)) & mask;
        if i + 1 >= k {
            *counts.entry(key).or_insert(0) += 1;
        }
    }
    counts
}

/// Decode a 2-bit packed k-mer key back into base codes.
pub fn decode_kmer(key: u64, k: usize) -> Vec<u8> {
    (0..k)
        .rev()
        .map(|i| ((key >> (2 * i)) & 0b11) as u8 + 1)
        .collect()
}

/// Shannon entropy (bits/symbol) of the k-mer distribution; ranges from 0
/// (single repeated k-mer) to `2k` (uniform over all k-mers).
pub fn kmer_entropy(seq: &[u8], k: usize) -> f64 {
    let counts = kmer_counts(seq, k);
    let total: u64 = counts.values().map(|&c| c as u64).sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Fraction of k-mer *positions* whose k-mer occurs more than once — a
/// proxy for repeat content at window size k.
pub fn duplicated_kmer_fraction(seq: &[u8], k: usize) -> f64 {
    let counts = kmer_counts(seq, k);
    let total: u64 = counts.values().map(|&c| c as u64).sum();
    if total == 0 {
        return 0.0;
    }
    let dup: u64 = counts.values().filter(|&&c| c > 1).map(|&c| c as u64).sum();
    dup as f64 / total as f64
}

/// Length of the longest homopolymer run.
pub fn longest_run(seq: &[u8]) -> usize {
    let mut best = 0usize;
    let mut cur = 0usize;
    let mut prev = 0u8;
    for &c in seq {
        if c == prev {
            cur += 1;
        } else {
            cur = 1;
            prev = c;
        }
        best = best.max(cur);
    }
    best
}

/// Summary statistics bundle for a sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqStats {
    /// Sequence length in bases.
    pub len: usize,
    /// GC fraction.
    pub gc: f64,
    /// 12-mer entropy in bits (max 24).
    pub entropy12: f64,
    /// Fraction of duplicated 16-mers (repeat-content proxy).
    pub repeat16: f64,
    /// Longest homopolymer run.
    pub longest_run: usize,
}

/// Compute the summary bundle.
pub fn seq_stats(seq: &[u8]) -> SeqStats {
    SeqStats {
        len: seq.len(),
        gc: crate::packed::gc_content(seq),
        entropy12: kmer_entropy(seq, 12),
        repeat16: duplicated_kmer_fraction(seq, 16),
        longest_run: longest_run(seq),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode;

    #[test]
    fn kmer_counts_known() {
        let seq = encode(b"acgtacg").unwrap();
        let counts = kmer_counts(&seq, 4);
        // 4-mers: acgt, cgta, gtac, tacg -> all distinct, 4 positions.
        assert_eq!(counts.len(), 4);
        assert!(counts.values().all(|&c| c == 1));
        let counts = kmer_counts(&seq, 3);
        // acg appears twice.
        assert_eq!(counts.values().filter(|&&c| c == 2).count(), 1);
    }

    #[test]
    fn kmer_roundtrip() {
        let seq = encode(b"gattaca").unwrap();
        let counts = kmer_counts(&seq, 7);
        assert_eq!(counts.len(), 1);
        let (&key, &c) = counts.iter().next().unwrap();
        assert_eq!(c, 1);
        assert_eq!(decode_kmer(key, 7), seq);
    }

    #[test]
    fn short_sequence_yields_nothing() {
        let seq = encode(b"ac").unwrap();
        assert!(kmer_counts(&seq, 3).is_empty());
        assert_eq!(kmer_entropy(&seq, 3), 0.0);
        assert_eq!(duplicated_kmer_fraction(&seq, 3), 0.0);
    }

    #[test]
    fn entropy_extremes() {
        let flat = encode(&b"a".repeat(100)).unwrap();
        assert!(kmer_entropy(&flat, 4) < 1e-9);
        // A uniform random sequence approaches the maximum (2k bits, capped
        // by the number of positions).
        let rnd = crate::genome::uniform(100_000, 77);
        let h = kmer_entropy(&rnd, 4);
        assert!(h > 7.9 && h <= 8.0, "h = {h}");
    }

    #[test]
    fn repeat_fraction_orders_generators() {
        let rnd = crate::genome::uniform(50_000, 1);
        let rep = crate::genome::markov(
            50_000,
            &crate::genome::MarkovConfig {
                repeat_fraction: 0.5,
                ..Default::default()
            },
            1,
        );
        assert!(duplicated_kmer_fraction(&rep, 16) > duplicated_kmer_fraction(&rnd, 16) + 0.1);
    }

    #[test]
    fn longest_run_cases() {
        assert_eq!(longest_run(&[]), 0);
        assert_eq!(longest_run(&encode(b"acgt").unwrap()), 1);
        assert_eq!(longest_run(&encode(b"aaacaa").unwrap()), 3);
        assert_eq!(longest_run(&encode(b"ttttt").unwrap()), 5);
    }

    #[test]
    fn stats_bundle() {
        let g = crate::genome::markov(20_000, &Default::default(), 9);
        let s = seq_stats(&g);
        assert_eq!(s.len, 20_000);
        assert!(s.gc > 0.2 && s.gc < 0.8);
        assert!(s.entropy12 > 8.0);
        assert!(
            s.repeat16 > 0.05,
            "expected repeat content, got {}",
            s.repeat16
        );
        assert!(s.longest_run >= 3);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn rejects_zero_k() {
        kmer_counts(&[1, 2], 0);
    }
}
