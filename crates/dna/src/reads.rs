//! `wgsim`-style read simulation.
//!
//! The paper simulates 50 reads of 100–300 bp per genome with the SAMtools
//! `wgsim` program's default single-read model. This module reproduces the
//! parts of that model that matter for k-mismatch search: reads are sampled
//! uniformly from the genome, carry per-base sequencing errors (wgsim
//! default `-e 0.02`) and optional SNP-style mutations (`-r 0.001`), and may
//! be drawn from either strand.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::alphabet::{reverse_complement, BASE_CODES};

/// How the per-base error rate varies along a read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorProfile {
    /// Constant error rate at every cycle (wgsim's model).
    Uniform,
    /// Illumina-like linear ramp: the rate at the last cycle is
    /// `end_factor` times the rate at the first (quality decays toward
    /// the 3' end; typical `end_factor` 3-5).
    LinearRamp {
        /// Multiplier applied at the final read position.
        end_factor: f64,
    },
}

/// Parameters of the simulator, mirroring `wgsim`'s defaults.
#[derive(Debug, Clone)]
pub struct ReadSimConfig {
    /// Read length in bases.
    pub read_len: usize,
    /// Per-base sequencing error (substitution) rate at the first cycle.
    /// wgsim default: 0.02.
    pub error_rate: f64,
    /// Per-base mutation (SNP) rate. wgsim default: 0.001.
    pub mutation_rate: f64,
    /// Probability that a read is taken from the reverse strand.
    /// The paper indexes only the forward strand, so experiments set this
    /// to 0.0; the default matches wgsim's strand-symmetric sampling.
    pub reverse_strand_prob: f64,
    /// Positional error model.
    pub profile: ErrorProfile,
}

impl Default for ReadSimConfig {
    fn default() -> Self {
        ReadSimConfig {
            read_len: 100,
            error_rate: 0.02,
            mutation_rate: 0.001,
            reverse_strand_prob: 0.5,
            profile: ErrorProfile::Uniform,
        }
    }
}

impl ReadSimConfig {
    /// Configuration used by the paper's experiments: given read length,
    /// wgsim default error model, forward strand only.
    pub fn paper(read_len: usize) -> Self {
        ReadSimConfig {
            read_len,
            reverse_strand_prob: 0.0,
            ..Default::default()
        }
    }

    /// An Illumina-like single-end profile: errors ramp up 4x toward the
    /// 3' end of the read.
    pub fn illumina(read_len: usize) -> Self {
        ReadSimConfig {
            read_len,
            profile: ErrorProfile::LinearRamp { end_factor: 4.0 },
            ..Default::default()
        }
    }

    /// Substitution probability at 0-based cycle `i`.
    pub fn rate_at(&self, i: usize) -> f64 {
        let base = self.error_rate + self.mutation_rate;
        let scaled = match self.profile {
            ErrorProfile::Uniform => base,
            ErrorProfile::LinearRamp { end_factor } => {
                let t = if self.read_len <= 1 {
                    0.0
                } else {
                    i as f64 / (self.read_len - 1) as f64
                };
                base * (1.0 + (end_factor - 1.0) * t)
            }
        };
        scaled.clamp(0.0, 1.0)
    }
}

/// A simulated read and its provenance (for verifying mappers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulatedRead {
    /// The read sequence, encoded (codes 1..=4).
    pub seq: Vec<u8>,
    /// 0-based start of the sampled window on the forward strand.
    pub origin: usize,
    /// True if the read was reverse-complemented.
    pub reverse: bool,
    /// Number of bases altered relative to the genome window.
    pub edits: usize,
}

/// Deterministic read simulator over an encoded, sentinel-free genome.
#[derive(Debug)]
pub struct ReadSimulator<'g> {
    genome: &'g [u8],
    config: ReadSimConfig,
    rng: StdRng,
}

impl<'g> ReadSimulator<'g> {
    /// Create a simulator.
    ///
    /// # Panics
    /// Panics if the genome is shorter than the configured read length or
    /// if any rate is outside `[0, 1]`.
    pub fn new(genome: &'g [u8], config: ReadSimConfig, seed: u64) -> Self {
        assert!(
            genome.len() >= config.read_len && config.read_len > 0,
            "genome ({}) shorter than read length ({})",
            genome.len(),
            config.read_len
        );
        for (name, v) in [
            ("error_rate", config.error_rate),
            ("mutation_rate", config.mutation_rate),
            ("reverse_strand_prob", config.reverse_strand_prob),
        ] {
            assert!(
                (0.0..=1.0).contains(&v),
                "{name} must be in [0, 1], got {v}"
            );
        }
        ReadSimulator {
            genome,
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draw the next read.
    pub fn next_read(&mut self) -> SimulatedRead {
        let m = self.config.read_len;
        let origin = self.rng.gen_range(0..=self.genome.len() - m);
        let mut seq = self.genome[origin..origin + m].to_vec();
        let reverse = self.rng.gen_bool(self.config.reverse_strand_prob);
        if reverse {
            seq = reverse_complement(&seq);
        }
        let mut edits = 0usize;
        for (i, b) in seq.iter_mut().enumerate() {
            if self.rng.gen_bool(self.config.rate_at(i)) {
                let old = *b;
                // Substitute with a uniformly random *different* base.
                loop {
                    let nb = BASE_CODES[self.rng.gen_range(0..4usize)];
                    if nb != old {
                        *b = nb;
                        break;
                    }
                }
                edits += 1;
            }
        }
        SimulatedRead {
            seq,
            origin,
            reverse,
            edits,
        }
    }

    /// Draw a batch of reads.
    pub fn reads(&mut self, count: usize) -> Vec<SimulatedRead> {
        (0..count).map(|_| self.next_read()).collect()
    }
}

/// Convenience: the paper's workload — `count` forward-strand reads of
/// length `read_len` with the wgsim default error model.
pub fn paper_reads(genome: &[u8], count: usize, read_len: usize, seed: u64) -> Vec<SimulatedRead> {
    ReadSimulator::new(genome, ReadSimConfig::paper(read_len), seed).reads(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::uniform;
    use crate::hamming::hamming;

    #[test]
    fn reads_are_deterministic() {
        let g = uniform(10_000, 3);
        let a = paper_reads(&g, 10, 100, 9);
        let b = paper_reads(&g, 10, 100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn forward_reads_match_origin_up_to_edits() {
        let g = uniform(10_000, 3);
        for r in paper_reads(&g, 50, 120, 11) {
            assert!(!r.reverse);
            assert_eq!(r.seq.len(), 120);
            let window = &g[r.origin..r.origin + 120];
            assert_eq!(hamming(&r.seq, window), r.edits);
        }
    }

    #[test]
    fn error_rate_is_respected() {
        let g = uniform(100_000, 4);
        let cfg = ReadSimConfig {
            read_len: 100,
            error_rate: 0.05,
            mutation_rate: 0.0,
            reverse_strand_prob: 0.0,
            profile: ErrorProfile::Uniform,
        };
        let mut sim = ReadSimulator::new(&g, cfg, 17);
        let total_edits: usize = sim.reads(400).iter().map(|r| r.edits).sum();
        let rate = total_edits as f64 / (400.0 * 100.0);
        assert!((rate - 0.05).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    fn zero_error_reads_are_exact() {
        let g = uniform(5_000, 5);
        let cfg = ReadSimConfig {
            read_len: 80,
            error_rate: 0.0,
            mutation_rate: 0.0,
            reverse_strand_prob: 0.0,
            profile: ErrorProfile::Uniform,
        };
        let mut sim = ReadSimulator::new(&g, cfg, 2);
        for r in sim.reads(20) {
            assert_eq!(r.edits, 0);
            assert_eq!(&g[r.origin..r.origin + 80], &r.seq[..]);
        }
    }

    #[test]
    fn reverse_strand_reads_reverse_complement() {
        let g = uniform(5_000, 6);
        let cfg = ReadSimConfig {
            read_len: 60,
            error_rate: 0.0,
            mutation_rate: 0.0,
            reverse_strand_prob: 1.0,
            profile: ErrorProfile::Uniform,
        };
        let mut sim = ReadSimulator::new(&g, cfg, 3);
        for r in sim.reads(10) {
            assert!(r.reverse);
            let window = &g[r.origin..r.origin + 60];
            assert_eq!(reverse_complement(window), r.seq);
        }
    }

    #[test]
    fn ramp_profile_skews_errors_to_the_tail() {
        let g = uniform(200_000, 8);
        let cfg = ReadSimConfig {
            read_len: 100,
            error_rate: 0.04,
            mutation_rate: 0.0,
            reverse_strand_prob: 0.0,
            profile: ErrorProfile::LinearRamp { end_factor: 5.0 },
        };
        let mut sim = ReadSimulator::new(&g, cfg, 6);
        let mut head_errors = 0usize;
        let mut tail_errors = 0usize;
        for r in sim.reads(500) {
            let window = &g[r.origin..r.origin + 100];
            for (i, (a, b)) in r.seq.iter().zip(window).enumerate() {
                if a != b {
                    if i < 50 {
                        head_errors += 1;
                    } else {
                        tail_errors += 1;
                    }
                }
            }
        }
        assert!(
            tail_errors as f64 > 1.5 * head_errors as f64,
            "head {head_errors} vs tail {tail_errors}"
        );
    }

    #[test]
    fn rate_at_profiles() {
        let uni = ReadSimConfig::paper(100);
        assert!((uni.rate_at(0) - uni.rate_at(99)).abs() < 1e-12);
        let ill = ReadSimConfig::illumina(100);
        assert!(ill.rate_at(99) > 3.5 * ill.rate_at(0));
        assert!((ill.rate_at(0) - (0.02 + 0.001)).abs() < 1e-12);
        // Single-base reads degenerate to the base rate.
        let one = ReadSimConfig {
            read_len: 1,
            ..ReadSimConfig::illumina(1)
        };
        assert!((one.rate_at(0) - (0.02 + 0.001)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shorter than read length")]
    fn rejects_too_short_genome() {
        let g = uniform(10, 0);
        ReadSimulator::new(&g, ReadSimConfig::paper(100), 0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn rejects_bad_rate() {
        let g = uniform(1000, 0);
        let cfg = ReadSimConfig {
            error_rate: 1.5,
            ..ReadSimConfig::paper(50)
        };
        ReadSimulator::new(&g, cfg, 0);
    }

    #[test]
    fn full_length_reads() {
        let g = uniform(100, 1);
        let cfg = ReadSimConfig {
            read_len: 100,
            error_rate: 0.0,
            mutation_rate: 0.0,
            reverse_strand_prob: 0.0,
            profile: ErrorProfile::Uniform,
        };
        let mut sim = ReadSimulator::new(&g, cfg, 4);
        let r = sim.next_read();
        assert_eq!(r.origin, 0);
        assert_eq!(r.seq, g);
    }
}
