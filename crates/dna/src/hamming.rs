//! Hamming-distance utilities shared by every matcher in the suite.

/// Hamming distance between two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn hamming(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal lengths");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Hamming distance, stopping early once it exceeds `bound`.
///
/// Returns `Some(d)` with `d <= bound` or `None` if the distance is larger.
#[inline]
pub fn hamming_bounded(a: &[u8], b: &[u8], bound: usize) -> Option<usize> {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal lengths");
    let mut d = 0usize;
    for (x, y) in a.iter().zip(b) {
        if x != y {
            d += 1;
            if d > bound {
                return None;
            }
        }
    }
    Some(d)
}

/// Positions (0-based) where `a` and `b` differ, capped at `max` entries.
pub fn mismatch_positions(a: &[u8], b: &[u8], max: usize) -> Vec<usize> {
    assert_eq!(a.len(), b.len(), "mismatch positions require equal lengths");
    let mut out = Vec::new();
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x != y {
            out.push(i);
            if out.len() == max {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming(b"acgt", b"acgt"), 0);
        assert_eq!(hamming(b"acgt", b"tcga"), 2);
        assert_eq!(hamming(b"", b""), 0);
    }

    #[test]
    fn paper_intro_example() {
        // Section I: r = aaaaacaaac vs s[3..12] = acacagaagc differ at 4 positions.
        let r = b"aaaaacaaac";
        let w = b"acacagaagc";
        assert_eq!(hamming(r, w), 4);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_length_mismatch_panics() {
        hamming(b"ab", b"abc");
    }

    #[test]
    fn bounded_matches_exact_within_bound() {
        assert_eq!(hamming_bounded(b"acgt", b"tcga", 2), Some(2));
        assert_eq!(hamming_bounded(b"acgt", b"tcga", 1), None);
        assert_eq!(hamming_bounded(b"acgt", b"acgt", 0), Some(0));
    }

    #[test]
    fn mismatch_positions_capped() {
        let p = mismatch_positions(b"aaaa", b"tttt", 2);
        assert_eq!(p, vec![0, 1]);
        let p = mismatch_positions(b"aaaa", b"atat", 10);
        assert_eq!(p, vec![1, 3]);
    }
}
