//! 2-bit packed DNA sequences.
//!
//! The paper (Section V) stores `BWT(s̄)` using "2 bits to represent a
//! character in {a, c, g, t}". This module provides that representation for
//! sentinel-free base sequences: four bases per byte, plus O(1) random
//! access. Structures that must also carry the sentinel (the BWT's `L`
//! column) store the single `$` position out of band — see `kmm-bwt`.

use crate::alphabet::{BASES, SIGMA};

/// An immutable 2-bit packed sequence over the four DNA bases.
///
/// Base codes stored here are the *alphabet* codes `1..=4` shifted down to
/// `0..=3`; `get` shifts them back up so that callers only ever see the
/// canonical `1..=4` codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSeq {
    data: Vec<u8>,
    len: usize,
}

impl PackedSeq {
    /// Pack a slice of base codes (`1..=4`, no sentinel).
    ///
    /// # Panics
    /// Panics if any code is `0` (sentinel) or `>= SIGMA`.
    pub fn from_codes(codes: &[u8]) -> Self {
        let mut data = vec![0u8; codes.len().div_ceil(4)];
        for (i, &c) in codes.iter().enumerate() {
            assert!(
                c >= 1 && (c as usize) < SIGMA,
                "PackedSeq holds bases 1..=4 only, got {c} at {i}"
            );
            let two = c - 1;
            data[i / 4] |= two << ((i % 4) * 2);
        }
        PackedSeq {
            data,
            len: codes.len(),
        }
    }

    /// Number of bases stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bases are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base code (`1..=4`) at position `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        ((self.data[i / 4] >> ((i % 4) * 2)) & 0b11) + 1
    }

    /// Raw packed bytes (low two bits of each byte hold the first base).
    #[inline]
    pub fn raw(&self) -> &[u8] {
        &self.data
    }

    /// Iterate over the base codes.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Unpack into a plain code vector.
    pub fn to_codes(&self) -> Vec<u8> {
        self.iter().collect()
    }

    /// Heap bytes used by the packed payload.
    pub fn heap_bytes(&self) -> usize {
        self.data.len()
    }

    /// Count of each base (indexed by code `0..SIGMA`; index 0 is always 0).
    pub fn counts(&self) -> [usize; SIGMA] {
        let mut counts = [0usize; SIGMA];
        for c in self.iter() {
            counts[c as usize] += 1;
        }
        counts
    }
}

/// Fraction of `g`/`c` bases in an encoded, sentinel-free sequence.
/// Returns 0.0 for an empty sequence.
pub fn gc_content(codes: &[u8]) -> f64 {
    if codes.is_empty() {
        return 0.0;
    }
    let gc = codes.iter().filter(|&&c| c == 2 || c == 3).count();
    gc as f64 / codes.len() as f64
}

/// Histogram of base codes for a sentinel-free sequence.
pub fn base_histogram(codes: &[u8]) -> [usize; BASES] {
    let mut h = [0usize; BASES];
    for &c in codes {
        assert!(
            c >= 1 && (c as usize) < SIGMA,
            "base code out of range: {c}"
        );
        h[(c - 1) as usize] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode;

    #[test]
    fn pack_unpack_roundtrip() {
        let codes = encode(b"acgtacgtgca").unwrap();
        let p = PackedSeq::from_codes(&codes);
        assert_eq!(p.len(), codes.len());
        assert_eq!(p.to_codes(), codes);
    }

    #[test]
    fn get_matches_iter() {
        let codes = encode(b"ttgacca").unwrap();
        let p = PackedSeq::from_codes(&codes);
        for (i, c) in p.iter().enumerate() {
            assert_eq!(p.get(i), c);
        }
    }

    #[test]
    fn empty_sequence() {
        let p = PackedSeq::from_codes(&[]);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.to_codes(), Vec::<u8>::new());
        assert_eq!(p.heap_bytes(), 0);
    }

    #[test]
    fn packing_is_dense() {
        // 9 bases need ceil(9/4) = 3 bytes.
        let codes = encode(b"acgtacgta").unwrap();
        let p = PackedSeq::from_codes(&codes);
        assert_eq!(p.heap_bytes(), 3);
    }

    #[test]
    #[should_panic(expected = "bases 1..=4 only")]
    fn rejects_sentinel() {
        PackedSeq::from_codes(&[1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let p = PackedSeq::from_codes(&[1, 2]);
        p.get(2);
    }

    #[test]
    fn counts_work() {
        let codes = encode(b"aaccgtt").unwrap();
        let p = PackedSeq::from_codes(&codes);
        let c = p.counts();
        assert_eq!(c, [0, 2, 2, 1, 2]);
    }

    #[test]
    fn gc_content_known() {
        let codes = encode(b"acgt").unwrap();
        assert!((gc_content(&codes) - 0.5).abs() < 1e-12);
        assert_eq!(gc_content(&[]), 0.0);
        let codes = encode(b"aaaa").unwrap();
        assert_eq!(gc_content(&codes), 0.0);
        let codes = encode(b"gcgc").unwrap();
        assert_eq!(gc_content(&codes), 1.0);
    }

    #[test]
    fn histogram_known() {
        let codes = encode(b"aacgttt").unwrap();
        assert_eq!(base_histogram(&codes), [2, 1, 1, 3]);
    }
}
