//! Minimal FASTA reading and writing.
//!
//! The suite's experiments synthesise their genomes, but a downstream user
//! will want to index real assemblies; this module reads and writes the
//! subset of FASTA needed for that (multi-record, free line wrapping,
//! comments with `;`, case-insensitive bases, `N` normalisation).

use std::io::{self, BufRead, Write};

use crate::alphabet::{decode_base, encode, AlphabetError};

/// A FASTA record with its sequence already encoded to base codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header line without the leading `>`.
    pub id: String,
    /// Encoded sequence (codes 1..=4, no sentinel).
    pub seq: Vec<u8>,
}

/// Errors from FASTA parsing.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Sequence data before any `>` header.
    MissingHeader { line: usize },
    /// Invalid base character.
    Alphabet {
        record: String,
        source: AlphabetError,
    },
}

impl std::fmt::Display for FastaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "fasta i/o error: {e}"),
            FastaError::MissingHeader { line } => {
                write!(f, "sequence data before any '>' header at line {line}")
            }
            FastaError::Alphabet { record, source } => {
                write!(f, "record '{record}': {source}")
            }
        }
    }
}

impl std::error::Error for FastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FastaError::Io(e) => Some(e),
            FastaError::Alphabet { source, .. } => Some(source),
            FastaError::MissingHeader { .. } => None,
        }
    }
}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Parse every record from a reader.
pub fn read_fasta<R: BufRead>(reader: R) -> Result<Vec<FastaRecord>, FastaError> {
    let mut records: Vec<FastaRecord> = Vec::new();
    let mut current: Option<(String, Vec<u8>)> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('>') {
            if let Some((id, raw)) = current.take() {
                records.push(finish(id, raw)?);
            }
            current = Some((rest.trim().to_string(), Vec::new()));
        } else {
            match current.as_mut() {
                Some((_, raw)) => raw.extend_from_slice(line.as_bytes()),
                None => return Err(FastaError::MissingHeader { line: lineno + 1 }),
            }
        }
    }
    if let Some((id, raw)) = current.take() {
        records.push(finish(id, raw)?);
    }
    Ok(records)
}

fn finish(id: String, raw: Vec<u8>) -> Result<FastaRecord, FastaError> {
    let seq = encode(&raw).map_err(|source| FastaError::Alphabet {
        record: id.clone(),
        source,
    })?;
    Ok(FastaRecord { id, seq })
}

/// Parse FASTA from an in-memory string.
pub fn read_fasta_str(s: &str) -> Result<Vec<FastaRecord>, FastaError> {
    read_fasta(s.as_bytes())
}

/// Write records in FASTA format with 70-column wrapping.
pub fn write_fasta<W: Write>(mut w: W, records: &[FastaRecord]) -> io::Result<()> {
    for rec in records {
        writeln!(w, ">{}", rec.id)?;
        for chunk in rec.seq.chunks(70) {
            let line: Vec<u8> = chunk.iter().map(|&c| decode_base(c)).collect();
            w.write_all(&line)?;
            w.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_record() {
        let input = ">one desc\nACGT\nacg\n>two\nTT\n";
        let recs = read_fasta_str(input).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "one desc");
        assert_eq!(recs[0].seq, vec![1, 2, 3, 4, 1, 2, 3]);
        assert_eq!(recs[1].id, "two");
        assert_eq!(recs[1].seq, vec![4, 4]);
    }

    #[test]
    fn skips_blank_lines_and_comments() {
        let input = "; a comment\n\n>r\nAC\n\nGT\n; trailing\n";
        let recs = read_fasta_str(input).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq, vec![1, 2, 3, 4]);
    }

    #[test]
    fn rejects_headerless_data() {
        let err = read_fasta_str("ACGT\n").unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
    }

    #[test]
    fn rejects_bad_bases() {
        let err = read_fasta_str(">r\nACZT\n").unwrap_err();
        assert!(matches!(err, FastaError::Alphabet { .. }));
        assert!(err.to_string().contains('r'));
    }

    #[test]
    fn normalises_n() {
        let recs = read_fasta_str(">r\nANNT\n").unwrap();
        assert_eq!(recs[0].seq, vec![1, 1, 1, 4]);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(read_fasta_str("").unwrap().is_empty());
    }

    #[test]
    fn write_then_read_roundtrip() {
        let recs = vec![
            FastaRecord {
                id: "alpha".into(),
                seq: [1, 2, 3, 4].repeat(40),
            },
            FastaRecord {
                id: "beta".into(),
                seq: vec![4, 4, 4],
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // 160 bases wrap into 70+70+20.
        assert!(text.lines().any(|l| l.len() == 70));
        let parsed = read_fasta_str(&text).unwrap();
        assert_eq!(parsed, recs);
    }
}
