//! Synthetic genome generation.
//!
//! The paper evaluates on five reference genomes (Table 1) obtained from a
//! biological project at the University of Manitoba. Those assemblies are
//! not redistributable here, so this module synthesises stand-ins whose
//! *statistical* structure — alphabet, GC bias, local correlation, and
//! repeat content — drives the same index behaviour (S-tree/M-tree
//! branching, rankall access patterns). See DESIGN.md §3.
//!
//! Three generators are provided, in increasing realism:
//! * [`uniform`] — i.i.d. bases, the worst case for repeat-driven methods;
//! * [`gc_biased`] — i.i.d. with a target GC fraction;
//! * [`markov`] — an order-`K` Markov chain with seeded tandem and
//!   interspersed repeats, the default for all experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::alphabet::BASE_CODES;

/// Draw `len` i.i.d. uniform bases.
pub fn uniform(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| BASE_CODES[rng.gen_range(0..4usize)])
        .collect()
}

/// Draw `len` i.i.d. bases with the given GC fraction (`0.0..=1.0`),
/// split evenly between `g`/`c` and between `a`/`t`.
pub fn gc_biased(len: usize, gc: f64, seed: u64) -> Vec<u8> {
    assert!((0.0..=1.0).contains(&gc), "gc fraction must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            if rng.gen_bool(gc) {
                if rng.gen_bool(0.5) {
                    2
                } else {
                    3
                } // c or g
            } else if rng.gen_bool(0.5) {
                1 // a
            } else {
                4 // t
            }
        })
        .collect()
}

/// Configuration for the Markov-chain generator.
#[derive(Debug, Clone)]
pub struct MarkovConfig {
    /// Order of the chain (context length). 3 mimics codon-scale structure.
    pub order: usize,
    /// Dirichlet-style concentration: smaller values make contexts more
    /// deterministic (more repetitive output). Typical range 0.2..2.0.
    pub concentration: f64,
    /// Fraction of the output produced by copy-pasting earlier material
    /// (interspersed repeats), e.g. 0.05 for 5 %.
    pub repeat_fraction: f64,
    /// Mean length of a pasted repeat.
    pub repeat_len: usize,
    /// Per-base substitution rate applied to pasted repeats so copies are
    /// near-identical rather than exact (mimicking repeat-family decay).
    pub repeat_divergence: f64,
    /// Fraction of the output made of tandem repeats (microsatellites /
    /// short tandem repeats with units of 1-6 bp). Real mammalian
    /// assemblies carry ~3 %; tandem structure is what produces the
    /// repeated `<x, [α, β]>` pairs Algorithm A's hash table exploits.
    pub tandem_fraction: f64,
    /// Mean total length of one tandem stretch.
    pub tandem_len: usize,
}

impl Default for MarkovConfig {
    fn default() -> Self {
        // Mammalian assemblies (the paper's Rat / Zebrafish targets) are
        // 40-50 % repetitive; the repeat knobs default to that regime
        // because repeat content is what drives index-search behaviour.
        MarkovConfig {
            order: 3,
            concentration: 0.8,
            repeat_fraction: 0.40,
            repeat_len: 400,
            repeat_divergence: 0.03,
            tandem_fraction: 0.03,
            tandem_len: 120,
        }
    }
}

/// Generate a genome from an order-`K` Markov chain with seeded repeats.
///
/// The transition table is itself drawn from the seed, so different seeds
/// give statistically different "species" while the same seed is fully
/// reproducible.
pub fn markov(len: usize, config: &MarkovConfig, seed: u64) -> Vec<u8> {
    assert!(
        config.order >= 1 && config.order <= 8,
        "order must be in 1..=8"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let contexts = 4usize.pow(config.order as u32);

    // Per-context transition distributions as cumulative weights.
    let mut table = Vec::with_capacity(contexts);
    for _ in 0..contexts {
        let mut w = [0f64; 4];
        let mut total = 0.0;
        for slot in w.iter_mut() {
            // Exponential draws scaled by the concentration parameter give a
            // cheap Dirichlet-like sample: low concentration => spiky rows.
            let e: f64 = -(rng.gen_range(1e-9..1.0f64)).ln();
            *slot = e.powf(1.0 / config.concentration.max(1e-3));
            total += *slot;
        }
        let mut cum = [0f64; 4];
        let mut acc = 0.0;
        for i in 0..4 {
            acc += w[i] / total;
            cum[i] = acc;
        }
        cum[3] = 1.0;
        table.push(cum);
    }

    let mut out: Vec<u8> = Vec::with_capacity(len);
    // Warm-up context: uniform bases.
    for _ in 0..config.order.min(len) {
        out.push(BASE_CODES[rng.gen_range(0..4usize)]);
    }

    let mut ctx = context_of(&out, config.order);
    while out.len() < len {
        // Occasionally emit a tandem stretch (microsatellite).
        if config.tandem_fraction > 0.0
            && rng.gen_bool((config.tandem_fraction / config.tandem_len.max(1) as f64).min(1.0))
        {
            let unit_len = rng.gen_range(1..=6usize);
            let unit: Vec<u8> = (0..unit_len)
                .map(|_| BASE_CODES[rng.gen_range(0..4usize)])
                .collect();
            let total = (config.tandem_len / 2 + rng.gen_range(0..config.tandem_len.max(1)))
                .min(len - out.len());
            for p in 0..total {
                let mut b = unit[p % unit_len];
                // Rare slips keep the stretch near- rather than perfectly
                // periodic, as in real STRs.
                if rng.gen_bool(0.01) {
                    b = BASE_CODES[rng.gen_range(0..4usize)];
                }
                out.push(b);
            }
            ctx = context_of(&out, config.order);
            continue;
        }
        // Occasionally paste a (slightly mutated) copy of earlier material.
        if config.repeat_fraction > 0.0
            && out.len() > 4 * config.repeat_len
            && rng.gen_bool((config.repeat_fraction / config.repeat_len.max(1) as f64).min(1.0))
        {
            let rl = (config.repeat_len / 2) + rng.gen_range(0..config.repeat_len.max(1));
            let rl = rl.min(len - out.len()).max(1);
            let src = rng.gen_range(0..out.len() - rl.min(out.len() - 1));
            for p in 0..rl {
                let mut b = out[src + p];
                if rng.gen_bool(config.repeat_divergence) {
                    b = BASE_CODES[rng.gen_range(0..4usize)];
                }
                out.push(b);
            }
            ctx = context_of(&out, config.order);
            continue;
        }

        let u: f64 = rng.gen();
        let cum = &table[ctx];
        let next = cum.iter().position(|&c| u <= c).unwrap_or(3);
        out.push(BASE_CODES[next]);
        ctx = ((ctx * 4) + next) % contexts;
    }
    out.truncate(len);
    out
}

fn context_of(seq: &[u8], order: usize) -> usize {
    let mut ctx = 0usize;
    for &b in seq
        .iter()
        .rev()
        .take(order)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        ctx = ctx * 4 + (*b as usize - 1);
    }
    ctx % 4usize.pow(order as u32)
}

/// One of the paper's five evaluation genomes, scaled ~1:100 (DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReferenceGenome {
    /// Stand-in for Rat (Rnor_6.0), 2,909,701,677 bp → 29 Mbp.
    Rat,
    /// Stand-in for Zebrafish (GRCz10), 1,464,443,456 bp → 14.6 Mbp.
    Zebrafish,
    /// Stand-in for Rat chr1 (Rnor_6.0), 290,094,217 bp → 2.9 Mbp.
    RatChr1,
    /// Stand-in for C. elegans (WBcel235), 100,286,119 bp → 1.0 Mbp.
    CElegans,
    /// Stand-in for C. merolae (ASM9120v1), 16,728,967 bp → 167 Kbp.
    CMerolae,
}

impl ReferenceGenome {
    /// All five genomes in the paper's Table 1 order.
    pub const ALL: [ReferenceGenome; 5] = [
        ReferenceGenome::Rat,
        ReferenceGenome::Zebrafish,
        ReferenceGenome::RatChr1,
        ReferenceGenome::CElegans,
        ReferenceGenome::CMerolae,
    ];

    /// Display name matching the paper's Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            ReferenceGenome::Rat => "Rat (Rnor_6.0)",
            ReferenceGenome::Zebrafish => "Zebra fish (GRCz10)",
            ReferenceGenome::RatChr1 => "Rat chr1 (Rnor_6.0)",
            ReferenceGenome::CElegans => "C. elegans (WBcel235)",
            ReferenceGenome::CMerolae => "C. merolae (ASM9120v1)",
        }
    }

    /// The original assembly size reported in the paper's Table 1 (bp).
    pub fn paper_size(&self) -> u64 {
        match self {
            ReferenceGenome::Rat => 2_909_701_677,
            ReferenceGenome::Zebrafish => 1_464_443_456,
            ReferenceGenome::RatChr1 => 290_094_217,
            ReferenceGenome::CElegans => 100_286_119,
            ReferenceGenome::CMerolae => 16_728_967,
        }
    }

    /// The scaled size we synthesise (≈ paper size / 100).
    pub fn scaled_size(&self) -> usize {
        match self {
            ReferenceGenome::Rat => 29_000_000,
            ReferenceGenome::Zebrafish => 14_600_000,
            ReferenceGenome::RatChr1 => 2_900_000,
            ReferenceGenome::CElegans => 1_000_000,
            ReferenceGenome::CMerolae => 167_000,
        }
    }

    /// Deterministic per-genome RNG seed.
    pub fn seed(&self) -> u64 {
        match self {
            ReferenceGenome::Rat => 0x5261_7401,
            ReferenceGenome::Zebrafish => 0x5a65_6272,
            ReferenceGenome::RatChr1 => 0x5261_7443,
            ReferenceGenome::CElegans => 0x456c_6567,
            ReferenceGenome::CMerolae => 0x4d65_726c,
        }
    }

    /// Approximate GC fraction of the real assembly, reproduced in the
    /// synthetic stand-in via the Markov table bias.
    pub fn gc(&self) -> f64 {
        match self {
            ReferenceGenome::Rat => 0.42,
            ReferenceGenome::Zebrafish => 0.37,
            ReferenceGenome::RatChr1 => 0.42,
            ReferenceGenome::CElegans => 0.35,
            ReferenceGenome::CMerolae => 0.55,
        }
    }

    /// Synthesise this genome at full scaled size.
    pub fn generate(&self) -> Vec<u8> {
        self.generate_scaled(1.0)
    }

    /// Synthesise with an additional scale factor (e.g. 0.1 for quick
    /// benches). `scale` multiplies the scaled size.
    pub fn generate_scaled(&self, scale: f64) -> Vec<u8> {
        let len = ((self.scaled_size() as f64 * scale) as usize).max(1000);
        markov(len, &MarkovConfig::default(), self.seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::gc_content;

    #[test]
    fn uniform_is_deterministic_and_valid() {
        let a = uniform(1000, 7);
        let b = uniform(1000, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| (1..=4).contains(&c)));
        let c = uniform(1000, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_is_roughly_balanced() {
        let g = uniform(40_000, 1);
        let gc = gc_content(&g);
        assert!((gc - 0.5).abs() < 0.02, "gc = {gc}");
    }

    #[test]
    fn gc_biased_hits_target() {
        let g = gc_biased(40_000, 0.7, 2);
        let gc = gc_content(&g);
        assert!((gc - 0.7).abs() < 0.02, "gc = {gc}");
    }

    #[test]
    #[should_panic(expected = "gc fraction")]
    fn gc_biased_rejects_bad_fraction() {
        gc_biased(10, 1.5, 0);
    }

    #[test]
    fn markov_basic_properties() {
        let cfg = MarkovConfig::default();
        let g = markov(20_000, &cfg, 42);
        assert_eq!(g.len(), 20_000);
        assert!(g.iter().all(|&c| (1..=4).contains(&c)));
        // Deterministic per seed.
        assert_eq!(g, markov(20_000, &cfg, 42));
        assert_ne!(g, markov(20_000, &cfg, 43));
    }

    #[test]
    fn markov_with_repeats_is_more_compressible_than_uniform() {
        // Repeat seeding should create duplicated 16-mers well above the
        // uniform baseline.
        let cfg = MarkovConfig {
            repeat_fraction: 0.3,
            ..MarkovConfig::default()
        };
        let m = markov(60_000, &cfg, 5);
        let u = uniform(60_000, 5);
        let dup = |s: &[u8]| {
            use std::collections::HashSet;
            let mut seen = HashSet::new();
            let mut dups = 0usize;
            for w in s.windows(16) {
                if !seen.insert(w.to_vec()) {
                    dups += 1;
                }
            }
            dups
        };
        assert!(
            dup(&m) > dup(&u),
            "markov {} vs uniform {}",
            dup(&m),
            dup(&u)
        );
    }

    #[test]
    fn markov_short_output() {
        let cfg = MarkovConfig::default();
        let g = markov(2, &cfg, 1);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn tandem_fraction_produces_periodic_stretches() {
        let cfg = MarkovConfig {
            tandem_fraction: 0.3,
            tandem_len: 100,
            ..Default::default()
        };
        let g = markov(50_000, &cfg, 13);
        // Count positions inside a period-<=6 stretch of length >= 30.
        let mut periodic = 0usize;
        let mut i = 0;
        while i + 30 < g.len() {
            let mut found = false;
            for p in 1..=6usize {
                if (0..30 - p).all(|q| g[i + q] == g[i + q + p]) {
                    found = true;
                    break;
                }
            }
            if found {
                periodic += 1;
                i += 10;
            } else {
                i += 1;
            }
        }
        assert!(
            periodic > 100,
            "expected tandem stretches, found {periodic} windows"
        );
        // Disabling the knob removes them almost entirely.
        let cfg0 = MarkovConfig {
            tandem_fraction: 0.0,
            repeat_fraction: 0.0,
            ..Default::default()
        };
        let g0 = markov(50_000, &cfg0, 13);
        let mut periodic0 = 0usize;
        let mut i = 0;
        while i + 30 < g0.len() {
            let mut found = false;
            for p in 1..=6usize {
                if (0..30 - p).all(|q| g0[i + q] == g0[i + q + p]) {
                    found = true;
                    break;
                }
            }
            if found {
                periodic0 += 1;
                i += 10;
            } else {
                i += 1;
            }
        }
        // A spiky Markov table produces some natural periodicity; the
        // tandem knob must add substantially more.
        assert!(
            periodic0 * 2 < periodic,
            "baseline {periodic0} vs tandem {periodic}"
        );
    }

    #[test]
    fn reference_genomes_are_consistent() {
        for g in ReferenceGenome::ALL {
            assert!(g.paper_size() > 0);
            assert!(g.scaled_size() > 0);
            assert!(!g.name().is_empty());
            // Scale ratio is about 1:100.
            let ratio = g.paper_size() as f64 / g.scaled_size() as f64;
            assert!(
                (50.0..200.0).contains(&ratio),
                "{}: ratio {ratio}",
                g.name()
            );
        }
    }

    #[test]
    fn reference_genome_generation_scales() {
        let g = ReferenceGenome::CMerolae.generate_scaled(0.1);
        assert_eq!(g.len(), 16_700);
        assert!(g.iter().all(|&c| (1..=4).contains(&c)));
    }
}
