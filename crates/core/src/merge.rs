//! The paper's `merge` procedure (Section IV-B, Proposition 1).
//!
//! Given three strings `γ`, `α`, `β` and the sorted mismatch-position
//! arrays `A1 = mismatches(γ, α)` and `A2 = mismatches(γ, β)`, derive
//! `A = mismatches(α, β)` in `O(|A1| + |A2|)` — the sort-merge-join-like
//! walk of the paper's steps (1)–(6):
//!
//! * a position only in `A1` differs from `γ` in `α` but not in `β`,
//!   so `α ≠ β` there — emit;
//! * a position only in `A2` — symmetrically emit;
//! * a position in both gives no information: compare `α` and `β`
//!   directly (paper step 4);
//! * positions in neither array match in both strings, hence match each
//!   other — skip, which is what makes the walk `O(k)` instead of `O(m)`.
//!
//! Positions here are **0-based** (the paper is 1-based); the comparison
//! range is `0 .. min(|α|, |β|)` and the output may be capped.

/// Merge two mismatch arrays into the mismatch array between `alpha` and
/// `beta`.
///
/// `a1` and `a2` must be strictly increasing. Entries `>= min(|α|, |β|)`
/// are ignored, matching the paper's convention that the compared region
/// is the overlap. At most `cap` output entries are produced (`usize::MAX`
/// for all).
pub fn merge(a1: &[u32], a2: &[u32], alpha: &[u8], beta: &[u8], cap: usize) -> Vec<u32> {
    let limit = alpha.len().min(beta.len()) as u32;
    let mut out = Vec::new();
    let (mut p, mut q) = (0usize, 0usize);
    while out.len() < cap {
        let x = a1.get(p).copied().filter(|&v| v < limit);
        let y = a2.get(q).copied().filter(|&v| v < limit);
        match (x, y) {
            (None, None) => break,
            (Some(v), None) => {
                out.push(v);
                p += 1;
            }
            (None, Some(v)) => {
                out.push(v);
                q += 1;
            }
            (Some(v), Some(w)) => {
                if v < w {
                    out.push(v);
                    p += 1;
                } else if w < v {
                    out.push(w);
                    q += 1;
                } else {
                    // Paper step 4: both mismatch γ here — compare directly.
                    if alpha[v as usize] != beta[v as usize] {
                        out.push(v);
                    }
                    p += 1;
                    q += 1;
                }
            }
        }
    }
    out
}

/// Direct-scan reference: all positions `< min(|α|, |β|)` where the two
/// strings differ, capped.
pub fn mismatches_direct(alpha: &[u8], beta: &[u8], cap: usize) -> Vec<u32> {
    let limit = alpha.len().min(beta.len());
    let mut out = Vec::new();
    for i in 0..limit {
        if alpha[i] != beta[i] {
            out.push(i as u32);
            if out.len() == cap {
                break;
            }
        }
    }
    out
}

/// The paper's `B_l^i` operation (Section IV-C): restrict a mismatch array
/// to positions `>= i` and rebase them to start at 0.
///
/// Example from the paper: `B1 = [1, 4]` (1-based `[2, 5]`) gives
/// `B1^2 = [2]`, `B1^3 = [1]`, `B1^4 = [0]`, `B1^5 = []` — in 0-based form
/// `shift_rebase(&[1, 4], 2) == [2]`, etc.
pub fn shift_rebase(b: &[u32], i: u32) -> Vec<u32> {
    b.iter().filter(|&&p| p >= i).map(|&p| p - i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure5_trace() {
        // Fig. 5: A1 = R_1 = [1, 2, 3, 4] (1-based) = mismatches between
        // r[1..5] and r[2..6] of r = tcacg; A2 = R_2 = [2, 3] (1-based).
        // In 0-based terms with α = r[2..6] = cacg... the paper merges
        // A1 = R1, A2 = R2 with α = r[2..5] (1-based) = "cacg" and
        // β = r[3..5] (1-based) = "acg", giving A = [1, 2, 3, 4] (1-based).
        //
        // Reproduce with 0-based arrays. r = tcacg (m = 5).
        let r = kmm_dna::encode(b"tcacg").unwrap();
        // R_1: r[0..4] = tcac vs r[1..5] = cacg -> compare: t/c, c/a, a/c,
        // c/g -> all four differ -> [0, 1, 2, 3].
        let r1 = mismatches_direct(&r[0..4], &r[1..5], usize::MAX);
        assert_eq!(r1, vec![0, 1, 2, 3]);
        // R_2: r[0..3] = tca vs r[2..5] = acg -> t/a, c/c, a/g -> [0, 2].
        let r2 = mismatches_direct(&r[0..3], &r[2..5], usize::MAX);
        assert_eq!(r2, vec![0, 2]);
        // merge(R1, R2, r[1..], r[2..]) = mismatches(r[1..5], r[2..5])
        // truncated to the 3-symbol overlap: cac vs acg -> c/a, a/c, c/g =
        // [0, 1, 2]. (The paper's 1-based A = [1, 2, 3, 4] over the longer
        // overlap; our truncation to min-length keeps [0, 1, 2].)
        let merged = merge(&r1, &r2, &r[1..], &r[2..], usize::MAX);
        assert_eq!(merged, mismatches_direct(&r[1..], &r[2..], usize::MAX));
        assert_eq!(merged, vec![0, 1, 2]);
    }

    #[test]
    fn position_in_both_arrays_may_cancel() {
        // γ differs from both α and β at position 0, but α and β agree.
        let gamma = [1u8, 1];
        let alpha = [2u8, 1];
        let beta = [2u8, 1];
        let a1 = mismatches_direct(&gamma, &alpha, usize::MAX);
        let a2 = mismatches_direct(&gamma, &beta, usize::MAX);
        assert_eq!(a1, vec![0]);
        assert_eq!(a2, vec![0]);
        assert_eq!(
            merge(&a1, &a2, &alpha, &beta, usize::MAX),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn cap_limits_output() {
        let gamma = [1u8; 6];
        let alpha = [2u8; 6];
        let beta = [1u8; 6];
        let a1 = mismatches_direct(&gamma, &alpha, usize::MAX);
        let a2 = mismatches_direct(&gamma, &beta, usize::MAX);
        let merged = merge(&a1, &a2, &alpha, &beta, 3);
        assert_eq!(merged, vec![0, 1, 2]);
    }

    #[test]
    fn length_truncation() {
        let gamma = [1u8, 2, 3, 4, 1];
        let alpha = [4u8, 2, 3];
        let beta = [1u8, 1, 3, 4, 1];
        let a1 = mismatches_direct(&gamma, &alpha, usize::MAX); // within 3
        let a2 = mismatches_direct(&gamma, &beta, usize::MAX);
        let merged = merge(&a1, &a2, &alpha, &beta, usize::MAX);
        assert_eq!(merged, mismatches_direct(&alpha, &beta, usize::MAX));
    }

    #[test]
    fn random_merge_matches_direct() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..500 {
            let n = rng.gen_range(0..40);
            let gamma: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            // α and β as mutated copies of γ (the realistic regime: few
            // mismatches).
            let mutate = |rng: &mut rand::rngs::StdRng, s: &[u8]| -> Vec<u8> {
                s.iter()
                    .map(|&c| {
                        if rng.gen_bool(0.2) {
                            rng.gen_range(1..=4)
                        } else {
                            c
                        }
                    })
                    .collect()
            };
            let alpha = mutate(&mut rng, &gamma);
            let beta = mutate(&mut rng, &gamma);
            let a1 = mismatches_direct(&gamma, &alpha, usize::MAX);
            let a2 = mismatches_direct(&gamma, &beta, usize::MAX);
            assert_eq!(
                merge(&a1, &a2, &alpha, &beta, usize::MAX),
                mismatches_direct(&alpha, &beta, usize::MAX),
                "gamma={gamma:?} alpha={alpha:?} beta={beta:?}"
            );
        }
    }

    #[test]
    fn shift_rebase_paper_example() {
        // Paper: B1 = [2, 5] (1-based) => B1^2 = [1, 4] rebased ... in our
        // 0-based world B1 = [1, 4]:
        let b1 = vec![1u32, 4];
        assert_eq!(shift_rebase(&b1, 0), vec![1, 4]);
        assert_eq!(shift_rebase(&b1, 1), vec![0, 3]);
        assert_eq!(shift_rebase(&b1, 2), vec![2]);
        assert_eq!(shift_rebase(&b1, 4), vec![0]);
        assert_eq!(shift_rebase(&b1, 5), Vec::<u32>::new());
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(merge(&[], &[], b"ac", b"ac", usize::MAX), Vec::<u32>::new());
        let a = mismatches_direct(b"ac", b"gc", usize::MAX);
        assert_eq!(merge(&a, &[], b"gc", b"ac", usize::MAX), vec![0]);
    }
}
