//! Pattern self-mismatch tables: the `R_1 … R_m` arrays of Section IV-B.
//!
//! `R_i` holds the positions of the first `k + 2` mismatches between
//! `r[0 .. m-i]` and `r[i .. m]` — the overlap of the pattern against
//! itself at relative shift `i` (0-based positions; if `R_i` contains `p`
//! then `r[p] != r[i + p]`). The paper keeps `k + 2` rather than `k + 1`
//! entries because deriving an `R_ij` by `merge` may consume one extra
//! entry of each input.
//!
//! [`RTable::rij`] produces the pairwise table `R_ij` (mismatches between
//! `r[i..]` and `r[j..]`) the way Algorithm A does — by merging `R_i` and
//! `R_j` (paper's `mi-creation` step 1) — and upgrades it to a *complete*
//! array by direct scanning past the merge's validity horizon, so that the
//! subtree-derivation walk can consult arbitrarily late entries without
//! ever missing a mismatch (DESIGN.md D2).

use kmm_telemetry::cost::{self, CostKind};

use crate::merge::{merge, mismatches_direct};

/// The per-shift mismatch arrays for one pattern.
#[derive(Debug, Clone)]
pub struct RTable {
    pattern: Vec<u8>,
    /// `arrays[i - 1]` is `R_i` for shifts `1..=m-1`; each capped at
    /// `cap` entries.
    arrays: Vec<Vec<u32>>,
    /// Entry cap (`k + 2` in the paper).
    cap: usize,
}

impl RTable {
    /// Build `R_1 … R_{m-1}` for `pattern` with mismatch budget `k`.
    ///
    /// Direct construction: each shift stops after `k + 2` mismatches, so
    /// the cost is `O(m)` per shift on random patterns and `O(m^2)` in the
    /// pathological all-matching case — at read scale (`m <= ~300`) this is
    /// faster than the `O(m log m)` doubling scheme the paper cites
    /// (DESIGN.md D7).
    pub fn new(pattern: &[u8], k: usize) -> Self {
        let m = pattern.len();
        let cap = k + 2;
        let mut arrays = Vec::with_capacity(m.saturating_sub(1));
        for i in 1..m {
            arrays.push(mismatches_direct(&pattern[..m - i], &pattern[i..], cap));
        }
        RTable {
            pattern: pattern.to_vec(),
            arrays,
            cap,
        }
    }

    /// The pattern the table was built for.
    pub fn pattern(&self) -> &[u8] {
        &self.pattern
    }

    /// The entry cap (`k + 2`).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// `R_i` (shift `1 <= i < m`), capped at `cap` entries.
    pub fn shift(&self, i: usize) -> &[u32] {
        assert!(i >= 1 && i < self.pattern.len(), "shift {i} out of range");
        cost::bump(CostKind::RarrayProbes, 1);
        &self.arrays[i - 1]
    }

    /// Number of non-empty entries the paper calls `|(R_i)|`.
    pub fn shift_len(&self, i: usize) -> usize {
        self.shift(i).len()
    }

    /// True if `R_i` is complete (the overlap has fewer than `cap`
    /// mismatches in total, so no entry was dropped).
    fn shift_complete(&self, i: usize) -> bool {
        self.shift(i).len() < self.cap
    }

    /// The validity horizon of `R_i`: positions `< horizon` are fully
    /// described by the stored entries.
    fn shift_horizon(&self, i: usize) -> u32 {
        if self.shift_complete(i) {
            (self.pattern.len() - i) as u32
        } else {
            // The last stored entry is known; beyond it we know nothing.
            self.shift(i).last().copied().map_or(0, |p| p + 1)
        }
    }

    /// Build the complete pairwise array `R_ij`: all positions `p` with
    /// `r[i + p] != r[j + p]`, `p < m - max(i, j)`.
    ///
    /// Seeds the result by `merge(R_i, R_j, r[i..], r[j..])` (valid up to
    /// the horizon of the capped inputs) and completes the tail by direct
    /// scan.
    pub fn rij(&self, i: usize, j: usize) -> Vec<u32> {
        let m = self.pattern.len();
        assert!(i < m && j < m && i != j, "bad shift pair ({i}, {j})");
        cost::bump(CostKind::RarrayProbes, 1);
        let limit = (m - i.max(j)) as u32;
        let alpha = &self.pattern[i..];
        let beta = &self.pattern[j..];
        if i == 0 {
            // R_0j is literally R_j truncated to the limit.
            return self
                .completed_shift(j, limit)
                .into_iter()
                .filter(|&p| p < limit)
                .collect();
        }
        if j == 0 {
            return self
                .completed_shift(i, limit)
                .into_iter()
                .filter(|&p| p < limit)
                .collect();
        }
        let horizon = self.shift_horizon(i).min(self.shift_horizon(j)).min(limit);
        let mut out: Vec<u32> = merge(self.shift(i), self.shift(j), alpha, beta, usize::MAX)
            .into_iter()
            .filter(|&p| p < horizon)
            .collect();
        // Complete the tail directly.
        for p in horizon..limit {
            if alpha[p as usize] != beta[p as usize] {
                out.push(p);
            }
        }
        out
    }

    /// A complete (uncapped) `R_i` up to `limit`, extending the stored
    /// prefix by scanning.
    fn completed_shift(&self, i: usize, limit: u32) -> Vec<u32> {
        let horizon = self.shift_horizon(i).min(limit);
        let mut out: Vec<u32> = self
            .shift(i)
            .iter()
            .copied()
            .filter(|&p| p < horizon)
            .collect();
        let alpha = &self.pattern[..self.pattern.len() - i];
        let beta = &self.pattern[i..];
        for p in horizon..limit {
            if alpha[p as usize] != beta[p as usize] {
                out.push(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure4_tables() {
        // Fig. 4: r = tcacg, k = 2 (cap = 4 shown in the figure as 5 slots).
        let r = kmm_dna::encode(b"tcacg").unwrap();
        let t = RTable::new(&r, 2);
        // R_1: tcac vs cacg -> every position differs -> [0,1,2,3] (first 4).
        assert_eq!(t.shift(1), &[0, 1, 2, 3]);
        // R_2: tca vs acg -> positions 0 and 2 differ ([1,3] 1-based).
        assert_eq!(t.shift(2), &[0, 2]);
        // R_3: tc vs cg -> both differ.
        assert_eq!(t.shift(3), &[0, 1]);
        // R_4: t vs g -> differ.
        assert_eq!(t.shift(4), &[0]);
        assert_eq!(t.shift_len(1), 4);
        assert_eq!(t.shift_len(2), 2);
    }

    #[test]
    fn periodic_pattern_has_empty_shift() {
        // r = acacac: shift 2 aligns the pattern with itself perfectly.
        let r = kmm_dna::encode(b"acacac").unwrap();
        let t = RTable::new(&r, 3);
        assert_eq!(t.shift(2), &[] as &[u32]);
        assert_eq!(t.shift(4), &[] as &[u32]);
        assert_eq!(t.shift(1).len(), 5); // ac vs ca everywhere (5-long overlap, cap k+2=5)
    }

    #[test]
    fn rij_matches_direct_scan_everywhere() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        for _ in 0..100 {
            let m = rng.gen_range(2..40);
            let r: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=2)).collect();
            let k = rng.gen_range(0..4usize);
            let t = RTable::new(&r, k);
            for i in 0..m {
                for j in 0..m {
                    if i == j {
                        continue;
                    }
                    let want = mismatches_direct(&r[i..], &r[j..], usize::MAX);
                    assert_eq!(t.rij(i, j), want, "r={r:?} i={i} j={j} k={k}");
                }
            }
        }
    }

    #[test]
    fn rij_is_symmetric() {
        let r = kmm_dna::encode(b"acgtacgaacgt").unwrap();
        let t = RTable::new(&r, 2);
        for i in 0..r.len() {
            for j in 0..r.len() {
                if i != j {
                    assert_eq!(t.rij(i, j), t.rij(j, i));
                }
            }
        }
    }

    #[test]
    fn rij_with_zero_shift() {
        let r = kmm_dna::encode(b"acgtataa").unwrap();
        let t = RTable::new(&r, 1);
        for j in 1..r.len() {
            assert_eq!(t.rij(0, j), mismatches_direct(&r, &r[j..], usize::MAX));
        }
    }

    #[test]
    #[should_panic(expected = "bad shift pair")]
    fn rij_rejects_equal_shifts() {
        let r = kmm_dna::encode(b"acgt").unwrap();
        RTable::new(&r, 1).rij(2, 2);
    }

    #[test]
    fn single_symbol_pattern() {
        let r = kmm_dna::encode(b"a").unwrap();
        let t = RTable::new(&r, 2);
        assert_eq!(t.pattern(), &[1]);
        // No shifts exist for m = 1.
        assert_eq!(t.cap(), 4);
    }
}
