//! Cooperative cancellation and deadlines.
//!
//! Production mappers bound per-read work: a single pathological query
//! (high `k`, low-complexity pattern) must not monopolise a worker. A
//! [`CancelToken`] carries a shared cancel flag plus an optional
//! wall-clock deadline; search loops poll it at node-expansion
//! granularity through a [`Gate`], which costs one relaxed atomic load
//! per descend and amortises the `Instant::now()` deadline read over
//! [`Gate::POLL_INTERVAL`] expansions. Truncated searches return
//! [`Outcome::Truncated`] with every occurrence verified before the
//! budget expired — partial results are flagged, never silently
//! dropped.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cancellation handle: an atomic cancel flag shared by all
/// clones, plus an optional deadline fixed at construction.
///
/// ```
/// use kmm_core::cancel::CancelToken;
/// use std::time::Duration;
///
/// let t = CancelToken::with_deadline(Duration::from_millis(50));
/// assert!(!t.is_cancelled());
/// t.cancel();
/// assert!(t.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never expires on its own; only [`CancelToken::cancel`]
    /// (from any clone, any thread) stops it.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that expires `budget` from now. Clones share the same
    /// deadline and cancel flag.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            deadline: Instant::now().checked_add(budget),
        }
    }

    /// A token expiring at an absolute instant (used by servers that
    /// stamp the deadline at request-accept time).
    pub fn at(deadline: Instant) -> Self {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the flag is set (does **not** consult the deadline; use
    /// [`CancelToken::is_expired`] for the full check).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Whether the flag is set or the deadline has passed. Reads the
    /// clock when a deadline exists — hot loops should poll through a
    /// [`Gate`] instead.
    pub fn is_expired(&self) -> bool {
        self.is_cancelled() || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

/// Whether a search ran to completion or was truncated by its token.
/// Both variants carry the (verified) value; `Truncated` means the
/// result may be missing occurrences the full walk would have found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome<T> {
    /// The search exhausted its space; the value is exact.
    Complete(T),
    /// The budget expired mid-walk; the value holds everything verified
    /// up to that point.
    Truncated(T),
}

impl<T> Outcome<T> {
    /// The carried value, discarding the completeness flag.
    pub fn into_inner(self) -> T {
        match self {
            Outcome::Complete(v) | Outcome::Truncated(v) => v,
        }
    }

    /// Shared reference to the carried value.
    pub fn value(&self) -> &T {
        match self {
            Outcome::Complete(v) | Outcome::Truncated(v) => v,
        }
    }

    pub fn is_truncated(&self) -> bool {
        matches!(self, Outcome::Truncated(_))
    }

    /// Map the carried value, preserving the flag.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        match self {
            Outcome::Complete(v) => Outcome::Complete(f(v)),
            Outcome::Truncated(v) => Outcome::Truncated(f(v)),
        }
    }

    /// Rebuild from a value and a truncation flag.
    pub fn from_parts(value: T, truncated: bool) -> Outcome<T> {
        if truncated {
            Outcome::Truncated(value)
        } else {
            Outcome::Complete(value)
        }
    }
}

/// Per-search poll gate: the thing hot loops actually consult.
///
/// `should_stop()` costs, in order: a `Cell` read once tripped (so a
/// truncated walk unwinds without re-checking the token), one relaxed
/// atomic load of the cancel flag, and — only every
/// [`Gate::POLL_INTERVAL`]-th call — an `Instant::now()` against the
/// deadline. With no token at all it is a single `None` discriminant
/// test, keeping the undeadlined path bit-identical and effectively
/// free.
#[derive(Debug)]
pub struct Gate<'t> {
    token: Option<&'t CancelToken>,
    countdown: Cell<u32>,
    tripped: Cell<bool>,
}

impl<'t> Gate<'t> {
    /// Descends between deadline clock reads. S-tree node expansion is
    /// tens of nanoseconds, so 1024 bounds the detection latency to the
    /// order of ~100 µs — far inside the "~10 ms for a 1 ms budget"
    /// acceptance bound — while keeping `Instant::now()` off the hot
    /// path.
    pub const POLL_INTERVAL: u32 = 1024;

    /// A gate for an optional token; `None` makes every check a no-op.
    /// The countdown starts at zero so the *first* poll reads the clock:
    /// an already-expired token truncates even a trivial query instead
    /// of slipping through in under one poll interval.
    pub fn new(token: Option<&'t CancelToken>) -> Self {
        Gate {
            token,
            countdown: Cell::new(0),
            tripped: Cell::new(false),
        }
    }

    /// A permanently-open gate (no token): the shape the undeadlined
    /// entry points pass down.
    pub fn open() -> Gate<'static> {
        Gate::new(None)
    }

    /// Poll the token. Returns `true` once the search should unwind;
    /// sticky thereafter.
    #[inline]
    pub fn should_stop(&self) -> bool {
        let Some(token) = self.token else {
            return false;
        };
        if self.tripped.get() {
            return true;
        }
        if token.is_cancelled() {
            self.tripped.set(true);
            return true;
        }
        if let Some(deadline) = token.deadline {
            let n = self.countdown.get();
            if n == 0 {
                self.countdown.set(Self::POLL_INTERVAL);
                if Instant::now() >= deadline {
                    self.tripped.set(true);
                    return true;
                }
            } else {
                self.countdown.set(n - 1);
            }
        }
        false
    }

    /// Whether the gate ever tripped (the search was truncated).
    #[inline]
    pub fn tripped(&self) -> bool {
        self.tripped.get()
    }

    /// Force the deadline check on the next `should_stop` call — used
    /// at coarse checkpoints (per text chunk, per seed) where the call
    /// rate is far below the poll interval.
    #[inline]
    pub fn poll_now(&self) -> bool {
        self.countdown.set(0);
        self.should_stop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert!(b.is_expired());
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(t.is_expired());
        assert!(!t.is_cancelled(), "deadline expiry is not the flag");
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_expired());
    }

    #[test]
    fn open_gate_never_stops() {
        let g = Gate::open();
        for _ in 0..10_000 {
            assert!(!g.should_stop());
        }
        assert!(!g.tripped());
    }

    #[test]
    fn gate_detects_cancel_immediately() {
        let t = CancelToken::new();
        let g = Gate::new(Some(&t));
        assert!(!g.should_stop());
        t.cancel();
        assert!(g.should_stop());
        assert!(g.tripped());
        // Sticky even if somehow un-cancelled upstream.
        assert!(g.should_stop());
    }

    #[test]
    fn gate_detects_deadline_within_poll_interval() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        let g = Gate::new(Some(&t));
        let mut calls = 0u32;
        while !g.should_stop() {
            calls += 1;
            assert!(calls <= Gate::POLL_INTERVAL + 1, "deadline never noticed");
        }
        assert!(g.tripped());
    }

    #[test]
    fn poll_now_bypasses_countdown() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        let g = Gate::new(Some(&t));
        assert!(g.poll_now());
    }

    #[test]
    fn outcome_helpers() {
        let c: Outcome<u32> = Outcome::Complete(3);
        let t: Outcome<u32> = Outcome::Truncated(4);
        assert!(!c.is_truncated());
        assert!(t.is_truncated());
        assert_eq!(c.map(|v| v + 1), Outcome::Complete(4));
        assert_eq!(t.into_inner(), 4);
        assert_eq!(*c.value(), 3);
        assert_eq!(Outcome::from_parts(9, true), Outcome::Truncated(9));
        assert_eq!(Outcome::from_parts(9, false), Outcome::Complete(9));
    }
}
