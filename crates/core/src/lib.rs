//! # kmm-core
//!
//! The paper's contribution: **string matching with k mismatches via BWT
//! arrays and mismatching trees** (Chen & Wu, ICDE 2017), together with
//! the index-based baselines it is evaluated against.
//!
//! * [`rarray`] / [`mod@merge`] (module) — the pattern self-mismatch tables `R_1…R_m`
//!   and the `O(k)` merge procedure of Section IV-B;
//! * [`stree`] — the S-tree BWT baseline of \[34\] with the `φ(i)` heuristic
//!   ([`phi`]);
//! * [`mtree`] / [`algorithm_a`] — the mismatching-tree search itself;
//! * [`cole`] — the suffix-tree brute-force baseline;
//! * [`matcher`] — a unified index front-end over every method.
//!
//! ```
//! use kmm_core::{KMismatchIndex, Method};
//!
//! let index = KMismatchIndex::from_ascii(b"acagaca").unwrap();
//! let pattern = kmm_dna::encode(b"tcaca").unwrap();
//! let hits = index.search(&pattern, 2, Method::ALGORITHM_A);
//! assert_eq!(hits.occurrences.len(), 2); // positions 0 and 2
//! ```

pub mod algorithm_a;
pub mod bidir;
pub mod cancel;
pub mod cole;
pub mod derive;
pub mod k_errors;
pub mod mapper;
pub mod matcher;
pub mod merge;
pub mod mtree;
pub mod multi;
pub mod phi;
pub mod rarray;
pub mod seed_filter;
pub mod spec;
pub mod stats;
pub mod stree;

pub use algorithm_a::{AlgorithmA, BatchSearcher};
pub use bidir::{BidirSearch, Scheme, SchemeSearch};
pub use cancel::{CancelToken, Outcome};
pub use cole::ColeSearch;
pub use derive::{derive_path, mi_creation, DerivationAudit, StoredPath};
pub use k_errors::{find_k_errors_naive, EditOccurrence, KErrorsSearch};
pub use mapper::{Alignment, MapOutcome, MapReport, MapperConfig, ReadMapper, Strand};
pub use matcher::{KMismatchIndex, Method, SearchResult};
pub use merge::{merge, mismatches_direct, shift_rebase};
pub use mtree::MTree;
pub use multi::{MultiIndex, MultiOccurrence};
pub use rarray::RTable;
pub use seed_filter::SeedFilterSearch;
pub use stats::SearchStats;
pub use stree::STreeSearch;

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::{KMismatchIndex, Method};
    use kmm_classic::naive;

    fn dna_seq(max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(1u8..=4, 1..max)
    }

    /// Low-entropy sequences force heavy pair sharing, stressing the
    /// derivation/resume paths of Algorithm A.
    fn binary_seq(max: usize) -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(1u8..=2, 1..max)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn algorithm_a_equals_naive(
            s in dna_seq(220),
            r in dna_seq(18),
            k in 0usize..5,
        ) {
            let want = naive::find_k_mismatch(&s, &r, k);
            let idx = KMismatchIndex::new(s);
            prop_assert_eq!(idx.search(&r, k, Method::ALGORITHM_A).occurrences, want);
        }

        #[test]
        fn algorithm_a_equals_naive_low_entropy(
            s in binary_seq(220),
            r in binary_seq(16),
            k in 0usize..4,
        ) {
            let want = naive::find_k_mismatch(&s, &r, k);
            let idx = KMismatchIndex::new(s);
            let got = idx.search(&r, k, Method::ALGORITHM_A);
            prop_assert_eq!(got.occurrences, want);
        }

        #[test]
        fn bwt_baseline_equals_naive(
            s in dna_seq(200),
            r in dna_seq(14),
            k in 0usize..4,
        ) {
            let want = naive::find_k_mismatch(&s, &r, k);
            let idx = KMismatchIndex::new(s);
            prop_assert_eq!(
                idx.search(&r, k, Method::Bwt { use_phi: true }).occurrences,
                want
            );
        }

        #[test]
        fn cole_equals_naive(
            s in dna_seq(200),
            r in dna_seq(14),
            k in 0usize..4,
        ) {
            let want = naive::find_k_mismatch(&s, &r, k);
            let idx = KMismatchIndex::new(s);
            prop_assert_eq!(idx.search(&r, k, Method::Cole).occurrences, want);
        }
    }
}
