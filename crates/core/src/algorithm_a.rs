//! Algorithm A: k-mismatch search with BWT arrays and mismatching trees
//! (paper Section IV-D).
//!
//! The search is the S-tree exploration of [`crate::stree`] with the
//! paper's two additions:
//!
//! 1. **Pair hash table.** Every `<x, [α, β]>` produced by a backward
//!    extension is interned in the [`MTree`] arena. When the same pair
//!    recurs at a later level (Lemma 1 guarantees repeats are never at the
//!    same level), the walk enters the *shared* node: its previously
//!    resolved children are followed without any `search()` / rankall
//!    lookups — the repeated subtree is **derived**, not re-searched.
//! 2. **Mismatch re-derivation.** Along a shared subtree built at
//!    alignment `i` and re-entered at alignment `j`, matching/mismatching
//!    status is re-derived against `r[j..]`. The positions at which the two
//!    alignments disagree are exactly the entries of `R_ij` — the array
//!    Algorithm A obtains with `merge(R_i, R_j, …)`; symbols stored in the
//!    arena make each re-derivation O(1), and the `R`/`merge` machinery of
//!    [`crate::rarray`] / [`mod@crate::merge`] (exercised independently by the
//!    `derive` module) proves the two views equivalent.
//!
//! Where the stored subtree is *shallower* than the new alignment's budget
//!    requires (the paper's case (ii) "has to be extended"; DESIGN.md D2),
//! unresolved child slots are materialised on demand by live backward
//! search, so the result is exactly the naive scan's — property-tested.
//!
//! Costs: live exploration performs the same rank lookups as the baseline;
//! every re-entered subtree is walked with zero rank lookups. With `n'`
//! the number of walk terminations (the paper's M-tree leaf count), the
//! walk does `O(k n' + n)` work after the `O(m log m)`-class pattern
//! preprocessing — the complexity the paper reports.

use kmm_bwt::{FmIndex, Interval};
use kmm_classic::Occurrence;
use kmm_dna::BASES;
use kmm_telemetry::{Hist, NoopRecorder, Phase, PruneCause, Recorder};

use crate::cancel::{CancelToken, Gate, Outcome};
use crate::derive::DerivationAudit;
use crate::mtree::{MTree, ABSENT, UNKNOWN};
use crate::rarray::RTable;
use crate::stats::SearchStats;
use crate::stree::report_interval;

/// Maximum derivation samples collected per audited query.
const AUDIT_SAMPLE_CAP: usize = 512;

/// Live audit context: the walk is currently below a shared pair first
/// built at alignment `i` and re-entered at alignment `j`.
#[derive(Debug)]
struct AuditCtx {
    i: usize,
    j: usize,
    /// Symbols spelled since the shared pair (inclusive).
    text: Vec<u8>,
    /// Direct mismatch positions of `text` against `r[j..]`.
    bj: Vec<u32>,
}

/// The Algorithm A searcher.
#[derive(Debug, Clone, Copy)]
pub struct AlgorithmA<'a> {
    fm: &'a FmIndex,
    text_len: usize,
    /// Enable pair sharing / subtree derivation (`false` reverts to
    /// baseline-style exploration; ablation A2 in DESIGN.md).
    pub reuse: bool,
}

struct Query<'q, R: Recorder> {
    fm: &'q FmIndex,
    text_len: usize,
    pattern: &'q [u8],
    k: usize,
    reuse: bool,
    recorder: &'q R,
    tree: &'q mut MTree,
    /// Pattern self-mismatch arrays (`R_1 … R_{m-1}`); retained for parity
    /// with the paper's preprocessing and used by the derivation checker.
    rtable: RTable,
    out: Vec<Occurrence>,
    stats: SearchStats,
    /// When auditing, collects (i, j, path, mismatches) samples under
    /// shared pairs for replay through the paper's merge derivation.
    audit: Option<DerivationAudit>,
    ctx: Option<AuditCtx>,
    gate: &'q Gate<'q>,
}

impl<'a> AlgorithmA<'a> {
    /// `fm` must index `reverse(s) + $`; `text_len = |s|` (no sentinel).
    pub fn new(fm: &'a FmIndex, text_len: usize) -> Self {
        debug_assert_eq!(fm.len(), text_len + 1);
        AlgorithmA {
            fm,
            text_len,
            reuse: true,
        }
    }

    /// All occurrences of `pattern` in the forward text with at most `k`
    /// mismatches, sorted by position, plus statistics.
    pub fn search(&self, pattern: &[u8], k: usize) -> (Vec<Occurrence>, SearchStats) {
        self.search_recorded(pattern, k, &NoopRecorder)
    }

    /// [`Self::search`] with telemetry: R-array preprocessing is timed as
    /// `preprocess.rarray`, per-leaf interval widths and termination
    /// depths go to histograms, and the final [`SearchStats`] are added
    /// to the `search.*` counters.
    pub fn search_recorded<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        recorder: &R,
    ) -> (Vec<Occurrence>, SearchStats) {
        let mut tree = MTree::new();
        let (occ, stats, _) = self.run_with(pattern, k, false, &mut tree, recorder);
        (occ, stats)
    }

    /// [`Self::search_recorded`] under a cancellation token: the walk
    /// polls `token` at node-expansion granularity and unwinds once it
    /// expires, returning [`Outcome::Truncated`] with every occurrence
    /// verified so far.
    pub fn search_deadline_recorded<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        token: &CancelToken,
        recorder: &R,
    ) -> Outcome<(Vec<Occurrence>, SearchStats)> {
        let mut tree = MTree::new();
        let gate = Gate::new(Some(token));
        let (occ, stats, _) = self.run_gated(pattern, k, false, &mut tree, &gate, recorder);
        Outcome::from_parts((occ, stats), gate.tripped())
    }

    /// As [`Self::search`], additionally collecting derivation-audit
    /// samples under every re-entered shared pair, for replay through the
    /// paper's `merge`-based `mi-creation` (see [`crate::derive`]).
    pub fn search_audited(
        &self,
        pattern: &[u8],
        k: usize,
    ) -> (Vec<Occurrence>, SearchStats, DerivationAudit) {
        let (occ, stats, audit) = self.run(pattern, k, true);
        (occ, stats, audit.unwrap_or_default())
    }

    fn run(
        &self,
        pattern: &[u8],
        k: usize,
        audit: bool,
    ) -> (Vec<Occurrence>, SearchStats, Option<DerivationAudit>) {
        let mut tree = MTree::new();
        self.run_with(pattern, k, audit, &mut tree, &NoopRecorder)
    }

    /// A reusable searcher that keeps the arena and pair table allocated
    /// across queries — the right entry point for read batches.
    pub fn searcher(&self) -> BatchSearcher<'a> {
        BatchSearcher {
            alg: *self,
            tree: MTree::new(),
        }
    }

    fn run_with<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        audit: bool,
        tree: &mut MTree,
        recorder: &R,
    ) -> (Vec<Occurrence>, SearchStats, Option<DerivationAudit>) {
        let gate = Gate::open();
        self.run_gated(pattern, k, audit, tree, &gate, recorder)
    }

    fn run_gated<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        audit: bool,
        tree: &mut MTree,
        gate: &Gate<'_>,
        recorder: &R,
    ) -> (Vec<Occurrence>, SearchStats, Option<DerivationAudit>) {
        let m = pattern.len();
        if m == 0 || m > self.text_len {
            return (Vec::new(), SearchStats::default(), None);
        }
        // A warm arena (batch reuse) means this query allocates nothing
        // for its node storage and pair table.
        let reused_arena = tree.capacity() > 0;
        tree.clear();
        let rtable = {
            let _span = recorder.span(Phase::PreprocessRarray);
            RTable::new(pattern, k)
        };
        let mut q = Query {
            fm: self.fm,
            text_len: self.text_len,
            pattern,
            k,
            reuse: self.reuse,
            recorder,
            tree,
            rtable,
            out: Vec::new(),
            stats: SearchStats::default(),
            audit: audit.then(DerivationAudit::default),
            ctx: None,
            gate,
        };
        q.stats.alloc_reused += u64::from(reused_arena);
        {
            let _span = recorder.span(Phase::SearchDescend);
            // Root level: one fused rank sweep expands the virtual root
            // <-,[0,n)> into the F-blocks at once, paper Fig. 3's v1..v3;
            // empty blocks are skipped before any per-child work.
            q.stats.rank_extensions += 1;
            q.stats.occ_fused += 1;
            if recorder.wants_depths() {
                recorder.depth_expand(0);
            }
            let roots = q.fm.extend_all(q.fm.whole());
            // Advisory: warm each F-block child's boundary rank blocks
            // before the walks below extend them.
            for iv in &roots {
                if !iv.is_empty() {
                    q.fm.prefetch_interval(*iv);
                }
            }
            for y in 1..=BASES as u8 {
                if gate.should_stop() {
                    break;
                }
                let iv = roots[(y - 1) as usize];
                if iv.is_empty() {
                    if recorder.wants_depths() {
                        recorder.depth_prune(1, PruneCause::EmptyInterval);
                    }
                    continue;
                }
                let is_match = y == pattern[0];
                if !is_match && k == 0 {
                    if recorder.wants_depths() {
                        recorder.depth_prune(1, PruneCause::Budget);
                    }
                    continue;
                }
                let cost = usize::from(!is_match);
                if iv.len() == 1 {
                    q.walk_chain(iv.lo, 0, cost);
                } else {
                    let node = q.intern(y, 0, iv);
                    q.walk(node, 0, cost);
                }
            }
        }
        let Query {
            mut out,
            mut stats,
            rtable,
            audit,
            ..
        } = q;
        let _ = rtable;
        out.sort_unstable();
        stats.occurrences = out.len() as u64;
        stats.nodes_materialized = tree.len() as u64;
        stats.timeouts = u64::from(gate.tripped());
        stats.record_into(recorder);
        (out, stats, audit)
    }
}

/// Reusable Algorithm A searcher for read batches: the node arena and the
/// pair hash table persist (cleared, capacity kept) between queries.
#[derive(Debug)]
pub struct BatchSearcher<'a> {
    alg: AlgorithmA<'a>,
    tree: MTree,
}

impl<'a> BatchSearcher<'a> {
    /// As [`AlgorithmA::search`], reusing scratch allocations.
    pub fn search(&mut self, pattern: &[u8], k: usize) -> (Vec<Occurrence>, SearchStats) {
        self.search_recorded(pattern, k, &NoopRecorder)
    }

    /// As [`AlgorithmA::search_recorded`], reusing scratch allocations.
    pub fn search_recorded<R: Recorder>(
        &mut self,
        pattern: &[u8],
        k: usize,
        recorder: &R,
    ) -> (Vec<Occurrence>, SearchStats) {
        let (occ, stats, _) = self
            .alg
            .run_with(pattern, k, false, &mut self.tree, recorder);
        (occ, stats)
    }

    /// As [`AlgorithmA::search_deadline_recorded`], reusing scratch
    /// allocations across the batch.
    pub fn search_deadline_recorded<R: Recorder>(
        &mut self,
        pattern: &[u8],
        k: usize,
        token: &CancelToken,
        recorder: &R,
    ) -> Outcome<(Vec<Occurrence>, SearchStats)> {
        let gate = Gate::new(Some(token));
        let (occ, stats, _) =
            self.alg
                .run_gated(pattern, k, false, &mut self.tree, &gate, recorder);
        Outcome::from_parts((occ, stats), gate.tripped())
    }

    /// Current arena capacity (retained across queries).
    pub fn arena_capacity(&self) -> usize {
        self.tree.capacity()
    }
}

impl<'q, R: Recorder> Query<'q, R> {
    /// Minimum interval width for an entry in the pair hash table. Narrow
    /// pairs head subtrees too small for derivation to beat re-exploration
    /// (their nodes are still memoised through their parents' child slots);
    /// wide pairs are exactly the ones whose repeats the paper's hash table
    /// is after.
    const INTERN_WIDTH_MIN: u32 = 2;

    fn intern(&mut self, sym: u8, align: u32, iv: Interval) -> u32 {
        if self.reuse && iv.len() >= Self::INTERN_WIDTH_MIN {
            let (id, shared) = self.tree.intern(sym, align, iv);
            if shared {
                self.stats.reuse_hits += 1;
                // A genuine Lemma-1 repeat: the pair recurs at a different
                // level, so the walk below performs the paper's
                // node-creation over R_{align(old), align(new)}.
                self.stats.merges += 1;
            }
            id
        } else {
            self.tree.push_unshared(sym, align, iv)
        }
    }

    /// Depth-first walk from `node` (which consumed `pattern[p]`) with
    /// `mism` mismatches accumulated so far. Wraps [`Self::walk_inner`]
    /// with the optional derivation-audit bookkeeping: when the walk
    /// re-enters a pair at a later alignment than it was built at (the
    /// paper's reuse situation), every spelled path below it is recorded
    /// for replay through `mi-creation`.
    fn walk(&mut self, node: u32, p: usize, mism: usize) {
        if self.audit.is_none() {
            return self.walk_inner(node, p, mism);
        }
        let nd = self.tree.node(node);
        let started = self.ctx.is_none() && (nd.align as usize) < p;
        let (sym, align) = (nd.sym, nd.align as usize);
        if started {
            self.ctx = Some(AuditCtx {
                i: align,
                j: p,
                text: Vec::new(),
                bj: Vec::new(),
            });
        }
        let pushed = if let Some(ctx) = self.ctx.as_mut() {
            ctx.text.push(sym);
            if sym != self.pattern[p] {
                ctx.bj.push((p - ctx.j) as u32);
            }
            true
        } else {
            false
        };
        self.walk_inner(node, p, mism);
        if pushed {
            let ctx = self.ctx.as_mut().expect("audit context vanished");
            let popped = ctx.text.pop();
            if popped != Some(sym) {
                unreachable!("audit text stack corrupted");
            }
            if ctx.bj.last() == Some(&((p - ctx.j) as u32)) && sym != self.pattern[p] {
                ctx.bj.pop();
            }
        }
        if started {
            self.ctx = None;
        }
    }

    /// Record the current audited path (if any) as a sample.
    fn audit_snapshot(&mut self) {
        if let (Some(audit), Some(ctx)) = (self.audit.as_mut(), self.ctx.as_ref()) {
            if audit.samples.len() < AUDIT_SAMPLE_CAP && !ctx.text.is_empty() {
                audit
                    .samples
                    .push((ctx.i, ctx.j, ctx.text.clone(), ctx.bj.clone()));
            }
        }
    }

    fn walk_inner(&mut self, node: u32, p: usize, mism: usize) {
        // One relaxed load per node expansion; singleton chains are
        // bounded by m and checked once at entry.
        if self.gate.should_stop() {
            return;
        }
        self.stats.nodes_visited += 1;
        if self.recorder.wants_depths() {
            self.recorder.depth_expand(p + 1);
        }
        let m = self.pattern.len();
        if p + 1 == m {
            self.stats.leaves += 1;
            let iv = self.tree.node(node).interval;
            self.recorder.observe(Hist::IntervalWidth, iv.len() as u64);
            self.recorder.observe(Hist::TerminationDepth, m as u64);
            report_interval(self.fm, self.text_len, iv, m, mism, &mut self.out);
            self.audit_snapshot();
            return;
        }
        let next = p + 1;
        // First visit (or D2 "resume" of a subtree stored shallower than
        // this alignment's budget needs): resolve every unresolved child
        // slot with one fused rank sweep — two block visits produce all
        // four child intervals at once, and empty extensions are marked
        // ABSENT before any per-child work.
        let (iv, resumed) = {
            let nd = self.tree.node(node);
            (nd.interval, nd.align as usize != p)
        };
        if self.tree.node(node).children.contains(&UNKNOWN) {
            if resumed {
                self.stats.resumes += 1;
            }
            self.stats.rank_extensions += 1;
            self.stats.occ_fused += 1;
            let children = self.fm.extend_all(iv);
            // Warm the children's boundary rank blocks while the slots
            // are interned; the walks below re-extend each survivor.
            for civ in &children {
                if !civ.is_empty() {
                    self.fm.prefetch_interval(*civ);
                }
            }
            for y in 1..=BASES as u8 {
                if self.tree.child(node, y) != UNKNOWN {
                    continue;
                }
                let civ = children[(y - 1) as usize];
                let slot = if civ.is_empty() {
                    ABSENT
                } else if civ.len() == 1 {
                    // Singleton subtrees stay out of the arena: they
                    // are deterministic LF chains, cheaper to re-walk
                    // than to memoise (see module docs).
                    civ.lo | SINGLETON
                } else {
                    self.intern(y, next as u32, civ)
                };
                self.tree.set_child(node, y, slot);
            }
        }
        let mut walked_any = false;
        for y in 1..=BASES as u8 {
            let slot = self.tree.child(node, y);
            if slot == ABSENT {
                // Counted at consideration time (even when the ABSENT
                // verdict came from the memoised slot, not a fresh rank
                // sweep), so a re-entered shared subtree contributes the
                // same depth profile as the baseline's re-exploration.
                if self.recorder.wants_depths() {
                    self.recorder.depth_prune(p + 2, PruneCause::EmptyInterval);
                }
                continue;
            }
            let cost = usize::from(y != self.pattern[next]);
            if mism + cost > self.k {
                if self.recorder.wants_depths() {
                    self.recorder.depth_prune(p + 2, PruneCause::Budget);
                }
                continue;
            }
            walked_any = true;
            if slot & SINGLETON != 0 {
                // Audited paths are sampled up to chain boundaries (the
                // chain symbols are not part of the shared arena).
                self.audit_snapshot();
                self.walk_chain(slot & !SINGLETON, next, mism + cost);
            } else {
                self.walk(slot, next, mism + cost);
            }
        }
        if !walked_any {
            self.stats.leaves += 1;
            self.recorder.observe(Hist::IntervalWidth, iv.len() as u64);
            self.recorder
                .observe(Hist::TerminationDepth, (p + 1) as u64);
            self.audit_snapshot();
        }
    }

    /// Follow a singleton (1-row) interval chain: each step has exactly one
    /// possible extension, by `L[row]`, costing a single rank lookup.
    fn walk_chain(&mut self, mut row: u32, mut p: usize, mut mism: usize) {
        if self.gate.should_stop() {
            return;
        }
        let m = self.pattern.len();
        loop {
            self.stats.nodes_visited += 1;
            if self.recorder.wants_depths() {
                self.recorder.depth_expand(p + 1);
            }
            if p + 1 == m {
                self.stats.leaves += 1;
                self.recorder.observe(Hist::IntervalWidth, 1);
                self.recorder.observe(Hist::TerminationDepth, m as u64);
                let iv = Interval::new(row, row + 1);
                report_interval(self.fm, self.text_len, iv, m, mism, &mut self.out);
                return;
            }
            let sym = self.fm.l_symbol(row);
            if sym == kmm_dna::SENTINEL {
                self.stats.leaves += 1;
                self.recorder.observe(Hist::IntervalWidth, 1);
                self.recorder
                    .observe(Hist::TerminationDepth, (p + 1) as u64);
                if self.recorder.wants_depths() {
                    self.recorder.depth_prune(p + 2, PruneCause::EmptyInterval);
                }
                return;
            }
            mism += usize::from(sym != self.pattern[p + 1]);
            if mism > self.k {
                self.stats.leaves += 1;
                self.recorder.observe(Hist::IntervalWidth, 1);
                self.recorder
                    .observe(Hist::TerminationDepth, (p + 1) as u64);
                if self.recorder.wants_depths() {
                    self.recorder.depth_prune(p + 2, PruneCause::Budget);
                }
                return;
            }
            self.stats.rank_extensions += 1;
            row = self.fm.lf_with(row, sym);
            p += 1;
        }
    }
}

/// High-bit tag marking a child slot as an un-materialised singleton row.
const SINGLETON: u32 = 1 << 31;

#[cfg(test)]
mod tests {
    use super::*;
    use kmm_bwt::FmBuildConfig;
    use kmm_classic::naive;
    use kmm_dna::SIGMA;

    fn rev_fm(s: &[u8]) -> (FmIndex, usize) {
        let mut rev = s.to_vec();
        rev.reverse();
        rev.push(0);
        (FmIndex::new(&rev, FmBuildConfig::default()), s.len())
    }

    fn check(s: &[u8], r: &[u8], k: usize) {
        let (fm, n) = rev_fm(s);
        let want = naive::find_k_mismatch(s, r, k);
        let alg = AlgorithmA::new(&fm, n);
        let (got, stats) = alg.search(r, k);
        assert_eq!(got, want, "reuse=on s={s:?} r={r:?} k={k}");
        assert_eq!(stats.occurrences as usize, want.len());
        let mut no_reuse = AlgorithmA::new(&fm, n);
        no_reuse.reuse = false;
        let (got, _) = no_reuse.search(r, k);
        assert_eq!(got, want, "reuse=off s={s:?} r={r:?} k={k}");
    }

    #[test]
    fn paper_figure3_example() {
        let s = kmm_dna::encode(b"acagaca").unwrap();
        let r = kmm_dna::encode(b"tcaca").unwrap();
        check(&s, &r, 2);
        let (fm, n) = rev_fm(&s);
        let (occ, _) = AlgorithmA::new(&fm, n).search(&r, 2);
        assert_eq!(
            occ,
            vec![
                Occurrence {
                    position: 0,
                    mismatches: 2
                },
                Occurrence {
                    position: 2,
                    mismatches: 2
                },
            ]
        );
    }

    #[test]
    fn reuse_fires_on_repetitive_text() {
        // A periodic target guarantees repeated pairs across levels.
        let s = kmm_dna::encode(&b"acag".repeat(40)).unwrap();
        let r = kmm_dna::encode(b"acagacagacag").unwrap();
        let (fm, n) = rev_fm(&s);
        let alg = AlgorithmA::new(&fm, n);
        let (occ, stats) = alg.search(&r, 2);
        assert_eq!(occ, naive::find_k_mismatch(&s, &r, 2));
        assert!(stats.reuse_hits > 0, "expected pair sharing: {stats}");
    }

    #[test]
    fn reuse_never_changes_answers_randomised() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(303);
        for _ in 0..60 {
            let n = rng.gen_range(1..250);
            // Low-entropy alphabet to force repeats and sharing.
            let s: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=2)).collect();
            let m = rng.gen_range(1..=n.min(14));
            let r: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=2)).collect();
            for k in 0..4usize {
                check(&s, &r, k);
            }
        }
    }

    #[test]
    fn four_letter_randomised() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(304);
        for _ in 0..40 {
            let n = rng.gen_range(1..300);
            let s: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let m = rng.gen_range(1..=n.min(20));
            let r: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            let k = rng.gen_range(0..5usize);
            check(&s, &r, k);
        }
    }

    #[test]
    fn reuse_saves_rank_extensions() {
        let s = kmm_dna::encode(&b"acgtacgaacgt".repeat(60)).unwrap();
        let r = kmm_dna::encode(b"acgtacgaacgtacgtacga").unwrap();
        let (fm, n) = rev_fm(&s);
        let with = AlgorithmA::new(&fm, n);
        let (occ_a, stats_with) = with.search(&r, 3);
        let mut without = AlgorithmA::new(&fm, n);
        without.reuse = false;
        let (occ_b, stats_without) = without.search(&r, 3);
        assert_eq!(occ_a, occ_b);
        assert!(
            stats_with.rank_extensions <= stats_without.rank_extensions,
            "with: {stats_with}\nwithout: {stats_without}"
        );
    }

    #[test]
    fn derivation_audit_validates_merge_machinery() {
        // Periodic targets and patterns force shared pairs; every audited
        // path below one must satisfy Proposition 1: the mismatch array
        // derived through merge(B^i, R_ij, …) equals direct comparison.
        let s = kmm_dna::encode(&b"acag".repeat(60)).unwrap();
        let r = kmm_dna::encode(b"acagacagacagacag").unwrap();
        let (fm, n) = rev_fm(&s);
        let alg = AlgorithmA::new(&fm, n);
        let (occ, stats, audit) = alg.search_audited(&r, 3);
        assert_eq!(occ, kmm_classic::naive::find_k_mismatch(&s, &r, 3));
        let rtable = RTable::new(&r, 3);
        // Samples exist only for forward (i < j) re-entries; all collected
        // ones must replay exactly through the merge derivation.
        audit.verify(&rtable);
        assert!(
            stats.reuse_hits > 0,
            "expected pair sharing on periodic input"
        );
    }

    #[test]
    fn derivation_audit_on_random_low_entropy_queries() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(909);
        let mut total_checked = 0usize;
        for _ in 0..40 {
            let n = rng.gen_range(50..400);
            let s: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=2)).collect();
            let m = rng.gen_range(4..=n.min(16));
            let r: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=2)).collect();
            let k = rng.gen_range(1..4);
            let (fm, len) = rev_fm(&s);
            let alg = AlgorithmA::new(&fm, len);
            let (occ, _, audit) = alg.search_audited(&r, k);
            assert_eq!(occ, kmm_classic::naive::find_k_mismatch(&s, &r, k));
            total_checked += audit.verify(&RTable::new(&r, k));
        }
        assert!(total_checked > 0, "no shared pairs exercised at all");
    }

    #[test]
    fn k_zero_is_exact_search() {
        let s = kmm_dna::encode(b"acagaca").unwrap();
        let r = kmm_dna::encode(b"aca").unwrap();
        let (fm, n) = rev_fm(&s);
        let (occ, _) = AlgorithmA::new(&fm, n).search(&r, 0);
        assert_eq!(
            occ.iter().map(|o| o.position).collect::<Vec<_>>(),
            vec![0, 4]
        );
    }

    #[test]
    fn whole_text_pattern() {
        let s = kmm_dna::encode(b"gattaca").unwrap();
        let (fm, n) = rev_fm(&s);
        let (occ, _) = AlgorithmA::new(&fm, n).search(&s, 1);
        assert_eq!(
            occ,
            vec![Occurrence {
                position: 0,
                mismatches: 0
            }]
        );
    }

    #[test]
    fn batch_searcher_matches_one_shot_and_keeps_capacity() {
        let s = kmm_dna::encode(&b"acgtacgaacgt".repeat(40)).unwrap();
        let (fm, n) = rev_fm(&s);
        let alg = AlgorithmA::new(&fm, n);
        let mut batch = alg.searcher();
        let reads: Vec<Vec<u8>> = (0..6).map(|i| s[i * 20..i * 20 + 30].to_vec()).collect();
        let mut cap_after_first = 0;
        for (i, r) in reads.iter().enumerate() {
            let (one_shot, _) = alg.search(r, 2);
            let (batched, _) = batch.search(r, 2);
            assert_eq!(one_shot, batched, "read {i}");
            if i == 0 {
                cap_after_first = batch.arena_capacity();
            }
        }
        assert!(batch.arena_capacity() >= cap_after_first);
        assert!(cap_after_first > 0);
    }

    #[test]
    fn empty_and_oversized() {
        let s = kmm_dna::encode(b"acg").unwrap();
        let (fm, n) = rev_fm(&s);
        let alg = AlgorithmA::new(&fm, n);
        assert!(alg.search(&[], 1).0.is_empty());
        let long = kmm_dna::encode(b"acgt").unwrap();
        assert!(alg.search(&long, 1).0.is_empty());
    }

    #[test]
    fn sigma_sanity() {
        // The walk assumes base codes 1..=4; guard against alphabet drift.
        assert_eq!(SIGMA, 5);
        assert_eq!(BASES, 4);
    }
}
