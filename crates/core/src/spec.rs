//! Executable specification of the paper's tree definitions.
//!
//! Section IV defines four structures that the production search realises
//! only implicitly:
//!
//! * **Definition 1 (S-tree)** — the tree of `<x, [α, β]>` pairs produced
//!   by exploring a pattern against `BWT(s̄)` with a `k + 1`-entry
//!   mismatch array `B` per path;
//! * **Definition 2 (match path)** / **Definition 3 (MM-path)** — maximal
//!   all-matching sub-paths;
//! * **Definition 4 (M-tree)** — the S-tree with every MM-path collapsed
//!   into a single `<-, 0>` node and every mismatching pair `<x, [α, β]>`
//!   (compared to `r[i]`) replaced by `<x, i>`, built with the paper's
//!   stack procedure (the quadruples `(v, j, ℓ, u)` of Example 1).
//!
//! This module constructs all of them *explicitly* for small inputs, so
//! the paper's figures become unit tests and the production search can be
//! checked against a direct transliteration of the text. It is not meant
//! for large targets — the S-tree is materialised in full.

use kmm_bwt::{FmIndex, Interval, Pair};
use kmm_dna::BASES;

/// A node of the explicit S-tree (Definition 1).
#[derive(Debug, Clone)]
pub struct SNode {
    /// The pair `<x, [α, β]>`; `None` for the virtual root `v0`.
    pub pair: Option<Pair>,
    /// SA interval backing the pair.
    pub interval: Interval,
    /// Pattern position this node is compared to (0-based; the root has
    /// no position).
    pub pos: Option<usize>,
    /// True if the node's symbol equals `r[pos]`.
    pub matching: bool,
    /// Mismatches on the root path including this node.
    pub mismatches: usize,
    /// Child node ids.
    pub children: Vec<u32>,
    /// Parent id (`u32::MAX` for the root).
    pub parent: u32,
}

/// The explicit S-tree.
#[derive(Debug)]
pub struct STree {
    /// Nodes; index 0 is the virtual root.
    pub nodes: Vec<SNode>,
    pattern_len: usize,
}

impl STree {
    /// Build the full S-tree of `pattern` against `fm` (an index of the
    /// *reversed* target) with mismatch budget `k`, following the paper's
    /// rules: matching children are always expanded; a node carrying the
    /// `(k + 1)`-th mismatch is created but not extended (its `B` array is
    /// full — the paper's P3/P4 behaviour in Fig. 3).
    pub fn build(fm: &FmIndex, pattern: &[u8], k: usize) -> STree {
        let mut tree = STree {
            nodes: vec![SNode {
                pair: None,
                interval: fm.whole(),
                pos: None,
                matching: true,
                mismatches: 0,
                children: Vec::new(),
                parent: u32::MAX,
            }],
            pattern_len: pattern.len(),
        };
        tree.expand(fm, pattern, k, 0, 0);
        tree
    }

    fn expand(&mut self, fm: &FmIndex, pattern: &[u8], k: usize, node: u32, depth: usize) {
        if depth == pattern.len() {
            return;
        }
        // A full B array (k + 1 mismatches) stops the search (paper
        // Section IV-A).
        if self.nodes[node as usize].mismatches > k {
            return;
        }
        let iv = self.nodes[node as usize].interval;
        for y in 1..=BASES as u8 {
            let child_iv = fm.extend_backward(iv, y);
            if child_iv.is_empty() {
                continue;
            }
            let matching = y == pattern[depth];
            let mismatches = self.nodes[node as usize].mismatches + usize::from(!matching);
            if mismatches > k + 1 {
                continue;
            }
            let id = self.nodes.len() as u32;
            self.nodes.push(SNode {
                pair: Some(fm.pair(y, child_iv)),
                interval: child_iv,
                pos: Some(depth),
                matching,
                mismatches,
                children: Vec::new(),
                parent: node,
            });
            self.nodes[node as usize].children.push(id);
            self.expand(fm, pattern, k, id, depth + 1);
        }
    }

    /// Leaf ids in depth-first order.
    pub fn leaves(&self) -> Vec<u32> {
        (0..self.nodes.len() as u32)
            .filter(|&id| self.nodes[id as usize].children.is_empty())
            .collect()
    }

    /// The paper's mismatch array `B_l` for the root path of `leaf`:
    /// 1-based positions of the mismatching nodes, at most `k + 1` kept.
    pub fn b_array(&self, leaf: u32) -> Vec<usize> {
        let mut b = Vec::new();
        let mut v = leaf;
        while v != u32::MAX {
            let node = &self.nodes[v as usize];
            if let Some(pos) = node.pos {
                if !node.matching {
                    b.push(pos + 1); // paper arrays are 1-based
                }
            }
            v = node.parent;
        }
        b.reverse();
        b
    }

    /// Paths that survived to the full pattern depth with <= k mismatches.
    pub fn complete_leaves(&self, k: usize) -> Vec<u32> {
        self.leaves()
            .into_iter()
            .filter(|&id| {
                let n = &self.nodes[id as usize];
                n.mismatches <= k && n.pos == Some(self.pattern_len - 1)
            })
            .collect()
    }
}

/// A node of the explicit M-tree (Definition 4): `<-, 0>` or `<x, i>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MLabel {
    /// A collapsed maximal match sub-path, the paper's `<-, 0>`.
    MatchRun,
    /// A mismatching node `<x, i>` — symbol and **1-based** pattern
    /// position, matching the paper's figures.
    Mismatch(u8, usize),
}

/// A node of the explicit M-tree.
#[derive(Debug, Clone)]
pub struct MSpecNode {
    /// The label.
    pub label: MLabel,
    /// Children ids.
    pub children: Vec<u32>,
}

/// The explicit M-tree of Definition 4.
#[derive(Debug)]
pub struct MSpecTree {
    /// Nodes; index 0 is the root `u0 = <-, 0>`.
    pub nodes: Vec<MSpecNode>,
}

impl MSpecTree {
    /// Build `D` from an S-tree with the paper's stack procedure: each
    /// popped quadruple `(v, j, ℓ, u)` creates `<x, j>` for a mismatching
    /// `v`, creates (or merges into) a `<-, 0>` node for a matching `v`,
    /// and pushes `v`'s children with the parent-to-be.
    pub fn from_stree(stree: &STree) -> MSpecTree {
        let mut d = MSpecTree {
            nodes: vec![MSpecNode {
                label: MLabel::MatchRun,
                children: Vec::new(),
            }],
        };
        // Stack entries: (s-node id, parent M-node id).
        let mut stack: Vec<(u32, u32)> = stree.nodes[0]
            .children
            .iter()
            .rev()
            .map(|&c| (c, 0u32))
            .collect();
        while let Some((v, u)) = stack.pop() {
            let snode = &stree.nodes[v as usize];
            let pos = snode.pos.expect("non-root nodes carry a position");
            let u_prime = if !snode.matching {
                // (i) mismatching: create <x, j>.
                let sym = snode.pair.expect("non-root nodes carry a pair").sym;
                let id = d.nodes.len() as u32;
                d.nodes.push(MSpecNode {
                    label: MLabel::Mismatch(sym, pos + 1),
                    children: Vec::new(),
                });
                d.nodes[u as usize].children.push(id);
                id
            } else if d.nodes[u as usize].label == MLabel::MatchRun {
                // (ii) matching under a match node: merge into the parent.
                u
            } else {
                // (iii) matching under a mismatch node: open a new <-, 0>.
                let id = d.nodes.len() as u32;
                d.nodes.push(MSpecNode {
                    label: MLabel::MatchRun,
                    children: Vec::new(),
                });
                d.nodes[u as usize].children.push(id);
                id
            };
            for &c in snode.children.iter().rev() {
                stack.push((c, u_prime));
            }
        }
        d
    }

    /// Leaf ids.
    pub fn leaves(&self) -> Vec<u32> {
        (0..self.nodes.len() as u32)
            .filter(|&id| self.nodes[id as usize].children.is_empty())
            .collect()
    }

    /// The mismatch-position array spelled by the root path of `leaf`
    /// (1-based positions, the `B_l` the M-tree path encodes).
    pub fn path_mismatch_positions(&self, leaf: u32) -> Vec<usize> {
        // Walk down from the root via a DFS that tracks the path.
        fn dfs(
            d: &MSpecTree,
            node: u32,
            target: u32,
            path: &mut Vec<usize>,
            out: &mut Option<Vec<usize>>,
        ) {
            if let MLabel::Mismatch(_, pos) = d.nodes[node as usize].label {
                path.push(pos);
            }
            if node == target {
                *out = Some(path.clone());
            } else {
                for &c in &d.nodes[node as usize].children {
                    dfs(d, c, target, path, out);
                }
            }
            if matches!(d.nodes[node as usize].label, MLabel::Mismatch(..)) {
                path.pop();
            }
        }
        let mut out = None;
        let mut path = Vec::new();
        dfs(self, 0, leaf, &mut path, &mut out);
        out.expect("leaf must be reachable from the root")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmm_bwt::FmBuildConfig;

    /// Build the paper's running example: s = acagaca, r = tcaca, k = 2.
    fn figure3() -> (FmIndex, Vec<u8>) {
        let mut rev = kmm_dna::encode(b"acagaca").unwrap();
        rev.reverse();
        rev.push(0);
        let fm = FmIndex::new(&rev, FmBuildConfig::paper());
        let r = kmm_dna::encode(b"tcaca").unwrap();
        (fm, r)
    }

    #[test]
    fn figure3_stree_structure() {
        let (fm, r) = figure3();
        let st = STree::build(&fm, &r, 2);
        // Level 1 (compared to r[1] = t, all mismatches): v1 = <a, [1,4]>,
        // v2 = <c, [1,2]>, v3 = <g, [1,1]>.
        let root_children: Vec<String> = st.nodes[0]
            .children
            .iter()
            .map(|&c| st.nodes[c as usize].pair.unwrap().to_string())
            .collect();
        assert_eq!(
            root_children,
            vec!["<a, [1, 4]>", "<c, [1, 2]>", "<g, [1, 1]>"]
        );
        assert!(st.nodes[0]
            .children
            .iter()
            .all(|&c| !st.nodes[c as usize].matching));

        // Two complete paths with exactly 2 mismatches (P1, P2).
        let complete = st.complete_leaves(2);
        assert_eq!(complete.len(), 2);
        let mut bs: Vec<Vec<usize>> = complete.iter().map(|&l| st.b_array(l)).collect();
        bs.sort();
        // B1 = [1, 4], B2 = [1, 2] (1-based), paper Section IV-A.
        assert_eq!(bs, vec![vec![1, 2], vec![1, 4]]);
    }

    #[test]
    fn figure3_cut_paths() {
        let (fm, r) = figure3();
        let st = STree::build(&fm, &r, 2);
        // P3 and P4 die with B = [1, 2, 3]: their leaves carry 3 mismatches
        // at depth 3 (0-based pos 2).
        let cut: Vec<u32> = st
            .leaves()
            .into_iter()
            .filter(|&l| st.nodes[l as usize].mismatches == 3)
            .collect();
        assert_eq!(cut.len(), 2, "exactly P3 and P4 are cut");
        for l in cut {
            assert_eq!(st.b_array(l), vec![1, 2, 3]);
            assert_eq!(st.nodes[l as usize].pos, Some(2));
        }
    }

    #[test]
    fn figure7_mtree_from_figure3_stree() {
        let (fm, r) = figure3();
        let st = STree::build(&fm, &r, 2);
        let d = MSpecTree::from_stree(&st);
        // The M-tree has exactly one leaf per S-tree leaf (paths are
        // preserved, only match runs collapse).
        assert_eq!(d.leaves().len(), st.leaves().len());
        // Each leaf path spells the same mismatch array as the S-tree's.
        let mut from_d: Vec<Vec<usize>> = d
            .leaves()
            .iter()
            .map(|&l| d.path_mismatch_positions(l))
            .collect();
        let mut from_s: Vec<Vec<usize>> = st.leaves().iter().map(|&l| st.b_array(l)).collect();
        from_d.sort();
        from_s.sort();
        assert_eq!(from_d, from_s);
        // Fig. 7's root children are the three level-1 mismatch nodes
        // <a,1>, <c,1>, <g,1>.
        let labels: Vec<MLabel> = d.nodes[0]
            .children
            .iter()
            .map(|&c| d.nodes[c as usize].label.clone())
            .collect();
        assert_eq!(
            labels,
            vec![
                MLabel::Mismatch(1, 1),
                MLabel::Mismatch(2, 1),
                MLabel::Mismatch(3, 1)
            ]
        );
        // Match runs never parent match runs (they would have merged).
        for (id, node) in d.nodes.iter().enumerate() {
            if node.label == MLabel::MatchRun {
                for &c in &node.children {
                    assert_ne!(
                        d.nodes[c as usize].label,
                        MLabel::MatchRun,
                        "node {id} has an unmerged match-run child"
                    );
                }
            }
        }
    }

    #[test]
    fn example1_stack_trace_creation_order() {
        // Paper Example 1 (Fig. 8) traces the stack construction of D:
        // step 2 pops v1 = <a, [1,4]> (mismatching vs r[1] = t) and creates
        // u1 = <a, 1>; step 4 pops v4 = <c, [1,1]> (matching r[2] = c)
        // under the mismatch node and creates the match node u4 = <-, 0>;
        // step 5 pops v8 = <a, [2,3]> (matching r[3] = a) whose parent u4
        // is already <-, 0>, so NO node is created — it merges.
        let (fm, r) = figure3();
        let st = STree::build(&fm, &r, 2);
        let d = MSpecTree::from_stree(&st);
        assert_eq!(d.nodes[0].label, MLabel::MatchRun); // virtual root u0
        assert_eq!(d.nodes[1].label, MLabel::Mismatch(1, 1)); // u1 = <a, 1>
        assert_eq!(d.nodes[2].label, MLabel::MatchRun); // u4 = <-, 0>
                                                        // The merge of v8 into u4: u4's first child is created at r[4]'s
                                                        // level (position 4, 1-based), skipping a node for v8.
        let u4 = &d.nodes[2];
        assert!(!u4.children.is_empty());
        for &c in &u4.children {
            match d.nodes[c as usize].label {
                // Children of u4 sit at S-tree depth 4 (1-based position 4)
                // because v8 (depth 3) merged into u4.
                MLabel::Mismatch(_, pos) => assert_eq!(pos, 4),
                MLabel::MatchRun => panic!("match-run child under a match run"),
            }
        }
    }

    #[test]
    fn mtree_is_smaller_than_stree() {
        let (fm, r) = figure3();
        let st = STree::build(&fm, &r, 2);
        let d = MSpecTree::from_stree(&st);
        assert!(d.nodes.len() < st.nodes.len());
    }

    #[test]
    fn spec_agrees_with_production_search() {
        // The complete S-tree leaves must report exactly the occurrences
        // the production Algorithm A finds, across random small inputs.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1212);
        for _ in 0..30 {
            let n = rng.gen_range(4..80);
            let s: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let m = rng.gen_range(1..=n.min(8));
            let r: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            let k = rng.gen_range(0..3);
            let mut rev = s.clone();
            rev.reverse();
            rev.push(0);
            let fm = FmIndex::new(&rev, FmBuildConfig::default());
            let st = STree::build(&fm, &r, k);
            let mut spec_count = 0u32;
            for leaf in st.complete_leaves(k) {
                spec_count += st.nodes[leaf as usize].interval.len();
            }
            let alg = crate::AlgorithmA::new(&fm, s.len());
            let (occ, _) = alg.search(&r, k);
            assert_eq!(spec_count as usize, occ.len(), "s={s:?} r={r:?} k={k}");
        }
    }

    #[test]
    fn exhausted_pattern_stops_expansion() {
        let (fm, r) = figure3();
        let st = STree::build(&fm, &r, 2);
        for node in &st.nodes {
            if let Some(pos) = node.pos {
                assert!(pos < r.len());
            }
        }
    }
}
