//! The paper's mismatch-information derivation (`mi-creation` /
//! `node-creation`, Section IV-C) in its literal, array-based form.
//!
//! When Algorithm A meets a pair `v` (aligned at pattern position `j`)
//! that repeats an earlier pair `v'` (aligned at `i < j`), the paper does
//! not re-explore `T[v]`; it derives, for every stored path `P_l` through
//! `v'` with mismatch array `B_l`, the mismatch array the same text path
//! has under the new alignment:
//!
//! ```text
//! R_ij      = merge(R_i, R_j, r[i..], r[j..])          (step 1)
//! B_l(new)  = merge(B_l^i, R_ij, P_l, r[j..])          (step 2)
//! ```
//!
//! because `B_l^i = mismatches(r[i..], P_l)` and
//! `R_ij = mismatches(r[i..], r[j..])` share the reference string
//! `r[i..]` (Proposition 1). The production search in
//! [`crate::algorithm_a`] realises the same derivation structurally (the
//! arena stores the symbols, so each re-derivation is O(1) per node); this
//! module keeps the paper's array formulation as an executable
//! specification, cross-checked against direct recomputation — including
//! inside the real search via [`DerivationAudit`].

use crate::merge::{merge, mismatches_direct};
use crate::rarray::RTable;

/// One stored subtree path: the spelled text `w` below the shared pair and
/// its mismatch positions against the alignment it was explored under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredPath {
    /// The symbols spelled from the shared pair downward (the shared
    /// pair's own symbol first).
    pub text: Vec<u8>,
    /// 0-based mismatch positions of `text` against `r[i ..]`.
    pub b: Vec<u32>,
}

impl StoredPath {
    /// Build a stored path by direct comparison (what live exploration
    /// records into its `B` array as it descends).
    pub fn new(text: Vec<u8>, pattern_suffix: &[u8]) -> Self {
        let b = mismatches_direct(&text, pattern_suffix, usize::MAX);
        StoredPath { text, b }
    }
}

/// Paper step 2: derive the mismatch array of a stored path under a new
/// alignment `j`, given `R_ij` (the output of step 1).
///
/// Equivalent to `mismatches_direct(&path.text, &pattern[j..])` but
/// touching only `O(|B| + |R_ij|)` positions.
pub fn derive_path(path: &StoredPath, r_ij: &[u32], pattern_j: &[u8]) -> Vec<u32> {
    merge(&path.b, r_ij, &path.text, pattern_j, usize::MAX)
}

/// The full `mi-creation(u, v, j, i)` of Section IV-C over an explicit
/// path set: derive every stored path's mismatch array for alignment `j`,
/// and drop paths whose derived count exceeds `k` (the subtrees
/// node-creation would not build).
pub fn mi_creation(
    rtable: &RTable,
    stored: &[StoredPath],
    i: usize,
    j: usize,
    k: usize,
) -> Vec<Option<Vec<u32>>> {
    let pattern = rtable.pattern().to_vec();
    let r_ij = rtable.rij(i, j);
    stored
        .iter()
        .map(|p| {
            let derived = derive_path(p, &r_ij, &pattern[j..]);
            (derived.len() <= k).then_some(derived)
        })
        .collect()
}

/// An audit hook for the production search: records, for every shared
/// subtree the walk re-enters, enough information to replay the paper's
/// array derivation and compare it with the walk's direct accounting.
#[derive(Debug, Default)]
pub struct DerivationAudit {
    /// (i, j, path text, direct mismatches-vs-j) tuples collected under
    /// shared nodes.
    pub samples: Vec<(usize, usize, Vec<u8>, Vec<u32>)>,
}

impl DerivationAudit {
    /// Verify every collected sample against the merge-based derivation.
    /// Returns the number of samples checked.
    ///
    /// # Panics
    /// Panics on the first disagreement (this is a test-support type).
    pub fn verify(&self, rtable: &RTable) -> usize {
        let pattern = rtable.pattern().to_vec();
        for (i, j, text, direct_bj) in &self.samples {
            let bi = mismatches_direct(text, &pattern[*i..], usize::MAX);
            let stored = StoredPath {
                text: text.clone(),
                b: bi,
            };
            let r_ij = rtable.rij(*i, *j);
            let derived = derive_path(&stored, &r_ij, &pattern[*j..]);
            assert_eq!(
                &derived, direct_bj,
                "derivation mismatch for i={i} j={j} path={text:?}"
            );
        }
        self.samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(s: &[u8]) -> Vec<u8> {
        kmm_dna::encode(s).unwrap()
    }

    #[test]
    fn paper_section4c_example() {
        // Section IV-C derives the mismatch information for P3 of Fig. 3
        // (r = tcaca) when <c, [1,1]> recurs: v10 (compared to r[3]) reuses
        // v4 (compared to r[1]); 0-based: j = 2 reuses i = 0.
        let r = enc(b"tcaca");
        let rtable = RTable::new(&r, 2);
        // The stored path through v4 spells s[1..5] = "caga" (the P1
        // continuation below depth 1), compared against r[1..] = "caca".
        let stored = StoredPath::new(enc(b"caga"), &r[1..]);
        assert_eq!(stored.b, vec![2]); // g vs c at offset 2
                                       // Re-aligned at j = 3 (0-based; compared against r[3..] = "ca"):
        let r_ij = rtable.rij(1, 3);
        let derived = derive_path(&stored, &r_ij, &r[3..]);
        assert_eq!(
            derived,
            mismatches_direct(&stored.text, &r[3..], usize::MAX)
        );
    }

    #[test]
    fn derive_equals_direct_randomised() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(88);
        for _ in 0..300 {
            let m = rng.gen_range(4..40usize);
            let r: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=3)).collect();
            let k = rng.gen_range(0..5);
            let rtable = RTable::new(&r, k);
            let i = rng.gen_range(0..m - 1);
            let j = loop {
                let j = rng.gen_range(0..m - 1);
                if j != i {
                    break j;
                }
            };
            // A path of any length up to the shorter suffix.
            let maxlen = (m - i).min(m - j);
            let plen = rng.gen_range(1..=maxlen);
            // Paths similar to the pattern (realistic: few mismatches).
            let text: Vec<u8> = (0..plen)
                .map(|p| {
                    if rng.gen_bool(0.2) {
                        rng.gen_range(1..=3)
                    } else {
                        r[i + p]
                    }
                })
                .collect();
            let stored = StoredPath::new(text.clone(), &r[i..]);
            let r_ij = rtable.rij(i, j);
            assert_eq!(
                derive_path(&stored, &r_ij, &r[j..]),
                mismatches_direct(&text, &r[j..], usize::MAX),
                "r={r:?} i={i} j={j} text={text:?}"
            );
        }
    }

    #[test]
    fn mi_creation_prunes_over_budget_paths() {
        let r = enc(b"acgtacgt");
        let rtable = RTable::new(&r, 1);
        // Stored under alignment i = 0; derive for j = 4 where r[4..] =
        // "acgt".
        let good = StoredPath::new(enc(b"acgt"), &r);
        let bad = StoredPath::new(enc(b"tgca"), &r);
        let derived = mi_creation(&rtable, &[good, bad], 0, 4, 1);
        assert_eq!(derived.len(), 2);
        assert_eq!(derived[0], Some(vec![])); // perfect match under j = 4
        assert_eq!(derived[1], None); // 4 mismatches > k = 1
    }

    #[test]
    fn audit_verifies_consistent_samples() {
        let r = enc(b"acacacac");
        let rtable = RTable::new(&r, 2);
        let mut audit = DerivationAudit::default();
        let text = enc(b"cacac");
        let bj = mismatches_direct(&text, &r[2..], usize::MAX);
        audit.samples.push((0, 2, text, bj));
        assert_eq!(audit.verify(&rtable), 1);
    }

    #[test]
    #[should_panic(expected = "derivation mismatch")]
    fn audit_catches_wrong_samples() {
        let r = enc(b"acacacac");
        let rtable = RTable::new(&r, 2);
        let mut audit = DerivationAudit::default();
        audit.samples.push((0, 2, enc(b"cacac"), vec![0, 1, 2]));
        audit.verify(&rtable);
    }

    #[test]
    fn stored_path_records_live_mismatches() {
        let r = enc(b"tcaca");
        let p = StoredPath::new(enc(b"acaga"), &r);
        // acaga vs tcaca: positions 0 and 3 differ.
        assert_eq!(p.b, vec![0, 3]);
    }
}
