//! The S-tree search: brute-force k-mismatch matching over `BWT(s̄)`.
//!
//! This is the BWT-based baseline of \[34\] as recapped in Section IV-A of
//! the paper: a depth-first exploration in which every node is a pair
//! `<x, [α, β]>`, a child is produced for each symbol occurring in the
//! parent's `L`-range (one `search()` = one backward extension), and a
//! branch is abandoned once its mismatch array `B` holds `k + 1` entries.
//! The optional `φ(i)` heuristic prunes branches whose remaining pattern
//! provably needs more mismatches than the remaining budget.
//!
//! Its cost is `O(m n')` where `n'` counts the S-tree leaves — the
//! redundancy Algorithm A removes.

use kmm_bwt::{FmIndex, Interval};
use kmm_classic::Occurrence;
use kmm_dna::BASES;
use kmm_telemetry::{Hist, NoopRecorder, Phase, PruneCause, Recorder};

use crate::cancel::{CancelToken, Gate, Outcome};
use crate::phi::phi_table;
use crate::stats::SearchStats;

/// Map a match of length `m` found at position `p` of the *reversed* text
/// back to its start position in the forward text of length `text_len`.
#[inline]
pub(crate) fn rev_pos_to_forward(text_len: usize, p: usize, m: usize) -> usize {
    debug_assert!(p + m <= text_len);
    text_len - p - m
}

/// Collect the occurrences represented by a completed search interval.
pub(crate) fn report_interval(
    fm: &FmIndex,
    text_len: usize,
    iv: Interval,
    m: usize,
    mismatches: usize,
    out: &mut Vec<Occurrence>,
) {
    for row in iv.rows() {
        let p = fm.sa_value(row) as usize;
        out.push(Occurrence {
            position: rev_pos_to_forward(text_len, p, m),
            mismatches,
        });
    }
}

/// The brute-force S-tree searcher (paper's "BWT" method).
#[derive(Debug, Clone, Copy)]
pub struct STreeSearch<'a> {
    fm: &'a FmIndex,
    text_len: usize,
    /// Enable the `φ(i)` pruning heuristic of \[34\].
    pub use_phi: bool,
}

impl<'a> STreeSearch<'a> {
    /// `fm` must index `reverse(s) + $`; `text_len = |s|` (no sentinel).
    pub fn new(fm: &'a FmIndex, text_len: usize) -> Self {
        debug_assert_eq!(fm.len(), text_len + 1);
        STreeSearch {
            fm,
            text_len,
            use_phi: true,
        }
    }

    /// All occurrences of `pattern` in the forward text with at most `k`
    /// mismatches, sorted by position, plus search statistics.
    pub fn search(&self, pattern: &[u8], k: usize) -> (Vec<Occurrence>, SearchStats) {
        self.search_recorded(pattern, k, &NoopRecorder)
    }

    /// [`Self::search`] with telemetry: φ-table construction is timed as
    /// `preprocess.phi`, leaf widths/depths go to histograms, and the
    /// final [`SearchStats`] are added to the `search.*` counters.
    pub fn search_recorded<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        recorder: &R,
    ) -> (Vec<Occurrence>, SearchStats) {
        let gate = Gate::open();
        match self.search_gated(pattern, k, &gate, recorder) {
            Outcome::Complete(r) => r,
            Outcome::Truncated(_) => unreachable!("open gate cannot trip"),
        }
    }

    /// [`Self::search_recorded`] under a cancellation token: the DFS
    /// polls `token` at node-expansion granularity and unwinds once it
    /// expires, returning [`Outcome::Truncated`] with every occurrence
    /// verified so far.
    pub fn search_deadline_recorded<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        token: &CancelToken,
        recorder: &R,
    ) -> Outcome<(Vec<Occurrence>, SearchStats)> {
        let gate = Gate::new(Some(token));
        self.search_gated(pattern, k, &gate, recorder)
    }

    fn search_gated<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        gate: &Gate<'_>,
        recorder: &R,
    ) -> Outcome<(Vec<Occurrence>, SearchStats)> {
        let mut stats = SearchStats::default();
        let m = pattern.len();
        if m == 0 || m > self.text_len {
            return Outcome::Complete((Vec::new(), stats));
        }
        let phi = if self.use_phi {
            let _span = recorder.span(Phase::PreprocessPhi);
            Some(phi_table(self.fm, pattern))
        } else {
            None
        };
        let mut out = Vec::new();
        {
            let _span = recorder.span(Phase::SearchDescend);
            self.dfs(
                self.fm.whole(),
                0,
                0,
                pattern,
                k,
                phi.as_deref(),
                gate,
                &mut out,
                &mut stats,
                recorder,
            );
        }
        out.sort_unstable();
        stats.occurrences = out.len() as u64;
        stats.timeouts = u64::from(gate.tripped());
        stats.record_into(recorder);
        Outcome::from_parts((out, stats), gate.tripped())
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs<R: Recorder>(
        &self,
        iv: Interval,
        mut j: usize,
        mut mism: usize,
        pattern: &[u8],
        k: usize,
        phi: Option<&[u32]>,
        gate: &Gate<'_>,
        out: &mut Vec<Occurrence>,
        stats: &mut SearchStats,
        recorder: &R,
    ) {
        // One relaxed load per node expansion; chains below are bounded
        // by m, so per-expansion is as fine as cancellation needs.
        if gate.should_stop() {
            return;
        }
        if iv.is_empty() {
            return;
        }
        let m = pattern.len();
        // Singleton fast path: a 1-row interval has exactly one possible
        // extension (by `L[row]`), so the chain is followed with one rank
        // lookup per symbol and no branching.
        if iv.len() == 1 {
            let mut row = iv.lo;
            loop {
                stats.nodes_visited += 1;
                if recorder.wants_depths() {
                    recorder.depth_expand(j);
                }
                if j == m {
                    stats.leaves += 1;
                    recorder.observe(Hist::IntervalWidth, 1);
                    recorder.observe(Hist::TerminationDepth, m as u64);
                    report_interval(
                        self.fm,
                        self.text_len,
                        Interval::new(row, row + 1),
                        m,
                        mism,
                        out,
                    );
                    return;
                }
                if let Some(phi) = phi {
                    if ((k - mism) as u32) < phi[j] {
                        stats.phi_prunes += 1;
                        stats.leaves += 1;
                        recorder.observe(Hist::IntervalWidth, 1);
                        recorder.observe(Hist::TerminationDepth, j as u64);
                        if recorder.wants_depths() {
                            recorder.depth_prune(j, PruneCause::Cutoff);
                        }
                        return;
                    }
                }
                let sym = self.fm.l_symbol(row);
                if sym == kmm_dna::SENTINEL {
                    stats.leaves += 1;
                    recorder.observe(Hist::IntervalWidth, 1);
                    recorder.observe(Hist::TerminationDepth, j as u64);
                    if recorder.wants_depths() {
                        recorder.depth_prune(j + 1, PruneCause::EmptyInterval);
                    }
                    return;
                }
                mism += usize::from(sym != pattern[j]);
                if mism > k {
                    stats.leaves += 1;
                    recorder.observe(Hist::IntervalWidth, 1);
                    recorder.observe(Hist::TerminationDepth, j as u64);
                    if recorder.wants_depths() {
                        recorder.depth_prune(j + 1, PruneCause::Budget);
                    }
                    return;
                }
                stats.rank_extensions += 1;
                row = self.fm.lf_with(row, sym);
                j += 1;
            }
        }

        stats.nodes_visited += 1;
        if recorder.wants_depths() {
            recorder.depth_expand(j);
        }
        if j == m {
            stats.leaves += 1;
            recorder.observe(Hist::IntervalWidth, iv.len() as u64);
            recorder.observe(Hist::TerminationDepth, m as u64);
            report_interval(self.fm, self.text_len, iv, m, mism, out);
            return;
        }
        // The heuristic of [34]: every absent substring of r[j..] forces a
        // mismatch, so a branch with fewer remaining mismatches than φ(j)
        // cannot complete.
        if let Some(phi) = phi {
            if ((k - mism) as u32) < phi[j] {
                stats.phi_prunes += 1;
                stats.leaves += 1;
                recorder.observe(Hist::IntervalWidth, iv.len() as u64);
                recorder.observe(Hist::TerminationDepth, j as u64);
                if recorder.wants_depths() {
                    recorder.depth_prune(j, PruneCause::Cutoff);
                }
                return;
            }
        }
        // One fused rank sweep resolves all four children: two block
        // visits (lo/hi boundary) replace the eight occ lookups of four
        // independent extensions, and empty children are skipped before
        // any per-child work.
        stats.rank_extensions += 1;
        stats.occ_fused += 1;
        let children = self.fm.extend_all(iv);
        // Hint the next level's rank blocks into cache while this level
        // does its per-child bookkeeping; the descent below re-extends
        // each surviving child, and its boundary blocks are exactly what
        // these advisory prefetches pull in.
        for child in &children {
            if !child.is_empty() {
                self.fm.prefetch_interval(*child);
            }
        }
        let mut any_child = false;
        for y in 1..=BASES as u8 {
            let child = children[(y - 1) as usize];
            if child.is_empty() {
                if recorder.wants_depths() {
                    recorder.depth_prune(j + 1, PruneCause::EmptyInterval);
                }
                continue;
            }
            let is_match = y == pattern[j];
            if !is_match && mism == k {
                if recorder.wants_depths() {
                    recorder.depth_prune(j + 1, PruneCause::Budget);
                }
                continue;
            }
            any_child = true;
            self.dfs(
                child,
                j + 1,
                mism + usize::from(!is_match),
                pattern,
                k,
                phi,
                gate,
                out,
                stats,
                recorder,
            );
        }
        if !any_child {
            stats.leaves += 1;
            recorder.observe(Hist::IntervalWidth, iv.len() as u64);
            recorder.observe(Hist::TerminationDepth, (j + 1) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmm_bwt::FmBuildConfig;
    use kmm_classic::naive;

    /// Build the reverse-text index for a forward ASCII target.
    pub(crate) fn rev_fm(ascii: &[u8]) -> (FmIndex, usize) {
        let mut rev = kmm_dna::encode(ascii).unwrap();
        rev.reverse();
        rev.push(0);
        (FmIndex::new(&rev, FmBuildConfig::default()), ascii.len())
    }

    #[test]
    fn paper_figure3_search() {
        // Section IV-A: r = tcaca, s = acagaca, k = 2; the S-tree finds two
        // occurrences: s[1..5] = acaga and s[3..7] = agaca (1-based).
        let (fm, n) = rev_fm(b"acagaca");
        let st = STreeSearch::new(&fm, n);
        let r = kmm_dna::encode(b"tcaca").unwrap();
        let (occ, stats) = st.search(&r, 2);
        let positions: Vec<usize> = occ.iter().map(|o| o.position).collect();
        assert_eq!(positions, vec![0, 2]); // 0-based starts of the two hits
        assert_eq!(occ[0].mismatches, 2);
        assert_eq!(occ[1].mismatches, 2);
        assert!(stats.leaves >= 2);
        assert_eq!(stats.occurrences, 2);
    }

    #[test]
    fn agrees_with_naive_with_and_without_phi() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        for _ in 0..50 {
            let n = rng.gen_range(1..200);
            let s: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let ascii = kmm_dna::decode(&s);
            let (fm, len) = rev_fm(&ascii);
            let m = rng.gen_range(1..=n.min(15));
            let r: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            for k in 0..4usize.min(m) {
                let want = naive::find_k_mismatch(&s, &r, k);
                let mut with_phi = STreeSearch::new(&fm, len);
                with_phi.use_phi = true;
                let (got, _) = with_phi.search(&r, k);
                assert_eq!(got, want, "phi=on s={s:?} r={r:?} k={k}");
                let mut without = STreeSearch::new(&fm, len);
                without.use_phi = false;
                let (got, _) = without.search(&r, k);
                assert_eq!(got, want, "phi=off s={s:?} r={r:?} k={k}");
            }
        }
    }

    #[test]
    fn exact_search_is_k0() {
        let (fm, n) = rev_fm(b"acagaca");
        let st = STreeSearch::new(&fm, n);
        let r = kmm_dna::encode(b"aca").unwrap();
        let (occ, _) = st.search(&r, 0);
        assert_eq!(
            occ.iter().map(|o| o.position).collect::<Vec<_>>(),
            vec![0, 4]
        );
        assert!(occ.iter().all(|o| o.mismatches == 0));
    }

    #[test]
    fn phi_reduces_explored_nodes() {
        // A pattern with many absent substrings should get pruned earlier
        // with the heuristic enabled.
        let g = kmm_dna::genome::uniform(2000, 9);
        let ascii = kmm_dna::decode(&g);
        let (fm, n) = rev_fm(&ascii);
        let r = kmm_dna::encode(b"ttttgggggtttttggggg").unwrap();
        let mut with_phi = STreeSearch::new(&fm, n);
        with_phi.use_phi = true;
        let mut without = STreeSearch::new(&fm, n);
        without.use_phi = false;
        let (a, sa) = with_phi.search(&r, 3);
        let (b, sb) = without.search(&r, 3);
        assert_eq!(a, b);
        assert!(sa.nodes_visited <= sb.nodes_visited);
        assert!(sa.phi_prunes > 0 || sa.nodes_visited == sb.nodes_visited);
    }

    #[test]
    fn oversized_and_empty_patterns() {
        let (fm, n) = rev_fm(b"acg");
        let st = STreeSearch::new(&fm, n);
        assert!(st.search(&[], 1).0.is_empty());
        let long = kmm_dna::encode(b"acgta").unwrap();
        assert!(st.search(&long, 1).0.is_empty());
    }

    #[test]
    fn k_equal_to_m_matches_every_window() {
        let (fm, n) = rev_fm(b"acgtacg");
        let st = STreeSearch::new(&fm, n);
        let r = kmm_dna::encode(b"tt").unwrap();
        let (occ, _) = st.search(&r, 2);
        assert_eq!(occ.len(), n - 2 + 1);
    }
}
