//! The mismatching-tree arena behind Algorithm A.
//!
//! The paper's Algorithm A (Section IV-D) keeps a hash table of every
//! `<x, [α, β]>` pair produced by `search()`, and when a pair recurs
//! (necessarily at a different level — Lemma 1) it derives the repeated
//! subtree from stored mismatch information instead of re-running
//! `search()`. The structure that makes this sound is that a pair's
//! *children intervals* depend only on the pair's interval, never on the
//! pattern position it is aligned to: `search(y, L_{<x,[α,β]>})` is a pure
//! function of `(y, α, β)`.
//!
//! We therefore materialise the explored part of the search tree exactly
//! once per query as a shared arena ("M-tree"): each node is a pair with
//! its interval and four lazily-resolved child slots. A repeated pair maps
//! to the *same* node, so its subtree is walked — matching and mismatching
//! positions re-derived against the new alignment, the paper's
//! `node-creation` — with **zero** further rank lookups, and deeper
//! exploration demanded by a larger remaining budget at the new alignment
//! materialises on demand (the "extension" of the paper's case (ii) and
//! our DESIGN.md D2 resume rule, handled uniformly by the `Unknown` child
//! state).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use kmm_bwt::Interval;
use kmm_dna::BASES;
use kmm_telemetry::cost::{self, CostKind};

/// Child-slot marker: this symbol has not been looked up yet.
pub const UNKNOWN: u32 = u32::MAX;
/// Child-slot marker: this symbol was looked up and does not occur.
pub const ABSENT: u32 = u32::MAX - 1;

/// One materialised pair node.
#[derive(Debug, Clone)]
pub struct MTreeNode {
    /// Symbol consumed when this pair was produced (the `x` of
    /// `<x, [α, β]>`).
    pub sym: u8,
    /// Pattern position (0-based) the node was aligned to when first
    /// materialised — the paper's "compared to r\[i\]".
    pub align: u32,
    /// The pair's SA interval in the reverse-text index.
    pub interval: Interval,
    /// Child node ids per base symbol (index = code − 1); [`UNKNOWN`] /
    /// [`ABSENT`] markers for unresolved / empty extensions.
    pub children: [u32; BASES],
}

/// A fast integer hasher (FxHash-style multiply-xor), adequate for the
/// well-mixed `(lo, hi)` interval keys and free of dependencies.
#[derive(Default)]
pub struct FxHasher(u64);

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(SEED);
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// The per-query arena plus the pair hash table.
#[derive(Debug, Default)]
pub struct MTree {
    nodes: Vec<MTreeNode>,
    /// Pair identity: the interval alone determines the symbol (it lies in
    /// that symbol's F-block), so the interval is the key.
    by_interval: HashMap<u64, u32, FxBuild>,
}

impl MTree {
    /// Fresh arena with capacity hints for one query.
    pub fn new() -> Self {
        MTree::default()
    }

    /// Reset for the next query, keeping allocated capacity (used by the
    /// batch searcher to amortise arena and hash-table allocation across
    /// reads).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.by_interval.clear();
    }

    /// Allocated node capacity (for tests of capacity retention).
    pub fn capacity(&self) -> usize {
        self.nodes.capacity()
    }

    #[inline]
    fn key(iv: Interval) -> u64 {
        ((iv.lo as u64) << 32) | iv.hi as u64
    }

    /// Number of materialised nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True before anything is materialised.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, id: u32) -> &MTreeNode {
        &self.nodes[id as usize]
    }

    /// Look up the node for an interval, if already materialised.
    #[inline]
    pub fn find(&self, iv: Interval) -> Option<u32> {
        self.by_interval.get(&Self::key(iv)).copied()
    }

    /// Materialise (or share) the node for a non-empty interval produced by
    /// consuming `sym` while aligned at pattern position `align`.
    ///
    /// Returns `(id, was_shared)`.
    #[inline]
    pub fn intern(&mut self, sym: u8, align: u32, iv: Interval) -> (u32, bool) {
        debug_assert!(!iv.is_empty());
        match self.by_interval.entry(Self::key(iv)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                cost::bump(CostKind::MtreeReused, 1);
                (*e.get(), true)
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = self.nodes.len() as u32;
                self.nodes.push(MTreeNode {
                    sym,
                    align,
                    interval: iv,
                    children: [UNKNOWN; BASES],
                });
                e.insert(id);
                cost::bump(CostKind::MtreeBuilt, 1);
                (id, false)
            }
        }
    }

    /// Create a node without registering it in the pair table (used by the
    /// no-reuse ablation mode, where every encounter explores afresh).
    #[inline]
    pub fn push_unshared(&mut self, sym: u8, align: u32, iv: Interval) -> u32 {
        cost::bump(CostKind::MtreeBuilt, 1);
        let id = self.nodes.len() as u32;
        self.nodes.push(MTreeNode {
            sym,
            align,
            interval: iv,
            children: [UNKNOWN; BASES],
        });
        id
    }

    /// Read a child slot (symbol codes 1..=4).
    #[inline]
    pub fn child(&self, id: u32, sym: u8) -> u32 {
        self.nodes[id as usize].children[(sym - 1) as usize]
    }

    /// Write a child slot.
    #[inline]
    pub fn set_child(&mut self, id: u32, sym: u8, value: u32) {
        self.nodes[id as usize].children[(sym - 1) as usize] = value;
    }

    /// Approximate heap usage, for memory accounting in experiments.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<MTreeNode>()
            + self.by_interval.capacity() * (std::mem::size_of::<(u64, u32)>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_shares_equal_intervals() {
        let mut t = MTree::new();
        let iv = Interval::new(5, 7);
        let (a, shared_a) = t.intern(2, 1, iv);
        assert!(!shared_a);
        let (b, shared_b) = t.intern(2, 3, iv);
        assert!(shared_b);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        // The stored alignment stays the first one.
        assert_eq!(t.node(a).align, 1);
    }

    #[test]
    fn distinct_intervals_get_distinct_nodes() {
        let mut t = MTree::new();
        let (a, _) = t.intern(1, 0, Interval::new(1, 5));
        let (b, _) = t.intern(1, 0, Interval::new(1, 4));
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn children_default_unknown_and_are_settable() {
        let mut t = MTree::new();
        let (id, _) = t.intern(1, 0, Interval::new(0, 8));
        for sym in 1..=4u8 {
            assert_eq!(t.child(id, sym), UNKNOWN);
        }
        t.set_child(id, 2, ABSENT);
        assert_eq!(t.child(id, 2), ABSENT);
        t.set_child(id, 3, 0);
        assert_eq!(t.child(id, 3), 0);
    }

    #[test]
    fn find_matches_intern() {
        let mut t = MTree::new();
        let iv = Interval::new(2, 9);
        assert_eq!(t.find(iv), None);
        let (id, _) = t.intern(4, 7, iv);
        assert_eq!(t.find(iv), Some(id));
    }

    #[test]
    fn hasher_differentiates_lo_hi() {
        // (1, 2) vs (2, 1) must not collide into the same key.
        assert_ne!(
            MTree::key(Interval::new(1, 2)),
            MTree::key(Interval { lo: 2, hi: 1 })
        );
    }

    #[test]
    fn heap_bytes_grows() {
        let mut t = MTree::new();
        let before = t.heap_bytes();
        for i in 0..100u32 {
            t.intern(1, 0, Interval::new(i, i + 1));
        }
        assert!(t.heap_bytes() > before);
    }
}
