//! Bidirectional k-mismatch search driven by partition search schemes.
//!
//! The unidirectional searches (S-tree, Algorithm A) extend patterns in
//! one direction only, so every mismatch budget is spent near the root
//! where SA intervals are still huge. A *search scheme* (Kucherov et
//! al. 2014; Kianfar et al., "Optimum Search Schemes") splits the
//! pattern into `P` pieces and runs a small set of searches, each
//! processing the pieces in a different order over a [`BiFmIndex`] —
//! extending left or right as the order demands — with cumulative
//! lower/upper mismatch bounds per piece. The orders are chosen so
//! errors are forced *late*: every search starts from a piece that must
//! match exactly (or nearly so), collapsing the interval before any
//! branching is allowed.
//!
//! The precomputed tables for `k = 1..3` are complete **and disjoint**
//! (machine-checked in the tests below): every error distribution over
//! the pieces is enumerated by exactly one search, so no occurrence is
//! found twice. The pigeonhole fallback used for larger `k` (or when
//! `KMM_BIDIR_PIGEONHOLE=1` forces it, the bench's planted-regression
//! hook) is complete but overlapping; results are sorted and deduped
//! either way.

use kmm_bwt::{BiFmIndex, BiInterval, FmIndex, RankAll};
use kmm_classic::Occurrence;
use kmm_dna::BASES;
use kmm_telemetry::{Hist, NoopRecorder, Phase, PruneCause, Recorder};

use crate::algorithm_a::AlgorithmA;
use crate::cancel::{CancelToken, Gate, Outcome};
use crate::stats::SearchStats;
use crate::stree::report_interval;

/// One search of a scheme: process the pattern pieces in order
/// [`SchemeSearch::pi`]; after the `i`-th piece the cumulative mismatch
/// count must lie in `[lower[i], upper[i]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeSearch {
    /// Piece permutation (0-based). Must grow a contiguous window:
    /// each piece is adjacent to the span already processed.
    pub pi: Vec<usize>,
    /// Cumulative lower mismatch bound per processed-piece prefix.
    pub lower: Vec<usize>,
    /// Cumulative upper mismatch bound per processed-piece prefix.
    pub upper: Vec<usize>,
}

/// A full search scheme for one mismatch budget `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheme {
    /// The mismatch budget the scheme enumerates.
    pub k: usize,
    /// Number of pattern pieces `P`.
    pub pieces: usize,
    /// The searches; their union covers every error distribution
    /// summing to at most `k`.
    pub searches: Vec<SchemeSearch>,
}

type RawSearch = (&'static [usize], &'static [usize], &'static [usize]);

/// k = 0: one exact search.
const K0: &[RawSearch] = &[(&[0], &[0], &[0])];

/// k = 1, P = 2: the classic bidirectional pair — each search keeps one
/// half exact and lets the error fall in the half processed second.
const K1: &[RawSearch] = &[(&[0, 1], &[0, 0], &[0, 1]), (&[1, 0], &[0, 1], &[0, 1])];

/// k = 2, P = 3: distributions partitioned by the first error-free
/// piece `j` (some piece must be exact — pigeonhole — and taking the
/// *first* one makes the classes disjoint). Search `j` keeps piece `j`
/// exact and demands one error in every earlier piece; the last search
/// can then pin its whole error profile, tightening the bounds past
/// what the plain pigeonhole searches allow.
const K2: &[RawSearch] = &[
    (&[0, 1, 2], &[0, 0, 0], &[0, 2, 2]),
    (&[1, 0, 2], &[0, 1, 1], &[0, 2, 2]),
    (&[2, 1, 0], &[0, 1, 2], &[0, 1, 2]),
];

/// k = 3, P = 4: the same first-error-free-piece classification.
/// Cumulative bounds cannot express "at least one error in *each*
/// earlier piece" when more than one budget unit is to spare, so the
/// `j = 2` class is split by how many errors piece 1 carries.
const K3: &[RawSearch] = &[
    (&[0, 1, 2, 3], &[0, 0, 0, 0], &[0, 3, 3, 3]),
    (&[1, 0, 2, 3], &[0, 1, 1, 1], &[0, 3, 3, 3]),
    (&[2, 1, 0, 3], &[0, 1, 2, 2], &[0, 1, 3, 3]),
    (&[2, 1, 0, 3], &[0, 2, 3, 3], &[0, 2, 3, 3]),
    (&[3, 2, 1, 0], &[0, 1, 2, 3], &[0, 1, 2, 3]),
];

impl Scheme {
    /// The precomputed complete-and-disjoint scheme for `k <= 3`.
    pub fn optimum(k: usize) -> Option<Scheme> {
        let raw = match k {
            0 => K0,
            1 => K1,
            2 => K2,
            3 => K3,
            _ => return None,
        };
        Some(Scheme::from_raw(k, raw))
    }

    /// The pigeonhole scheme for any `k`: `P = k + 1` pieces, search
    /// `j` keeps piece `j` exact, then sweeps left through the earlier
    /// pieces (each must carry at least one error — that is what keeps
    /// the family complete with only `k + 1` searches) and finishes
    /// rightward with the full budget. Complete for every `k`, but the
    /// searches overlap, so downstream results must be deduped.
    pub fn pigeonhole(k: usize) -> Scheme {
        let p = k + 1;
        let searches = (0..p)
            .map(|j| {
                let pi: Vec<usize> = (0..=j).rev().chain(j + 1..p).collect();
                let lower: Vec<usize> = (0..p).map(|i| i.min(j)).collect();
                let upper: Vec<usize> = std::iter::once(0)
                    .chain(std::iter::repeat(k).take(p - 1))
                    .collect();
                SchemeSearch { pi, lower, upper }
            })
            .collect();
        Scheme {
            k,
            pieces: p,
            searches,
        }
    }

    /// The scheme [`BidirSearch`] uses for budget `k`: the precomputed
    /// table when one exists, the pigeonhole fallback otherwise.
    /// Setting `KMM_BIDIR_PIGEONHOLE=1` forces the fallback — the
    /// planted-regression hook for the bench gate.
    pub fn for_k(k: usize) -> Scheme {
        let forced = std::env::var("KMM_BIDIR_PIGEONHOLE").is_ok_and(|v| v != "0");
        if forced {
            return Scheme::pigeonhole(k);
        }
        Scheme::optimum(k).unwrap_or_else(|| Scheme::pigeonhole(k))
    }

    fn from_raw(k: usize, raw: &[RawSearch]) -> Scheme {
        let pieces = raw[0].0.len();
        let searches = raw
            .iter()
            .map(|&(pi, lower, upper)| SchemeSearch {
                pi: pi.to_vec(),
                lower: lower.to_vec(),
                upper: upper.to_vec(),
            })
            .collect();
        Scheme {
            k,
            pieces,
            searches,
        }
    }
}

/// One compiled DFS level: which pattern position is consumed, in which
/// direction, and the mismatch bounds in force after consuming it.
#[derive(Debug, Clone, Copy)]
struct Step {
    /// Pattern index matched at this level.
    pos: usize,
    /// `true` → [`BiFmIndex::extend_left_all`], else extend right.
    left: bool,
    /// Cumulative upper bound of the piece this step belongs to.
    upper: usize,
    /// Minimum cumulative mismatches that must already be accrued after
    /// this step for every remaining lower bound to stay reachable
    /// (each later step can add at most one mismatch).
    need: usize,
}

/// Flatten one search into an `m`-step plan over the pattern pieces
/// `[i·m/P, (i+1)·m/P)`. The first piece is consumed left-to-right;
/// every later piece extends whichever end of the matched window it
/// touches. Requires `m >= P` so every piece is non-empty.
fn compile_plan(search: &SchemeSearch, m: usize) -> Vec<Step> {
    let p = search.pi.len();
    debug_assert!(m >= p, "pieces must be non-empty");
    let bounds: Vec<usize> = (0..=p).map(|i| i * m / p).collect();
    let mut plan = Vec::with_capacity(m);
    // Step index of the last step of each processed piece.
    let mut ends = Vec::with_capacity(p);
    let mut lo = bounds[search.pi[0]];
    let mut hi = lo;
    for (i, &piece) in search.pi.iter().enumerate() {
        let (s, e) = (bounds[piece], bounds[piece + 1]);
        let upper = search.upper[i];
        if i == 0 || s == hi {
            for pos in s..e {
                plan.push(Step {
                    pos,
                    left: false,
                    upper,
                    need: 0,
                });
            }
            hi = e;
        } else {
            debug_assert_eq!(e, lo, "piece order must grow the window contiguously");
            for pos in (s..e).rev() {
                plan.push(Step {
                    pos,
                    left: true,
                    upper,
                    need: 0,
                });
            }
            lo = s;
        }
        ends.push(plan.len() - 1);
    }
    debug_assert_eq!(plan.len(), m);
    // Lookahead lower bounds: at step t the budget already spent plus
    // one per remaining step must reach every later piece's lower
    // bound, or the branch can never satisfy the scheme.
    for t in 0..m {
        let mut need = 0usize;
        for (i, &end) in ends.iter().enumerate() {
            if end >= t {
                need = need.max(search.lower[i].saturating_sub(end - t));
            }
        }
        plan[t].need = need;
    }
    plan
}

/// The scheme-driven bidirectional searcher (`Method::Bidirectional`).
#[derive(Debug, Clone, Copy)]
pub struct BidirSearch<'a> {
    bi: BiFmIndex<'a>,
    text_len: usize,
}

impl<'a> BidirSearch<'a> {
    /// `fm` must index `reverse(s) + $`, `mirror` must be the rankall of
    /// `BWT(s + $)` (see [`kmm_bwt::build_mirror`]); `text_len = |s|`.
    pub fn new(fm: &'a FmIndex, mirror: &'a RankAll, text_len: usize) -> Self {
        debug_assert_eq!(fm.len(), text_len + 1);
        BidirSearch {
            bi: BiFmIndex::new(fm, mirror),
            text_len,
        }
    }

    /// All occurrences of `pattern` with at most `k` mismatches, sorted
    /// by position, plus search statistics.
    pub fn search(&self, pattern: &[u8], k: usize) -> (Vec<Occurrence>, SearchStats) {
        self.search_recorded(pattern, k, &NoopRecorder)
    }

    /// [`Self::search`] with telemetry on `recorder` (depth profile,
    /// leaf histograms, `search.*` counters).
    pub fn search_recorded<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        recorder: &R,
    ) -> (Vec<Occurrence>, SearchStats) {
        let scheme = Scheme::for_k(k);
        if self.delegates(pattern, k, &scheme) {
            return AlgorithmA::new(self.bi.fm(), self.text_len)
                .search_recorded(pattern, k, recorder);
        }
        let gate = Gate::open();
        match self.search_scheme(pattern, &scheme, &gate, recorder) {
            Outcome::Complete(r) => r,
            Outcome::Truncated(_) => unreachable!("open gate cannot trip"),
        }
    }

    /// [`Self::search_recorded`] under a cancellation token, polled at
    /// node-expansion granularity.
    pub fn search_deadline_recorded<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        token: &CancelToken,
        recorder: &R,
    ) -> Outcome<(Vec<Occurrence>, SearchStats)> {
        let scheme = Scheme::for_k(k);
        if self.delegates(pattern, k, &scheme) {
            return AlgorithmA::new(self.bi.fm(), self.text_len)
                .search_deadline_recorded(pattern, k, token, recorder);
        }
        let gate = Gate::new(Some(token));
        self.search_scheme(pattern, &scheme, &gate, recorder)
    }

    /// Degenerate budgets a partition scheme cannot express: a piece
    /// would be empty (`m < P`) or every window matches trivially
    /// (`k >= m`). Algorithm A answers those — same results, and they
    /// are outside the regime bidirectionality accelerates anyway.
    fn delegates(&self, pattern: &[u8], k: usize, scheme: &Scheme) -> bool {
        k >= pattern.len() || pattern.len() < scheme.pieces
    }

    fn search_scheme<R: Recorder>(
        &self,
        pattern: &[u8],
        scheme: &Scheme,
        gate: &Gate<'_>,
        recorder: &R,
    ) -> Outcome<(Vec<Occurrence>, SearchStats)> {
        let mut stats = SearchStats::default();
        let m = pattern.len();
        if m > self.text_len {
            return Outcome::Complete((Vec::new(), stats));
        }
        let mut out = Vec::new();
        {
            let _span = recorder.span(Phase::SearchDescend);
            for search in &scheme.searches {
                if gate.should_stop() {
                    break;
                }
                let plan = compile_plan(search, m);
                self.dfs(
                    &plan,
                    0,
                    self.bi.whole(),
                    0,
                    pattern,
                    gate,
                    &mut out,
                    &mut stats,
                    recorder,
                );
            }
        }
        out.sort_unstable();
        // Disjoint schemes never duplicate; the pigeonhole fallback
        // does, and a duplicate is always the identical Occurrence.
        out.dedup();
        stats.occurrences = out.len() as u64;
        stats.timeouts = u64::from(gate.tripped());
        stats.record_into(recorder);
        Outcome::from_parts((out, stats), gate.tripped())
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs<R: Recorder>(
        &self,
        plan: &[Step],
        t: usize,
        iv: BiInterval,
        mism: usize,
        pattern: &[u8],
        gate: &Gate<'_>,
        out: &mut Vec<Occurrence>,
        stats: &mut SearchStats,
        recorder: &R,
    ) {
        if gate.should_stop() {
            return;
        }
        stats.nodes_visited += 1;
        if recorder.wants_depths() {
            recorder.depth_expand(t);
        }
        if t == plan.len() {
            stats.leaves += 1;
            recorder.observe(Hist::IntervalWidth, iv.len() as u64);
            recorder.observe(Hist::TerminationDepth, t as u64);
            // The primary interval matches the reversed full pattern,
            // exactly what the unidirectional searches locate through.
            report_interval(self.bi.fm(), self.text_len, iv.prim, plan.len(), mism, out);
            return;
        }
        let step = plan[t];
        // One fused block visit resolves all four children on the
        // extended side; the other side's intervals follow by sibling
        // counts without touching its blocks.
        stats.rank_extensions += 1;
        stats.occ_fused += 1;
        let children = if step.left {
            self.bi.extend_left_all(iv)
        } else {
            self.bi.extend_right_all(iv)
        };
        if let Some(next) = plan.get(t + 1) {
            for child in &children {
                if !child.is_empty() {
                    if next.left {
                        self.bi.prefetch_left(*child);
                    } else {
                        self.bi.prefetch_right(*child);
                    }
                }
            }
        }
        let want = pattern[step.pos];
        let mut any_child = false;
        for y in 1..=BASES as u8 {
            let child = children[(y - 1) as usize];
            if child.is_empty() {
                if recorder.wants_depths() {
                    recorder.depth_prune(t + 1, PruneCause::EmptyInterval);
                }
                continue;
            }
            let nm = mism + usize::from(y != want);
            if nm > step.upper {
                if recorder.wants_depths() {
                    recorder.depth_prune(t + 1, PruneCause::Budget);
                }
                continue;
            }
            if nm < step.need {
                if recorder.wants_depths() {
                    recorder.depth_prune(t + 1, PruneCause::Cutoff);
                }
                continue;
            }
            any_child = true;
            self.dfs(plan, t + 1, child, nm, pattern, gate, out, stats, recorder);
        }
        if !any_child {
            stats.leaves += 1;
            recorder.observe(Hist::IntervalWidth, iv.len() as u64);
            recorder.observe(Hist::TerminationDepth, (t + 1) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmm_bwt::{build_mirror, FmBuildConfig};
    use kmm_classic::naive;

    /// Does `search` enumerate error distribution `d` (one count per
    /// piece)?
    fn covers(search: &SchemeSearch, d: &[usize]) -> bool {
        let mut cum = 0;
        for (i, &piece) in search.pi.iter().enumerate() {
            cum += d[piece];
            if cum < search.lower[i] || cum > search.upper[i] {
                return false;
            }
        }
        true
    }

    /// Every error distribution with at most `k` errors over `p`
    /// pieces.
    fn distributions(k: usize, p: usize) -> Vec<Vec<usize>> {
        let mut all = vec![vec![]];
        for _ in 0..p {
            all = all
                .into_iter()
                .flat_map(|d: Vec<usize>| {
                    (0..=k - d.iter().sum::<usize>().min(k))
                        .map(move |e| {
                            let mut d = d.clone();
                            d.push(e);
                            d
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
        }
        all.retain(|d| d.iter().sum::<usize>() <= k);
        all
    }

    /// The orders must grow a contiguous window and bounds must be
    /// sane monotone cumulative sequences.
    fn check_well_formed(scheme: &Scheme) {
        for s in &scheme.searches {
            assert_eq!(s.pi.len(), scheme.pieces);
            assert_eq!(s.lower.len(), scheme.pieces);
            assert_eq!(s.upper.len(), scheme.pieces);
            let (mut lo, mut hi) = (s.pi[0], s.pi[0] + 1);
            for &piece in &s.pi[1..] {
                if piece + 1 == lo {
                    lo = piece;
                } else {
                    assert_eq!(piece, hi, "non-contiguous order {:?}", s.pi);
                    hi = piece + 1;
                }
            }
            for i in 1..scheme.pieces {
                assert!(s.lower[i] >= s.lower[i - 1]);
                assert!(s.upper[i] >= s.upper[i - 1]);
            }
            for i in 0..scheme.pieces {
                assert!(s.lower[i] <= s.upper[i]);
                assert!(s.upper[i] <= scheme.k);
            }
        }
    }

    #[test]
    fn optimum_schemes_are_complete_and_disjoint() {
        for k in 0..=3 {
            let scheme = Scheme::optimum(k).unwrap();
            assert_eq!(scheme.k, k);
            check_well_formed(&scheme);
            for d in distributions(k, scheme.pieces) {
                let n = scheme.searches.iter().filter(|s| covers(s, &d)).count();
                assert_eq!(n, 1, "k={k} distribution {d:?} covered {n} times");
            }
        }
    }

    #[test]
    fn pigeonhole_is_complete_for_any_k() {
        for k in 1..=5 {
            let scheme = Scheme::pigeonhole(k);
            assert_eq!(scheme.pieces, k + 1);
            check_well_formed(&scheme);
            for d in distributions(k, scheme.pieces) {
                let n = scheme.searches.iter().filter(|s| covers(s, &d)).count();
                assert!(n >= 1, "k={k} distribution {d:?} uncovered");
            }
        }
    }

    #[test]
    fn plans_consume_every_position_once_with_contiguous_windows() {
        for k in 0..=3 {
            let scheme = Scheme::optimum(k).unwrap();
            for m in [scheme.pieces, 7, 12, 31] {
                if m < scheme.pieces {
                    continue;
                }
                for s in &scheme.searches {
                    let plan = compile_plan(s, m);
                    assert_eq!(plan.len(), m);
                    let mut seen = vec![false; m];
                    let (mut lo, mut hi) = (plan[0].pos, plan[0].pos);
                    for step in &plan {
                        assert!(!seen[step.pos], "position {} twice", step.pos);
                        seen[step.pos] = true;
                        if step.left {
                            assert_eq!(step.pos + 1, lo);
                            lo = step.pos;
                        } else {
                            assert_eq!(step.pos, hi);
                            hi = step.pos + 1;
                        }
                    }
                    assert!(seen.iter().all(|&s| s));
                    // The final need equals the search's last lower
                    // bound: the piece-end check is exact at the leaf.
                    assert_eq!(plan[m - 1].need, *s.lower.last().unwrap());
                }
            }
        }
    }

    /// Build the searcher's three parts for a forward ASCII target.
    fn setup(ascii: &[u8]) -> (FmIndex, RankAll, usize) {
        let text = kmm_dna::encode(ascii).unwrap();
        setup_encoded(&text)
    }

    fn setup_encoded(text: &[u8]) -> (FmIndex, RankAll, usize) {
        let mut rev = text.to_vec();
        rev.reverse();
        rev.push(0);
        let fm = FmIndex::new(&rev, FmBuildConfig::default());
        let mut fwd = text.to_vec();
        fwd.push(0);
        let mirror = build_mirror(&fwd, FmBuildConfig::default().occ_rate, 1).unwrap();
        (fm, mirror, text.len())
    }

    #[test]
    fn paper_figure3_search() {
        let (fm, mirror, n) = setup(b"acagaca");
        let bd = BidirSearch::new(&fm, &mirror, n);
        let r = kmm_dna::encode(b"tcaca").unwrap();
        let (occ, stats) = bd.search(&r, 2);
        let positions: Vec<usize> = occ.iter().map(|o| o.position).collect();
        assert_eq!(positions, vec![0, 2]);
        assert_eq!(occ[0].mismatches, 2);
        assert_eq!(occ[1].mismatches, 2);
        assert_eq!(stats.occurrences, 2);
    }

    #[test]
    fn agrees_with_naive_randomised() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2017);
        for _ in 0..40 {
            let n = rng.gen_range(1..250);
            let s: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let (fm, mirror, len) = setup_encoded(&s);
            let bd = BidirSearch::new(&fm, &mirror, len);
            let m = rng.gen_range(1..=n.min(18));
            let r: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            for k in 0..5usize {
                let want = naive::find_k_mismatch(&s, &r, k);
                let (got, _) = bd.search(&r, k);
                assert_eq!(got, want, "s={s:?} r={r:?} k={k}");
            }
        }
    }

    #[test]
    fn pigeonhole_scheme_gives_identical_results() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..15 {
            let n = rng.gen_range(20..200);
            let s: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let (fm, mirror, len) = setup_encoded(&s);
            let bd = BidirSearch::new(&fm, &mirror, len);
            let m = rng.gen_range(8..=16);
            let r: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            for k in 1..=3usize {
                let want = naive::find_k_mismatch(&s, &r, k);
                let gate = Gate::open();
                let (got, _) = bd
                    .search_scheme(&r, &Scheme::pigeonhole(k), &gate, &NoopRecorder)
                    .into_inner();
                assert_eq!(got, want, "pigeonhole s-len={n} r={r:?} k={k}");
            }
        }
    }

    #[test]
    fn pigeonhole_visits_more_nodes_than_the_precomputed_scheme() {
        // Short pieces relative to the text leave the intervals wide
        // after each exact descent, so branches survive into the region
        // where only the tighter precomputed bounds prune them.
        let g = kmm_dna::genome::uniform(100_000, 7);
        let (fm, mirror, len) = setup_encoded(&g);
        let bd = BidirSearch::new(&fm, &mirror, len);
        for k in [2usize, 3] {
            let (mut opt_nodes, mut pig_nodes) = (0u64, 0u64);
            for start in [500usize, 7_000, 40_000, 90_000] {
                let r: Vec<u8> = g[start..start + 12].to_vec();
                let gate = Gate::open();
                let (opt_occ, opt) = bd
                    .search_scheme(&r, &Scheme::optimum(k).unwrap(), &gate, &NoopRecorder)
                    .into_inner();
                let gate = Gate::open();
                let (pig_occ, pig) = bd
                    .search_scheme(&r, &Scheme::pigeonhole(k), &gate, &NoopRecorder)
                    .into_inner();
                assert_eq!(opt_occ, pig_occ, "k={k} start={start}");
                opt_nodes += opt.nodes_visited;
                pig_nodes += pig.nodes_visited;
            }
            assert!(
                opt_nodes < pig_nodes,
                "k={k}: optimum {opt_nodes} vs pigeonhole {pig_nodes}"
            );
        }
    }

    #[test]
    fn degenerate_budgets_delegate_cleanly() {
        let (fm, mirror, n) = setup(b"acgtacgtac");
        let bd = BidirSearch::new(&fm, &mirror, n);
        // k >= m: every window matches.
        let r = kmm_dna::encode(b"tt").unwrap();
        let (occ, _) = bd.search(&r, 2);
        assert_eq!(occ.len(), n - 2 + 1);
        // m < pieces (k=2 needs 4): still exact.
        let r = kmm_dna::encode(b"acg").unwrap();
        let s = kmm_dna::encode(b"acgtacgtac").unwrap();
        let want = naive::find_k_mismatch(&s, &r, 2);
        assert_eq!(bd.search(&r, 2).0, want);
        // Empty and oversized patterns.
        assert!(bd.search(&[], 1).0.is_empty());
        let long = kmm_dna::encode(b"acgtacgtacgt").unwrap();
        assert!(bd.search(&long, 1).0.is_empty());
    }

    #[test]
    fn expired_deadline_truncates() {
        let g = kmm_dna::genome::uniform(5_000, 3);
        let (fm, mirror, len) = setup_encoded(&g);
        let bd = BidirSearch::new(&fm, &mirror, len);
        let r: Vec<u8> = g[100..120].to_vec();
        let token = CancelToken::with_deadline(std::time::Duration::from_millis(0));
        let out = bd.search_deadline_recorded(&r, 2, &token, &NoopRecorder);
        assert!(out.is_truncated());
        assert_eq!(out.value().1.timeouts, 1);
    }
}
