//! Seed-and-filter k-mismatch matching over the BWT index.
//!
//! The index-based counterpart of the Amir baseline, and what production
//! read aligners in the BWT family (the paper cites Li & Homer's survey)
//! actually ship: by the pigeonhole principle, an occurrence with at most
//! `k` mismatches contains at least one of `k + 1` disjoint pattern
//! blocks *exactly*, so exact FM-index searches for the blocks enumerate
//! a candidate set that bounded direct comparison then verifies.
//!
//! Not part of the paper's comparison set — included as the natural
//! modern baseline the paper's introduction gestures at, and as a second
//! index-based method whose candidates exercise `locate` heavily.

use std::collections::HashMap;

use kmm_bwt::FmIndex;
use kmm_classic::Occurrence;
use kmm_dna::hamming_bounded;

use crate::stats::SearchStats;

/// Seed-and-filter searcher.
///
/// Holds the reverse-text FM-index (shared with the tree searches) and
/// the forward text for verification.
#[derive(Debug, Clone, Copy)]
pub struct SeedFilterSearch<'a> {
    fm: &'a FmIndex,
    text: &'a [u8],
}

impl<'a> SeedFilterSearch<'a> {
    /// `fm` must index `reverse(text) + $`.
    pub fn new(fm: &'a FmIndex, text: &'a [u8]) -> Self {
        debug_assert_eq!(fm.len(), text.len() + 1);
        SeedFilterSearch { fm, text }
    }

    /// All occurrences of `pattern` with at most `k` mismatches, sorted.
    pub fn search(&self, pattern: &[u8], k: usize) -> (Vec<Occurrence>, SearchStats) {
        let mut stats = SearchStats::default();
        let n = self.text.len();
        let m = pattern.len();
        if m == 0 || m > n {
            return (Vec::new(), stats);
        }
        if m <= k {
            // Degenerate: every window qualifies.
            let out = (0..=n - m)
                .map(|position| Occurrence {
                    position,
                    mismatches: kmm_dna::hamming(&self.text[position..position + m], pattern),
                })
                .collect::<Vec<_>>();
            stats.occurrences = out.len() as u64;
            return (out, stats);
        }

        // k + 1 disjoint blocks covering the pattern.
        let blocks = k + 1;
        let base = m / blocks;
        let extra = m % blocks;
        let mut candidates: HashMap<usize, ()> = HashMap::new();
        let mut off = 0usize;
        for b in 0..blocks {
            let len = base + usize::from(b < extra);
            let seed = &pattern[off..off + len];
            // Exact search of the seed: the index holds reverse(text), so
            // search the reversed seed (one rank extension per symbol).
            let mut iv = self.fm.whole();
            for &sym in seed {
                stats.rank_extensions += 1;
                iv = self.fm.extend_backward(iv, sym);
                if iv.is_empty() {
                    break;
                }
            }
            for row in iv.rows() {
                let p_rev = self.fm.sa_value(row) as usize;
                // Seed occupies text[n - p_rev - len ..][..len]; candidate
                // pattern start subtracts the block offset.
                let seed_start = n - p_rev - len;
                if seed_start >= off && seed_start - off + m <= n {
                    candidates.insert(seed_start - off, ());
                }
            }
            off += len;
        }

        let mut out: Vec<Occurrence> = candidates
            .into_keys()
            .filter_map(|position| {
                hamming_bounded(&self.text[position..position + m], pattern, k).map(|mismatches| {
                    Occurrence {
                        position,
                        mismatches,
                    }
                })
            })
            .collect();
        out.sort_unstable();
        stats.occurrences = out.len() as u64;
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmm_bwt::FmBuildConfig;
    use kmm_classic::naive;

    fn setup(s: &[u8]) -> (FmIndex, Vec<u8>) {
        let text = s.to_vec();
        let mut rev = text.clone();
        rev.reverse();
        rev.push(0);
        (FmIndex::new(&rev, FmBuildConfig::default()), text)
    }

    #[test]
    fn paper_figure3_example() {
        let s = kmm_dna::encode(b"acagaca").unwrap();
        let r = kmm_dna::encode(b"tcaca").unwrap();
        let (fm, text) = setup(&s);
        let sf = SeedFilterSearch::new(&fm, &text);
        let (occ, _) = sf.search(&r, 2);
        assert_eq!(occ, naive::find_k_mismatch(&s, &r, 2));
    }

    #[test]
    fn random_agrees_with_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(606);
        for _ in 0..60 {
            let n = rng.gen_range(1..300);
            let s: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let (fm, text) = setup(&s);
            let sf = SeedFilterSearch::new(&fm, &text);
            let m = rng.gen_range(1..=n.min(20));
            let r: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            for k in 0..5usize {
                assert_eq!(
                    sf.search(&r, k).0,
                    naive::find_k_mismatch(&s, &r, k),
                    "s={s:?} r={r:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn k_zero_is_pure_exact_search() {
        let s = kmm_dna::encode(b"acacacacac").unwrap();
        let (fm, text) = setup(&s);
        let sf = SeedFilterSearch::new(&fm, &text);
        let r = kmm_dna::encode(b"cac").unwrap();
        let (occ, _) = sf.search(&r, 0);
        assert_eq!(
            occ.iter().map(|o| o.position).collect::<Vec<_>>(),
            vec![1, 3, 5, 7]
        );
    }

    #[test]
    fn degenerate_small_patterns() {
        let s = kmm_dna::encode(b"acgtac").unwrap();
        let (fm, text) = setup(&s);
        let sf = SeedFilterSearch::new(&fm, &text);
        let r = kmm_dna::encode(b"gg").unwrap();
        // m <= k path.
        assert_eq!(sf.search(&r, 2).0, naive::find_k_mismatch(&s, &r, 2));
        assert!(sf.search(&[], 1).0.is_empty());
    }

    #[test]
    fn repetitive_candidates_deduplicate() {
        let s = kmm_dna::encode(&b"acg".repeat(50)).unwrap();
        let (fm, text) = setup(&s);
        let sf = SeedFilterSearch::new(&fm, &text);
        let r = kmm_dna::encode(b"acgacgacg").unwrap();
        for k in 0..4 {
            let (occ, _) = sf.search(&r, k);
            assert_eq!(occ, naive::find_k_mismatch(&s, &r, k), "k={k}");
        }
    }
}
