//! The `φ(i)` pruning heuristic of the BWT-baseline method \[34\]
//! (paper Section IV-A).
//!
//! `φ(i)` is the number of consecutive, disjoint substrings of `r[i..m]`
//! that do **not** appear anywhere in `s`. Each absent substring must
//! contain at least one mismatch in any alignment, so a branch of the
//! S-tree whose remaining budget is below `φ` of the remaining pattern can
//! be cut: "if k - l < φ(i), stop exploring the subtree" — the paper's
//! example being `φ(1) = 2` for `r = tcaca` against `s = acagaca` because
//! both `t` and `cac` are absent from `s`.

use kmm_bwt::FmIndex;

/// Compute `φ(i)` for every suffix start `i` (0-based; `phi[m] = 0`).
///
/// `fm` must index the *reverse* of the target (as the k-mismatch searches
/// do), so that extending an interval backward with `r[p], r[p+1], …`
/// tracks occurrences of `r[p..]` in the forward target.
pub fn phi_table(fm: &FmIndex, pattern: &[u8]) -> Vec<u32> {
    let m = pattern.len();
    let mut phi = vec![0u32; m + 1];
    // boundary[p] = end (exclusive) of the shortest substring of r starting
    // at p that is absent from s, or m + 1 if r[p..] occurs entirely.
    for p in (0..m).rev() {
        let mut iv = fm.whole();
        let mut boundary = m + 1;
        for (q, &c) in pattern.iter().enumerate().skip(p) {
            iv = fm.extend_backward(iv, c);
            if iv.is_empty() {
                boundary = q + 1;
                break;
            }
        }
        phi[p] = if boundary <= m { 1 + phi[boundary] } else { 0 };
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmm_bwt::FmBuildConfig;

    /// Index the reverse of `s` as the searches do.
    fn rev_index(ascii: &[u8]) -> FmIndex {
        let mut rev = kmm_dna::encode(ascii).unwrap();
        rev.reverse();
        rev.push(0);
        FmIndex::new(&rev, FmBuildConfig::default())
    }

    /// Direct check that a substring occurs in the forward text.
    fn occurs(s: &[u8], w: &[u8]) -> bool {
        if w.len() > s.len() {
            return false;
        }
        (0..=s.len() - w.len()).any(|i| &s[i..i + w.len()] == w)
    }

    fn phi_naive(s: &[u8], r: &[u8]) -> Vec<u32> {
        let m = r.len();
        let mut phi = vec![0u32; m + 1];
        for p in (0..m).rev() {
            let mut boundary = m + 1;
            for q in p..m {
                if !occurs(s, &r[p..=q]) {
                    boundary = q + 1;
                    break;
                }
            }
            phi[p] = if boundary <= m { 1 + phi[boundary] } else { 0 };
        }
        phi
    }

    #[test]
    fn paper_example() {
        // Section IV-A: s = acagaca, r = tcaca. φ(1) = 2 (1-based): both
        // "t" and "cac" are absent. φ(3) = 0 (1-based): every substring of
        // "aca" appears. In 0-based terms φ[0] = 2 and φ[2] = 0.
        let fm = rev_index(b"acagaca");
        let r = kmm_dna::encode(b"tcaca").unwrap();
        let phi = phi_table(&fm, &r);
        assert_eq!(phi[0], 2);
        assert_eq!(phi[2], 0);
        assert_eq!(phi[5], 0);
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(47);
        for _ in 0..60 {
            let n = rng.gen_range(1..150);
            let s: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let m = rng.gen_range(1..20);
            let r: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            let ascii = kmm_dna::decode(&s);
            let fm = rev_index(&ascii);
            assert_eq!(phi_table(&fm, &r), phi_naive(&s, &r), "s={s:?} r={r:?}");
        }
    }

    #[test]
    fn pattern_fully_present_gives_zero() {
        let fm = rev_index(b"acagaca");
        let r = kmm_dna::encode(b"aca").unwrap();
        assert_eq!(phi_table(&fm, &r), vec![0, 0, 0, 0]);
    }

    #[test]
    fn absent_single_chars_all_count() {
        // s has no t at all: every t in r is its own absent substring.
        let fm = rev_index(b"acagaca");
        let r = kmm_dna::encode(b"ttt").unwrap();
        assert_eq!(phi_table(&fm, &r), vec![3, 2, 1, 0]);
    }

    #[test]
    fn empty_pattern() {
        let fm = rev_index(b"acgt");
        assert_eq!(phi_table(&fm, &[]), vec![0]);
    }
}
