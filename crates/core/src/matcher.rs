//! The suite's unified k-mismatch API: one index, six interchangeable
//! search methods — the four compared in the paper's Section V plus two
//! reference scanners.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use kmm_bwt::{FmBuildConfig, FmIndex, RankAll};
use kmm_classic::{amir, kangaroo, naive, Occurrence};
use kmm_dna::SIGMA;
use kmm_par::ThreadPool;
use kmm_suffix::SuffixTree;
use kmm_telemetry::alloc::{mem_stats, phase_scope, MemPhase};
use kmm_telemetry::cost::{CostKind, CostSnapshot};
use kmm_telemetry::{
    Counter, ExplainRecorder, ExplainReport, HeapDelta, Hist, MethodCost, NoopRecorder, Phase,
    Recorder, TraceRecorder,
};

use crate::algorithm_a::AlgorithmA;
use crate::bidir::BidirSearch;
use crate::cancel::{CancelToken, Gate, Outcome};
use crate::cole::ColeSearch;
use crate::seed_filter::SeedFilterSearch;
use crate::stats::SearchStats;
use crate::stree::STreeSearch;

/// Which algorithm answers a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Direct `O(mn)` scanning (ground truth).
    Naive,
    /// Landau–Vishkin kangaroo jumps, `O(kn)` online.
    Kangaroo,
    /// The paper's "Amir": mark-and-verify with block seeds.
    Amir,
    /// The paper's "Cole": brute-force suffix-tree search.
    Cole,
    /// The paper's "BWT": the S-tree baseline of \[34\] with the φ heuristic.
    Bwt {
        /// Enable the `φ(i)` pruning heuristic.
        use_phi: bool,
    },
    /// The paper's contribution: Algorithm A.
    AlgorithmA {
        /// Enable pair sharing / subtree derivation (ablation knob).
        reuse: bool,
    },
    /// Pigeonhole seed-and-filter over the FM-index (modern-aligner
    /// baseline; not in the paper's comparison set).
    SeedFilter,
    /// Bidirectional FM-index with partition search schemes (Kianfar et
    /// al.): errors are forced late in each extension order, pruning
    /// the search tree before intervals widen.
    Bidirectional,
}

impl Method {
    /// The four methods of the paper's experiments, in its order and with
    /// its configurations.
    pub const PAPER_SET: [Method; 4] = [
        Method::Bwt { use_phi: true },
        Method::Amir,
        Method::Cole,
        Method::ALGORITHM_A,
    ];

    /// Algorithm A in its default (full) configuration.
    pub const ALGORITHM_A: Method = Method::AlgorithmA { reuse: true };

    /// Short label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Naive => "Naive",
            Method::Kangaroo => "Kangaroo",
            Method::Amir => "Amir's",
            Method::Cole => "Cole's",
            Method::Bwt { use_phi: true } => "BWT",
            Method::Bwt { use_phi: false } => "BWT(no-phi)",
            Method::AlgorithmA { reuse: true } => "A(.)",
            Method::AlgorithmA { reuse: false } => "A(no-reuse)",
            Method::SeedFilter => "SeedFilter",
            Method::Bidirectional => "Bidir",
        }
    }
}

/// Fill `stats`' deterministic cost fields with the work this thread
/// performed since `before`, and mirror the deltas into the recorder's
/// `search.*` cost counters. Called once per query, inside the query's
/// root span, so tracing recorders attribute the costs per query. The
/// counts are pure functions of (index, pattern, k, method) — identical
/// whether the recorder is a no-op or live, which keeps recorded and
/// unrecorded searches bit-identical.
fn attribute_costs<R: Recorder>(stats: &mut SearchStats, before: &CostSnapshot, recorder: &R) {
    let delta = CostSnapshot::now().delta(before);
    stats.rank_blocks_touched = delta.get(CostKind::RankBlocks);
    stats.rank_bytes_scanned = delta.get(CostKind::RankBytes);
    stats.rarray_probes = delta.get(CostKind::RarrayProbes);
    stats.mtree_nodes_built = delta.get(CostKind::MtreeBuilt);
    stats.mtree_nodes_reused = delta.get(CostKind::MtreeReused);
    stats.occ_pair_fused = delta.get(CostKind::OccPairFused);
    stats.prefetch_issued = delta.get(CostKind::PrefetchIssued);
    if recorder.enabled() {
        for kind in CostKind::ALL {
            let d = delta.get(kind);
            if d > 0 {
                recorder.add(kind.counter(), d);
            }
        }
    }
}

/// Result of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// Matches sorted by position.
    pub occurrences: Vec<Occurrence>,
    /// Method-specific counters (zeroed fields for scanning methods).
    pub stats: SearchStats,
}

/// A k-mismatch index over one target string.
///
/// Holds the FM-index of the reversed target (used by the BWT baseline and
/// Algorithm A) and lazily materialises what the other methods need: the
/// forward text (for the scanning baselines) the first time it is asked
/// for, and the suffix tree the first time the Cole method is requested.
/// An index opened from disk therefore serves the FM-backed methods
/// without ever paying the O(n·occ) text reconstruction.
#[derive(Debug)]
pub struct KMismatchIndex {
    text: OnceLock<Vec<u8>>,
    /// Target length in bases (== `fm.len() - 1`).
    len: usize,
    fm: FmIndex,
    suffix_tree: OnceLock<SuffixTree>,
    /// Mirror rank structure over `BWT(text + $)` for the bidirectional
    /// method: loaded from disk alongside the FM-index, or built on
    /// first bidirectional search.
    mirror: OnceLock<RankAll>,
}

impl KMismatchIndex {
    /// Index an encoded, sentinel-free target with the default FM layout.
    pub fn new(text: Vec<u8>) -> Self {
        Self::with_config(text, FmBuildConfig::default())
    }

    /// Index with an explicit FM layout (rankall / SA sampling rates).
    pub fn with_config(text: Vec<u8>, config: FmBuildConfig) -> Self {
        Self::with_config_recorded(text, config, &NoopRecorder)
    }

    /// [`Self::with_config`] with the construction phases (`index.*`)
    /// timed on `recorder`.
    pub fn with_config_recorded<R: Recorder>(
        text: Vec<u8>,
        config: FmBuildConfig,
        recorder: &R,
    ) -> Self {
        assert!(
            text.iter().all(|&c| c >= 1 && (c as usize) < SIGMA),
            "target must be sentinel-free base codes"
        );
        let mut rev = text.clone();
        rev.reverse();
        rev.push(0);
        let fm = FmIndex::new_recorded(&rev, config, recorder);
        KMismatchIndex {
            len: text.len(),
            text: OnceLock::from(text),
            fm,
            suffix_tree: OnceLock::new(),
            mirror: OnceLock::new(),
        }
    }

    /// Convenience constructor from an ASCII DNA string.
    pub fn from_ascii(ascii: &[u8]) -> Result<Self, kmm_dna::AlphabetError> {
        Ok(Self::new(kmm_dna::encode(ascii)?))
    }

    /// Assemble from a pre-built FM-index (e.g. loaded from disk) and the
    /// forward target it indexes.
    ///
    /// # Panics
    /// Panics if `fm` does not index `reverse(text) + $` (verified by
    /// length and by spot-checking the reconstruction).
    pub fn from_parts(text: Vec<u8>, fm: FmIndex) -> Self {
        assert_eq!(fm.len(), text.len() + 1, "index/text length mismatch");
        debug_assert!({
            let mut rev = text.clone();
            rev.reverse();
            rev.push(0);
            fm.reconstruct_text() == rev
        });
        KMismatchIndex {
            len: text.len(),
            text: OnceLock::from(text),
            fm,
            suffix_tree: OnceLock::new(),
            mirror: OnceLock::new(),
        }
    }

    /// Assemble from a loaded FM-index alone. The forward text is *not*
    /// reconstructed here — the FM-backed methods (`Bwt`, `AlgorithmA`,
    /// k-errors) never need it, so an index served straight from disk
    /// (or from an mmap) skips the O(n·occ) LF-walk entirely. The first
    /// call that does need the text ([`Self::text`], the scanning
    /// baselines, Cole, SeedFilter) pays it once, lazily.
    pub fn from_fm(fm: FmIndex) -> Self {
        Self::from_fm_with_mirror(fm, None)
    }

    /// [`Self::from_fm`] plus an optional pre-built mirror rank
    /// structure (the extra sections of a `--bidir` index file), making
    /// the bidirectional method available without any rebuild.
    pub fn from_fm_with_mirror(fm: FmIndex, mirror: Option<RankAll>) -> Self {
        assert!(!fm.is_empty(), "an index always covers the sentinel");
        if let Some(m) = &mirror {
            assert_eq!(m.len(), fm.len(), "mirror/index length mismatch");
        }
        KMismatchIndex {
            len: fm.len() - 1,
            text: OnceLock::new(),
            fm,
            suffix_tree: OnceLock::new(),
            mirror: match mirror {
                Some(m) => OnceLock::from(m),
                None => OnceLock::new(),
            },
        }
    }

    /// The indexed target (encoded, sentinel-free), reconstructing it
    /// from the FM-index on first use if the index was opened from disk.
    pub fn text(&self) -> &[u8] {
        self.text.get_or_init(|| {
            let mut rev = self.fm.reconstruct_text();
            rev.pop(); // sentinel
            rev.reverse();
            rev
        })
    }

    /// Target length in bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty target.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the forward text has already been materialised (either
    /// the index was built from text, or something reconstructed it).
    pub fn text_is_materialized(&self) -> bool {
        self.text.get().is_some()
    }

    /// The underlying reverse-text FM-index.
    pub fn fm(&self) -> &FmIndex {
        &self.fm
    }

    /// The forward suffix tree, building it on first use.
    pub fn suffix_tree(&self) -> &SuffixTree {
        self.suffix_tree.get_or_init(|| {
            let mut t = self.text().to_vec();
            t.push(0);
            SuffixTree::new(t, SIGMA)
        })
    }

    /// The mirror rank structure for bidirectional search, building it
    /// from the (possibly reconstructed) forward text on first use with
    /// the primary's checkpoint rate.
    pub fn mirror(&self) -> &RankAll {
        self.mirror.get_or_init(|| {
            let mut t = self.text().to_vec();
            t.push(0);
            kmm_bwt::build_mirror(&t, self.fm.rank_rate(), 1)
                .expect("text already fit in the primary index")
        })
    }

    /// True when the mirror is already resident (loaded from a `--bidir`
    /// index file or built by an earlier bidirectional search) — the
    /// serving layer's gate for advertising `Method::Bidirectional`.
    pub fn has_mirror(&self) -> bool {
        self.mirror.get().is_some()
    }

    /// Heap bytes of the resident mirror rank structure, if any (for
    /// per-structure memory itemisation).
    pub fn mirror_heap_bytes(&self) -> Option<usize> {
        self.mirror.get().map(|m| m.heap_bytes())
    }

    /// Answer a query with the chosen method. All methods return identical
    /// occurrence lists (sorted by position, annotated with the Hamming
    /// distance).
    pub fn search(&self, pattern: &[u8], k: usize, method: Method) -> SearchResult {
        self.search_recorded(pattern, k, method, &NoopRecorder)
    }

    /// [`Self::search`] with telemetry: the whole query is timed as the
    /// `search.query` phase and the `search.latency_ns` histogram, one
    /// `search.queries` tick is added, and the method's [`SearchStats`]
    /// land in the `search.*` counters. With a
    /// [`kmm_telemetry::NoopRecorder`] this is exactly [`Self::search`].
    ///
    /// Under a span-collecting recorder ([`TraceRecorder`]) the query
    /// additionally becomes one root `search.query` span — with the
    /// method's internal phases nested inside it — annotated with the
    /// pattern length, `k`, and method label.
    pub fn search_recorded<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        method: Method,
        recorder: &R,
    ) -> SearchResult {
        let tracing = recorder.wants_spans();
        if tracing {
            recorder.annotate(&format!(
                "m={} k={k} method={}",
                pattern.len(),
                method.label()
            ));
            recorder.span_begin(Phase::SearchQuery);
        }
        let start = recorder.enabled().then(Instant::now);
        let cost_start = CostSnapshot::now();
        let mut result = match method {
            Method::Naive => SearchResult {
                occurrences: naive::find_k_mismatch(self.text(), pattern, k),
                stats: SearchStats::default(),
            },
            Method::Kangaroo => SearchResult {
                occurrences: kangaroo::find_k_mismatch(self.text(), pattern, k),
                stats: SearchStats::default(),
            },
            Method::Amir => SearchResult {
                occurrences: amir::find_k_mismatch(self.text(), pattern, k),
                stats: SearchStats::default(),
            },
            Method::Cole => {
                let (occurrences, stats) = ColeSearch::new(self.suffix_tree()).search(pattern, k);
                stats.record_into(recorder);
                SearchResult { occurrences, stats }
            }
            Method::Bwt { use_phi } => {
                let mut st = STreeSearch::new(&self.fm, self.len);
                st.use_phi = use_phi;
                let (occurrences, stats) = st.search_recorded(pattern, k, recorder);
                SearchResult { occurrences, stats }
            }
            Method::AlgorithmA { reuse } => {
                let mut alg = AlgorithmA::new(&self.fm, self.len);
                alg.reuse = reuse;
                let (occurrences, stats) = alg.search_recorded(pattern, k, recorder);
                SearchResult { occurrences, stats }
            }
            Method::SeedFilter => {
                let sf = SeedFilterSearch::new(&self.fm, self.text());
                let (occurrences, stats) = sf.search(pattern, k);
                stats.record_into(recorder);
                SearchResult { occurrences, stats }
            }
            Method::Bidirectional => {
                let bd = BidirSearch::new(&self.fm, self.mirror(), self.len);
                let (occurrences, stats) = bd.search_recorded(pattern, k, recorder);
                SearchResult { occurrences, stats }
            }
        };
        attribute_costs(&mut result.stats, &cost_start, recorder);
        if let Some(start) = start {
            let ns = start.elapsed().as_nanos() as u64;
            recorder.phase_add(Phase::SearchQuery, ns);
            recorder.observe(Hist::SearchLatencyNs, ns);
        }
        recorder.add(Counter::Queries, 1);
        if tracing {
            // Close the root after the query counter so the trace's
            // per-query counter deltas include it.
            recorder.span_end(Phase::SearchQuery);
        }
        result
    }

    /// EXPLAIN one query: run it once per method with an
    /// [`ExplainRecorder`] armed and deterministic-cost brackets around
    /// each run, returning the per-method attribution
    /// ([`kmm_telemetry::explain`]).
    ///
    /// The methods run **serially in the given order** whatever the
    /// caller's thread budget: every field of the report except the heap
    /// ledger is a pure function of (index, pattern, k, method), and the
    /// serial order makes the lazy first-touch charges (text
    /// reconstruction, suffix tree) land on the same method every time —
    /// so the rendered report is byte-identical across runs, thread
    /// widths, and SIMD kernel choices. The verdict compares
    /// deterministic work counters only, never wall-clock.
    pub fn explain(&self, pattern: &[u8], k: usize, methods: &[Method]) -> ExplainReport {
        let mut report = ExplainReport {
            pattern: String::from_utf8(kmm_dna::decode(pattern)).unwrap_or_default(),
            m: pattern.len(),
            k,
            methods: Vec::with_capacity(methods.len()),
        };
        for &method in methods {
            let recorder = ExplainRecorder::new();
            let mem_before = mem_stats();
            let result = {
                let _mem = phase_scope(MemPhase::Search);
                self.search_recorded(pattern, k, method, &recorder)
            };
            let mem_after = mem_stats();
            report.methods.push(MethodCost {
                label: method.label().to_string(),
                occurrences: result.occurrences.len() as u64,
                counters: result.stats.as_pairs().to_vec(),
                depths: recorder.take(),
                heap: HeapDelta::between(&mem_before, &mem_after),
            });
        }
        report
    }

    /// [`Self::search`] under a cancellation/deadline token: see
    /// [`Self::search_with_deadline_recorded`].
    pub fn search_with_deadline(
        &self,
        pattern: &[u8],
        k: usize,
        method: Method,
        token: &CancelToken,
    ) -> Outcome<SearchResult> {
        self.search_with_deadline_recorded(pattern, k, method, token, &NoopRecorder)
    }

    /// [`Self::search_recorded`] under a cancellation/deadline token.
    ///
    /// The tree methods (`Bwt`, `AlgorithmA`) poll the token at
    /// node-expansion granularity; the online scanners (`Naive`,
    /// `Kangaroo`, `Amir`) poll between ~4 Ki-position text chunks; the
    /// remaining baselines (`Cole`, `SeedFilter`) only honour a token
    /// that is already expired at entry (they are comparison baselines,
    /// not serving paths). A truncated query returns
    /// [`Outcome::Truncated`] carrying every occurrence verified before
    /// the budget expired, sets `stats.timeouts = 1` (ticking the
    /// `search.timeouts` counter), and — under a tracing recorder —
    /// annotates its span with `cancelled`.
    pub fn search_with_deadline_recorded<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        method: Method,
        token: &CancelToken,
        recorder: &R,
    ) -> Outcome<SearchResult> {
        let tracing = recorder.wants_spans();
        if tracing {
            recorder.annotate(&format!(
                "m={} k={k} method={}",
                pattern.len(),
                method.label()
            ));
            recorder.span_begin(Phase::SearchQuery);
        }
        let start = recorder.enabled().then(Instant::now);
        let cost_start = CostSnapshot::now();
        let outcome = match method {
            Method::Naive => {
                self.scan_with_deadline(pattern, k, token, recorder, naive::find_k_mismatch)
            }
            Method::Kangaroo => {
                self.scan_with_deadline(pattern, k, token, recorder, kangaroo::find_k_mismatch)
            }
            Method::Amir => {
                self.scan_with_deadline(pattern, k, token, recorder, amir::find_k_mismatch)
            }
            Method::Cole => {
                if token.is_expired() {
                    Outcome::Truncated(self.truncated_at_entry(recorder))
                } else {
                    let (occurrences, stats) =
                        ColeSearch::new(self.suffix_tree()).search(pattern, k);
                    stats.record_into(recorder);
                    Outcome::Complete(SearchResult { occurrences, stats })
                }
            }
            Method::Bwt { use_phi } => {
                let mut st = STreeSearch::new(&self.fm, self.len);
                st.use_phi = use_phi;
                st.search_deadline_recorded(pattern, k, token, recorder)
                    .map(|(occurrences, stats)| SearchResult { occurrences, stats })
            }
            Method::AlgorithmA { reuse } => {
                let mut alg = AlgorithmA::new(&self.fm, self.len);
                alg.reuse = reuse;
                alg.search_deadline_recorded(pattern, k, token, recorder)
                    .map(|(occurrences, stats)| SearchResult { occurrences, stats })
            }
            Method::SeedFilter => {
                if token.is_expired() {
                    Outcome::Truncated(self.truncated_at_entry(recorder))
                } else {
                    let sf = SeedFilterSearch::new(&self.fm, self.text());
                    let (occurrences, stats) = sf.search(pattern, k);
                    stats.record_into(recorder);
                    Outcome::Complete(SearchResult { occurrences, stats })
                }
            }
            Method::Bidirectional => {
                let bd = BidirSearch::new(&self.fm, self.mirror(), self.len);
                bd.search_deadline_recorded(pattern, k, token, recorder)
                    .map(|(occurrences, stats)| SearchResult { occurrences, stats })
            }
        };
        let outcome = outcome.map(|mut sr| {
            attribute_costs(&mut sr.stats, &cost_start, recorder);
            sr
        });
        if let Some(start) = start {
            let ns = start.elapsed().as_nanos() as u64;
            recorder.phase_add(Phase::SearchQuery, ns);
            recorder.observe(Hist::SearchLatencyNs, ns);
        }
        recorder.add(Counter::Queries, 1);
        if tracing {
            if outcome.is_truncated() {
                recorder.annotate("cancelled");
            }
            recorder.span_end(Phase::SearchQuery);
        }
        outcome
    }

    /// An empty truncated result for methods that only honour the token
    /// at entry.
    fn truncated_at_entry<R: Recorder>(&self, recorder: &R) -> SearchResult {
        let stats = SearchStats {
            timeouts: 1,
            ..Default::default()
        };
        recorder.add(Counter::Timeouts, 1);
        SearchResult {
            occurrences: Vec::new(),
            stats,
        }
    }

    /// Positions scanned between deadline polls by the online methods.
    const SCAN_CHUNK: usize = 4096;

    /// Drive an online scanner (naive/kangaroo/amir) in text chunks so
    /// it can be truncated: each chunk covers [`Self::SCAN_CHUNK`] start
    /// positions (plus the `m - 1` overlap its windows read), so the
    /// concatenated hit list is bit-identical to one whole-text scan.
    fn scan_with_deadline<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        token: &CancelToken,
        recorder: &R,
        scan: impl Fn(&[u8], &[u8], usize) -> Vec<Occurrence>,
    ) -> Outcome<SearchResult> {
        let text = self.text();
        let n = text.len();
        let m = pattern.len();
        if m == 0 || m > n {
            return Outcome::Complete(SearchResult {
                occurrences: scan(text, pattern, k),
                stats: SearchStats::default(),
            });
        }
        let gate = Gate::new(Some(token));
        let last_start = n - m;
        let mut occurrences = Vec::new();
        let mut c = 0usize;
        let mut truncated = false;
        while c <= last_start {
            // Chunks arrive ~µs apart, far below the gate's countdown
            // rate — force the deadline read every time.
            if gate.poll_now() {
                truncated = true;
                break;
            }
            let hi = (c + Self::SCAN_CHUNK - 1).min(last_start);
            for o in scan(&text[c..hi + m], pattern, k) {
                occurrences.push(Occurrence {
                    position: o.position + c,
                    mismatches: o.mismatches,
                });
            }
            c = hi + 1;
        }
        let stats = SearchStats {
            timeouts: u64::from(truncated),
            ..Default::default()
        };
        if truncated {
            recorder.add(Counter::Timeouts, 1);
        }
        Outcome::from_parts(SearchResult { occurrences, stats }, truncated)
    }

    /// Number of occurrences with at most `k` mismatches, without
    /// resolving positions (skips `locate`; only meaningful for the
    /// index-tree methods, and cheapest through Algorithm A).
    pub fn count(&self, pattern: &[u8], k: usize) -> usize {
        // Counting via the search keeps one code path; the tree methods
        // dominate their locate cost only for very frequent patterns.
        self.search(pattern, k, Method::ALGORITHM_A)
            .occurrences
            .len()
    }

    /// String matching with k *errors* (Levenshtein distance, Section II):
    /// all substrings within edit distance `k` of `pattern` as
    /// `(position, length, distance)` triples.
    pub fn search_k_errors(
        &self,
        pattern: &[u8],
        k: usize,
    ) -> (Vec<crate::k_errors::EditOccurrence>, SearchStats) {
        let cost_start = CostSnapshot::now();
        let (occurrences, mut stats) =
            crate::k_errors::KErrorsSearch::new(&self.fm, self.len).search(pattern, k);
        attribute_costs(&mut stats, &cost_start, &NoopRecorder);
        (occurrences, stats)
    }

    /// Run a batch of queries, accumulating statistics.
    pub fn search_batch<'p>(
        &self,
        patterns: impl IntoIterator<Item = &'p [u8]>,
        k: usize,
        method: Method,
    ) -> (Vec<Vec<Occurrence>>, SearchStats) {
        self.search_batch_recorded(patterns, k, method, &NoopRecorder)
    }

    /// [`Self::search_batch`] with per-query telemetry on `recorder`.
    pub fn search_batch_recorded<'p, R: Recorder>(
        &self,
        patterns: impl IntoIterator<Item = &'p [u8]>,
        k: usize,
        method: Method,
        recorder: &R,
    ) -> (Vec<Vec<Occurrence>>, SearchStats) {
        let mut all = Vec::new();
        let mut stats = SearchStats::default();
        for (i, p) in patterns.into_iter().enumerate() {
            if recorder.wants_spans() {
                recorder.annotate(&format!("q={i}"));
            }
            let r = self.search_recorded(p, k, method, recorder);
            stats.accumulate(&r.stats);
            all.push(r.occurrences);
        }
        (all, stats)
    }

    /// [`Self::search_batch`] across a thread pool. Queries are
    /// independent, so the occurrence lists are bit-identical to the
    /// serial batch and arrive in input order at any thread count; the
    /// accumulated [`SearchStats`] are merged commutatively and equal the
    /// serial totals.
    pub fn search_batch_par<P: AsRef<[u8]> + Sync>(
        &self,
        patterns: &[P],
        k: usize,
        method: Method,
        pool: &ThreadPool,
    ) -> (Vec<Vec<Occurrence>>, SearchStats) {
        self.search_batch_par_recorded(patterns, k, method, pool, &NoopRecorder)
    }

    /// [`Self::search_batch_par`] with telemetry. Each participating
    /// worker records into a private [`TraceRecorder`] shard — the query
    /// hot path touches no shared atomics — and the shards are absorbed
    /// into `recorder` after the join, so order-independent aggregates
    /// (counters, histogram counts, phase entry counts) match a serial
    /// run exactly. When `recorder` collects spans, the shards share its
    /// trace epoch, tag spans with their 1-based worker id, and hand
    /// their traces plus slowest-query candidates back through
    /// [`Recorder::absorb_traces`].
    pub fn search_batch_par_recorded<P, R>(
        &self,
        patterns: &[P],
        k: usize,
        method: Method,
        pool: &ThreadPool,
        recorder: &R,
    ) -> (Vec<Vec<Occurrence>>, SearchStats)
    where
        P: AsRef<[u8]> + Sync,
        R: Recorder + Sync,
    {
        if matches!(method, Method::Cole) {
            // Materialise the lazy suffix tree once, up front, instead of
            // having every worker block on the OnceLock initialiser.
            self.suffix_tree();
        }
        if matches!(method, Method::Bidirectional) {
            // Likewise for the lazily built mirror rank structure.
            self.mirror();
        }
        let shard_metrics = recorder.enabled();
        let tracing = recorder.wants_spans();
        let epoch = recorder.trace_epoch();
        let total = Mutex::new(SearchStats::default());
        let results = pool.par_map_init(
            patterns,
            |worker| {
                (
                    shard_metrics.then(|| TraceRecorder::shard(epoch, worker as u32 + 1, tracing)),
                    SearchStats::default(),
                )
            },
            |(shard, stats), i, pattern| {
                let r = match shard {
                    Some(shard) => {
                        if tracing {
                            shard.annotate(&format!("q={i}"));
                        }
                        self.search_recorded(pattern.as_ref(), k, method, shard)
                    }
                    None => self.search(pattern.as_ref(), k, method),
                };
                stats.accumulate(&r.stats);
                r.occurrences
            },
            |(shard, stats)| {
                if let Some(shard) = shard {
                    recorder.absorb(&shard.snapshot());
                    if tracing {
                        recorder.absorb_traces(shard.drain());
                    }
                }
                total.lock().unwrap().accumulate(&stats);
            },
        );
        (results, total.into_inner().unwrap())
    }

    /// [`Self::search_batch`] with a **per-query** time budget: each
    /// pattern gets its own [`CancelToken`] stamped as its search
    /// starts, so one pathological query is truncated without starving
    /// the rest of the batch. Per-query outcomes keep the truncation
    /// flag; `stats.timeouts` counts the truncated queries.
    pub fn search_batch_with_deadline<'p>(
        &self,
        patterns: impl IntoIterator<Item = &'p [u8]>,
        k: usize,
        method: Method,
        per_query: Duration,
    ) -> (Vec<Outcome<Vec<Occurrence>>>, SearchStats) {
        self.search_batch_with_deadline_recorded(patterns, k, method, per_query, &NoopRecorder)
    }

    /// [`Self::search_batch_with_deadline`] with telemetry.
    pub fn search_batch_with_deadline_recorded<'p, R: Recorder>(
        &self,
        patterns: impl IntoIterator<Item = &'p [u8]>,
        k: usize,
        method: Method,
        per_query: Duration,
        recorder: &R,
    ) -> (Vec<Outcome<Vec<Occurrence>>>, SearchStats) {
        let mut all = Vec::new();
        let mut stats = SearchStats::default();
        for (i, p) in patterns.into_iter().enumerate() {
            if recorder.wants_spans() {
                recorder.annotate(&format!("q={i}"));
            }
            let token = CancelToken::with_deadline(per_query);
            let r = self.search_with_deadline_recorded(p, k, method, &token, recorder);
            stats.accumulate(&r.value().stats);
            all.push(r.map(|sr| sr.occurrences));
        }
        (all, stats)
    }

    /// [`Self::search_batch_with_deadline`] across a thread pool:
    /// per-query tokens bound each worker's work, results arrive in
    /// input order, and — unlike a shared batch deadline — the outcome
    /// set is independent of worker scheduling for queries that fit
    /// their budget.
    pub fn search_batch_par_with_deadline<P: AsRef<[u8]> + Sync>(
        &self,
        patterns: &[P],
        k: usize,
        method: Method,
        pool: &ThreadPool,
        per_query: Duration,
    ) -> (Vec<Outcome<Vec<Occurrence>>>, SearchStats) {
        self.search_batch_par_with_deadline_recorded(
            patterns,
            k,
            method,
            pool,
            per_query,
            &NoopRecorder,
        )
    }

    /// [`Self::search_batch_par_with_deadline`] with telemetry, sharded
    /// per worker like [`Self::search_batch_par_recorded`].
    pub fn search_batch_par_with_deadline_recorded<P, R>(
        &self,
        patterns: &[P],
        k: usize,
        method: Method,
        pool: &ThreadPool,
        per_query: Duration,
        recorder: &R,
    ) -> (Vec<Outcome<Vec<Occurrence>>>, SearchStats)
    where
        P: AsRef<[u8]> + Sync,
        R: Recorder + Sync,
    {
        if matches!(method, Method::Cole) {
            self.suffix_tree();
        }
        if matches!(method, Method::Bidirectional) {
            self.mirror();
        }
        let shard_metrics = recorder.enabled();
        let tracing = recorder.wants_spans();
        let epoch = recorder.trace_epoch();
        let total = Mutex::new(SearchStats::default());
        let results = pool.par_map_init(
            patterns,
            |worker| {
                (
                    shard_metrics.then(|| TraceRecorder::shard(epoch, worker as u32 + 1, tracing)),
                    SearchStats::default(),
                )
            },
            |(shard, stats), i, pattern| {
                let token = CancelToken::with_deadline(per_query);
                let r = match shard {
                    Some(shard) => {
                        if tracing {
                            shard.annotate(&format!("q={i}"));
                        }
                        self.search_with_deadline_recorded(
                            pattern.as_ref(),
                            k,
                            method,
                            &token,
                            shard,
                        )
                    }
                    None => self.search_with_deadline(pattern.as_ref(), k, method, &token),
                };
                stats.accumulate(&r.value().stats);
                r.map(|sr| sr.occurrences)
            },
            |(shard, stats)| {
                if let Some(shard) = shard {
                    recorder.absorb(&shard.snapshot());
                    if tracing {
                        recorder.absorb_traces(shard.drain());
                    }
                }
                total.lock().unwrap().accumulate(&stats);
            },
        );
        (results, total.into_inner().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const METHODS: [Method; 9] = [
        Method::Naive,
        Method::Kangaroo,
        Method::Amir,
        Method::Cole,
        Method::Bwt { use_phi: true },
        Method::Bwt { use_phi: false },
        Method::ALGORITHM_A,
        Method::SeedFilter,
        Method::Bidirectional,
    ];

    #[test]
    fn all_methods_agree_on_paper_example() {
        let idx = KMismatchIndex::from_ascii(b"acagaca").unwrap();
        let r = kmm_dna::encode(b"tcaca").unwrap();
        let want = idx.search(&r, 2, Method::Naive).occurrences;
        assert_eq!(want.len(), 2);
        for m in METHODS {
            assert_eq!(idx.search(&r, 2, m).occurrences, want, "{}", m.label());
        }
    }

    #[test]
    fn all_methods_agree_randomised() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(404);
        for _ in 0..15 {
            let n = rng.gen_range(5..250);
            let s: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let idx = KMismatchIndex::new(s);
            for _ in 0..5 {
                let m = rng.gen_range(1..=n.min(16));
                let r: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
                let k = rng.gen_range(0..4usize);
                let want = idx.search(&r, k, Method::Naive).occurrences;
                for method in METHODS {
                    assert_eq!(
                        idx.search(&r, k, method).occurrences,
                        want,
                        "{} n={n} m={} k={k}",
                        method.label(),
                        r.len()
                    );
                }
            }
        }
    }

    #[test]
    fn batch_accumulates_stats() {
        let idx = KMismatchIndex::from_ascii(b"acagacagattacaacagtt").unwrap();
        let p1 = kmm_dna::encode(b"acag").unwrap();
        let p2 = kmm_dna::encode(b"ttac").unwrap();
        let (results, stats) = idx.search_batch([&p1[..], &p2[..]], 1, Method::ALGORITHM_A);
        assert_eq!(results.len(), 2);
        assert!(stats.leaves > 0);
        assert_eq!(
            stats.occurrences,
            (results[0].len() + results[1].len()) as u64
        );
    }

    #[test]
    fn labels_are_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<&str> = METHODS.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), METHODS.len());
    }

    #[test]
    fn paper_set_contains_the_four_methods() {
        assert_eq!(Method::PAPER_SET.len(), 4);
        assert!(Method::PAPER_SET.contains(&Method::ALGORITHM_A));
        assert!(Method::PAPER_SET.contains(&Method::Amir));
    }

    #[test]
    #[should_panic(expected = "sentinel-free")]
    fn rejects_sentinel_in_target() {
        KMismatchIndex::new(vec![1, 0, 2]);
    }

    #[test]
    fn explain_attributes_costs_per_method() {
        let idx = KMismatchIndex::from_ascii(b"acagaca").unwrap();
        let r = kmm_dna::encode(b"tcaca").unwrap();
        let methods = [
            Method::Bwt { use_phi: true },
            Method::ALGORITHM_A,
            Method::Naive,
        ];
        let report = idx.explain(&r, 2, &methods);
        assert_eq!(report.pattern, "tcaca");
        assert_eq!((report.m, report.k), (5, 2));
        assert_eq!(report.methods.len(), 3);
        // All methods agree on the answer (the paper's Fig. 3 example).
        for m in &report.methods {
            assert_eq!(m.occurrences, 2, "{}", m.label);
        }
        // Tree methods carry depth profiles; the scanner carries none.
        let bwt = &report.methods[0];
        assert!(bwt.work_units() > 0);
        assert!(!bwt.depths.is_empty());
        // Expansions exist at depth 0 (virtual root) through depth m.
        assert!(bwt.depths[0].expanded > 0 || bwt.depths[1].expanded > 0);
        let naive = &report.methods[2];
        assert_eq!(naive.work_units(), 0);
        assert!(naive.depths.iter().all(|d| d.is_empty()));
        // Verdict picks an instrumented method, never the scanner.
        let v = report.verdict().expect("instrumented methods present");
        assert_ne!(v.winner, "Naive");
    }

    #[test]
    fn explain_is_deterministic_across_runs() {
        let idx = KMismatchIndex::from_ascii(b"acagacagattacaacagttacagacag").unwrap();
        let r = kmm_dna::encode(b"acagtt").unwrap();
        let methods = [Method::Bwt { use_phi: true }, Method::ALGORITHM_A];
        let a = idx.explain(&r, 2, &methods).to_json().to_pretty();
        let b = idx.explain(&r, 2, &methods).to_json().to_pretty();
        assert_eq!(a, b);
    }

    #[test]
    fn explain_depth_profile_matches_node_counts() {
        // Sum of expansions across depths equals nodes_visited + the
        // virtual-root expansion for Algorithm A (the root sweep is not a
        // node the stats count), and exactly nodes_visited for the S-tree.
        let idx = KMismatchIndex::from_ascii(b"acagacagattacaacagtt").unwrap();
        let r = kmm_dna::encode(b"agatt").unwrap();
        let report = idx.explain(&r, 1, &[Method::Bwt { use_phi: true }, Method::ALGORITHM_A]);
        let bwt = &report.methods[0];
        let expanded: u64 = bwt.depths.iter().map(|d| d.expanded).sum();
        assert_eq!(expanded, bwt.counter("nodes_visited"));
        let a = &report.methods[1];
        let expanded: u64 = a.depths.iter().map(|d| d.expanded).sum();
        assert_eq!(expanded, a.counter("nodes_visited") + 1);
    }

    #[test]
    fn mirror_is_lazy_and_reported_once_built() {
        let idx = KMismatchIndex::from_ascii(b"acagacagattacaacagtt").unwrap();
        assert!(!idx.has_mirror());
        assert_eq!(idx.mirror_heap_bytes(), None);
        let r = kmm_dna::encode(b"acagat").unwrap();
        let want = idx.search(&r, 2, Method::Naive).occurrences;
        assert_eq!(idx.search(&r, 2, Method::Bidirectional).occurrences, want);
        assert!(idx.has_mirror());
        assert!(idx.mirror_heap_bytes().unwrap() > 0);
    }

    #[test]
    fn from_fm_with_mirror_serves_bidirectional_without_text() {
        let built = KMismatchIndex::from_ascii(b"acagacagattacaacagtt").unwrap();
        built.mirror();
        let mut bytes = Vec::new();
        built
            .fm()
            .save_with_mirror(built.mirror(), &mut bytes)
            .unwrap();
        let (fm, mirror) = kmm_bwt::FmIndex::load_with_mirror(&bytes[..]).unwrap();
        let idx = KMismatchIndex::from_fm_with_mirror(fm, mirror);
        assert!(idx.has_mirror());
        assert!(!idx.text_is_materialized());
        let pat = kmm_dna::encode(b"acagat").unwrap();
        assert_eq!(
            idx.search(&pat, 2, Method::Bidirectional).occurrences,
            built.search(&pat, 2, Method::Bidirectional).occurrences
        );
        // Bidirectional search through a loaded mirror needs no text.
        assert!(!idx.text_is_materialized());
    }

    #[test]
    fn suffix_tree_is_lazy_and_cached() {
        let idx = KMismatchIndex::from_ascii(b"acgtacgt").unwrap();
        let a = idx.suffix_tree() as *const _;
        let b = idx.suffix_tree() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn from_fm_defers_text_until_a_scanner_needs_it() {
        let built = KMismatchIndex::from_ascii(b"acagacagattacaacagtt").unwrap();
        let mut bytes = Vec::new();
        built.fm().save(&mut bytes).unwrap();
        let fm = kmm_bwt::FmIndex::load(&bytes[..]).unwrap();
        let idx = KMismatchIndex::from_fm(fm);
        assert_eq!(idx.len(), built.len());
        assert!(!idx.text_is_materialized());
        // FM-backed methods never touch the forward text.
        let pat = kmm_dna::encode(b"acag").unwrap();
        for method in [Method::ALGORITHM_A, Method::Bwt { use_phi: true }] {
            assert_eq!(
                idx.search(&pat, 1, method).occurrences,
                built.search(&pat, 1, method).occurrences
            );
        }
        assert!(!idx.text_is_materialized());
        // A scanning method reconstructs it once, and answers match.
        assert_eq!(
            idx.search(&pat, 1, Method::Naive).occurrences,
            built.search(&pat, 1, Method::Naive).occurrences
        );
        assert!(idx.text_is_materialized());
        assert_eq!(idx.text(), built.text());
    }
}
