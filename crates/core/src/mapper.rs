//! High-level read mapping on top of the k-mismatch index.
//!
//! The paper's motivating workflow (Section I) is locating reads in a
//! genome. This module packages the search into what a pipeline needs:
//! both-strand queries (reads come from either strand; the index holds
//! only the forward text), best-hit selection, uniqueness classification
//! and a simple mapping-quality heuristic.

use kmm_classic::Occurrence;
use kmm_dna::reverse_complement;
use kmm_par::ThreadPool;
use kmm_telemetry::{Counter, NoopRecorder, Phase, Recorder, TraceRecorder};

use std::time::Duration;

use crate::cancel::{CancelToken, Outcome};
use crate::matcher::{KMismatchIndex, Method};

/// Strand of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strand {
    /// The read matched the target as given.
    Forward,
    /// The reverse complement of the read matched.
    Reverse,
}

/// One alignment of a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alignment {
    /// 0-based start position on the forward target.
    pub position: usize,
    /// Hamming distance of the aligned strand's sequence to the target
    /// window.
    pub mismatches: usize,
    /// Which strand matched.
    pub strand: Strand,
}

/// Outcome of mapping one read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapOutcome {
    /// No alignment within the budget.
    Unmapped,
    /// Exactly one best-scoring alignment (others, if any, are worse).
    Unique(Alignment),
    /// Multiple alignments tie at the best score.
    Multi(Vec<Alignment>),
}

/// A full mapping report for one read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapReport {
    /// Classification with the best hit(s).
    pub outcome: MapOutcome,
    /// Every alignment found (both strands), sorted by (mismatches,
    /// position).
    pub all: Vec<Alignment>,
    /// Phred-scaled mapping-quality heuristic: 0 for unmapped/ambiguous,
    /// higher when the best hit separates clearly from the runner-up.
    pub mapq: u8,
}

/// Read mapper configuration.
#[derive(Debug, Clone, Copy)]
pub struct MapperConfig {
    /// Mismatch budget.
    pub k: usize,
    /// Search the reverse strand too.
    pub both_strands: bool,
    /// Search method (defaults to Algorithm A).
    pub method: Method,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            k: 5,
            both_strands: true,
            method: Method::ALGORITHM_A,
        }
    }
}

/// The mapper: borrows an index, owns a configuration.
#[derive(Debug, Clone, Copy)]
pub struct ReadMapper<'a> {
    index: &'a KMismatchIndex,
    config: MapperConfig,
}

impl<'a> ReadMapper<'a> {
    /// Create a mapper over an index.
    pub fn new(index: &'a KMismatchIndex, config: MapperConfig) -> Self {
        ReadMapper { index, config }
    }

    /// Map one read.
    pub fn map(&self, read: &[u8]) -> MapReport {
        self.map_recorded(read, &NoopRecorder)
    }

    /// [`Self::map`] with telemetry: both strand queries record their
    /// search phases/counters, plus `map.reads_total` and
    /// `map.reads_mapped` ticks.
    ///
    /// Under a span-collecting recorder the whole read becomes one root
    /// `search.read` span with the strand queries nested inside it, so a
    /// trace shows where a slow read spent its budget.
    pub fn map_recorded<R: Recorder>(&self, read: &[u8], recorder: &R) -> MapReport {
        let tracing = recorder.wants_spans();
        if tracing {
            recorder.annotate(&format!("read_len={} k={}", read.len(), self.config.k));
            recorder.span_begin(Phase::SearchRead);
        }
        let report = self.map_traced(read, None, recorder).into_inner();
        if tracing {
            recorder.span_end(Phase::SearchRead);
        }
        report
    }

    /// [`Self::map`] under a cancellation/deadline token shared by both
    /// strand queries: the read's whole work is bounded, and a read
    /// whose budget expires mid-search returns [`Outcome::Truncated`]
    /// with the alignments found so far (classification/mapq computed
    /// over the partial set — flagged, never silently dropped).
    pub fn map_with_deadline(&self, read: &[u8], token: &CancelToken) -> Outcome<MapReport> {
        self.map_with_deadline_recorded(read, token, &NoopRecorder)
    }

    /// [`Self::map_with_deadline`] with telemetry; truncated reads
    /// annotate their `search.read` span with `cancelled`.
    pub fn map_with_deadline_recorded<R: Recorder>(
        &self,
        read: &[u8],
        token: &CancelToken,
        recorder: &R,
    ) -> Outcome<MapReport> {
        let tracing = recorder.wants_spans();
        if tracing {
            recorder.annotate(&format!("read_len={} k={}", read.len(), self.config.k));
            recorder.span_begin(Phase::SearchRead);
        }
        let report = self.map_traced(read, Some(token), recorder);
        if tracing {
            if report.is_truncated() {
                recorder.annotate("cancelled");
            }
            recorder.span_end(Phase::SearchRead);
        }
        report
    }

    fn map_traced<R: Recorder>(
        &self,
        read: &[u8],
        token: Option<&CancelToken>,
        recorder: &R,
    ) -> Outcome<MapReport> {
        let mut all: Vec<Alignment> = Vec::new();
        let mut truncated = false;
        let collect = |occ: Vec<Occurrence>, strand: Strand, all: &mut Vec<Alignment>| {
            for o in occ {
                all.push(Alignment {
                    position: o.position,
                    mismatches: o.mismatches,
                    strand,
                });
            }
        };
        let search = |pattern: &[u8], truncated: &mut bool| match token {
            Some(token) => {
                let r = self.index.search_with_deadline_recorded(
                    pattern,
                    self.config.k,
                    self.config.method,
                    token,
                    recorder,
                );
                *truncated |= r.is_truncated();
                r.into_inner()
            }
            None => {
                self.index
                    .search_recorded(pattern, self.config.k, self.config.method, recorder)
            }
        };
        let fwd = search(read, &mut truncated);
        collect(fwd.occurrences, Strand::Forward, &mut all);
        if self.config.both_strands {
            let rc = reverse_complement(read);
            let rev = search(&rc, &mut truncated);
            collect(rev.occurrences, Strand::Reverse, &mut all);
        }
        recorder.add(Counter::ReadsTotal, 1);
        if !all.is_empty() {
            recorder.add(Counter::ReadsMapped, 1);
        }
        all.sort_by_key(|a| {
            (
                a.mismatches,
                a.position,
                matches!(a.strand, Strand::Reverse),
            )
        });

        let outcome = match all.as_slice() {
            [] => MapOutcome::Unmapped,
            [single] => MapOutcome::Unique(*single),
            [first, rest @ ..] => {
                let ties: Vec<Alignment> = std::iter::once(*first)
                    .chain(
                        rest.iter()
                            .copied()
                            .take_while(|a| a.mismatches == first.mismatches),
                    )
                    .collect();
                if ties.len() == 1 {
                    MapOutcome::Unique(*first)
                } else {
                    MapOutcome::Multi(ties)
                }
            }
        };
        let mapq = match &outcome {
            MapOutcome::Unmapped | MapOutcome::Multi(_) => 0,
            MapOutcome::Unique(best) => {
                // Gap to the runner-up in mismatches, scaled; capped at 60
                // like conventional aligners.
                let second = all.iter().find(|a| a.mismatches > best.mismatches);
                match second {
                    None => 60,
                    Some(s) => (10 * (s.mismatches - best.mismatches)).min(60) as u8,
                }
            }
        };
        Outcome::from_parts(MapReport { outcome, all, mapq }, truncated)
    }

    /// Map a batch of reads across a thread pool. Reads are independent,
    /// so the reports are bit-identical to mapping each read serially and
    /// come back in input order at any thread count.
    pub fn map_batch<Rd: AsRef<[u8]> + Sync>(
        &self,
        reads: &[Rd],
        pool: &ThreadPool,
    ) -> Vec<MapReport> {
        self.map_batch_recorded(reads, pool, &NoopRecorder)
    }

    /// [`Self::map_batch`] with telemetry: each worker records into a
    /// private [`TraceRecorder`] shard (no shared atomics on the query
    /// path), absorbed into `recorder` after the join. Span-collecting
    /// recorders get per-read trace trees tagged with the worker id.
    pub fn map_batch_recorded<Rd, R>(
        &self,
        reads: &[Rd],
        pool: &ThreadPool,
        recorder: &R,
    ) -> Vec<MapReport>
    where
        Rd: AsRef<[u8]> + Sync,
        R: Recorder + Sync,
    {
        if matches!(self.config.method, Method::Cole) {
            self.index.suffix_tree();
        }
        let shard_metrics = recorder.enabled();
        let tracing = recorder.wants_spans();
        let epoch = recorder.trace_epoch();
        pool.par_map_init(
            reads,
            |worker| shard_metrics.then(|| TraceRecorder::shard(epoch, worker as u32 + 1, tracing)),
            |shard, i, read| match shard {
                Some(shard) => {
                    if tracing {
                        shard.annotate(&format!("q={i}"));
                    }
                    self.map_recorded(read.as_ref(), shard)
                }
                None => self.map(read.as_ref()),
            },
            |shard| {
                if let Some(shard) = shard {
                    recorder.absorb(&shard.snapshot());
                    if tracing {
                        recorder.absorb_traces(shard.drain());
                    }
                }
            },
        )
    }

    /// [`Self::map_batch`] with a **per-read** time budget: each read's
    /// token is stamped as its mapping starts, so one pathological read
    /// is truncated without starving the batch.
    pub fn map_batch_with_deadline<Rd: AsRef<[u8]> + Sync>(
        &self,
        reads: &[Rd],
        pool: &ThreadPool,
        per_read: Duration,
    ) -> Vec<Outcome<MapReport>> {
        self.map_batch_with_deadline_recorded(reads, pool, per_read, &NoopRecorder)
    }

    /// [`Self::map_batch_with_deadline`] with telemetry, sharded per
    /// worker like [`Self::map_batch_recorded`].
    pub fn map_batch_with_deadline_recorded<Rd, R>(
        &self,
        reads: &[Rd],
        pool: &ThreadPool,
        per_read: Duration,
        recorder: &R,
    ) -> Vec<Outcome<MapReport>>
    where
        Rd: AsRef<[u8]> + Sync,
        R: Recorder + Sync,
    {
        if matches!(self.config.method, Method::Cole) {
            self.index.suffix_tree();
        }
        let shard_metrics = recorder.enabled();
        let tracing = recorder.wants_spans();
        let epoch = recorder.trace_epoch();
        pool.par_map_init(
            reads,
            |worker| shard_metrics.then(|| TraceRecorder::shard(epoch, worker as u32 + 1, tracing)),
            |shard, i, read| {
                let token = CancelToken::with_deadline(per_read);
                match shard {
                    Some(shard) => {
                        if tracing {
                            shard.annotate(&format!("q={i}"));
                        }
                        self.map_with_deadline_recorded(read.as_ref(), &token, shard)
                    }
                    None => self.map_with_deadline(read.as_ref(), &token),
                }
            },
            |shard| {
                if let Some(shard) = shard {
                    recorder.absorb(&shard.snapshot());
                    if tracing {
                        recorder.absorb_traces(shard.drain());
                    }
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmm_dna::genome::{markov, MarkovConfig};

    fn index() -> (KMismatchIndex, Vec<u8>) {
        let g = markov(20_000, &MarkovConfig::default(), 99);
        (KMismatchIndex::new(g.clone()), g)
    }

    #[test]
    fn forward_read_maps_uniquely_home() {
        let (idx, g) = index();
        let mapper = ReadMapper::new(
            &idx,
            MapperConfig {
                k: 2,
                ..Default::default()
            },
        );
        // A long-ish probe from a (likely unique) locus.
        let read = g[7_000..7_080].to_vec();
        let report = mapper.map(&read);
        match report.outcome {
            MapOutcome::Unique(a) => {
                assert_eq!(a.position, 7_000);
                assert_eq!(a.mismatches, 0);
                assert_eq!(a.strand, Strand::Forward);
                assert!(report.mapq > 0);
            }
            other => panic!("expected unique mapping, got {other:?}"),
        }
    }

    #[test]
    fn reverse_strand_read_is_recovered() {
        let (idx, g) = index();
        let mapper = ReadMapper::new(
            &idx,
            MapperConfig {
                k: 1,
                ..Default::default()
            },
        );
        let read = reverse_complement(&g[3_000..3_060]);
        let report = mapper.map(&read);
        assert!(report
            .all
            .iter()
            .any(|a| a.position == 3_000 && a.strand == Strand::Reverse));
        // With both_strands disabled the read is lost.
        let fwd_only = ReadMapper::new(
            &idx,
            MapperConfig {
                k: 1,
                both_strands: false,
                ..Default::default()
            },
        );
        assert!(!fwd_only.map(&read).all.iter().any(|a| a.position == 3_000));
    }

    #[test]
    fn multi_mapping_in_repeats() {
        // Identical planted copies force a Multi outcome with mapq 0.
        let mut g = kmm_dna::genome::uniform(5_000, 4);
        let unit = g[100..160].to_vec();
        g[3_000..3_060].copy_from_slice(&unit);
        let idx = KMismatchIndex::new(g);
        let mapper = ReadMapper::new(
            &idx,
            MapperConfig {
                k: 0,
                ..Default::default()
            },
        );
        let report = mapper.map(&unit);
        match report.outcome {
            MapOutcome::Multi(ties) => {
                let positions: Vec<usize> = ties.iter().map(|a| a.position).collect();
                assert!(positions.contains(&100));
                assert!(positions.contains(&3_000));
                assert_eq!(report.mapq, 0);
            }
            other => panic!("expected multi mapping, got {other:?}"),
        }
    }

    #[test]
    fn unmapped_read() {
        let (idx, _) = index();
        let mapper = ReadMapper::new(
            &idx,
            MapperConfig {
                k: 0,
                ..Default::default()
            },
        );
        // A read unlikely to occur exactly: long homopolymer.
        let read = vec![4u8; 60];
        let report = mapper.map(&read);
        assert_eq!(report.outcome, MapOutcome::Unmapped);
        assert_eq!(report.mapq, 0);
        assert!(report.all.is_empty());
    }

    #[test]
    fn mapq_reflects_separation() {
        let (idx, g) = index();
        // A read with one planted error: best hit at distance 1; mapq
        // depends on how far the next hit is.
        let mut read = g[11_000..11_090].to_vec();
        read[40] = if read[40] == 1 { 2 } else { 1 };
        let mapper = ReadMapper::new(
            &idx,
            MapperConfig {
                k: 4,
                ..Default::default()
            },
        );
        let report = mapper.map(&read);
        if let MapOutcome::Unique(a) = report.outcome {
            assert_eq!(a.position, 11_000);
            assert_eq!(a.mismatches, 1);
            assert!(report.mapq > 0);
        } else {
            panic!("expected unique outcome: {:?}", report.outcome);
        }
    }

    #[test]
    fn all_alignments_sorted_by_quality() {
        let (idx, g) = index();
        let mapper = ReadMapper::new(
            &idx,
            MapperConfig {
                k: 3,
                ..Default::default()
            },
        );
        let read = g[500..560].to_vec();
        let report = mapper.map(&read);
        for w in report.all.windows(2) {
            assert!(w[0].mismatches <= w[1].mismatches);
        }
    }
}
