//! Instrumentation counters for the k-mismatch searches.
//!
//! These expose the quantities the paper reports: `n'` (leaf count of the
//! produced tree, Table 2), the number of `search()` / rankall invocations
//! (the dominant cost the M-tree derivation removes), and how often the
//! hash-table reuse fired.

/// Counters collected during one search. All counts are per query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Leaf nodes of the search tree (paths at which the walk terminated):
    /// the paper's `n'` for Algorithm A and the S-tree leaf count for the
    /// BWT baseline.
    pub leaves: u64,
    /// Tree nodes visited (including revisits of shared subtrees).
    pub nodes_visited: u64,
    /// Nodes newly materialised by live BWT search.
    pub nodes_materialized: u64,
    /// `search()` steps, i.e. backward-extension rank lookups (each is two
    /// `occ` calls on the rankall arrays).
    pub rank_extensions: u64,
    /// Hash-table hits that let a subtree be derived instead of re-searched.
    pub reuse_hits: u64,
    /// `R_ij` tables derived (paper's `merge(R_i, R_j, …)` executions).
    pub merges: u64,
    /// Subtree walks resumed with live search because the stored subtree
    /// was not materialised deeply enough for the new alignment's budget
    /// (DESIGN.md D2).
    pub resumes: u64,
    /// Occurrences reported.
    pub occurrences: u64,
    /// Branches pruned by the `φ` heuristic (BWT baseline only).
    pub phi_prunes: u64,
}

impl SearchStats {
    /// Merge counters from another search (used when batching reads).
    pub fn accumulate(&mut self, other: &SearchStats) {
        self.leaves += other.leaves;
        self.nodes_visited += other.nodes_visited;
        self.nodes_materialized += other.nodes_materialized;
        self.rank_extensions += other.rank_extensions;
        self.reuse_hits += other.reuse_hits;
        self.merges += other.merges;
        self.resumes += other.resumes;
        self.occurrences += other.occurrences;
        self.phi_prunes += other.phi_prunes;
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "leaves={} visited={} materialized={} rank_ext={} reuse={} merges={} resumes={} occ={} phi_prunes={}",
            self.leaves,
            self.nodes_visited,
            self.nodes_materialized,
            self.rank_extensions,
            self.reuse_hits,
            self.merges,
            self.resumes,
            self.occurrences,
            self.phi_prunes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_fields() {
        let mut a = SearchStats { leaves: 1, nodes_visited: 2, occurrences: 3, ..Default::default() };
        let b = SearchStats { leaves: 10, nodes_visited: 20, reuse_hits: 5, ..Default::default() };
        a.accumulate(&b);
        assert_eq!(a.leaves, 11);
        assert_eq!(a.nodes_visited, 22);
        assert_eq!(a.reuse_hits, 5);
        assert_eq!(a.occurrences, 3);
    }

    #[test]
    fn display_is_complete() {
        let s = SearchStats::default().to_string();
        for field in ["leaves=", "rank_ext=", "reuse=", "merges=", "occ="] {
            assert!(s.contains(field), "missing {field} in {s}");
        }
    }
}
