//! Instrumentation counters for the k-mismatch searches.
//!
//! These expose the quantities the paper reports: `n'` (leaf count of the
//! produced tree, Table 2), the number of `search()` / rankall invocations
//! (the dominant cost the M-tree derivation removes), and how often the
//! hash-table reuse fired.

use kmm_telemetry::{Counter, Recorder};

/// Counters collected during one search. All counts are per query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Leaf nodes of the search tree (paths at which the walk terminated):
    /// the paper's `n'` for Algorithm A and the S-tree leaf count for the
    /// BWT baseline.
    pub leaves: u64,
    /// Tree nodes visited (including revisits of shared subtrees).
    pub nodes_visited: u64,
    /// Nodes newly materialised by live BWT search.
    pub nodes_materialized: u64,
    /// `search()` steps, i.e. backward-extension rank lookups (each is two
    /// `occ` calls on the rankall arrays).
    pub rank_extensions: u64,
    /// Hash-table hits that let a subtree be derived instead of re-searched.
    pub reuse_hits: u64,
    /// `R_ij` tables derived (paper's `merge(R_i, R_j, …)` executions).
    pub merges: u64,
    /// Subtree walks resumed with live search because the stored subtree
    /// was not materialised deeply enough for the new alignment's budget
    /// (DESIGN.md D2).
    pub resumes: u64,
    /// Occurrences reported.
    pub occurrences: u64,
    /// Branches pruned by the `φ` heuristic (BWT baseline only).
    pub phi_prunes: u64,
    /// Searches truncated by a deadline/cancellation (0 or 1 per query;
    /// summed across a batch). Partial results were still reported.
    pub timeouts: u64,
    /// Fused 4-base rank sweeps (`extend_all` node expansions): each
    /// resolves all four children with one pass over the interval's two
    /// rank blocks instead of four independent extensions.
    pub occ_fused: u64,
    /// Per-node allocations avoided by reusing a per-query arena or
    /// pre-sized tree storage across queries.
    pub alloc_reused: u64,
    /// Deterministic cost: interleaved rank blocks visited by
    /// `occ`/`occ_all`/`symbol` during the query (see
    /// `kmm_telemetry::cost`). A pure function of (index, pattern, k,
    /// method) — identical across runs, machines, and thread counts.
    pub rank_blocks_touched: u64,
    /// Deterministic cost: bytes of rank-block data examined
    /// (checkpoint headers plus packed payload words).
    pub rank_bytes_scanned: u64,
    /// Deterministic cost: R-array lookups (`shift` / `R_ij`
    /// derivations) during preprocessing and descent.
    pub rarray_probes: u64,
    /// Deterministic cost: mismatching-tree nodes materialised into the
    /// arena.
    pub mtree_nodes_built: u64,
    /// Deterministic cost: pair-table hits that shared an existing
    /// mismatching-tree node instead of building one.
    pub mtree_nodes_reused: u64,
    /// Deterministic cost: `occ_all_pair` calls answered with a single
    /// shared block visit (both interval boundaries in one interleaved
    /// block) instead of two independent `occ_all` sweeps.
    pub occ_pair_fused: u64,
    /// Deterministic cost: advisory rank-block prefetch hints issued
    /// for in-range LF targets ahead of backward extensions.
    pub prefetch_issued: u64,
}

impl SearchStats {
    /// Merge counters from another search (used when batching reads).
    ///
    /// The exhaustive destructuring makes adding a `SearchStats` field
    /// without summing it here a compile error.
    pub fn accumulate(&mut self, other: &SearchStats) {
        let SearchStats {
            leaves,
            nodes_visited,
            nodes_materialized,
            rank_extensions,
            reuse_hits,
            merges,
            resumes,
            occurrences,
            phi_prunes,
            timeouts,
            occ_fused,
            alloc_reused,
            rank_blocks_touched,
            rank_bytes_scanned,
            rarray_probes,
            mtree_nodes_built,
            mtree_nodes_reused,
            occ_pair_fused,
            prefetch_issued,
        } = *other;
        self.leaves += leaves;
        self.nodes_visited += nodes_visited;
        self.nodes_materialized += nodes_materialized;
        self.rank_extensions += rank_extensions;
        self.reuse_hits += reuse_hits;
        self.merges += merges;
        self.resumes += resumes;
        self.occurrences += occurrences;
        self.phi_prunes += phi_prunes;
        self.timeouts += timeouts;
        self.occ_fused += occ_fused;
        self.alloc_reused += alloc_reused;
        self.rank_blocks_touched += rank_blocks_touched;
        self.rank_bytes_scanned += rank_bytes_scanned;
        self.rarray_probes += rarray_probes;
        self.mtree_nodes_built += mtree_nodes_built;
        self.mtree_nodes_reused += mtree_nodes_reused;
        self.occ_pair_fused += occ_pair_fused;
        self.prefetch_issued += prefetch_issued;
    }

    /// Every field as a `(canonical_name, value)` pair, in declaration
    /// order. The names are the stable keys used by the JSON emitters.
    pub fn as_pairs(&self) -> [(&'static str, u64); 19] {
        let SearchStats {
            leaves,
            nodes_visited,
            nodes_materialized,
            rank_extensions,
            reuse_hits,
            merges,
            resumes,
            occurrences,
            phi_prunes,
            timeouts,
            occ_fused,
            alloc_reused,
            rank_blocks_touched,
            rank_bytes_scanned,
            rarray_probes,
            mtree_nodes_built,
            mtree_nodes_reused,
            occ_pair_fused,
            prefetch_issued,
        } = *self;
        [
            ("leaves", leaves),
            ("nodes_visited", nodes_visited),
            ("nodes_materialized", nodes_materialized),
            ("rank_extensions", rank_extensions),
            ("reuse_hits", reuse_hits),
            ("merges", merges),
            ("resumes", resumes),
            ("occurrences", occurrences),
            ("phi_prunes", phi_prunes),
            ("timeouts", timeouts),
            ("occ_fused", occ_fused),
            ("alloc_reused", alloc_reused),
            ("rank_blocks_touched", rank_blocks_touched),
            ("rank_bytes_scanned", rank_bytes_scanned),
            ("rarray_probes", rarray_probes),
            ("mtree_nodes_built", mtree_nodes_built),
            ("mtree_nodes_reused", mtree_nodes_reused),
            ("occ_pair_fused", occ_pair_fused),
            ("prefetch_issued", prefetch_issued),
        ]
    }

    /// Add every field to the matching `search.*` telemetry counter.
    pub fn record_into<R: Recorder>(&self, recorder: &R) {
        let SearchStats {
            leaves,
            nodes_visited,
            nodes_materialized,
            rank_extensions,
            reuse_hits,
            merges,
            resumes,
            occurrences,
            phi_prunes,
            timeouts,
            occ_fused,
            alloc_reused,
            rank_blocks_touched,
            rank_bytes_scanned,
            rarray_probes,
            mtree_nodes_built,
            mtree_nodes_reused,
            occ_pair_fused,
            prefetch_issued,
        } = *self;
        recorder.add(Counter::Leaves, leaves);
        recorder.add(Counter::NodesVisited, nodes_visited);
        recorder.add(Counter::NodesMaterialized, nodes_materialized);
        recorder.add(Counter::RankExtensions, rank_extensions);
        recorder.add(Counter::ReuseHits, reuse_hits);
        recorder.add(Counter::Merges, merges);
        recorder.add(Counter::Resumes, resumes);
        recorder.add(Counter::Occurrences, occurrences);
        recorder.add(Counter::PhiPrunes, phi_prunes);
        recorder.add(Counter::Timeouts, timeouts);
        recorder.add(Counter::OccFused, occ_fused);
        recorder.add(Counter::AllocReused, alloc_reused);
        recorder.add(Counter::RankBlocksTouched, rank_blocks_touched);
        recorder.add(Counter::RankBytesScanned, rank_bytes_scanned);
        recorder.add(Counter::RarrayProbes, rarray_probes);
        recorder.add(Counter::MtreeNodesBuilt, mtree_nodes_built);
        recorder.add(Counter::MtreeNodesReused, mtree_nodes_reused);
        recorder.add(Counter::OccPairFused, occ_pair_fused);
        recorder.add(Counter::PrefetchIssued, prefetch_issued);
    }

    /// Fraction of extension work answered by reuse instead of live
    /// ranking: `reuse_hits / (reuse_hits + rank_extensions)`. Zero when
    /// no extension work happened.
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.reuse_hits + self.rank_extensions;
        if total == 0 {
            0.0
        } else {
            self.reuse_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let SearchStats {
            leaves,
            nodes_visited,
            nodes_materialized,
            rank_extensions,
            reuse_hits,
            merges,
            resumes,
            occurrences,
            phi_prunes,
            timeouts,
            occ_fused,
            alloc_reused,
            rank_blocks_touched,
            rank_bytes_scanned,
            rarray_probes,
            mtree_nodes_built,
            mtree_nodes_reused,
            occ_pair_fused,
            prefetch_issued,
        } = *self;
        write!(
            f,
            "n'(leaves)={} visited={} materialized={} rank_ext={} reuse={} merges={} \
             resumes={} occ={} phi_prunes={} timeouts={} occ_fused={} alloc_reused={} \
             rank_blocks={} rank_bytes={} rarray_probes={} mtree_built={} mtree_reused={} \
             occ_pair_fused={} prefetch={} reuse_ratio={:.3}",
            leaves,
            nodes_visited,
            nodes_materialized,
            rank_extensions,
            reuse_hits,
            merges,
            resumes,
            occurrences,
            phi_prunes,
            timeouts,
            occ_fused,
            alloc_reused,
            rank_blocks_touched,
            rank_bytes_scanned,
            rarray_probes,
            mtree_nodes_built,
            mtree_nodes_reused,
            occ_pair_fused,
            prefetch_issued,
            self.reuse_ratio(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmm_telemetry::MetricsRecorder;

    #[test]
    fn accumulate_sums_fields() {
        let mut a = SearchStats {
            leaves: 1,
            nodes_visited: 2,
            occurrences: 3,
            ..Default::default()
        };
        let b = SearchStats {
            leaves: 10,
            nodes_visited: 20,
            reuse_hits: 5,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.leaves, 11);
        assert_eq!(a.nodes_visited, 22);
        assert_eq!(a.reuse_hits, 5);
        assert_eq!(a.occurrences, 3);
    }

    #[test]
    fn display_is_complete() {
        let s = SearchStats::default().to_string();
        for field in [
            "n'(leaves)=",
            "rank_ext=",
            "reuse=",
            "merges=",
            "occ=",
            "occ_fused=",
            "alloc_reused=",
            "rank_blocks=",
            "rank_bytes=",
            "rarray_probes=",
            "mtree_built=",
            "mtree_reused=",
            "occ_pair_fused=",
            "prefetch=",
            "reuse_ratio=",
        ] {
            assert!(s.contains(field), "missing {field} in {s}");
        }
    }

    #[test]
    fn as_pairs_covers_every_field() {
        let stats = SearchStats {
            leaves: 1,
            nodes_visited: 2,
            nodes_materialized: 3,
            rank_extensions: 4,
            reuse_hits: 5,
            merges: 6,
            resumes: 7,
            occurrences: 8,
            phi_prunes: 9,
            timeouts: 10,
            occ_fused: 11,
            alloc_reused: 12,
            rank_blocks_touched: 13,
            rank_bytes_scanned: 14,
            rarray_probes: 15,
            mtree_nodes_built: 16,
            mtree_nodes_reused: 17,
            occ_pair_fused: 18,
            prefetch_issued: 19,
        };
        let pairs = stats.as_pairs();
        let values: Vec<u64> = pairs.iter().map(|&(_, v)| v).collect();
        assert_eq!(
            values,
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19]
        );
        let mut names: Vec<&str> = pairs.iter().map(|&(n, _)| n).collect();
        names.dedup();
        assert_eq!(names.len(), 19, "duplicate field names in as_pairs");
    }

    #[test]
    fn record_into_mirrors_counters() {
        let stats = SearchStats {
            leaves: 11,
            rank_extensions: 22,
            reuse_hits: 33,
            occurrences: 44,
            rank_blocks_touched: 55,
            rarray_probes: 66,
            ..Default::default()
        };
        let rec = MetricsRecorder::new();
        stats.record_into(&rec);
        stats.record_into(&rec);
        assert_eq!(rec.counter(Counter::Leaves), 22);
        assert_eq!(rec.counter(Counter::RankExtensions), 44);
        assert_eq!(rec.counter(Counter::ReuseHits), 66);
        assert_eq!(rec.counter(Counter::Occurrences), 88);
        assert_eq!(rec.counter(Counter::RankBlocksTouched), 110);
        assert_eq!(rec.counter(Counter::RarrayProbes), 132);
        assert_eq!(rec.counter(Counter::Merges), 0);
    }

    #[test]
    fn reuse_ratio_is_bounded() {
        assert_eq!(SearchStats::default().reuse_ratio(), 0.0);
        let s = SearchStats {
            reuse_hits: 1,
            rank_extensions: 3,
            ..Default::default()
        };
        assert_eq!(s.reuse_ratio(), 0.25);
        let all_reuse = SearchStats {
            reuse_hits: 5,
            ..Default::default()
        };
        assert_eq!(all_reuse.reuse_ratio(), 1.0);
    }
}
