//! String matching with k errors (Levenshtein distance) over the BWT
//! index — the companion problem the paper's Section II surveys and a
//! natural extension of the k-mismatch machinery.
//!
//! The search walks the same backward-extension trie as the k-mismatch
//! methods, but each node carries a dynamic-programming row
//! `D[j] = Lev(w, r[0..j])` for its spelled substring `w` (the classic
//! trie-DP of the k-errors literature the paper cites [6, 52]-style).
//! A branch dies when its entire row exceeds `k`; a node reports when
//! `D[m] <= k`. Every matching `(position, length, distance)` triple is
//! returned — unlike the Hamming case, occurrences have variable length.

use kmm_bwt::{FmIndex, Interval};
use kmm_dna::BASES;
use kmm_telemetry::{NoopRecorder, PruneCause, Recorder};

use crate::stats::SearchStats;

/// One k-errors occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EditOccurrence {
    /// 0-based start position in the target.
    pub position: usize,
    /// Length of the matched target substring.
    pub length: usize,
    /// Levenshtein distance to the pattern.
    pub distance: usize,
}

/// Per-query DP row arena: one row slot per trie depth, written in place
/// as the descent advances. Replaces the per-child `Vec` the walk used to
/// allocate at every node — the slot for depth `d + 1` is safely reusable
/// across siblings because a child's recursion only writes deeper slots.
struct RowArena {
    /// `(m + k + 1)` rows of `stride` entries each, indexed by depth.
    rows: Vec<u32>,
    /// Row width (`m + 1`).
    stride: usize,
    /// Deepest slot written so far; refills of shallower slots are the
    /// allocations the arena saved.
    high: usize,
}

/// k-errors searcher over a reverse-text FM-index.
#[derive(Debug, Clone, Copy)]
pub struct KErrorsSearch<'a> {
    fm: &'a FmIndex,
    text_len: usize,
}

impl<'a> KErrorsSearch<'a> {
    /// `fm` must index `reverse(s) + $`; `text_len = |s|`.
    pub fn new(fm: &'a FmIndex, text_len: usize) -> Self {
        debug_assert_eq!(fm.len(), text_len + 1);
        KErrorsSearch { fm, text_len }
    }

    /// All substrings of the target within Levenshtein distance `k` of
    /// `pattern`, as `(position, length, distance)` triples sorted by
    /// position, length.
    pub fn search(&self, pattern: &[u8], k: usize) -> (Vec<EditOccurrence>, SearchStats) {
        self.search_recorded(pattern, k, &NoopRecorder)
    }

    /// [`Self::search`] with telemetry: depth-profile hooks fire on a
    /// recorder with `wants_depths() == true` (node expansions plus
    /// pruned children split by cause), so the k-errors walk is
    /// EXPLAIN-able like the k-mismatch methods.
    pub fn search_recorded<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        recorder: &R,
    ) -> (Vec<EditOccurrence>, SearchStats) {
        let mut stats = SearchStats::default();
        let m = pattern.len();
        let mut out = Vec::new();
        if m == 0 {
            return (out, stats);
        }
        // One arena sized for the deepest possible path (depth <= m + k)
        // holds every DP row of the descent; no per-node allocation.
        let stride = m + 1;
        let mut arena = RowArena {
            rows: vec![0u32; (m + k + 1) * stride],
            stride,
            high: 0,
        };
        // Root row: converting the empty substring into r[0..j] costs j
        // insertions. The empty substring itself matches if m <= k — by
        // convention we do not report empty occurrences.
        for (j, slot) in arena.rows[..stride].iter_mut().enumerate() {
            *slot = j as u32;
        }
        self.dfs(
            self.fm.whole(),
            0,
            pattern,
            k,
            &mut arena,
            &mut out,
            &mut stats,
            recorder,
        );
        out.sort_unstable();
        stats.occurrences = out.len() as u64;
        (out, stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs<R: Recorder>(
        &self,
        iv: Interval,
        depth: usize,
        pattern: &[u8],
        k: usize,
        arena: &mut RowArena,
        out: &mut Vec<EditOccurrence>,
        stats: &mut SearchStats,
        recorder: &R,
    ) {
        stats.nodes_visited += 1;
        if recorder.wants_depths() {
            recorder.depth_expand(depth);
        }
        let m = pattern.len();
        // Depth bound: any match within distance k has length <= m + k.
        if depth == m + k {
            stats.leaves += 1;
            if recorder.wants_depths() {
                recorder.depth_prune(depth, PruneCause::Cutoff);
            }
            return;
        }
        if iv.is_empty() {
            if recorder.wants_depths() {
                recorder.depth_prune(depth, PruneCause::EmptyInterval);
            }
            return;
        }
        // One fused rank sweep resolves all four children; empty ones are
        // skipped before any DP work on their rows.
        stats.rank_extensions += 1;
        stats.occ_fused += 1;
        let children = self.fm.extend_all(iv);
        // Pull each surviving child's boundary rank blocks toward cache
        // while the DP rows below are filled — the recursive extend_all
        // on that child is the very next rank access to those blocks.
        for child in &children {
            if !child.is_empty() {
                self.fm.prefetch_interval(*child);
            }
        }
        let mut any_child = false;
        for y in 1..=BASES as u8 {
            let child = children[(y - 1) as usize];
            if child.is_empty() {
                if recorder.wants_depths() {
                    recorder.depth_prune(depth + 1, PruneCause::EmptyInterval);
                }
                continue;
            }
            // Fill the child's DP row into the arena slot for depth + 1;
            // the parent row lives in slot depth.
            let (alive, final_d) = {
                let stride = arena.stride;
                let (parents, childs) = arena.rows.split_at_mut((depth + 1) * stride);
                let row = &parents[depth * stride..];
                let next = &mut childs[..stride];
                if depth < arena.high {
                    stats.alloc_reused += 1;
                } else {
                    arena.high = depth + 1;
                }
                next[0] = row[0] + 1;
                let mut alive = next[0] <= k as u32;
                for j in 1..=m {
                    let cost = u32::from(pattern[j - 1] != y);
                    let v = (row[j] + 1).min(next[j - 1] + 1).min(row[j - 1] + cost);
                    alive |= v <= k as u32;
                    next[j] = v;
                }
                (alive, next[m])
            };
            if !alive {
                // The whole DP row exceeds k: the child dies on the
                // mismatch/edit budget, not on an empty interval.
                if recorder.wants_depths() {
                    recorder.depth_prune(depth + 1, PruneCause::Budget);
                }
                continue;
            }
            any_child = true;
            if final_d <= k as u32 {
                // Every row of the child interval is an occurrence of this
                // substring.
                let length = depth + 1;
                for r in child.rows() {
                    let p_rev = self.fm.sa_value(r) as usize;
                    out.push(EditOccurrence {
                        position: self.text_len - p_rev - length,
                        length,
                        distance: final_d as usize,
                    });
                }
            }
            self.dfs(child, depth + 1, pattern, k, arena, out, stats, recorder);
        }
        if !any_child {
            stats.leaves += 1;
        }
    }
}

/// Reference implementation by direct DP from every start position; used
/// by tests and small-scale verification.
pub fn find_k_errors_naive(text: &[u8], pattern: &[u8], k: usize) -> Vec<EditOccurrence> {
    let (n, m) = (text.len(), pattern.len());
    let mut out = Vec::new();
    if m == 0 {
        return out;
    }
    for start in 0..n {
        let max_len = (m + k).min(n - start);
        // row[j] = Lev(text[start..start+l], pattern[0..j])
        let mut row: Vec<u32> = (0..=m as u32).collect();
        for l in 1..=max_len {
            let c = text[start + l - 1];
            let mut next = Vec::with_capacity(m + 1);
            next.push(row[0] + 1);
            for j in 1..=m {
                let cost = u32::from(pattern[j - 1] != c);
                next.push((row[j] + 1).min(next[j - 1] + 1).min(row[j - 1] + cost));
            }
            row = next;
            if row[m] <= k as u32 {
                out.push(EditOccurrence {
                    position: start,
                    length: l,
                    distance: row[m] as usize,
                });
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmm_bwt::FmBuildConfig;

    fn setup(s: &[u8]) -> (FmIndex, usize) {
        let mut rev = s.to_vec();
        rev.reverse();
        rev.push(0);
        (FmIndex::new(&rev, FmBuildConfig::default()), s.len())
    }

    #[test]
    fn exact_matches_have_distance_zero() {
        let s = kmm_dna::encode(b"acagaca").unwrap();
        let r = kmm_dna::encode(b"aca").unwrap();
        let (fm, n) = setup(&s);
        let ke = KErrorsSearch::new(&fm, n);
        let (occ, _) = ke.search(&r, 0);
        let exact: Vec<&EditOccurrence> = occ.iter().filter(|o| o.distance == 0).collect();
        assert_eq!(
            exact.iter().map(|o| o.position).collect::<Vec<_>>(),
            vec![0, 4]
        );
        assert!(exact.iter().all(|o| o.length == 3));
    }

    #[test]
    fn single_insertion_and_deletion_found() {
        // s contains "acgga"; pattern "acga" is one deletion away, pattern
        // "acggta" ... keep it simple and assert against the reference.
        let s = kmm_dna::encode(b"ttacggatt").unwrap();
        let (fm, n) = setup(&s);
        let ke = KErrorsSearch::new(&fm, n);
        let r = kmm_dna::encode(b"acga").unwrap();
        let (occ, _) = ke.search(&r, 1);
        assert_eq!(occ, find_k_errors_naive(&s, &r, 1));
        // The deletion alignment acg|g|a must be present.
        assert!(occ
            .iter()
            .any(|o| o.position == 2 && o.length == 5 && o.distance == 1));
    }

    #[test]
    fn random_agrees_with_reference() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(707);
        for _ in 0..40 {
            let n = rng.gen_range(1..120);
            let s: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let m = rng.gen_range(1..=n.min(8));
            let r: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            for k in 0..3usize {
                let (fm, len) = setup(&s);
                let ke = KErrorsSearch::new(&fm, len);
                assert_eq!(
                    ke.search(&r, k).0,
                    find_k_errors_naive(&s, &r, k),
                    "s={s:?} r={r:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn k_errors_supersets_k_mismatches() {
        use kmm_classic::naive;
        let s = kmm_dna::encode(b"gattacagtacagatt").unwrap();
        let r = kmm_dna::encode(b"tacag").unwrap();
        let (fm, n) = setup(&s);
        let ke = KErrorsSearch::new(&fm, n);
        for k in 0..3usize {
            let (edits, _) = ke.search(&r, k);
            for h in naive::find_k_mismatch(&s, &r, k) {
                assert!(
                    edits.iter().any(|o| o.position == h.position
                        && o.length == r.len()
                        && o.distance <= h.mismatches),
                    "hamming hit at {} (d={}) missing for k={k}",
                    h.position,
                    h.mismatches
                );
            }
        }
    }

    #[test]
    fn empty_pattern_yields_nothing() {
        let s = kmm_dna::encode(b"acg").unwrap();
        let (fm, n) = setup(&s);
        let ke = KErrorsSearch::new(&fm, n);
        assert!(ke.search(&[], 2).0.is_empty());
    }
}
