//! Multi-sequence (chromosome-aware) indexing.
//!
//! Real references are collections of chromosomes/contigs. Indexing their
//! plain concatenation is subtly wrong: an approximate match may straddle
//! a record boundary, reporting an occurrence that exists in no single
//! chromosome. [`MultiIndex`] concatenates the records (one shared index,
//! as the single-sentinel BWT layout requires), keeps the boundary table,
//! filters straddling hits and translates positions back into
//! `(record, local offset)` coordinates.

use kmm_classic::Occurrence;
use kmm_par::ThreadPool;
use kmm_telemetry::{Counter, NoopRecorder, Recorder, TraceRecorder};

use std::time::Duration;

use crate::cancel::{CancelToken, Outcome};
use crate::matcher::{KMismatchIndex, Method, SearchResult};
use crate::stats::SearchStats;

/// An occurrence in multi-sequence coordinates.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MultiOccurrence {
    /// Index of the record the hit lies in.
    pub record: usize,
    /// 0-based offset within that record.
    pub offset: usize,
    /// Hamming distance at the hit.
    pub mismatches: usize,
}

/// A k-mismatch index over a collection of named sequences.
#[derive(Debug)]
pub struct MultiIndex {
    index: KMismatchIndex,
    /// Start offset of each record in the concatenation, plus a final
    /// entry holding the total length.
    starts: Vec<usize>,
    names: Vec<String>,
}

impl MultiIndex {
    /// Build from `(name, sequence)` records (encoded, sentinel-free).
    ///
    /// # Panics
    /// Panics if no records are given or any record is empty.
    pub fn new(records: Vec<(String, Vec<u8>)>) -> Self {
        assert!(!records.is_empty(), "at least one record required");
        let mut starts = Vec::with_capacity(records.len() + 1);
        let mut names = Vec::with_capacity(records.len());
        let mut concat = Vec::new();
        for (name, seq) in records {
            assert!(!seq.is_empty(), "record '{name}' is empty");
            starts.push(concat.len());
            names.push(name);
            concat.extend(seq);
        }
        starts.push(concat.len());
        MultiIndex {
            index: KMismatchIndex::new(concat),
            starts,
            names,
        }
    }

    /// Number of records.
    pub fn record_count(&self) -> usize {
        self.names.len()
    }

    /// Record names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Length of record `i`.
    pub fn record_len(&self, i: usize) -> usize {
        self.starts[i + 1] - self.starts[i]
    }

    /// The underlying single-text index (concatenated coordinates).
    pub fn inner(&self) -> &KMismatchIndex {
        &self.index
    }

    /// Translate a concatenated position to `(record, offset)`.
    fn locate_record(&self, pos: usize) -> (usize, usize) {
        // partition_point: first start beyond pos, minus one.
        let rec = self.starts.partition_point(|&s| s <= pos) - 1;
        (rec, pos - self.starts[rec])
    }

    /// All k-mismatch occurrences of `pattern`, in per-record coordinates;
    /// hits straddling a record boundary are discarded.
    pub fn search(
        &self,
        pattern: &[u8],
        k: usize,
        method: Method,
    ) -> (Vec<MultiOccurrence>, SearchStats) {
        self.search_recorded(pattern, k, method, &NoopRecorder)
    }

    /// [`Self::search`] with telemetry: the inner query records its
    /// search phases/counters, and every hit discarded for straddling a
    /// record boundary ticks `multi.boundary_filtered`.
    pub fn search_recorded<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        method: Method,
        recorder: &R,
    ) -> (Vec<MultiOccurrence>, SearchStats) {
        let res = self.index.search_recorded(pattern, k, method, recorder);
        self.translate(res, pattern.len(), recorder)
    }

    /// Boundary-filter and translate one concatenated-coordinate result.
    fn translate<R: Recorder>(
        &self,
        res: SearchResult,
        m: usize,
        recorder: &R,
    ) -> (Vec<MultiOccurrence>, SearchStats) {
        let occ: Vec<MultiOccurrence> = res
            .occurrences
            .into_iter()
            .filter_map(
                |Occurrence {
                     position,
                     mismatches,
                 }| {
                    let (record, offset) = self.locate_record(position);
                    // The window must end inside the same record.
                    if offset + m <= self.record_len(record) {
                        Some(MultiOccurrence {
                            record,
                            offset,
                            mismatches,
                        })
                    } else {
                        recorder.add(Counter::BoundaryFiltered, 1);
                        None
                    }
                },
            )
            .collect();
        (occ, res.stats)
    }

    /// [`Self::search`] under a cancellation/deadline token (see
    /// [`KMismatchIndex::search_with_deadline_recorded`]); hits found
    /// before truncation are still boundary-filtered and translated.
    pub fn search_with_deadline(
        &self,
        pattern: &[u8],
        k: usize,
        method: Method,
        token: &CancelToken,
    ) -> Outcome<(Vec<MultiOccurrence>, SearchStats)> {
        self.search_with_deadline_recorded(pattern, k, method, token, &NoopRecorder)
    }

    /// [`Self::search_with_deadline`] with telemetry.
    pub fn search_with_deadline_recorded<R: Recorder>(
        &self,
        pattern: &[u8],
        k: usize,
        method: Method,
        token: &CancelToken,
        recorder: &R,
    ) -> Outcome<(Vec<MultiOccurrence>, SearchStats)> {
        self.index
            .search_with_deadline_recorded(pattern, k, method, token, recorder)
            .map(|res| self.translate(res, pattern.len(), recorder))
    }

    /// Run many queries across a thread pool, returning per-query hit
    /// lists in input order (bit-identical at any thread count) plus the
    /// merged statistics.
    pub fn search_batch_par<P: AsRef<[u8]> + Sync>(
        &self,
        patterns: &[P],
        k: usize,
        method: Method,
        pool: &ThreadPool,
    ) -> (Vec<Vec<MultiOccurrence>>, SearchStats) {
        self.search_batch_par_recorded(patterns, k, method, pool, &NoopRecorder)
    }

    /// [`Self::search_batch_par`] with telemetry, sharded per worker and
    /// absorbed into `recorder` after the join (including the
    /// `multi.boundary_filtered` ticks).
    pub fn search_batch_par_recorded<P, R>(
        &self,
        patterns: &[P],
        k: usize,
        method: Method,
        pool: &ThreadPool,
        recorder: &R,
    ) -> (Vec<Vec<MultiOccurrence>>, SearchStats)
    where
        P: AsRef<[u8]> + Sync,
        R: Recorder + Sync,
    {
        if matches!(method, Method::Cole) {
            self.index.suffix_tree();
        }
        let shard_metrics = recorder.enabled();
        let tracing = recorder.wants_spans();
        let epoch = recorder.trace_epoch();
        let total = std::sync::Mutex::new(SearchStats::default());
        let results = pool.par_map_init(
            patterns,
            |worker| {
                (
                    shard_metrics.then(|| TraceRecorder::shard(epoch, worker as u32 + 1, tracing)),
                    SearchStats::default(),
                )
            },
            |(shard, stats), i, pattern| {
                let (occ, s) = match shard {
                    Some(shard) => {
                        if tracing {
                            shard.annotate(&format!("q={i}"));
                        }
                        self.search_recorded(pattern.as_ref(), k, method, shard)
                    }
                    None => self.search(pattern.as_ref(), k, method),
                };
                stats.accumulate(&s);
                occ
            },
            |(shard, stats)| {
                if let Some(shard) = shard {
                    recorder.absorb(&shard.snapshot());
                    if tracing {
                        recorder.absorb_traces(shard.drain());
                    }
                }
                total.lock().unwrap().accumulate(&stats);
            },
        );
        (results, total.into_inner().unwrap())
    }

    /// [`Self::search_batch_par`] with a **per-query** time budget: each
    /// pattern gets its own token stamped as its search starts.
    pub fn search_batch_par_with_deadline<P: AsRef<[u8]> + Sync>(
        &self,
        patterns: &[P],
        k: usize,
        method: Method,
        pool: &ThreadPool,
        per_query: Duration,
    ) -> (Vec<Outcome<Vec<MultiOccurrence>>>, SearchStats) {
        self.search_batch_par_with_deadline_recorded(
            patterns,
            k,
            method,
            pool,
            per_query,
            &NoopRecorder,
        )
    }

    /// [`Self::search_batch_par_with_deadline`] with telemetry, sharded
    /// per worker like [`Self::search_batch_par_recorded`].
    pub fn search_batch_par_with_deadline_recorded<P, R>(
        &self,
        patterns: &[P],
        k: usize,
        method: Method,
        pool: &ThreadPool,
        per_query: Duration,
        recorder: &R,
    ) -> (Vec<Outcome<Vec<MultiOccurrence>>>, SearchStats)
    where
        P: AsRef<[u8]> + Sync,
        R: Recorder + Sync,
    {
        if matches!(method, Method::Cole) {
            self.index.suffix_tree();
        }
        let shard_metrics = recorder.enabled();
        let tracing = recorder.wants_spans();
        let epoch = recorder.trace_epoch();
        let total = std::sync::Mutex::new(SearchStats::default());
        let results = pool.par_map_init(
            patterns,
            |worker| {
                (
                    shard_metrics.then(|| TraceRecorder::shard(epoch, worker as u32 + 1, tracing)),
                    SearchStats::default(),
                )
            },
            |(shard, stats), i, pattern| {
                let token = CancelToken::with_deadline(per_query);
                let outcome = match shard {
                    Some(shard) => {
                        if tracing {
                            shard.annotate(&format!("q={i}"));
                        }
                        self.search_with_deadline_recorded(
                            pattern.as_ref(),
                            k,
                            method,
                            &token,
                            shard,
                        )
                    }
                    None => self.search_with_deadline(pattern.as_ref(), k, method, &token),
                };
                stats.accumulate(&outcome.value().1);
                outcome.map(|(occ, _)| occ)
            },
            |(shard, stats)| {
                if let Some(shard) = shard {
                    recorder.absorb(&shard.snapshot());
                    if tracing {
                        recorder.absorb_traces(shard.drain());
                    }
                }
                total.lock().unwrap().accumulate(&stats);
            },
        );
        (results, total.into_inner().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(s: &[u8]) -> Vec<u8> {
        kmm_dna::encode(s).unwrap()
    }

    fn two_chromosomes() -> MultiIndex {
        MultiIndex::new(vec![
            ("chr1".into(), enc(b"acagacagga")),
            ("chr2".into(), enc(b"ttgacagact")),
        ])
    }

    #[test]
    fn coordinates_translate_per_record() {
        let idx = two_chromosomes();
        let pat = enc(b"gacag");
        let (occ, _) = idx.search(&pat, 0, Method::ALGORITHM_A);
        assert_eq!(
            occ,
            vec![
                MultiOccurrence {
                    record: 0,
                    offset: 3,
                    mismatches: 0
                },
                MultiOccurrence {
                    record: 1,
                    offset: 2,
                    mismatches: 0
                },
            ]
        );
    }

    #[test]
    fn straddling_hits_are_filtered() {
        // "ggatt" occurs exactly across the chr1|chr2 boundary in the
        // concatenation ("...ag|ga" + "tt|ga..."); it exists in neither
        // chromosome and must NOT be reported.
        let idx = two_chromosomes();
        let pat = enc(b"ggatt");
        let (occ, _) = idx.search(&pat, 1, Method::ALGORITHM_A);
        assert!(
            occ.iter()
                .all(|o| o.offset + pat.len() <= idx.record_len(o.record)),
            "straddling occurrence leaked: {occ:?}"
        );
        // Direct check: the concatenated index *does* see the straddling
        // hit at concat position 7, proving the filter is what removes it.
        let raw = idx.inner().search(&pat, 1, Method::ALGORITHM_A);
        assert!(raw.occurrences.iter().any(|o| o.position == 7));
    }

    #[test]
    fn every_record_hit_verifies_locally() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5150);
        let recs: Vec<(String, Vec<u8>)> = (0..4)
            .map(|i| {
                let n = rng.gen_range(50..200);
                (
                    format!("c{i}"),
                    (0..n).map(|_| rng.gen_range(1..=4)).collect(),
                )
            })
            .collect();
        let seqs: Vec<Vec<u8>> = recs.iter().map(|(_, s)| s.clone()).collect();
        let idx = MultiIndex::new(recs);
        for _ in 0..20 {
            let m = rng.gen_range(2..12);
            let pat: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            let k = rng.gen_range(0..3);
            let (occ, _) = idx.search(&pat, k, Method::ALGORITHM_A);
            // Compare against per-record naive scans.
            let mut want = Vec::new();
            for (record, seq) in seqs.iter().enumerate() {
                for o in kmm_classic::naive::find_k_mismatch(seq, &pat, k) {
                    want.push(MultiOccurrence {
                        record,
                        offset: o.position,
                        mismatches: o.mismatches,
                    });
                }
            }
            want.sort();
            let mut got = occ.clone();
            got.sort();
            assert_eq!(got, want, "pat={pat:?} k={k}");
        }
    }

    #[test]
    fn record_metadata() {
        let idx = two_chromosomes();
        assert_eq!(idx.record_count(), 2);
        assert_eq!(idx.names(), &["chr1".to_string(), "chr2".to_string()]);
        assert_eq!(idx.record_len(0), 10);
        assert_eq!(idx.record_len(1), 10);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn rejects_empty_collection() {
        MultiIndex::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn rejects_empty_record() {
        MultiIndex::new(vec![("x".into(), vec![])]);
    }
}
