//! The "Cole" baseline: brute-force k-mismatch search over a suffix tree.
//!
//! In the paper's experiments (Section V) this method builds a suffix tree
//! of the target with the `gsuffix` package and explores it while tracking
//! mismatches. We do the same over our own [`SuffixTree`]: descend edge by
//! edge, counting disagreements with the pattern, abandoning a branch at
//! `k + 1`, and reporting every leaf below a point where the pattern is
//! exhausted.

use kmm_classic::Occurrence;
use kmm_dna::SENTINEL;
use kmm_suffix::SuffixTree;

use crate::stats::SearchStats;

/// Suffix-tree k-mismatch searcher.
#[derive(Debug, Clone, Copy)]
pub struct ColeSearch<'a> {
    tree: &'a SuffixTree,
}

impl<'a> ColeSearch<'a> {
    /// Search over a suffix tree of the *forward* target (sentinel
    /// included in the tree's text).
    pub fn new(tree: &'a SuffixTree) -> Self {
        ColeSearch { tree }
    }

    /// All occurrences of `pattern` with at most `k` mismatches, sorted.
    pub fn search(&self, pattern: &[u8], k: usize) -> (Vec<Occurrence>, SearchStats) {
        let mut stats = SearchStats::default();
        let mut out = Vec::new();
        let m = pattern.len();
        // The tree's text includes the sentinel; windows must fit in the
        // sentinel-free prefix.
        if m == 0 || m + 1 > self.tree.text().len() {
            return (out, stats);
        }
        self.dfs(self.tree.root(), 0, 0, pattern, k, &mut out, &mut stats);
        out.sort_unstable();
        stats.occurrences = out.len() as u64;
        (out, stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        node: u32,
        j: usize,
        mism: usize,
        pattern: &[u8],
        k: usize,
        out: &mut Vec<Occurrence>,
        stats: &mut SearchStats,
    ) {
        stats.nodes_visited += 1;
        let m = pattern.len();
        debug_assert!(j < m);
        let mut any_child = false;
        let children = self.tree.nodes()[node as usize].children;
        for child in children {
            if child == kmm_suffix::NO_NODE {
                continue;
            }
            let label = self.tree.label(child);
            let mut jj = j;
            let mut mm = mism;
            let mut dead = false;
            for &ch in label {
                if jj == m {
                    break;
                }
                if ch == SENTINEL {
                    // The window would run past the end of the target.
                    dead = true;
                    break;
                }
                if ch != pattern[jj] {
                    mm += 1;
                    if mm > k {
                        dead = true;
                        break;
                    }
                }
                jj += 1;
            }
            if dead {
                stats.leaves += 1;
                continue;
            }
            any_child = true;
            if jj == m {
                stats.leaves += 1;
                let nd = &self.tree.nodes()[child as usize];
                for rank in nd.sa_lo..nd.sa_hi {
                    let pos = self.tree.sa()[rank as usize] as usize;
                    debug_assert!(pos + m < self.tree.text().len() + 1);
                    out.push(Occurrence {
                        position: pos,
                        mismatches: mm,
                    });
                }
            } else {
                self.dfs(child, jj, mm, pattern, k, out, stats);
            }
        }
        if !any_child {
            stats.leaves += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmm_classic::naive;

    fn tree(ascii: &[u8]) -> SuffixTree {
        SuffixTree::new(kmm_dna::encode_text(ascii).unwrap(), kmm_dna::SIGMA)
    }

    #[test]
    fn paper_figure3_equivalent() {
        let t = tree(b"acagaca");
        let cole = ColeSearch::new(&t);
        let r = kmm_dna::encode(b"tcaca").unwrap();
        let (occ, _) = cole.search(&r, 2);
        assert_eq!(
            occ.iter().map(|o| o.position).collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn agrees_with_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(202);
        for _ in 0..50 {
            let n = rng.gen_range(1..200);
            let s: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            let t = SuffixTree::new(
                {
                    let mut x = s.clone();
                    x.push(0);
                    x
                },
                kmm_dna::SIGMA,
            );
            let cole = ColeSearch::new(&t);
            let m = rng.gen_range(1..=n.min(15));
            let r: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
            for k in 0..4usize {
                assert_eq!(
                    cole.search(&r, k).0,
                    naive::find_k_mismatch(&s, &r, k),
                    "s={s:?} r={r:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn window_never_overruns_text() {
        // Pattern of the full text length: only position 0 qualifies even
        // with a generous budget.
        let t = tree(b"acgt");
        let cole = ColeSearch::new(&t);
        let r = kmm_dna::encode(b"ttgt").unwrap();
        let (occ, _) = cole.search(&r, 4);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].position, 0);
        assert_eq!(occ[0].mismatches, 2);
    }

    #[test]
    fn empty_and_oversized() {
        let t = tree(b"acg");
        let cole = ColeSearch::new(&t);
        assert!(cole.search(&[], 1).0.is_empty());
        let r = kmm_dna::encode(b"acgt").unwrap();
        assert!(cole.search(&r, 1).0.is_empty());
    }

    #[test]
    fn repetitive_text() {
        let t = tree(&b"ac".repeat(30));
        let cole = ColeSearch::new(&t);
        let r = kmm_dna::encode(b"acac").unwrap();
        let s = kmm_dna::encode(&b"ac".repeat(30)).unwrap();
        for k in 0..3 {
            assert_eq!(cole.search(&r, k).0, naive::find_k_mismatch(&s, &r, k));
        }
    }
}
