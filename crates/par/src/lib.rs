//! # kmm-par
//!
//! Zero-dependency (std-only) data parallelism for the bwt-kmismatch
//! workspace: a scoped [`ThreadPool`], chunked [`ThreadPool::par_map`]
//! over slices, and a shared-counter scheduler that behaves like work
//! stealing for uneven per-item cost — each worker repeatedly claims the
//! next unclaimed chunk from one atomic counter, so a slow item never
//! stalls the rest of the batch behind a static partition.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Every parallel operation returns results in input
//!    order, bit-identical at any thread count; worker-local state is
//!    merged through commutative folds only.
//! 2. **Offline-build safety.** No crates.io dependencies; everything is
//!    `std::thread::scope` + relaxed atomics.
//! 3. **Zero cost at `threads = 1`.** A serial pool runs the closure
//!    inline on the calling thread — no spawns, no atomics, no
//!    allocation beyond the output vector — so the single-threaded path
//!    is exactly the code that ran before this crate existed.
//!
//! ```
//! use kmm_par::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads the host offers (`available_parallelism`,
/// falling back to 1 when the runtime cannot tell).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A scoped thread pool of a fixed logical width.
///
/// The pool is a lightweight handle (just the configured width): workers
/// are spawned per batch via `std::thread::scope`, which lets closures
/// borrow from the caller's stack and guarantees every worker is joined
/// before the call returns — no detached threads, no `'static` bounds,
/// no unsafe lifetime erasure. Worker 0 runs on the calling thread, so a
/// pool of width 1 never spawns at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl Default for ThreadPool {
    /// A pool as wide as the host ([`available_threads`]).
    fn default() -> Self {
        ThreadPool::with_available()
    }
}

impl ThreadPool {
    /// A pool of exactly `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads` is 0 (reject zero at the argv layer; a pool
    /// always has at least the calling thread).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a thread pool needs at least one thread");
        ThreadPool { threads }
    }

    /// A pool as wide as the host ([`available_threads`]).
    pub fn with_available() -> Self {
        ThreadPool::new(available_threads())
    }

    /// The single-threaded pool: every operation runs inline.
    pub fn serial() -> Self {
        ThreadPool::new(1)
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when the pool runs everything inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Run `worker(thread_id)` once per pool thread, in parallel, and
    /// block until all return. Worker 0 executes on the calling thread.
    /// A panicking worker propagates the panic to the caller.
    ///
    /// This is the pool's scoped-execution primitive; the `par_*`
    /// combinators are built on it.
    pub fn broadcast<F>(&self, worker: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 {
            worker(0);
            return;
        }
        std::thread::scope(|s| {
            let worker = &worker;
            let mut handles = Vec::with_capacity(self.threads - 1);
            for t in 1..self.threads {
                handles.push(s.spawn(move || worker(t)));
            }
            worker(0);
            for h in handles {
                // A worker panic surfaces here (scope would also abort
                // on implicit join, but an explicit join keeps the
                // panic payload).
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }

    /// Chunk size heuristic for a shared-counter schedule: small enough
    /// that uneven items rebalance (≥ ~4 claims per worker), large
    /// enough that the counter is not contended per item.
    fn chunk_size(&self, len: usize) -> usize {
        (len / (self.threads * 4)).clamp(1, 64)
    }

    /// Parallel map over a slice, returning results **in input order**
    /// regardless of thread count. `f` receives `(index, &item)`.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.par_map_init(items, |_| (), |_, i, t| f(i, t), |_| ())
    }

    /// [`Self::par_map`] with worker-local state: `init(worker_id)` runs
    /// once per participating worker (id 0 on the serial fast path), `f(&mut
    /// state, index, &item)` maps each item, and `drain(state)` consumes
    /// the worker's state after its last item (use it to merge telemetry
    /// shards or statistics — keep the merge commutative so results stay
    /// deterministic). The worker id lets shards tag their output with
    /// the thread that produced it (e.g. trace spans).
    ///
    /// Items are claimed in chunks from one shared atomic counter, so a
    /// worker stuck on an expensive item does not strand the tail of
    /// the batch. Output order is input order at any thread count.
    pub fn par_map_init<T, U, S, I, F, D>(&self, items: &[T], init: I, f: F, drain: D) -> Vec<U>
    where
        T: Sync,
        U: Send,
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, usize, &T) -> U + Sync,
        D: Fn(S) + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            let mut state = init(0);
            let out = items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut state, i, t))
                .collect();
            drain(state);
            return out;
        }
        let chunk = self.chunk_size(items.len());
        let next = AtomicUsize::new(0);
        // Workers emit (start, results) runs; runs are re-assembled into
        // input order afterwards. This keeps the scheduler safe Rust —
        // no shared mutable output buffer — at the cost of one move per
        // result, which is noise next to a search query.
        let parts: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::new());
        self.broadcast(|tid| {
            let mut state = init(tid);
            let mut local: Vec<(usize, Vec<U>)> = Vec::new();
            loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= items.len() {
                    break;
                }
                let end = (start + chunk).min(items.len());
                let mut run = Vec::with_capacity(end - start);
                for (i, item) in items[start..end].iter().enumerate() {
                    run.push(f(&mut state, start + i, item));
                }
                local.push((start, run));
            }
            drain(state);
            parts.lock().unwrap().append(&mut local);
        });
        let mut parts = parts.into_inner().unwrap();
        parts.sort_unstable_by_key(|&(start, _)| start);
        let mut out = Vec::with_capacity(items.len());
        for (start, run) in parts {
            debug_assert_eq!(start, out.len(), "non-contiguous run re-assembly");
            out.extend(run);
        }
        assert_eq!(out.len(), items.len());
        out
    }
}

/// Split `0..len` into contiguous spans whose starts are multiples of
/// `align` — the shape index-construction passes need (word- and
/// checkpoint-aligned blocks). Produces at most `pieces` spans (fewer
/// when `len` is small), covering `0..len` exactly, in order.
///
/// # Panics
/// Panics if `align` is 0 or `pieces` is 0.
pub fn aligned_spans(len: usize, pieces: usize, align: usize) -> Vec<Range<usize>> {
    assert!(align > 0, "alignment must be positive");
    assert!(pieces > 0, "at least one piece required");
    if len == 0 {
        return Vec::new();
    }
    // Ceil-divide the aligned-unit count so every span is a whole number
    // of alignment units (the last span absorbs the remainder of len).
    let units = len.div_ceil(align);
    let pieces = pieces.min(units);
    let units_per_piece = units.div_ceil(pieces);
    let span = units_per_piece * align;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0usize;
    while start < len {
        let end = (start + span).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn available_is_positive() {
        assert!(available_threads() >= 1);
        assert_eq!(ThreadPool::default().threads(), available_threads());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_width_pool_is_rejected() {
        ThreadPool::new(0);
    }

    #[test]
    fn par_map_matches_serial_at_every_width() {
        let items: Vec<u64> = (0..997).collect();
        let want: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1usize, 2, 3, 8, 32] {
            let pool = ThreadPool::new(threads);
            let got = pool.par_map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_tiny_and_empty_inputs() {
        let pool = ThreadPool::new(8);
        assert_eq!(pool.par_map::<u8, u8, _>(&[], |_, &x| x), Vec::<u8>::new());
        assert_eq!(pool.par_map(&[9u8], |i, &x| (i as u8, x)), vec![(0, 9)]);
    }

    #[test]
    fn par_map_rebalances_uneven_work() {
        // One item 1000x more expensive than the rest: the shared
        // counter lets other workers drain the tail. (Correctness, not
        // timing, is asserted — single-core CI cannot observe speedup.)
        let items: Vec<u32> = (0..256).collect();
        let pool = ThreadPool::new(4);
        let got = pool.par_map(&items, |_, &x| {
            let spins = if x == 0 { 100_000 } else { 100 };
            (0..spins).fold(x as u64, |a, b| a.wrapping_add(b))
        });
        let want: Vec<u64> = items
            .iter()
            .map(|&x| {
                let spins = if x == 0 { 100_000u64 } else { 100 };
                (0..spins).fold(x as u64, |a, b| a.wrapping_add(b))
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_init_drains_each_workers_state_once() {
        let items: Vec<u32> = (0..500).collect();
        for threads in [1usize, 4] {
            let pool = ThreadPool::new(threads);
            let drained = AtomicUsize::new(0);
            let total = AtomicU64::new(0);
            let out = pool.par_map_init(
                &items,
                |_| 0u64,
                |local, _, &x| {
                    *local += x as u64;
                    x
                },
                |local| {
                    drained.fetch_add(1, Ordering::Relaxed);
                    total.fetch_add(local, Ordering::Relaxed);
                },
            );
            assert_eq!(out, items, "threads={threads}");
            // Worker-local sums always merge to the serial total, and
            // every participating worker drains exactly once.
            assert_eq!(
                total.load(Ordering::Relaxed),
                items.iter().map(|&x| x as u64).sum()
            );
            assert!(drained.load(Ordering::Relaxed) >= 1);
            assert!(drained.load(Ordering::Relaxed) <= threads);
        }
    }

    #[test]
    fn broadcast_runs_every_worker() {
        let pool = ThreadPool::new(6);
        let seen = Mutex::new(vec![false; 6]);
        pool.broadcast(|tid| {
            seen.lock().unwrap()[tid] = true;
        });
        assert!(seen.lock().unwrap().iter().all(|&b| b));
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(4);
        let r = std::panic::catch_unwind(|| {
            pool.par_map(&[1u8, 2, 3, 4, 5, 6, 7, 8], |_, &x| {
                if x == 5 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn aligned_spans_cover_exactly_and_stay_aligned() {
        for (len, pieces, align) in [
            (0usize, 4usize, 32usize),
            (1, 4, 32),
            (31, 4, 32),
            (32, 4, 32),
            (1000, 3, 64),
            (1_048_577, 8, 128),
            (100, 200, 4),
        ] {
            let spans = aligned_spans(len, pieces, align);
            if len == 0 {
                assert!(spans.is_empty());
                continue;
            }
            assert!(spans.len() <= pieces);
            assert_eq!(spans.first().unwrap().start, 0);
            assert_eq!(spans.last().unwrap().end, len);
            for w in spans.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap between spans");
            }
            for s in &spans {
                assert!(s.start % align == 0, "span start {} unaligned", s.start);
                assert!(!s.is_empty());
            }
        }
    }
}
