//! The FM-index: backward search over a BWT with rankall arrays.
//!
//! This is the index machinery of Section III: the `F` column kept as
//! `σ + 1` intervals (the `C` array), the `L` column as a [`RankAll`]
//! structure, the `search(z, L_{<x,[α,β]>})` primitive realised through two
//! `occ` lookups, and `locate` through a sampled suffix array.
//!
//! The index is direction-agnostic: it indexes whatever text it is given.
//! The k-mismatch layer (`kmm-core`) builds it over the *reverse* of the
//! target so that backward search consumes patterns left-to-right
//! (paper Section IV, Definition 1).

use std::sync::Arc;

use kmm_dna::{SENTINEL, SIGMA};
use kmm_par::ThreadPool;
use kmm_suffix::sais::suffix_array;
use kmm_telemetry::{NoopRecorder, Phase, Recorder};

use crate::bwt::bwt_from_sa_with;
use crate::interval::{Interval, Pair};
use crate::limits::{check_text_len, TextTooLarge};
use crate::mmap::{IndexBytes, MmapRegion, U32Store, U64Store};
use crate::occ::RankAll;
use crate::sampled_sa::SampledSuffixArray;
use crate::serialize::{SectionEntry, SectionPayload, SectionTable, SerializeError};

/// Build-time knobs for the index.
#[derive(Debug, Clone, Copy)]
pub struct FmBuildConfig {
    /// Rankall checkpoint rate (positions between checkpoint rows; multiple
    /// of 4). The paper's layout is 4; 64 is a good default on modern CPUs.
    pub occ_rate: usize,
    /// Suffix-array sampling rate for `locate` (1 = store the full SA).
    pub sa_rate: usize,
    /// Worker threads for the data-parallel construction passes (BWT
    /// gather, rankall packing/checkpoints, sampled-SA extraction). The
    /// built index is bit-identical at any value; 1 (the default) keeps
    /// library builds single-threaded unless a caller opts in.
    pub threads: usize,
}

impl Default for FmBuildConfig {
    fn default() -> Self {
        FmBuildConfig {
            occ_rate: 64,
            sa_rate: 16,
            threads: 1,
        }
    }
}

impl FmBuildConfig {
    /// The layout used in the paper's experiments: rankall row every 4
    /// elements.
    pub fn paper() -> Self {
        FmBuildConfig {
            occ_rate: 4,
            sa_rate: 16,
            ..Self::default()
        }
    }

    /// Same layout, building on `threads` workers (0 is treated as 1).
    pub fn with_threads(self, threads: usize) -> Self {
        FmBuildConfig { threads, ..self }
    }

    /// The thread pool the construction passes run on.
    fn pool(&self) -> ThreadPool {
        ThreadPool::new(self.threads.max(1))
    }
}

/// An FM-index over one sentinel-terminated encoded text.
#[derive(Debug, Clone)]
pub struct FmIndex {
    l: RankAll,
    /// `c[x]` = number of symbols smaller than `x`; `c[SIGMA]` = n.
    c: [u32; SIGMA + 1],
    ssa: SampledSuffixArray,
}

impl FmIndex {
    /// Index `text` (must end with the unique sentinel 0).
    pub fn new(text: &[u8], config: FmBuildConfig) -> Self {
        Self::new_recorded(text, config, &NoopRecorder)
    }

    /// [`Self::new`] with construction phases timed on `recorder`
    /// (`index.sa`, `index.bwt`, `index.rankall`, `index.sampled_sa`).
    pub fn new_recorded<R: Recorder>(text: &[u8], config: FmBuildConfig, recorder: &R) -> Self {
        match Self::try_new_recorded(text, config, recorder) {
            Ok(fm) => fm,
            Err(err) => panic!("{err}"),
        }
    }

    /// [`Self::new`], rejecting texts too long for the `u32` index layout
    /// instead of panicking.
    pub fn try_new(text: &[u8], config: FmBuildConfig) -> Result<Self, TextTooLarge> {
        Self::try_new_recorded(text, config, &NoopRecorder)
    }

    /// [`Self::try_new`] with construction phases timed on `recorder`.
    pub fn try_new_recorded<R: Recorder>(
        text: &[u8],
        config: FmBuildConfig,
        recorder: &R,
    ) -> Result<Self, TextTooLarge> {
        check_text_len(text.len())?;
        let sa = {
            let _span = recorder.span(Phase::IndexSa);
            suffix_array(text, SIGMA)
        };
        Self::try_from_sa_recorded(text, &sa, config, recorder)
    }

    /// Index `text` given its precomputed suffix array.
    pub fn from_sa(text: &[u8], sa: &[u32], config: FmBuildConfig) -> Self {
        Self::from_sa_recorded(text, sa, config, &NoopRecorder)
    }

    /// [`Self::from_sa`] with construction phases timed on `recorder`.
    pub fn from_sa_recorded<R: Recorder>(
        text: &[u8],
        sa: &[u32],
        config: FmBuildConfig,
        recorder: &R,
    ) -> Self {
        match Self::try_from_sa_recorded(text, sa, config, recorder) {
            Ok(fm) => fm,
            Err(err) => panic!("{err}"),
        }
    }

    /// [`Self::from_sa`], rejecting oversized texts instead of panicking.
    /// The `config.threads` pool drives every data-parallel pass; the
    /// result is bit-identical at any thread count.
    pub fn try_from_sa_recorded<R: Recorder>(
        text: &[u8],
        sa: &[u32],
        config: FmBuildConfig,
        recorder: &R,
    ) -> Result<Self, TextTooLarge> {
        check_text_len(text.len())?;
        let pool = config.pool();
        let l = {
            let _span = recorder.span(Phase::IndexBwt);
            bwt_from_sa_with(text, sa, &pool)
        };
        let (rank, c) = {
            let _span = recorder.span(Phase::IndexRankall);
            let rank = RankAll::try_new_with(&l, config.occ_rate, &pool)?;
            // C is the exclusive prefix sum of the symbol totals the
            // rankall build already counted.
            let mut c = [0u32; SIGMA + 1];
            for i in 0..SIGMA {
                c[i + 1] = c[i] + rank.count(i as u8);
            }
            (rank, c)
        };
        let ssa = {
            let _span = recorder.span(Phase::IndexSampledSa);
            SampledSuffixArray::try_new_with(sa, config.sa_rate, &pool)?
        };
        Ok(FmIndex { l: rank, c, ssa })
    }

    /// Text length, sentinel included.
    #[inline]
    pub fn len(&self) -> usize {
        self.l.len()
    }

    /// Always false after construction (texts contain the sentinel).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.l.is_empty()
    }

    /// `C[x]`: the first F-column row of symbol `x`'s block.
    #[inline]
    pub fn c(&self, sym: u8) -> u32 {
        self.c[sym as usize]
    }

    /// The F-block of `sym` as an SA interval (paper's `F_x`).
    #[inline]
    pub fn f_block(&self, sym: u8) -> Interval {
        Interval::new(self.c[sym as usize], self.c[sym as usize + 1])
    }

    /// The interval covering every row (the virtual root `<-,[1,n]>`).
    #[inline]
    pub fn whole(&self) -> Interval {
        Interval::new(0, self.len() as u32)
    }

    /// The symbol `L[row]`.
    #[inline]
    pub fn l_symbol(&self, row: u32) -> u8 {
        self.l.symbol(row as usize)
    }

    /// One backward-search step: the paper's
    /// `search(z, L_{<x,[α,β]>})` — narrow `iv` to the rows whose suffix is
    /// preceded by `z`. Empty result means `z` does not occur in the range.
    #[inline]
    pub fn extend_backward(&self, iv: Interval, z: u8) -> Interval {
        debug_assert!(z != SENTINEL, "patterns never contain the sentinel");
        let lo = self.c[z as usize] + self.l.occ(z, iv.lo as usize);
        let hi = self.c[z as usize] + self.l.occ(z, iv.hi as usize);
        Interval::new(lo, hi)
    }

    /// Fused 4-way backward step: extend `iv` by every base at once.
    ///
    /// `extend_all(iv)[z - 1] == extend_backward(iv, z)` for each base
    /// code `z`, but the four extensions share the interval's two rank
    /// block visits (one per boundary) instead of performing eight
    /// independent `occ` lookups — the cache-interleaved analogue of
    /// BWA's `bwt_2occ4`. Callers iterating children should skip empty
    /// entries before any per-child work.
    #[inline]
    pub fn extend_all(&self, iv: Interval) -> [Interval; 4] {
        let (lo, hi) = self.l.occ_all_pair(iv.lo as usize, iv.hi as usize);
        std::array::from_fn(|j| {
            let c = self.c[j + 1];
            Interval::new(c + lo[j], c + hi[j])
        })
    }

    /// Hint the CPU to pull the rank blocks covering `iv`'s boundaries
    /// into cache ahead of an [`Self::extend_all`]/[`Self::extend_backward`]
    /// on the same interval. Purely advisory: free of side effects, cost
    /// accounting and (off x86-64) of any work at all. Searches that
    /// know the *next* LF target while still processing the current one
    /// hide the dependent-load latency of the block fetch this way.
    #[inline]
    pub fn prefetch_interval(&self, iv: Interval) {
        self.l.prefetch(iv.lo as usize);
        self.l.prefetch(iv.hi as usize);
    }

    /// Targeted LF step: the row of the suffix obtained by prepending
    /// `sym`, assuming `L[row] == sym` (i.e. one `occ` lookup instead of
    /// the two of a full interval extension). This is the singleton-
    /// interval fast path used by the tree searches: a 1-row interval has
    /// exactly one non-empty extension, by the symbol `L[row]`.
    #[inline]
    pub fn lf_with(&self, row: u32, sym: u8) -> u32 {
        debug_assert_eq!(self.l.symbol(row as usize), sym);
        self.c[sym as usize] + self.l.occ(sym, row as usize)
    }

    /// Bitmask (bit `sym - 1`) of the base symbols occurring in
    /// `L[iv.lo .. iv.hi)`; the sentinel is ignored. Costs `O(iv.len())`
    /// symbol reads — only profitable for small intervals, where it lets a
    /// search skip the rank lookups of absent symbols.
    #[inline]
    pub fn symbol_mask(&self, iv: Interval) -> u8 {
        let mut mask = 0u8;
        for row in iv.rows() {
            let sym = self.l.symbol(row as usize);
            if sym != SENTINEL {
                mask |= 1 << (sym - 1);
            }
        }
        mask
    }

    /// Exact backward search of `pattern` (processed right to left).
    pub fn backward_search(&self, pattern: &[u8]) -> Interval {
        let mut iv = self.whole();
        for &z in pattern.iter().rev() {
            iv = self.extend_backward(iv, z);
            if iv.is_empty() {
                return Interval::empty();
            }
        }
        iv
    }

    /// Number of exact occurrences of `pattern` in the indexed text.
    pub fn count(&self, pattern: &[u8]) -> u32 {
        self.backward_search(pattern).len()
    }

    /// LF mapping: the row of the suffix that starts one position earlier.
    #[inline]
    pub fn lf(&self, row: u32) -> u32 {
        let sym = self.l.symbol(row as usize);
        if sym == SENTINEL {
            0
        } else {
            self.c[sym as usize] + self.l.occ(sym, row as usize)
        }
    }

    /// `SA[row]` resolved through the sampled suffix array.
    #[inline]
    pub fn sa_value(&self, row: u32) -> u32 {
        self.ssa
            .resolve(row as usize, |r| self.lf(r as u32) as usize)
    }

    /// Start positions (in the *indexed* text) for every row of `iv`,
    /// sorted ascending.
    pub fn locate(&self, iv: Interval) -> Vec<u32> {
        let mut out: Vec<u32> = iv.rows().map(|r| self.sa_value(r)).collect();
        out.sort_unstable();
        out
    }

    /// Paper-style pair view of an interval known to lie within `sym`'s
    /// F-block.
    pub fn pair(&self, sym: u8, iv: Interval) -> Pair {
        Pair::from_interval(sym, self.c(sym), iv)
    }

    /// Heap bytes used by the index (rankall + SA samples), for Table-1
    /// style reporting.
    pub fn heap_bytes(&self) -> usize {
        self.l.heap_bytes() + self.ssa.heap_bytes()
    }

    /// Bytes of 2-bit packed `L` payload inside the rank structure.
    pub fn rank_payload_bytes(&self) -> usize {
        self.l.payload_bytes()
    }

    /// Bytes of per-block checkpoint headers inside the rank structure —
    /// the price of O(1) rank on top of the packed text.
    pub fn rank_overhead_bytes(&self) -> usize {
        self.l.overhead_bytes()
    }

    /// Bytes of the sampled suffix array (the `locate` side of the index).
    pub fn sampled_sa_bytes(&self) -> usize {
        self.ssa.heap_bytes()
    }

    /// The rankall checkpoint rate the index was built (or loaded) with
    /// — what a matching mirror structure should use.
    pub fn rank_rate(&self) -> usize {
        self.l.rate()
    }

    /// Serialize the whole index as a v3 section-tabled container:
    /// magic, version, checksummed offset table, then each structure as
    /// a 64-byte-aligned little-endian section loadable by reference.
    pub fn save<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        self.save_impl(writer, None)
    }

    /// [`Self::save`] plus the bidirectional mirror rank structure as
    /// two extra optional sections ([`Self::SEC_MIRROR_META`],
    /// [`Self::SEC_MIRROR_RANK`]). The format version is unchanged:
    /// readers that predate the mirror sections ignore the unknown ids,
    /// and [`Self::load_with_mirror`] on a file written by plain
    /// [`Self::save`] reports the mirror as absent. The mirror must
    /// cover the same text (same length and symbol multiset — it is the
    /// rankall of the reversed text's BWT, see `crate::bi`), so no
    /// per-mirror totals are stored.
    pub fn save_with_mirror<W: std::io::Write>(
        &self,
        mirror: &RankAll,
        writer: W,
    ) -> std::io::Result<()> {
        assert_eq!(
            mirror.len(),
            self.l.len(),
            "mirror must cover the same text"
        );
        debug_assert!((0..SIGMA as u8).all(|sym| mirror.count(sym) == self.l.count(sym)));
        self.save_impl(writer, Some(mirror))
    }

    fn save_impl<W: std::io::Write>(
        &self,
        writer: W,
        mirror: Option<&RankAll>,
    ) -> std::io::Result<()> {
        let mut meta = Vec::with_capacity(Self::META_BYTES);
        for v in [
            self.l.len() as u64,
            self.l.rate() as u64,
            self.l.dollar_pos() as u64,
            self.ssa.rate() as u64,
        ] {
            meta.extend_from_slice(&v.to_le_bytes());
        }
        for sym in 0..SIGMA as u8 {
            meta.extend_from_slice(&self.l.count(sym).to_le_bytes());
        }
        let mut sections = vec![
            (Self::SEC_META, SectionPayload::Bytes(&meta)),
            (Self::SEC_CTAB, SectionPayload::U32s(&self.c)),
            (
                Self::SEC_RANK_BLOCKS,
                SectionPayload::U64s(self.l.block_words_raw()),
            ),
            (
                Self::SEC_SSA_MARKS,
                SectionPayload::U64s(self.ssa.mark_words_raw()),
            ),
            (
                Self::SEC_SSA_PREFIX,
                SectionPayload::U32s(self.ssa.prefix_raw()),
            ),
            (
                Self::SEC_SSA_SAMPLES,
                SectionPayload::U32s(self.ssa.samples_raw()),
            ),
        ];
        let mut mirror_meta = Vec::with_capacity(Self::MIRROR_META_BYTES);
        if let Some(m) = mirror {
            for v in [m.rate() as u64, m.dollar_pos() as u64] {
                mirror_meta.extend_from_slice(&v.to_le_bytes());
            }
            sections.push((Self::SEC_MIRROR_META, SectionPayload::Bytes(&mirror_meta)));
            sections.push((
                Self::SEC_MIRROR_RANK,
                SectionPayload::U64s(m.block_words_raw()),
            ));
        }
        crate::serialize::write_container(writer, Self::MAGIC, Self::FORMAT_VERSION, &sections)
    }

    /// Serialize in the legacy v2 stream format (magic, version, raw
    /// structures, trailing checksum). Retained only so tests and the
    /// `kmm index upgrade` round-trip can fabricate old files.
    #[doc(hidden)]
    pub fn save_legacy_v2<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        let mut w = crate::serialize::SerWriter::new(writer);
        w.bytes(Self::MAGIC)?;
        w.u32(Self::LEGACY_FORMAT_VERSION)?;
        for &c in &self.c {
            w.u32(c)?;
        }
        self.l.write_to(&mut w)?;
        self.ssa.write_to(&mut w)?;
        w.finish()
    }

    /// [`Self::load`] timed as the `index.load` phase on `recorder`.
    pub fn load_recorded<Rd: std::io::Read, R: Recorder>(
        reader: Rd,
        recorder: &R,
    ) -> Result<Self, crate::serialize::SerializeError> {
        let _span = recorder.span(Phase::IndexLoad);
        Self::load(reader)
    }

    /// Load a v3 index previously written by [`Self::save`], verifying
    /// the magic tag, version and every section checksum. The stream is
    /// read once into an owned image; the rank/SA structures then borrow
    /// that image in place (no per-structure copies).
    pub fn load<R: std::io::Read>(mut reader: R) -> Result<Self, SerializeError> {
        let base = Arc::new(IndexBytes::from_reader(&mut reader)?);
        Ok(Self::from_image(base, true)?.0)
    }

    /// [`Self::load`], additionally recovering the bidirectional mirror
    /// rank structure when the container carries the optional mirror
    /// sections (files written by [`Self::save_with_mirror`]). Plain
    /// [`Self::save`] files load fine with `None`.
    pub fn load_with_mirror<R: std::io::Read>(
        mut reader: R,
    ) -> Result<(Self, Option<RankAll>), SerializeError> {
        let base = Arc::new(IndexBytes::from_reader(&mut reader)?);
        Self::from_image(base, true)
    }

    /// Load a v3 index from an in-memory image, verifying checksums.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SerializeError> {
        Ok(Self::from_image(Arc::new(IndexBytes::from_bytes(bytes)), true)?.0)
    }

    /// Open an index file, preferring a zero-copy `mmap` when asked.
    ///
    /// With `prefer_mmap`, the file is mapped read-only and the index
    /// borrows the mapping directly: only the header, section table and
    /// small metadata sections are touched, so open cost is independent
    /// of index size. Section *table* integrity is still fully enforced
    /// (structural bounds + header checksum), but the bulk payload
    /// checksums are **not** streamed — see DESIGN.md for the trade-off.
    /// When mapping is unavailable (non-Linux, empty file) or
    /// `prefer_mmap` is false, the file is read into memory with full
    /// checksum verification, and the structures borrow the owned image.
    pub fn open_path(
        path: &std::path::Path,
        prefer_mmap: bool,
    ) -> Result<(Self, OpenStats), SerializeError> {
        let (fm, _, stats) = Self::open_path_with_mirror(path, prefer_mmap)?;
        Ok((fm, stats))
    }

    /// [`Self::open_path`], additionally recovering the bidirectional
    /// mirror rank structure when the file carries the optional mirror
    /// sections. The mirror borrows the same image/mapping as the
    /// primary, so a zero-copy open stays O(1).
    pub fn open_path_with_mirror(
        path: &std::path::Path,
        prefer_mmap: bool,
    ) -> Result<(Self, Option<RankAll>, OpenStats), SerializeError> {
        let file = std::fs::File::open(path)?;
        if prefer_mmap {
            if let Ok(region) = MmapRegion::map_file(&file) {
                let base = Arc::new(IndexBytes::Mapped(region));
                let total = base.len() as u64;
                let (fm, mirror) = Self::from_image(base, false)?;
                return Ok((
                    fm,
                    mirror,
                    OpenStats {
                        mode: LoadMode::Mapped,
                        file_bytes: total,
                        io_bytes: 0,
                        bytes_mapped: total,
                    },
                ));
            }
        }
        let mut reader = std::io::BufReader::new(file);
        let base = Arc::new(IndexBytes::from_reader(&mut reader)?);
        let total = base.len() as u64;
        let (fm, mirror) = Self::from_image(base, true)?;
        Ok((
            fm,
            mirror,
            OpenStats {
                mode: LoadMode::Read,
                file_bytes: total,
                io_bytes: total,
                bytes_mapped: 0,
            },
        ))
    }

    /// Parse a v3 container image shared behind `base`. The returned
    /// index borrows `base` wherever alignment permits (always, for
    /// files written by [`Self::save`]).
    ///
    /// `verify_checksums` selects the integrity regime: `true` streams
    /// every section's FNV checksum (read path), `false` skips payload
    /// checksums but instead validates the SA rank directory against
    /// the mark bitmap (mmap path) so no well-typed access can loop or
    /// panic on a structurally sane file.
    fn from_image(
        base: Arc<IndexBytes>,
        verify_checksums: bool,
    ) -> Result<(Self, Option<RankAll>), SerializeError> {
        let bytes = base.as_bytes();
        if bytes.len() < 8 || bytes[..8] != Self::MAGIC[..] {
            return Err(SerializeError::BadMagic);
        }
        if bytes.len() < 12 {
            return Err(SerializeError::Malformed("container header"));
        }
        // Dispatch on the version *before* the table parse so legacy
        // files fail with the migration hint, not a checksum error.
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != Self::FORMAT_VERSION {
            return Err(SerializeError::BadVersion {
                found: version,
                supported: Self::SUPPORTED_VERSIONS,
            });
        }
        let table = SectionTable::parse(bytes, Self::MAGIC)?;
        if verify_checksums {
            for entry in &table.entries {
                entry.verify(bytes)?;
            }
        }
        let meta = table.section(Self::SEC_META)?;
        if meta.len != Self::META_BYTES {
            return Err(SerializeError::Malformed("meta section"));
        }
        let m = meta.bytes(bytes);
        let read_u64 = |off: usize| u64::from_le_bytes(m[off..off + 8].try_into().unwrap());
        let n = read_u64(0) as usize;
        let occ_rate = read_u64(8) as usize;
        let dollar_pos = read_u64(16) as usize;
        let sa_rate = read_u64(24) as usize;
        let mut totals = [0u32; SIGMA];
        for (i, t) in totals.iter_mut().enumerate() {
            *t = u32::from_le_bytes(m[32 + 4 * i..36 + 4 * i].try_into().unwrap());
        }
        let ctab = table.section(Self::SEC_CTAB)?;
        if ctab.elems(4)? != SIGMA + 1 {
            return Err(SerializeError::Malformed("C array length"));
        }
        let cb = ctab.bytes(bytes);
        let mut c = [0u32; SIGMA + 1];
        for (i, slot) in c.iter_mut().enumerate() {
            *slot = u32::from_le_bytes(cb[4 * i..4 * i + 4].try_into().unwrap());
        }
        if c[SIGMA] as usize != n {
            return Err(SerializeError::Malformed("C array total"));
        }
        for i in 0..SIGMA {
            if c[i + 1].checked_sub(c[i]) != Some(totals[i]) {
                return Err(SerializeError::Malformed("C array total"));
            }
        }
        // Borrow each bulk section from the shared image; `copied` is
        // the big-endian (or pathological-alignment) fallback and keeps
        // the same validation story.
        let u64_store = |entry: &SectionEntry| -> Result<U64Store, SerializeError> {
            let elems = entry.elems(8)?;
            U64Store::borrowed(Arc::clone(&base), entry.offset, elems)
                .or_else(|| U64Store::copied(&base, entry.offset, elems))
                .ok_or(SerializeError::Malformed("section bounds"))
        };
        let u32_store = |entry: &SectionEntry| -> Result<U32Store, SerializeError> {
            let elems = entry.elems(4)?;
            U32Store::borrowed(Arc::clone(&base), entry.offset, elems)
                .or_else(|| U32Store::copied(&base, entry.offset, elems))
                .ok_or(SerializeError::Malformed("section bounds"))
        };
        let l = RankAll::from_store(
            u64_store(table.section(Self::SEC_RANK_BLOCKS)?)?,
            occ_rate,
            dollar_pos,
            n,
            totals,
        )?;
        let ssa = SampledSuffixArray::from_store(
            n,
            sa_rate,
            u64_store(table.section(Self::SEC_SSA_MARKS)?)?,
            u32_store(table.section(Self::SEC_SSA_PREFIX)?)?,
            u32_store(table.section(Self::SEC_SSA_SAMPLES)?)?,
            !verify_checksums,
        )?;
        debug_assert_eq!(ssa.marked_len(), n);
        // Optional bidirectional mirror sections: absence means the
        // file predates (or was saved without) bidirectional support —
        // the version-gating mechanism for this feature.
        let mirror = match (
            table.find(Self::SEC_MIRROR_META),
            table.find(Self::SEC_MIRROR_RANK),
        ) {
            (Some(mmeta), Some(mrank)) => {
                if mmeta.len != Self::MIRROR_META_BYTES {
                    return Err(SerializeError::Malformed("mirror meta section"));
                }
                let mm = mmeta.bytes(bytes);
                let mread = |off: usize| u64::from_le_bytes(mm[off..off + 8].try_into().unwrap());
                let mirror_rate = mread(0) as usize;
                let mirror_dollar = mread(8) as usize;
                // The mirror covers the same text, so it shares the
                // primary's length and symbol totals.
                Some(RankAll::from_store(
                    u64_store(mrank)?,
                    mirror_rate,
                    mirror_dollar,
                    n,
                    totals,
                )?)
            }
            _ => None,
        };
        Ok((FmIndex { l, c, ssa }, mirror))
    }

    /// Load a legacy v2 stream (the pre-container format). This is the
    /// reader behind `kmm index upgrade`; [`Self::load`] refuses v2
    /// files with the migration hint instead.
    pub fn load_legacy_v2<R: std::io::Read>(reader: R) -> Result<Self, SerializeError> {
        let mut r = crate::serialize::SerReader::new(reader);
        let mut magic = [0u8; 8];
        r.bytes(&mut magic)?;
        if &magic != Self::MAGIC {
            return Err(SerializeError::BadMagic);
        }
        let version = r.u32()?;
        if version != Self::LEGACY_FORMAT_VERSION {
            return Err(SerializeError::BadVersion {
                found: version,
                supported: "v2 (this is the `kmm index upgrade` reader)",
            });
        }
        let mut c = [0u32; SIGMA + 1];
        for slot in c.iter_mut() {
            *slot = r.u32()?;
        }
        let l = RankAll::read_from(&mut r)?;
        let ssa = SampledSuffixArray::read_from(&mut r)?;
        r.finish()?;
        if c[SIGMA] as usize != l.len() {
            return Err(SerializeError::Malformed("C array total"));
        }
        Ok(FmIndex { l, c, ssa })
    }

    /// True when the index borrows a loaded/mapped file image instead of
    /// owning its arrays (i.e. it came from a zero-copy open).
    pub fn is_borrowed(&self) -> bool {
        self.l.is_borrowed() || self.ssa.is_borrowed()
    }

    /// File magic tag for serialized indexes.
    pub const MAGIC: &'static [u8; 8] = b"KMMFMIDX";
    /// Current serialization format version. Version 3 is the aligned
    /// section-tabled container (zero-copy loadable); version 2 was the
    /// interleaved-rank stream format, convertible with
    /// `kmm index upgrade`; version-1 files must be rebuilt with
    /// `kmm index`.
    pub const FORMAT_VERSION: u32 = 3;
    /// The stream format written before the v3 container.
    pub const LEGACY_FORMAT_VERSION: u32 = 2;
    /// What [`Self::load`] accepts, phrased for the version error.
    pub const SUPPORTED_VERSIONS: &'static str =
        "v3 (v2 files: run `kmm index upgrade`; v1 files: rebuild with `kmm index`)";

    /// v3 section ids (fixed; new sections append new ids).
    pub const SEC_META: u32 = 1;
    /// C-table section id (`σ + 1` little-endian `u32`s).
    pub const SEC_CTAB: u32 = 2;
    /// Interleaved rank-block words section id.
    pub const SEC_RANK_BLOCKS: u32 = 3;
    /// Sampled-SA mark bitmap section id.
    pub const SEC_SSA_MARKS: u32 = 4;
    /// Sampled-SA rank-directory prefix section id (stored, not
    /// rebuilt, so a zero-copy open needs no O(n) pass).
    pub const SEC_SSA_PREFIX: u32 = 5;
    /// Sampled-SA retained-values section id.
    pub const SEC_SSA_SAMPLES: u32 = 6;
    /// Optional bidirectional-mirror metadata section id (two `u64`
    /// scalars: mirror rank rate, mirror sentinel row). Present only in
    /// files written by [`Self::save_with_mirror`].
    pub const SEC_MIRROR_META: u32 = 7;
    /// Optional bidirectional-mirror interleaved rank-block words
    /// section id.
    pub const SEC_MIRROR_RANK: u32 = 8;
    /// Fixed byte length of the META section: four `u64` scalars
    /// (length, rank rate, sentinel row, SA rate) plus `σ` `u32` symbol
    /// totals.
    pub const META_BYTES: usize = 4 * 8 + SIGMA * 4;
    /// Fixed byte length of the optional mirror meta section.
    pub const MIRROR_META_BYTES: usize = 2 * 8;

    /// Reconstruct the indexed text (sentinel included) by LF-walking.
    /// O(n · occ); used by tests and the index explorer example.
    pub fn reconstruct_text(&self) -> Vec<u8> {
        let n = self.len();
        let mut out = vec![0u8; n];
        let mut row = 0u32;
        for i in (0..n - 1).rev() {
            let sym = self.l.symbol(row as usize);
            out[i] = sym;
            row = self.lf(row);
        }
        out[n - 1] = SENTINEL;
        out
    }
}

/// How [`FmIndex::open_path`] got the index bytes into the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Whole file read into an owned image, every checksum verified.
    Read,
    /// File mapped read-only; structures borrow the mapping.
    Mapped,
}

impl LoadMode {
    /// Stable telemetry label.
    pub fn name(self) -> &'static str {
        match self {
            LoadMode::Read => "read",
            LoadMode::Mapped => "mmap",
        }
    }

    /// Stable numeric code for counters (read = 1, mmap = 2).
    pub fn as_counter(self) -> u64 {
        match self {
            LoadMode::Read => 1,
            LoadMode::Mapped => 2,
        }
    }
}

/// Deterministic accounting for one [`FmIndex::open_path`] call — the
/// cold-start benchmark and the `index.load.*` counters read these
/// instead of wall-clock I/O, so asserting "mmap opens are O(1)" is
/// reproducible.
#[derive(Debug, Clone, Copy)]
pub struct OpenStats {
    /// Which path was taken.
    pub mode: LoadMode,
    /// Size of the index file in bytes.
    pub file_bytes: u64,
    /// Bytes pulled through `read(2)` (0 for a mapped open).
    pub io_bytes: u64,
    /// Bytes mapped into the address space (0 for a read open).
    pub bytes_mapped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(ascii: &[u8]) -> (FmIndex, Vec<u8>) {
        let text = kmm_dna::encode_text(ascii).unwrap();
        (FmIndex::new(&text, FmBuildConfig::default()), text)
    }

    #[test]
    fn paper_section3_walkthrough() {
        // Searching r = aca in s = acagaca$ (Section III-A).
        let (fm, _) = index(b"acagaca");
        // Step 1: F_A = <a, [1, 4]> = rows 1..5.
        let f_a = fm.f_block(1);
        assert_eq!(f_a, Interval::new(1, 5));
        assert_eq!(fm.pair(1, f_a).to_string(), "<a, [1, 4]>");
        // Step 2: search(c, L_<a,[1,4]>) = <c, [1, 2]> = rows 5..7.
        let iv = fm.extend_backward(f_a, 2);
        assert_eq!(iv, Interval::new(5, 7));
        assert_eq!(fm.pair(2, iv).to_string(), "<c, [1, 2]>");
        // Step 3: search(a, L_<c,[1,2]>) = <a, [2, 3]> = rows 2..4.
        let iv = fm.extend_backward(iv, 1);
        assert_eq!(iv, Interval::new(2, 4));
        assert_eq!(fm.pair(1, iv).to_string(), "<a, [2, 3]>");
        // Two occurrences of aca: note the backward search consumed the
        // pattern reversed, so this is the interval for "aca" read
        // backwards; match the paper by searching the reverse pattern.
        let pat = kmm_dna::encode(b"aca").unwrap();
        let rev: Vec<u8> = pat.iter().rev().copied().collect();
        assert_eq!(fm.backward_search(&rev), Interval::new(2, 4));
    }

    #[test]
    fn count_and_locate_match_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        for _ in 0..40 {
            let n = rng.gen_range(1..400);
            let ascii: Vec<u8> = (0..n).map(|_| b"acgt"[rng.gen_range(0..4usize)]).collect();
            let (fm, text) = index(&ascii);
            for _ in 0..15 {
                let m = rng.gen_range(1..10);
                let pat: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
                let naive: Vec<u32> = if m > text.len() {
                    vec![]
                } else {
                    (0..=(text.len() - m) as u32)
                        .filter(|&i| text[i as usize..i as usize + m] == pat[..])
                        .collect()
                };
                assert_eq!(fm.count(&pat) as usize, naive.len());
                assert_eq!(fm.locate(fm.backward_search(&pat)), naive);
            }
        }
    }

    #[test]
    fn empty_pattern_matches_everywhere() {
        let (fm, text) = index(b"acgt");
        assert_eq!(fm.count(&[]), text.len() as u32);
    }

    #[test]
    fn reconstruct_recovers_text() {
        let (fm, text) = index(b"gattacagatta");
        assert_eq!(fm.reconstruct_text(), text);
    }

    #[test]
    fn lf_walks_whole_text() {
        let (fm, _) = index(b"acagaca");
        // LF applied n times from row 0 must cycle through all rows.
        let n = fm.len();
        let mut row = 0u32;
        let mut seen = vec![false; n];
        for _ in 0..n {
            assert!(!seen[row as usize]);
            seen[row as usize] = true;
            row = fm.lf(row);
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(row, 0);
    }

    #[test]
    fn sa_values_match_real_sa() {
        let text = kmm_dna::encode_text(b"ctagctagcatgcat").unwrap();
        let sa = kmm_suffix::suffix_array(&text, kmm_dna::SIGMA);
        for (occ_rate, sa_rate) in [(4, 1), (4, 4), (64, 16), (8, 32)] {
            let cfg = FmBuildConfig {
                occ_rate,
                sa_rate,
                ..FmBuildConfig::default()
            };
            let fm = FmIndex::from_sa(&text, &sa, cfg);
            for (row, &v) in sa.iter().enumerate() {
                assert_eq!(fm.sa_value(row as u32), v);
            }
        }
    }

    #[test]
    fn paper_rate_config_matches_default() {
        let ascii: Vec<u8> = (0..600).map(|i: usize| b"acgt"[(i * 3 + 1) % 4]).collect();
        let text = kmm_dna::encode_text(&ascii).unwrap();
        let a = FmIndex::new(&text, FmBuildConfig::default());
        let b = FmIndex::new(&text, FmBuildConfig::paper());
        let pat = kmm_dna::encode(b"aca").unwrap();
        assert_eq!(a.backward_search(&pat), b.backward_search(&pat));
        // The paper layout checkpoints more densely and thus uses more space.
        assert!(b.heap_bytes() > a.heap_bytes());
    }

    #[test]
    fn threaded_build_is_byte_identical() {
        let ascii: Vec<u8> = (0..3000)
            .map(|i: usize| b"acgt"[(i * 7 + i / 9) % 4])
            .collect();
        let text = kmm_dna::encode_text(&ascii).unwrap();
        for base in [FmBuildConfig::default(), FmBuildConfig::paper()] {
            let mut serial_bytes = Vec::new();
            FmIndex::new(&text, base).save(&mut serial_bytes).unwrap();
            for threads in [2usize, 8] {
                let fm = FmIndex::try_new(&text, base.with_threads(threads)).unwrap();
                let mut bytes = Vec::new();
                fm.save(&mut bytes).unwrap();
                assert_eq!(bytes, serial_bytes, "threads={threads}");
            }
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let text = kmm_dna::encode_text(b"gattacagattacaacgtacgt").unwrap();
        for cfg in [FmBuildConfig::default(), FmBuildConfig::paper()] {
            let fm = FmIndex::new(&text, cfg);
            let mut buf = Vec::new();
            fm.save(&mut buf).unwrap();
            let loaded = FmIndex::load(&buf[..]).unwrap();
            assert_eq!(loaded.len(), fm.len());
            assert_eq!(loaded.reconstruct_text(), text);
            let pat = kmm_dna::encode(b"atta").unwrap();
            assert_eq!(loaded.backward_search(&pat), fm.backward_search(&pat));
            assert_eq!(
                loaded.locate(loaded.backward_search(&pat)),
                fm.locate(fm.backward_search(&pat))
            );
        }
    }

    #[test]
    fn save_with_mirror_roundtrips_and_plain_files_load_without() {
        let ascii = b"gattacagattacaacgtacgt";
        let text = kmm_dna::encode_text(ascii).unwrap();
        let mut rev: Vec<u8> = text[..text.len() - 1].to_vec();
        rev.reverse();
        rev.push(0);
        let fm = FmIndex::new(&rev, FmBuildConfig::default());
        let mirror = crate::bi::build_mirror(&text, 64, 1).unwrap();

        let mut buf = Vec::new();
        fm.save_with_mirror(&mirror, &mut buf).unwrap();
        let (loaded, loaded_mirror) = FmIndex::load_with_mirror(&buf[..]).unwrap();
        let loaded_mirror = loaded_mirror.expect("mirror sections present");
        assert_eq!(loaded.reconstruct_text(), rev);
        assert_eq!(loaded_mirror.len(), mirror.len());
        assert_eq!(loaded_mirror.rate(), mirror.rate());
        assert_eq!(loaded_mirror.dollar_pos(), mirror.dollar_pos());
        for i in 0..=mirror.len() {
            assert_eq!(loaded_mirror.occ_all(i), mirror.occ_all(i), "i={i}");
        }
        // The loaded pair answers bidirectional extensions identically.
        let bi = crate::bi::BiFmIndex::new(&fm, &mirror);
        let bi2 = crate::bi::BiFmIndex::new(&loaded, &loaded_mirror);
        let pat = kmm_dna::encode(b"atta").unwrap();
        let mut a = bi.whole();
        let mut b = bi2.whole();
        for (i, &z) in pat.iter().enumerate() {
            if i % 2 == 0 {
                a = bi.extend_right(a, z);
                b = bi2.extend_right(b, z);
            } else {
                a = bi.extend_left(a, z);
                b = bi2.extend_left(b, z);
            }
            assert_eq!(a, b);
        }

        // A plain save has no mirror; load_with_mirror reports None and
        // plain load still works on mirror-carrying files.
        let mut plain = Vec::new();
        fm.save(&mut plain).unwrap();
        let (_, none) = FmIndex::load_with_mirror(&plain[..]).unwrap();
        assert!(none.is_none());
        let legacy_reader = FmIndex::load(&buf[..]).unwrap();
        assert_eq!(legacy_reader.reconstruct_text(), rev);
        // Mirror payload corruption is caught by the section checksums.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(FmIndex::load_with_mirror(&bad[..]).is_err());
    }

    #[test]
    fn open_path_with_mirror_mmap_and_read_agree() {
        let ascii = b"ctagctagcatgcatacgtacgt";
        let text = kmm_dna::encode_text(ascii).unwrap();
        let mut rev: Vec<u8> = text[..text.len() - 1].to_vec();
        rev.reverse();
        rev.push(0);
        let fm = FmIndex::new(&rev, FmBuildConfig::default());
        let mirror = crate::bi::build_mirror(&text, 64, 1).unwrap();
        let dir = std::env::temp_dir().join(format!("kmm-fm-bidir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.v3");
        let mut buf = Vec::new();
        fm.save_with_mirror(&mirror, &mut buf).unwrap();
        std::fs::write(&path, &buf).unwrap();
        for prefer_mmap in [false, true] {
            let (loaded, m, _) = FmIndex::open_path_with_mirror(&path, prefer_mmap).unwrap();
            let m = m.expect("mirror sections present");
            assert_eq!(loaded.reconstruct_text(), rev);
            for i in 0..=mirror.len() {
                assert_eq!(m.occ_all(i), mirror.occ_all(i), "mmap={prefer_mmap} i={i}");
            }
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage_and_corruption() {
        use crate::serialize::SerializeError;
        assert!(matches!(
            FmIndex::load(&b"not an index at all"[..]),
            Err(SerializeError::BadMagic)
        ));
        let text = kmm_dna::encode_text(b"acgtacgt").unwrap();
        let fm = FmIndex::new(&text, FmBuildConfig::default());
        let mut buf = Vec::new();
        fm.save(&mut buf).unwrap();
        // Corrupt a payload byte past the header.
        let mid = buf.len() / 2;
        buf[mid] ^= 0xff;
        assert!(FmIndex::load(&buf[..]).is_err());
        // Truncate.
        let mut buf2 = Vec::new();
        fm.save(&mut buf2).unwrap();
        buf2.truncate(buf2.len() - 4);
        assert!(FmIndex::load(&buf2[..]).is_err());
        // Future version.
        let mut buf3 = Vec::new();
        fm.save(&mut buf3).unwrap();
        buf3[8] = 99;
        assert!(matches!(
            FmIndex::load(&buf3[..]),
            Err(SerializeError::BadVersion { found: 99, .. }) | Err(SerializeError::Corrupt)
        ));
    }

    #[test]
    fn f_blocks_partition_rows() {
        let (fm, text) = index(b"ccagtgtta");
        let mut total = 0;
        for sym in 0..SIGMA as u8 {
            total += fm.f_block(sym).len();
        }
        assert_eq!(total as usize, text.len());
        assert_eq!(fm.f_block(0), Interval::new(0, 1));
    }

    #[test]
    fn lf_with_matches_extend_on_singletons() {
        let (fm, _) = index(b"gattacagattacatacg");
        for row in 0..fm.len() as u32 {
            let sym = fm.l_symbol(row);
            if sym == 0 {
                continue;
            }
            let via_lf = fm.lf_with(row, sym);
            let iv = fm.extend_backward(Interval::new(row, row + 1), sym);
            assert_eq!(iv, Interval::new(via_lf, via_lf + 1));
            assert_eq!(via_lf, fm.lf(row));
        }
    }

    #[test]
    fn symbol_mask_matches_extensions() {
        let (fm, _) = index(b"acaggacttacag");
        // For every interval of small width, the mask must list exactly the
        // symbols whose backward extension is non-empty.
        let n = fm.len() as u32;
        for lo in 0..n {
            for hi in lo + 1..=(lo + 5).min(n) {
                let iv = Interval::new(lo, hi);
                let mask = fm.symbol_mask(iv);
                for sym in 1..=4u8 {
                    let extends = !fm.extend_backward(iv, sym).is_empty();
                    assert_eq!(mask & (1 << (sym - 1)) != 0, extends, "iv={iv} sym={sym}");
                }
            }
        }
    }

    #[test]
    fn extend_all_matches_extend_backward() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(911);
        for cfg in [FmBuildConfig::default(), FmBuildConfig::paper()] {
            let n = rng.gen_range(50..400);
            let ascii: Vec<u8> = (0..n).map(|_| b"acgt"[rng.gen_range(0..4usize)]).collect();
            let text = kmm_dna::encode_text(&ascii).unwrap();
            let fm = FmIndex::new(&text, cfg);
            let total = fm.len() as u32;
            // All narrow intervals plus the whole range and empties.
            let mut ivs = vec![fm.whole(), Interval::empty()];
            for lo in 0..total {
                for hi in lo..=(lo + 3).min(total) {
                    ivs.push(Interval::new(lo, hi));
                }
            }
            for iv in ivs {
                let fused = fm.extend_all(iv);
                for z in 1..=4u8 {
                    assert_eq!(
                        fused[(z - 1) as usize],
                        fm.extend_backward(iv, z),
                        "iv={iv} z={z}"
                    );
                }
            }
        }
    }

    #[test]
    fn absent_symbol_gives_empty_interval() {
        let (fm, _) = index(b"aaaa"); // no g anywhere
        let iv = fm.extend_backward(fm.whole(), 3);
        assert!(iv.is_empty());
        assert_eq!(fm.f_block(3).len(), 0);
    }

    #[test]
    fn v2_files_fail_with_upgrade_hint() {
        use crate::serialize::SerializeError;
        let (fm, _) = index(b"gattacagattaca");
        let mut v2 = Vec::new();
        fm.save_legacy_v2(&mut v2).unwrap();
        match FmIndex::load(&v2[..]) {
            Err(SerializeError::BadVersion { found, supported }) => {
                assert_eq!(found, 2);
                assert!(supported.contains("kmm index upgrade"), "{supported}");
            }
            other => panic!("expected BadVersion, got {other:?}"),
        }
        // A v1 header (same shape, older version stamp) names a path too.
        let mut v1 = v2.clone();
        v1[8] = 1;
        assert!(matches!(
            FmIndex::load(&v1[..]),
            Err(SerializeError::BadVersion { found: 1, .. })
        ));
    }

    #[test]
    fn legacy_v2_reader_roundtrips_for_upgrade() {
        let (fm, text) = index(b"ctagctagcatgcatacgt");
        let mut v2 = Vec::new();
        fm.save_legacy_v2(&mut v2).unwrap();
        let upgraded = FmIndex::load_legacy_v2(&v2[..]).unwrap();
        assert_eq!(upgraded.reconstruct_text(), text);
        // And the upgraded index saves as a loadable v3 container.
        let mut v3 = Vec::new();
        upgraded.save(&mut v3).unwrap();
        assert_eq!(&v3[..8], FmIndex::MAGIC);
        let reloaded = FmIndex::load(&v3[..]).unwrap();
        assert_eq!(reloaded.reconstruct_text(), text);
        // The legacy reader refuses v3 containers cleanly.
        assert!(matches!(
            FmIndex::load_legacy_v2(&v3[..]),
            Err(crate::serialize::SerializeError::BadVersion { found: 3, .. })
        ));
    }

    #[test]
    fn loaded_index_borrows_its_image() {
        let (fm, _) = index(b"acgtacgtacgtacgt");
        assert!(!fm.is_borrowed(), "a built index owns its arrays");
        let mut buf = Vec::new();
        fm.save(&mut buf).unwrap();
        let loaded = FmIndex::load(&buf[..]).unwrap();
        // Sections are 64-byte aligned in the image and the image is an
        // owned Vec<u64>, so every store borrows (little-endian hosts).
        if cfg!(target_endian = "little") {
            assert!(loaded.is_borrowed());
        }
    }

    #[test]
    fn open_path_read_and_mmap_agree() {
        let (fm, text) = index(b"gattacagattacaacgtacgtccggaatt");
        let dir = std::env::temp_dir().join(format!("kmm-fm-open-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.v3");
        let mut buf = Vec::new();
        fm.save(&mut buf).unwrap();
        std::fs::write(&path, &buf).unwrap();

        let (read_fm, read_stats) = FmIndex::open_path(&path, false).unwrap();
        assert_eq!(read_stats.mode, LoadMode::Read);
        assert_eq!(read_stats.io_bytes, buf.len() as u64);
        assert_eq!(read_stats.bytes_mapped, 0);
        assert_eq!(read_fm.reconstruct_text(), text);

        let (mm_fm, mm_stats) = FmIndex::open_path(&path, true).unwrap();
        match mm_stats.mode {
            LoadMode::Mapped => {
                assert_eq!(mm_stats.io_bytes, 0);
                assert_eq!(mm_stats.bytes_mapped, buf.len() as u64);
                assert!(mm_fm.is_borrowed());
            }
            // Platforms without the mmap fast path fall back to read.
            LoadMode::Read => assert_eq!(mm_stats.io_bytes, buf.len() as u64),
        }
        // Both opens answer queries identically to the built index.
        let pat = kmm_dna::encode(b"atta").unwrap();
        for loaded in [&read_fm, &mm_fm] {
            assert_eq!(loaded.backward_search(&pat), fm.backward_search(&pat));
            assert_eq!(
                loaded.locate(loaded.backward_search(&pat)),
                fm.locate(fm.backward_search(&pat))
            );
            for iv in [fm.whole(), Interval::new(1, 3)] {
                assert_eq!(loaded.extend_all(iv), fm.extend_all(iv));
            }
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn prefetch_is_pure() {
        use kmm_telemetry::cost::{CostKind, CostSnapshot};
        let (fm, _) = index(b"acagaca");
        let before = CostSnapshot::now();
        fm.prefetch_interval(fm.whole());
        fm.prefetch_interval(Interval::empty());
        let delta = CostSnapshot::now().delta(&before);
        // No rank work — but the advisory hints themselves are counted.
        assert_eq!(delta.get(CostKind::RankBlocks), 0);
        assert_eq!(delta.get(CostKind::RankBytes), 0);
        assert!(delta.get(CostKind::PrefetchIssued) > 0);
    }
}
