//! Vectorized tally kernels for the rank structure, with runtime dispatch.
//!
//! [`count_all`] counts all four 2-bit base codes in a packed `L` payload
//! — the inner loop of [`RankAll::occ_all`](crate::RankAll::occ_all) and
//! therefore of every fused 4-way extension. The scalar kernel decomposes
//! each word into its high/low bit planes and popcounts three plane
//! intersections ([`plane_counts`], shared by *every* path so scalar and
//! SIMD cannot drift); the AVX2 kernel does the same plane algebra on
//! 256-bit registers and popcounts them with the classic pshufb
//! nibble-LUT + `psadbw` reduction, four words per step.
//!
//! Dispatch is decided once per process with
//! `is_x86_feature_detected!("avx2")` and cached; the SIMD path can be
//! disabled for A/B testing either with the `KMM_NO_SIMD=1` environment
//! variable (read once at first use) or in-process via [`force_scalar`]
//! (used by `experiments occbench` to time both kernels in one run). Both
//! kernels are bit-identical by construction and pinned so by proptest.
//!
//! The module also hosts [`prefetch_read`], the software-prefetch hint
//! used to pull the *next* LF-target rank block into cache while the
//! search layer is still working on the current one (a no-op off
//! x86_64).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Symbols stored per `u64` word (2 bits each). Mirrors the layout
/// constant in `occ.rs`; the kernels are expressed in slot units.
const SLOTS_PER_WORD: usize = 32;

/// Every low (even) bit of a word — one bit per 2-bit slot.
pub(crate) const LSB: u64 = 0x5555_5555_5555_5555;

/// In-process override: when set, [`count_all`] takes the scalar kernel
/// even if AVX2 is available. Lets a benchmark time both paths in one
/// process without re-exec'ing under `KMM_NO_SIMD`.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Force (or release) the scalar kernel for this process.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Whether the AVX2 kernel is usable: compiled for x86_64, the CPU
/// reports AVX2, and `KMM_NO_SIMD` is unset/`0`. Decided once.
fn avx2_usable() -> bool {
    static USABLE: OnceLock<bool> = OnceLock::new();
    *USABLE.get_or_init(|| {
        let disabled = std::env::var("KMM_NO_SIMD")
            .map(|v| v != "0")
            .unwrap_or(false);
        if disabled {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// The tally kernel [`count_all`] currently dispatches to: `"avx2"` or
/// `"scalar"`. Reflects [`force_scalar`] as well as feature detection.
pub fn active_kernel() -> &'static str {
    if avx2_usable() && !FORCE_SCALAR.load(Ordering::Relaxed) {
        "avx2"
    } else {
        "scalar"
    }
}

/// Per-code occurrence counts of the 2-bit slots selected by `keep`
/// (a sub-mask of [`LSB`]) in word `w`.
///
/// This is *the* shared tally: the high/low bit planes of the word are
/// intersected three ways and popcounted, and code 0 falls out of the
/// slot total by subtraction. The scalar loop, the word-at-a-time tail
/// of the AVX2 kernel, and the per-code `occ` fast path all reduce to
/// this helper, so a change here changes every path in lockstep.
#[inline(always)]
pub(crate) fn plane_counts(w: u64, keep: u64) -> [u32; 4] {
    let hi = (w >> 1) & keep;
    let lo = w & keep;
    let c3 = (hi & lo).count_ones();
    let c2 = (hi & !lo).count_ones();
    let c1 = (!hi & lo).count_ones();
    [keep.count_ones() - c3 - c2 - c1, c1, c2, c3]
}

/// Keep-mask selecting slots `[0, end_slot)` of a word (`end_slot` in
/// `1..=32`); `end_slot == 32` keeps the whole word.
#[inline(always)]
pub(crate) fn tail_keep(end_slot: usize) -> u64 {
    debug_assert!(end_slot >= 1 && end_slot <= SLOTS_PER_WORD);
    if end_slot == SLOTS_PER_WORD {
        LSB
    } else {
        LSB & ((1u64 << (2 * end_slot)) - 1)
    }
}

/// Scalar reference kernel: add the per-code counts of slots `[0, end)`
/// of `payload` into `counts`.
#[inline]
pub fn count_all_scalar(payload: &[u64], end: usize, counts: &mut [u32; 4]) {
    let (last_word, last_slot) = (end / SLOTS_PER_WORD, end % SLOTS_PER_WORD);
    for &w in &payload[..last_word] {
        let c = plane_counts(w, LSB);
        for (acc, add) in counts.iter_mut().zip(c) {
            *acc += add;
        }
    }
    if last_slot != 0 {
        let c = plane_counts(payload[last_word], tail_keep(last_slot));
        for (acc, add) in counts.iter_mut().zip(c) {
            *acc += add;
        }
    }
}

/// Add the per-code occurrence counts of slots `[0, end)` of `payload`
/// into `counts`, dispatching to the best kernel for this CPU.
///
/// Bit-identical to [`count_all_scalar`] on every input; the AVX2 path
/// only engages when at least four whole words are in range (below that
/// the setup cost outweighs the win — at the default checkpoint rate 64
/// a block payload is two words and stays scalar).
#[inline]
pub fn count_all(payload: &[u64], end: usize, counts: &mut [u32; 4]) {
    #[cfg(target_arch = "x86_64")]
    {
        if end / SLOTS_PER_WORD >= 4 && avx2_usable() && !FORCE_SCALAR.load(Ordering::Relaxed) {
            // SAFETY: avx2_usable() verified the avx2 feature at runtime.
            unsafe { count_all_avx2(payload, end, counts) };
            return;
        }
    }
    count_all_scalar(payload, end, counts)
}

/// AVX2 kernel: identical plane algebra on 256-bit registers, four
/// packed words per step, popcounted via the pshufb nibble LUT and
/// accumulated with `psadbw` into four u64 lanes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn count_all_avx2(payload: &[u64], end: usize, counts: &mut [u32; 4]) {
    use core::arch::x86_64::*;
    let (last_word, last_slot) = (end / SLOTS_PER_WORD, end % SLOTS_PER_WORD);
    let whole = &payload[..last_word];
    let lsb = _mm256_set1_epi64x(LSB as i64);
    // Nibble popcount LUT, replicated per 128-bit lane for pshufb.
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_nibble = _mm256_set1_epi8(0x0f);
    let zero = _mm256_setzero_si256();
    // Popcount of every byte of `m`, summed per 64-bit lane.
    let popcnt_lanes = |m: __m256i| -> __m256i {
        let lo = _mm256_and_si256(m, low_nibble);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(m), low_nibble);
        let per_byte = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(per_byte, zero)
    };
    let mut acc1 = zero;
    let mut acc2 = zero;
    let mut acc3 = zero;
    let mut i = 0usize;
    while i + 4 <= whole.len() {
        let w = _mm256_loadu_si256(whole.as_ptr().add(i) as *const __m256i);
        let hi = _mm256_and_si256(_mm256_srli_epi64::<1>(w), lsb);
        let lo = _mm256_and_si256(w, lsb);
        // Same three plane intersections as `plane_counts`.
        acc3 = _mm256_add_epi64(acc3, popcnt_lanes(_mm256_and_si256(hi, lo)));
        acc2 = _mm256_add_epi64(acc2, popcnt_lanes(_mm256_andnot_si256(lo, hi)));
        acc1 = _mm256_add_epi64(acc1, popcnt_lanes(_mm256_andnot_si256(hi, lo)));
        i += 4;
    }
    let hsum = |v: __m256i| -> u32 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
        (lanes[0] + lanes[1] + lanes[2] + lanes[3]) as u32
    };
    let mut c = [0u32, hsum(acc1), hsum(acc2), hsum(acc3)];
    // Code 0 of the vectorized span by subtraction from the slot total.
    c[0] = (i * SLOTS_PER_WORD) as u32 - c[1] - c[2] - c[3];
    // Word-at-a-time remainder through the shared scalar tally.
    for &w in &whole[i..] {
        let add = plane_counts(w, LSB);
        for (acc, a) in c.iter_mut().zip(add) {
            *acc += a;
        }
    }
    if last_slot != 0 {
        let add = plane_counts(payload[last_word], tail_keep(last_slot));
        for (acc, a) in c.iter_mut().zip(add) {
            *acc += a;
        }
    }
    for (out, add) in counts.iter_mut().zip(c) {
        *out += add;
    }
}

/// Hint the CPU to pull the cache line at `ptr` into cache for a read.
/// A correctness no-op everywhere: on x86_64 it issues `prefetcht0`, on
/// other targets it compiles to nothing.
#[inline(always)]
pub fn prefetch_read(ptr: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch never faults, even on invalid addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive(payload: &[u64], end: usize) -> [u32; 4] {
        let mut c = [0u32; 4];
        for i in 0..end {
            let code = (payload[i / SLOTS_PER_WORD] >> ((i % SLOTS_PER_WORD) * 2)) & 0b11;
            c[code as usize] += 1;
        }
        c
    }

    #[test]
    fn plane_counts_matches_naive_per_word() {
        for w in [0u64, u64::MAX, 0x1b1b_1b1b_1b1b_1b1b, 0xdead_beef_cafe_f00d] {
            let got = plane_counts(w, LSB);
            assert_eq!(got, naive(&[w], 32), "word {w:#x}");
            // Partial keeps agree with truncated naive counts.
            for end in 1..=32usize {
                assert_eq!(plane_counts(w, tail_keep(end)), naive(&[w], end));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Dispatch, forced-scalar, and the reference scalar kernel all
        /// agree with a slot-by-slot count at every boundary — including
        /// spans long enough to engage the AVX2 path.
        #[test]
        fn kernels_are_bit_identical(
            payload in proptest::collection::vec(any::<u64>(), 1..24),
            end_sel in any::<u32>(),
        ) {
            let slots = payload.len() * SLOTS_PER_WORD;
            let end = end_sel as usize % (slots + 1);
            let expect = naive(&payload, end);

            let mut scalar = [0u32; 4];
            count_all_scalar(&payload, end, &mut scalar);
            prop_assert_eq!(scalar, expect);

            let mut dispatched = [0u32; 4];
            count_all(&payload, end, &mut dispatched);
            prop_assert_eq!(dispatched, expect);

            force_scalar(true);
            let mut forced = [0u32; 4];
            count_all(&payload, end, &mut forced);
            force_scalar(false);
            prop_assert_eq!(forced, expect);
        }
    }

    #[test]
    fn accumulates_into_existing_counts() {
        let payload = vec![0x1b_u64; 8]; // codes 3,2,1,0 repeating
        let mut counts = [100u32, 200, 300, 400];
        count_all(&payload, 8 * SLOTS_PER_WORD, &mut counts);
        let mut expect = naive(&payload, 8 * SLOTS_PER_WORD);
        for (e, base) in expect.iter_mut().zip([100, 200, 300, 400]) {
            *e += base;
        }
        assert_eq!(counts, expect);
    }

    #[test]
    fn active_kernel_reflects_force_scalar() {
        let idle = active_kernel();
        assert!(idle == "avx2" || idle == "scalar");
        force_scalar(true);
        assert_eq!(active_kernel(), "scalar");
        force_scalar(false);
        assert_eq!(active_kernel(), idle);
    }

    #[test]
    fn prefetch_is_callable_on_any_pointer() {
        let v = [0u8; 64];
        prefetch_read(v.as_ptr());
        prefetch_read(std::ptr::null());
    }
}
