//! Memory-mapped index bytes and borrowed/owned array storage.
//!
//! The v3 index container (see `serialize.rs`) lays every structure out
//! as an aligned little-endian section inside one file, so a loaded
//! index can *reference* the file bytes instead of copying them. This
//! module supplies the two halves of that:
//!
//! - [`IndexBytes`]: one contiguous byte region holding a whole index
//!   file — either owned (read into `u64`-aligned heap storage) or a
//!   read-only `mmap` of the file. The mapping uses raw syscalls on
//!   Linux/x86_64 (the repo is dependency-free, so no `libc`); every
//!   other platform reports [`std::io::ErrorKind::Unsupported`] and
//!   callers fall back to the plain-read path.
//! - [`U64Store`] / [`U32Store`]: the storage behind the index's big
//!   arrays — an owned `Vec` or a `(base, offset, len)` borrow into a
//!   shared [`IndexBytes`]. Both deref to plain slices, so the search
//!   layer is storage-agnostic.
//!
//! Borrowing bytes as `&[u64]`/`&[u32]` is only meaningful when the
//! in-memory representation matches the on-disk one, which is why the
//! v3 format is little-endian *by definition*: on a little-endian CPU a
//! section borrow is a pointer cast (validated for alignment and
//! bounds), while a big-endian host transparently falls back to a
//! byte-swapping copy and stays correct.

use std::sync::Arc;

/// A read-only memory mapping of one file.
///
/// Constructed with [`MmapRegion::map_file`]; unmapped on drop. Only
/// shared read-only pages are ever requested, so the region is safe to
/// hand out as `&[u8]` for its whole lifetime.
pub struct MmapRegion {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE — immutable shared bytes,
// no interior mutability; moving or sharing the handle across threads is
// as safe as sharing a `&[u8]`.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl std::fmt::Debug for MmapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapRegion")
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    //! Raw mmap/munmap syscalls for x86_64 Linux (no libc in the tree).

    use std::arch::asm;

    const SYS_MMAP: usize = 9;
    const SYS_MUNMAP: usize = 11;
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// Map `len` bytes of `fd` read-only. Returns the page-aligned base
    /// or an errno-style `io::Error`.
    pub(super) unsafe fn mmap_read(fd: i32, len: usize) -> std::io::Result<*const u8> {
        let ret: isize;
        asm!(
            "syscall",
            inlateout("rax") SYS_MMAP as isize => ret,
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") PROT_READ,
            in("r10") MAP_PRIVATE,
            in("r8") fd as isize,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        // The kernel signals failure as a return value in [-4095, -1].
        if (-4095..0).contains(&ret) {
            Err(std::io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as *const u8)
        }
    }

    /// Unmap a region previously returned by [`mmap_read`].
    pub(super) unsafe fn munmap(ptr: *const u8, len: usize) {
        let _ret: isize;
        asm!(
            "syscall",
            inlateout("rax") SYS_MUNMAP as isize => _ret,
            in("rdi") ptr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
}

impl MmapRegion {
    /// Map `file` read-only in its entirety.
    ///
    /// On platforms without the raw-syscall backend (everything except
    /// Linux/x86_64) this returns `ErrorKind::Unsupported`, as it does
    /// for empty files (`mmap` of zero bytes is invalid); callers fall
    /// back to reading the file.
    #[allow(unused_variables)]
    pub fn map_file(file: &std::fs::File) -> std::io::Result<MmapRegion> {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            use std::os::unix::io::AsRawFd;
            let len = file.metadata()?.len();
            if len == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "cannot map an empty file",
                ));
            }
            let len = usize::try_from(len).map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "file exceeds address space",
                )
            })?;
            // SAFETY: fd is valid for the duration of the call; the
            // kernel validates everything else and reports via errno.
            let ptr = unsafe { sys::mmap_read(file.as_raw_fd(), len)? };
            Ok(MmapRegion { ptr, len })
        }
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        {
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "mmap is only wired up on linux/x86_64; use the read path",
            ))
        }
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: ptr/len came from a successful PROT_READ mapping that
        // lives until drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        // SAFETY: exactly the region obtained from mmap_read.
        unsafe {
            sys::munmap(self.ptr, self.len)
        }
    }
}

/// One whole index file as a contiguous byte region, owned or mapped.
///
/// The owned variant keeps the bytes in `u64` storage so the base
/// address is always 8-byte aligned; mapped regions are page-aligned by
/// the kernel. Either way, any 64-byte-aligned section offset inside
/// the region is aligned enough to borrow as `&[u64]`.
#[derive(Debug)]
pub enum IndexBytes {
    /// Bytes read into aligned heap storage (`len` may trail into the
    /// last word's padding).
    Owned {
        /// Backing words; `words.len() * 8 >= len`.
        words: Vec<u64>,
        /// Meaningful byte length.
        len: usize,
    },
    /// A read-only file mapping.
    Mapped(MmapRegion),
}

impl IndexBytes {
    /// Copy a plain byte buffer into aligned owned storage.
    pub fn from_bytes(bytes: &[u8]) -> IndexBytes {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: the u64 vec provides bytes.len() initialised bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                words.as_mut_ptr() as *mut u8,
                bytes.len(),
            );
        }
        IndexBytes::Owned {
            words,
            len: bytes.len(),
        }
    }

    /// Read everything from `r` into aligned owned storage.
    pub fn from_reader<R: std::io::Read>(r: &mut R) -> std::io::Result<IndexBytes> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Ok(IndexBytes::from_bytes(&bytes))
    }

    /// The region's bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            IndexBytes::Owned { words, len } => {
                // SAFETY: words owns at least `len` initialised bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, *len) }
            }
            IndexBytes::Mapped(m) => m.as_bytes(),
        }
    }

    /// Byte length of the region.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            IndexBytes::Owned { len, .. } => *len,
            IndexBytes::Mapped(m) => m.len,
        }
    }

    /// True when the region holds no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the bytes are a file mapping (vs owned heap storage).
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self, IndexBytes::Mapped(_))
    }
}

/// Validate that `[byte_off, byte_off + elems * size)` lies inside
/// `base` and starts `size`-aligned (both in offset and in absolute
/// address). Returns false — never panics — on any violation, so a
/// corrupt section table cannot construct an out-of-bounds borrow.
fn borrow_ok(base: &IndexBytes, byte_off: usize, elems: usize, size: usize) -> bool {
    let bytes = base.as_bytes();
    let Some(end) = elems
        .checked_mul(size)
        .and_then(|b| b.checked_add(byte_off))
    else {
        return false;
    };
    end <= bytes.len()
        && byte_off.is_multiple_of(size)
        && (bytes.as_ptr() as usize + byte_off).is_multiple_of(size)
}

macro_rules! typed_store {
    ($name:ident, $elem:ty, $doc:literal) => {
        #[doc = $doc]
        ///
        /// Derefs to a plain slice; constructing a borrowed store
        /// validates bounds and alignment, and on big-endian hosts the
        /// borrow constructor refuses so callers fall back to a
        /// byte-swapping copy (the file bytes are little-endian).
        #[derive(Debug, Clone)]
        pub enum $name {
            /// Heap-owned elements.
            Owned(Vec<$elem>),
            /// A validated view into a shared byte region.
            Borrowed {
                /// The region the elements live in.
                base: Arc<IndexBytes>,
                /// Byte offset of the first element.
                byte_off: usize,
                /// Element count.
                len: usize,
            },
        }

        impl $name {
            /// Borrow `len` elements at `byte_off` of `base`. `None` if
            /// the range is out of bounds, misaligned, or the host is
            /// big-endian (borrowing LE bytes would misread them).
            pub fn borrowed(base: Arc<IndexBytes>, byte_off: usize, len: usize) -> Option<$name> {
                if cfg!(target_endian = "big")
                    || !borrow_ok(&base, byte_off, len, std::mem::size_of::<$elem>())
                {
                    return None;
                }
                Some($name::Borrowed {
                    base,
                    byte_off,
                    len,
                })
            }

            /// Copy `len` elements at `byte_off` of `base` into owned
            /// storage, decoding little-endian (correct on any host).
            /// `None` if the range is out of bounds.
            pub fn copied(base: &IndexBytes, byte_off: usize, len: usize) -> Option<$name> {
                const SIZE: usize = std::mem::size_of::<$elem>();
                let end = len.checked_mul(SIZE)?.checked_add(byte_off)?;
                let bytes = base.as_bytes().get(byte_off..end)?;
                Some($name::Owned(
                    bytes
                        .chunks_exact(SIZE)
                        .map(|c| <$elem>::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                ))
            }

            /// True when the elements are a borrow into an [`IndexBytes`].
            pub fn is_borrowed(&self) -> bool {
                matches!(self, $name::Borrowed { .. })
            }
        }

        impl std::ops::Deref for $name {
            type Target = [$elem];

            #[inline]
            fn deref(&self) -> &[$elem] {
                match self {
                    $name::Owned(v) => v,
                    $name::Borrowed {
                        base,
                        byte_off,
                        len,
                    } => {
                        // SAFETY: bounds and alignment were validated by
                        // `borrowed()`; the Arc keeps the region alive for
                        // the borrow's lifetime; the bytes are immutable.
                        unsafe {
                            std::slice::from_raw_parts(
                                base.as_bytes().as_ptr().add(*byte_off) as *const $elem,
                                *len,
                            )
                        }
                    }
                }
            }
        }

        impl From<Vec<$elem>> for $name {
            fn from(v: Vec<$elem>) -> $name {
                $name::Owned(v)
            }
        }
    };
}

typed_store!(
    U64Store,
    u64,
    "Owned-or-borrowed storage for a `u64` array."
);
typed_store!(
    U32Store,
    u32,
    "Owned-or-borrowed storage for a `u32` array."
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_index_bytes_roundtrip() {
        let data: Vec<u8> = (0..100u8).collect();
        let ib = IndexBytes::from_bytes(&data);
        assert_eq!(ib.as_bytes(), &data[..]);
        assert_eq!(ib.len(), 100);
        assert!(!ib.is_mapped());
        // The owned base is always u64-aligned.
        assert_eq!(ib.as_bytes().as_ptr() as usize % 8, 0);
    }

    #[test]
    fn borrowed_store_views_the_bytes() {
        let values = [0x1111_2222_3333_4444u64, 0xaaaa_bbbb_cccc_dddd];
        let mut bytes = vec![0u8; 8]; // one word of padding before the data
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let base = Arc::new(IndexBytes::from_bytes(&bytes));
        let store = U64Store::borrowed(base.clone(), 8, 2).expect("aligned borrow");
        assert_eq!(&*store, &values[..]);
        assert!(store.is_borrowed());
        let copied = U64Store::copied(&base, 8, 2).unwrap();
        assert_eq!(&*copied, &values[..]);
        assert!(!copied.is_borrowed());
        // A clone shares the same region.
        let clone = store.clone();
        assert_eq!(&*clone, &values[..]);
    }

    #[test]
    fn borrow_rejects_misaligned_and_out_of_bounds() {
        let base = Arc::new(IndexBytes::from_bytes(&[0u8; 64]));
        assert!(U64Store::borrowed(base.clone(), 4, 1).is_none()); // misaligned
        assert!(U64Store::borrowed(base.clone(), 64, 1).is_none()); // past end
        assert!(U64Store::borrowed(base.clone(), 8, usize::MAX).is_none()); // overflow
        assert!(U32Store::borrowed(base.clone(), 2, 1).is_none()); // misaligned u32
        assert!(U32Store::borrowed(base.clone(), 0, 17).is_none()); // past end
        assert!(U64Store::borrowed(base, 0, 8).is_some());
    }

    #[test]
    fn u32_store_copies_and_borrows() {
        let mut bytes = Vec::new();
        for v in [7u32, 11, 13] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let base = Arc::new(IndexBytes::from_bytes(&bytes));
        let borrowed = U32Store::borrowed(base.clone(), 0, 3).unwrap();
        assert_eq!(&*borrowed, &[7, 11, 13]);
        let copied = U32Store::copied(&base, 4, 2).unwrap();
        assert_eq!(&*copied, &[11, 13]);
        assert!(U32Store::copied(&base, 8, 2).is_none());
    }

    #[test]
    fn mmap_of_real_file_works_or_reports_unsupported() {
        let dir = std::env::temp_dir().join("kmm-mmap-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("region.bin");
        let payload: Vec<u8> = (0..255u8).cycle().take(5000).collect();
        std::fs::write(&path, &payload).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        match MmapRegion::map_file(&file) {
            Ok(region) => {
                assert_eq!(region.as_bytes(), &payload[..]);
                let ib = Arc::new(IndexBytes::Mapped(region));
                assert!(ib.is_mapped());
                // Page alignment makes any 64-aligned offset borrowable.
                let store = U64Store::borrowed(ib, 64, 16).unwrap();
                assert_eq!(store.len(), 16);
            }
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::Unsupported),
        }
    }

    #[test]
    fn mmap_rejects_empty_files() {
        let dir = std::env::temp_dir().join("kmm-mmap-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let file = std::fs::File::open(&path).unwrap();
        assert!(MmapRegion::map_file(&file).is_err());
    }
}
