//! Bidirectional FM-index: a primary index paired with a *mirror* rank
//! structure over the reversed text, letting a search extend its match
//! on **either** end while keeping both SA intervals synchronised.
//!
//! The k-mismatch layer indexes `rev(T)$` (so backward search consumes
//! patterns left-to-right in `T` coordinates, Section IV Definition 1).
//! [`BiFmIndex`] pairs that primary with the rankall of `T$`'s own BWT:
//!
//! - `extend_right(c)` — append `c` to the matched substring of `T` —
//!   is one fused [`FmIndex::extend_all`] on the primary.
//! - `extend_left(c)` — prepend `c` — is one fused `occ_all_pair` on
//!   the mirror.
//!
//! In both cases the interval over the *other* index is updated without
//! touching that index's blocks, via the 4-way sibling-count trick
//! (Lam et al. 2009; the 2BWT): the rows of an interval for a string
//! `P`, grouped by the character that follows `P`, appear in sentinel-
//! first symbol order, and each group's width equals the corresponding
//! child width just computed on the other side. So either extension
//! costs exactly one fused block visit — the same price the
//! unidirectional searches pay — and a search scheme is free to switch
//! directions at every step.
//!
//! The mirror needs no sampled suffix array (`locate` resolves through
//! the primary) and no C table (the reversed text is the same multiset
//! of symbols, so the primary's `C` applies verbatim): it is a bare
//! [`RankAll`], roughly halving the marginal cost of bidirectionality.

use kmm_dna::SIGMA;
use kmm_par::ThreadPool;
use kmm_suffix::sais::suffix_array;

use crate::bwt::bwt_from_sa_with;
use crate::fm_index::FmIndex;
use crate::interval::Interval;
use crate::limits::{check_text_len, TextTooLarge};
use crate::occ::RankAll;

/// Build the mirror rank structure for a primary index over `rev(T)$`:
/// the rankall over the BWT of `text` itself, where `text` is the
/// sentinel-terminated forward text `T$`. `threads` drives the
/// data-parallel construction passes; the result is bit-identical at
/// any width.
pub fn build_mirror(text: &[u8], occ_rate: usize, threads: usize) -> Result<RankAll, TextTooLarge> {
    check_text_len(text.len())?;
    let pool = ThreadPool::new(threads.max(1));
    let sa = suffix_array(text, SIGMA);
    let l = bwt_from_sa_with(text, &sa, &pool);
    RankAll::try_new_with(&l, occ_rate, &pool)
}

/// A pair of synchronised SA intervals for one matched string `P`
/// (a substring of the forward text `T`, no sentinel):
/// [`BiInterval::prim`] over `SA(rev(T)$)` matching `rev(P)`,
/// [`BiInterval::mirr`] over `SA(T$)` matching `P`. The widths are
/// always equal — both count the occurrences of `P` in `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BiInterval {
    /// Interval over the primary index (text `rev(T)$`).
    pub prim: Interval,
    /// Interval over the mirror (text `T$`).
    pub mirr: Interval,
}

impl BiInterval {
    /// Number of occurrences of the matched string.
    #[inline]
    pub fn len(&self) -> u32 {
        debug_assert_eq!(self.prim.len(), self.mirr.len());
        self.prim.len()
    }

    /// True when the matched string does not occur.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prim.is_empty()
    }
}

/// A borrowed bidirectional view: the primary [`FmIndex`] plus the
/// mirror [`RankAll`] built by [`build_mirror`]. Construction is a
/// pointer pair — build the parts once, borrow a view per search.
#[derive(Debug, Clone, Copy)]
pub struct BiFmIndex<'a> {
    fm: &'a FmIndex,
    mirror: &'a RankAll,
}

impl<'a> BiFmIndex<'a> {
    /// Pair a primary index with its mirror rank structure.
    pub fn new(fm: &'a FmIndex, mirror: &'a RankAll) -> Self {
        assert_eq!(fm.len(), mirror.len(), "mirror must cover the same text");
        BiFmIndex { fm, mirror }
    }

    /// The primary index (for `locate`, C table, length).
    #[inline]
    pub fn fm(&self) -> &'a FmIndex {
        self.fm
    }

    /// The mirror rank structure.
    #[inline]
    pub fn mirror(&self) -> &'a RankAll {
        self.mirror
    }

    /// The interval pair of the empty string: every row on both sides.
    #[inline]
    pub fn whole(&self) -> BiInterval {
        BiInterval {
            prim: self.fm.whole(),
            mirr: self.fm.whole(),
        }
    }

    /// Fused 4-way backward step on the mirror: the mirror analogue of
    /// [`FmIndex::extend_all`], reusing the primary's C table.
    #[inline]
    fn mirror_extend_all(&self, iv: Interval) -> [Interval; 4] {
        let (lo, hi) = self.mirror.occ_all_pair(iv.lo as usize, iv.hi as usize);
        std::array::from_fn(|j| {
            let c = self.fm.c(j as u8 + 1);
            Interval::new(c + lo[j], c + hi[j])
        })
    }

    /// Derive the other-side child intervals from the widths of the
    /// extended side's children. Within `other` (the rows matching the
    /// current string on the non-extended side), rows grouped by the
    /// next character appear sentinel-group first, then bases in symbol
    /// order; each group's width equals the matching child's width.
    #[inline]
    fn derive_siblings(
        children: &[Interval; 4],
        parent_len: u32,
        other: Interval,
    ) -> [Interval; 4] {
        let total: u32 = children.iter().map(|c| c.len()).sum();
        // The remainder is the group whose next character is the
        // sentinel: at most one row (the occurrence touching the text
        // end), and it sorts first.
        debug_assert!(parent_len - total <= 1, "more than one sentinel successor");
        let mut lo = other.lo + (parent_len - total);
        let mut out = [Interval::empty(); 4];
        for (slot, child) in out.iter_mut().zip(children) {
            let w = child.len();
            *slot = Interval::new(lo, lo + w);
            lo += w;
        }
        out
    }

    /// All four right extensions at once (append a base to the matched
    /// substring of `T`): one fused block visit on the primary; the
    /// mirror intervals follow by sibling counts.
    /// `extend_right_all(bi)[z - 1]` is the pair for `P·z`.
    #[inline]
    pub fn extend_right_all(&self, bi: BiInterval) -> [BiInterval; 4] {
        let prim = self.fm.extend_all(bi.prim);
        let mirr = Self::derive_siblings(&prim, bi.prim.len(), bi.mirr);
        std::array::from_fn(|j| BiInterval {
            prim: prim[j],
            mirr: mirr[j],
        })
    }

    /// All four left extensions at once (prepend a base): one fused
    /// block visit on the mirror; the primary intervals follow by
    /// sibling counts. `extend_left_all(bi)[z - 1]` is the pair for
    /// `z·P`.
    #[inline]
    pub fn extend_left_all(&self, bi: BiInterval) -> [BiInterval; 4] {
        let mirr = self.mirror_extend_all(bi.mirr);
        let prim = Self::derive_siblings(&mirr, bi.mirr.len(), bi.prim);
        std::array::from_fn(|j| BiInterval {
            prim: prim[j],
            mirr: mirr[j],
        })
    }

    /// Append base `z` to the matched substring.
    #[inline]
    pub fn extend_right(&self, bi: BiInterval, z: u8) -> BiInterval {
        debug_assert!((1..=4).contains(&z));
        self.extend_right_all(bi)[(z - 1) as usize]
    }

    /// Prepend base `z` to the matched substring.
    #[inline]
    pub fn extend_left(&self, bi: BiInterval, z: u8) -> BiInterval {
        debug_assert!((1..=4).contains(&z));
        self.extend_left_all(bi)[(z - 1) as usize]
    }

    /// Advisory prefetch of the primary blocks a coming
    /// [`Self::extend_right_all`] will visit.
    #[inline]
    pub fn prefetch_right(&self, bi: BiInterval) {
        self.fm.prefetch_interval(bi.prim);
    }

    /// Advisory prefetch of the mirror blocks a coming
    /// [`Self::extend_left_all`] will visit.
    #[inline]
    pub fn prefetch_left(&self, bi: BiInterval) {
        self.mirror.prefetch(bi.mirr.lo as usize);
        self.mirror.prefetch(bi.mirr.hi as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fm_index::FmBuildConfig;

    /// Primary + mirror + a reference FmIndex over the forward text, so
    /// tests can check both interval components against plain backward
    /// search.
    fn setup(ascii: &[u8], occ_rate: usize) -> (FmIndex, RankAll, FmIndex, Vec<u8>) {
        let text = kmm_dna::encode_text(ascii).unwrap();
        let mut rev: Vec<u8> = text[..text.len() - 1].to_vec();
        rev.reverse();
        rev.push(0);
        let cfg = FmBuildConfig {
            occ_rate,
            ..FmBuildConfig::default()
        };
        let fm = FmIndex::new(&rev, cfg);
        let mirror = build_mirror(&text, occ_rate, 1).unwrap();
        let fwd_fm = FmIndex::new(&text, cfg);
        (fm, mirror, fwd_fm, text)
    }

    /// The expected BiInterval for pattern `pat`, from two plain
    /// backward searches.
    fn reference(fm: &FmIndex, fwd_fm: &FmIndex, pat: &[u8]) -> BiInterval {
        let rev: Vec<u8> = pat.iter().rev().copied().collect();
        BiInterval {
            prim: fm.backward_search(&rev),
            mirr: fwd_fm.backward_search(pat),
        }
    }

    /// Empty intervals carry arbitrary coordinates (like
    /// `extend_backward`'s), so equality is "identical or both empty".
    #[track_caller]
    fn assert_same(got: BiInterval, want: BiInterval, ctx: &str) {
        if got.is_empty() || want.is_empty() {
            assert!(
                got.is_empty() && want.is_empty(),
                "{ctx}: {got:?} vs {want:?}"
            );
        } else {
            assert_eq!(got, want, "{ctx}");
        }
    }

    #[test]
    fn extensions_match_plain_backward_search() {
        for occ_rate in [4usize, 64, 1024] {
            let (fm, mirror, fwd_fm, _) = setup(b"gattacagattacaacgtacgtccggaatt", occ_rate);
            let bi = BiFmIndex::new(&fm, &mirror);
            // Grow "tac" in every build order mixing left/right steps.
            let pat = kmm_dna::encode(b"tac").unwrap();
            for order in [[0usize, 1, 2], [2, 1, 0], [1, 0, 2], [1, 2, 0]] {
                // Track the matched window [lo, hi) of pat.
                let (mut lo, mut hi) = (order[0], order[0]);
                let mut cur = bi.extend_right(bi.whole(), pat[order[0]]);
                hi += 1;
                for &i in &order[1..] {
                    if i < lo {
                        assert_eq!(i, lo - 1, "orders must grow contiguously");
                        cur = bi.extend_left(cur, pat[i]);
                        lo = i;
                    } else {
                        assert_eq!(i, hi, "orders must grow contiguously");
                        cur = bi.extend_right(cur, pat[i]);
                        hi = i + 1;
                    }
                    assert_same(
                        cur,
                        reference(&fm, &fwd_fm, &pat[lo..hi]),
                        &format!("rate={occ_rate} order={order:?} window=[{lo},{hi})"),
                    );
                    assert_eq!(cur.prim.len(), cur.mirr.len());
                }
            }
        }
    }

    #[test]
    fn fused_extensions_match_single_steps() {
        let (fm, mirror, fwd_fm, _) = setup(b"acaggacttacagacgt", 4);
        let bi = BiFmIndex::new(&fm, &mirror);
        let seed = bi.extend_right(bi.whole(), 1); // "a"
        let left = bi.extend_left_all(seed);
        let right = bi.extend_right_all(seed);
        for z in 1..=4u8 {
            assert_eq!(left[(z - 1) as usize], bi.extend_left(seed, z));
            assert_eq!(right[(z - 1) as usize], bi.extend_right(seed, z));
            assert_same(
                left[(z - 1) as usize],
                reference(&fm, &fwd_fm, &[z, 1]),
                &format!("left z={z}"),
            );
            assert_same(
                right[(z - 1) as usize],
                reference(&fm, &fwd_fm, &[1, z]),
                &format!("right z={z}"),
            );
        }
    }

    #[test]
    fn sentinel_boundary_occurrences_stay_synchronised() {
        // "ca" occurs at the very end of the text (its mirror interval
        // contains the row whose suffix is exactly "ca$") and at the
        // very start (the primary side sees "ac$"). Both boundary rows
        // exercise the sentinel-first group in derive_siblings.
        let (fm, mirror, fwd_fm, text) = setup(b"cagattaca", 4);
        let bi = BiFmIndex::new(&fm, &mirror);
        let c = kmm_dna::encode(b"c").unwrap()[0];
        let a = kmm_dna::encode(b"a").unwrap()[0];
        // Build "ca" both ways.
        let via_right = bi.extend_right(bi.extend_right(bi.whole(), c), a);
        let via_left = bi.extend_left(bi.extend_right(bi.whole(), a), c);
        let want = reference(&fm, &fwd_fm, &[c, a]);
        assert_eq!(via_right, want);
        assert_eq!(via_left, want);
        assert_eq!(want.len(), 2);
        // And locate through the primary agrees with the text.
        let m = 2usize;
        let n = text.len() - 1;
        let mut pos: Vec<usize> = fm
            .locate(via_right.prim)
            .into_iter()
            .map(|p| n - p as usize - m)
            .collect();
        pos.sort_unstable();
        assert_eq!(pos, vec![0, 7]);
    }

    #[test]
    fn empty_intervals_extend_to_empty() {
        let (fm, mirror, _, _) = setup(b"aaaa", 4);
        let bi = BiFmIndex::new(&fm, &mirror);
        let g = 3u8; // absent
        let none = bi.extend_right(bi.whole(), g);
        assert!(none.is_empty());
        for child in bi
            .extend_left_all(none)
            .into_iter()
            .chain(bi.extend_right_all(none))
        {
            assert!(child.is_empty());
        }
    }

    #[test]
    fn prefetch_is_advisory_only() {
        use kmm_telemetry::cost::{CostKind, CostSnapshot};
        let (fm, mirror, _, _) = setup(b"acgtacgt", 4);
        let bi = BiFmIndex::new(&fm, &mirror);
        let before = CostSnapshot::now();
        bi.prefetch_right(bi.whole());
        bi.prefetch_left(bi.whole());
        let delta = CostSnapshot::now().delta(&before);
        assert_eq!(delta.get(CostKind::RankBlocks), 0);
        assert!(delta.get(CostKind::PrefetchIssued) > 0);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;
    use crate::fm_index::FmBuildConfig;

    fn dna_text() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(1u8..=4, 1..120).prop_map(|mut v| {
            v.push(0);
            v
        })
    }

    proptest! {
        /// Across rates {4, 64, 1024}: grow a random pattern window in a
        /// random left/right order; at every step the reverse interval
        /// width equals the forward width, and each extend_left result
        /// equals a naive backward-search (occ) on the mirror text.
        #[test]
        fn bi_interval_invariants(
            text in dna_text(),
            pat in proptest::collection::vec(1u8..=4, 1..8),
            lefts in proptest::collection::vec(any::<bool>(), 7),
            rate_ix in 0usize..3,
        ) {
            let occ_rate = [4usize, 64, 1024][rate_ix];
            let mut rev: Vec<u8> = text[..text.len() - 1].to_vec();
            rev.reverse();
            rev.push(0);
            let cfg = FmBuildConfig { occ_rate, ..FmBuildConfig::default() };
            let fm = FmIndex::new(&rev, cfg);
            let mirror = build_mirror(&text, occ_rate, 1).unwrap();
            let fwd_fm = FmIndex::new(&text, cfg);
            let bi = BiFmIndex::new(&fm, &mirror);

            // Pick a start position, then consume pat with a random
            // mix of left/right extensions keeping the window
            // contiguous.
            let mut lo = lefts.iter().filter(|&&l| l).take(pat.len() - 1).count();
            let mut hi = lo + 1;
            let mut cur = bi.extend_right(bi.whole(), pat[lo]);
            for &go_left in lefts.iter().take(pat.len() - 1) {
                if go_left && lo > 0 {
                    lo -= 1;
                    cur = bi.extend_left(cur, pat[lo]);
                } else if hi < pat.len() {
                    cur = bi.extend_right(cur, pat[hi]);
                    hi += 1;
                } else {
                    lo -= 1;
                    cur = bi.extend_left(cur, pat[lo]);
                }
                // Invariant 1: widths agree.
                prop_assert_eq!(cur.prim.len(), cur.mirr.len());
                // Invariant 2: both components equal plain backward
                // search on their respective texts (empty intervals
                // carry arbitrary coordinates, so compare non-empty
                // ones exactly and empties by emptiness).
                let window = &pat[lo..hi];
                let revw: Vec<u8> = window.iter().rev().copied().collect();
                let want_prim = fm.backward_search(&revw);
                let want_mirr = fwd_fm.backward_search(window);
                if cur.is_empty() || want_prim.is_empty() {
                    prop_assert!(cur.is_empty() && want_prim.is_empty() && want_mirr.is_empty());
                } else {
                    prop_assert_eq!(cur.prim, want_prim);
                    prop_assert_eq!(cur.mirr, want_mirr);
                }
            }
        }
    }
}
