//! # kmm-bwt
//!
//! The Burrows–Wheeler index of Section III: BWT construction from suffix
//! arrays, the rankall occurrence structure (`A_x` arrays of Fig. 2), the
//! `<x, [α, β]>` pair abstraction, and an FM-index offering backward
//! search and sampled-SA `locate`.

pub mod bi;
pub mod bwt;
pub mod fm_index;
pub mod interval;
pub mod limits;
pub mod mmap;
pub mod occ;
pub mod rle;
pub mod sampled_sa;
pub mod serialize;
pub mod simd;

pub use bi::{build_mirror, BiFmIndex, BiInterval};
pub use bwt::{bwt, bwt_from_sa, bwt_from_sa_with, inverse_bwt};
pub use fm_index::{FmBuildConfig, FmIndex, LoadMode, OpenStats};
pub use interval::{Interval, Pair};
pub use limits::{check_text_len, TextTooLarge, MAX_TEXT_LEN};
pub use mmap::{IndexBytes, MmapRegion, U32Store, U64Store};
pub use occ::RankAll;
pub use rle::{run_stats, RleBwt, RunStats};
pub use sampled_sa::{BitRank, SampledSuffixArray};
pub use serialize::{
    SectionEntry, SectionPayload, SectionTable, SerReader, SerWriter, SerializeError,
};
pub use simd::{active_kernel, force_scalar};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::bwt::{bwt, inverse_bwt};
    use crate::fm_index::{FmBuildConfig, FmIndex};

    fn dna_text() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(1u8..=4, 0..150).prop_map(|mut v| {
            v.push(0);
            v
        })
    }

    proptest! {
        #[test]
        fn bwt_roundtrips(text in dna_text()) {
            let l = bwt(&text, kmm_dna::SIGMA);
            prop_assert_eq!(inverse_bwt(&l, kmm_dna::SIGMA), text);
        }

        #[test]
        fn count_matches_naive(
            text in dna_text(),
            pat in proptest::collection::vec(1u8..=4, 1..6),
        ) {
            let fm = FmIndex::new(&text, FmBuildConfig::default());
            let naive = if pat.len() > text.len() { 0 } else {
                (0..=text.len() - pat.len())
                    .filter(|&i| text[i..i + pat.len()] == pat[..])
                    .count()
            };
            prop_assert_eq!(fm.count(&pat) as usize, naive);
        }

        #[test]
        fn locate_positions_really_match(
            text in dna_text(),
            pat in proptest::collection::vec(1u8..=4, 1..6),
        ) {
            let fm = FmIndex::new(
                &text,
                FmBuildConfig { occ_rate: 4, sa_rate: 4, ..FmBuildConfig::default() },
            );
            let iv = fm.backward_search(&pat);
            for p in fm.locate(iv) {
                let p = p as usize;
                prop_assert!(p + pat.len() <= text.len());
                prop_assert_eq!(&text[p..p + pat.len()], &pat[..]);
            }
        }
    }
}
