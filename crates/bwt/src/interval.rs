//! Suffix-array intervals and the paper's `<x, [α, β]>` pairs.
//!
//! Internally every matcher works with half-open suffix-array ranges
//! `[lo, hi)`. The paper presents the same objects as *pairs*
//! `<x, [α, β]>` — a symbol `x` plus the first and last rank of `x` within
//! its `F`-block (Section III-A). [`Pair`] provides that view, used by the
//! S-tree / M-tree code and by the tests that replay the paper's worked
//! examples.

/// A half-open interval `[lo, hi)` of suffix-array rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// First row (inclusive).
    pub lo: u32,
    /// Last row (exclusive).
    pub hi: u32,
}

impl Interval {
    /// Create an interval; empty intervals are normalised to `lo == hi`.
    #[inline]
    pub fn new(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi, "interval lo {lo} > hi {hi}");
        Interval { lo, hi }
    }

    /// The canonical empty interval.
    #[inline]
    pub fn empty() -> Self {
        Interval { lo: 0, hi: 0 }
    }

    /// Number of rows covered.
    #[inline]
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// True when no rows are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// Iterate over the covered rows.
    pub fn rows(&self) -> impl Iterator<Item = u32> {
        self.lo..self.hi
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

/// The paper's `<x, [α, β]>` pair: symbol `x` with 1-based first/last ranks
/// within `F_x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pair {
    /// Symbol code.
    pub sym: u8,
    /// First rank (1-based) of `sym`, inclusive.
    pub alpha: u32,
    /// Last rank (1-based) of `sym`, inclusive.
    pub beta: u32,
}

impl Pair {
    /// Convert an SA interval lying inside symbol `sym`'s F-block (which
    /// starts at row `c_sym`) into the paper's rank pair.
    #[inline]
    pub fn from_interval(sym: u8, c_sym: u32, iv: Interval) -> Self {
        debug_assert!(iv.lo >= c_sym, "interval below the F-block");
        Pair {
            sym,
            alpha: iv.lo - c_sym + 1,
            beta: iv.hi - c_sym,
        }
    }

    /// Convert back to the SA interval given the F-block start `c_sym`.
    #[inline]
    pub fn to_interval(&self, c_sym: u32) -> Interval {
        Interval::new(c_sym + self.alpha - 1, c_sym + self.beta)
    }

    /// Number of occurrences represented.
    #[inline]
    pub fn count(&self) -> u32 {
        self.beta + 1 - self.alpha
    }
}

impl std::fmt::Display for Pair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = kmm_dna::decode_base(self.sym) as char;
        write!(f, "<{c}, [{}, {}]>", self.alpha, self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let iv = Interval::new(3, 7);
        assert_eq!(iv.len(), 4);
        assert!(!iv.is_empty());
        assert_eq!(iv.rows().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
        assert!(Interval::empty().is_empty());
        assert_eq!(Interval::new(5, 5).len(), 0);
        assert_eq!(iv.to_string(), "[3, 7)");
    }

    #[test]
    fn pair_roundtrip() {
        // Paper Fig. 2: F_A = F[1..5] (1-based) = rows 1..=4 (0-based),
        // i.e. <a, [1, 4]> with the a-block starting at row 1.
        let iv = Interval::new(1, 5);
        let pair = Pair::from_interval(1, 1, iv);
        assert_eq!(
            pair,
            Pair {
                sym: 1,
                alpha: 1,
                beta: 4
            }
        );
        assert_eq!(pair.to_interval(1), iv);
        assert_eq!(pair.count(), 4);
        assert_eq!(pair.to_string(), "<a, [1, 4]>");
    }

    #[test]
    fn paper_search_sequence_pairs() {
        // The search of r = aca in Section III-A produces the sequence
        // <a, [1,4]>, <c, [1,2]>, <a, [2,3]>. Check the last one maps to
        // rows 2..=3 when the a-block starts at row 1.
        let pair = Pair {
            sym: 1,
            alpha: 2,
            beta: 3,
        };
        assert_eq!(pair.to_interval(1), Interval::new(2, 4));
        assert_eq!(pair.count(), 2);
    }
}
