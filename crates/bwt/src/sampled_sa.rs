//! Sampled suffix arrays for `locate` queries.
//!
//! The BWT index needs suffix-array values only to translate matched SA
//! rows back into text positions. Storing the full SA costs 4 bytes per
//! character; the standard compromise (also behind the paper's "different
//! compression rates of auxiliary arrays" remark in Section II) keeps the
//! value `SA[row]` only when it is a multiple of the sampling rate, plus a
//! rank-indexed bit vector marking the sampled rows. Unsampled rows are
//! resolved by LF-stepping until a sampled row is hit — at most
//! `rate - 1` steps.

use kmm_par::{aligned_spans, ThreadPool};

use crate::limits::{check_text_len, TextTooLarge};
use crate::mmap::{U32Store, U64Store};

/// A bit vector with O(1) rank support (one u32 prefix count per 64-bit word).
#[derive(Debug, Clone)]
pub struct BitRank {
    words: U64Store,
    prefix: U32Store,
    len: usize,
}

impl BitRank {
    /// Build from a boolean slice.
    pub fn new(bits: &[bool]) -> Self {
        let n = bits.len();
        let mut words = vec![0u64; n.div_ceil(64)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        let mut prefix = Vec::with_capacity(words.len() + 1);
        let mut acc = 0u32;
        prefix.push(0);
        for &w in &words {
            acc += w.count_ones();
            prefix.push(acc);
        }
        BitRank {
            words: words.into(),
            prefix: prefix.into(),
            len: n,
        }
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits in `[0, i)`.
    #[inline]
    pub fn rank(&self, i: usize) -> u32 {
        debug_assert!(i <= self.len);
        let w = i / 64;
        let mut r = self.prefix[w];
        let rem = i % 64;
        if rem > 0 {
            r += (self.words[w] & ((1u64 << rem) - 1)).count_ones();
        }
        r
    }
}

/// SA samples at rows whose value is a multiple of `rate`.
#[derive(Debug, Clone)]
pub struct SampledSuffixArray {
    marked: BitRank,
    samples: U32Store,
    rate: usize,
}

impl SampledSuffixArray {
    /// Sample a full suffix array at the given rate (`rate = 1` keeps all).
    pub fn new(sa: &[u32], rate: usize) -> Self {
        Self::new_with(sa, rate, &ThreadPool::serial())
    }

    /// [`Self::new`] on a thread pool; panics on oversized inputs.
    pub fn new_with(sa: &[u32], rate: usize, pool: &ThreadPool) -> Self {
        match Self::try_new_with(sa, rate, pool) {
            Ok(ssa) => ssa,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible single-threaded build (see [`Self::try_new_with`]).
    pub fn try_new(sa: &[u32], rate: usize) -> Result<Self, TextTooLarge> {
        Self::try_new_with(sa, rate, &ThreadPool::serial())
    }

    /// Sample a suffix array, rejecting inputs too long for the `u32`
    /// sample layout.
    ///
    /// Mark-bitmap words and retained samples are extracted per
    /// 64-row-aligned segment across `pool` (each worker owns whole
    /// bitmap words; samples stay in row order because segments are
    /// merged in order), then the rank directory is rebuilt with one
    /// cheap serial prefix pass. Output is bit-identical to the serial
    /// build at any thread count.
    pub fn try_new_with(sa: &[u32], rate: usize, pool: &ThreadPool) -> Result<Self, TextTooLarge> {
        assert!(rate >= 1, "sampling rate must be >= 1");
        check_text_len(sa.len())?;
        let spans = aligned_spans(sa.len(), pool.threads() * 4, 64);
        let parts = pool.par_map(&spans, |_, span| {
            let mut words = vec![0u64; (span.end - span.start).div_ceil(64)];
            let mut samples = Vec::new();
            for (off, &v) in sa[span.clone()].iter().enumerate() {
                if (v as usize).is_multiple_of(rate) {
                    words[off / 64] |= 1u64 << (off % 64);
                    samples.push(v);
                }
            }
            (words, samples)
        });
        let mut words = Vec::with_capacity(sa.len().div_ceil(64));
        let mut samples = Vec::with_capacity(sa.len() / rate + 1);
        for (w, s) in parts {
            words.extend(w);
            samples.extend(s);
        }
        let mut prefix = Vec::with_capacity(words.len() + 1);
        let mut acc = 0u32;
        prefix.push(0);
        for &w in &words {
            acc += w.count_ones();
            prefix.push(acc);
        }
        Ok(SampledSuffixArray {
            marked: BitRank {
                words: words.into(),
                prefix: prefix.into(),
                len: sa.len(),
            },
            samples: samples.into(),
            rate,
        })
    }

    /// Assemble from storage already validated against v3 sections
    /// (`words`/`prefix`/`samples` may borrow the index file). The
    /// structural checks mirror [`Self::read_from`] plus the rank-
    /// directory invariants that make every later array access in-
    /// bounds by construction on well-formed data: the stored prefix
    /// must be exactly the popcount prefix of the stored words, and the
    /// sample count must equal the total mark count.
    pub(crate) fn from_store(
        len: usize,
        rate: usize,
        words: U64Store,
        prefix: U32Store,
        samples: U32Store,
        verify_prefix: bool,
    ) -> Result<Self, crate::serialize::SerializeError> {
        use crate::serialize::SerializeError;
        if rate == 0 {
            return Err(SerializeError::Malformed("sa sampling rate"));
        }
        if words.len() != len.div_ceil(64) {
            return Err(SerializeError::Malformed("mark bitmap length"));
        }
        if prefix.len() != words.len() + 1 {
            return Err(SerializeError::Malformed("rank directory length"));
        }
        if prefix.first() != Some(&0) && len > 0 {
            return Err(SerializeError::Malformed("rank directory origin"));
        }
        if prefix.last().copied().unwrap_or(0) as usize != samples.len() {
            return Err(SerializeError::Malformed("sample count"));
        }
        // With rate >= 1 the SA value 0 is always sampled, so a
        // non-empty array without samples cannot be well-formed (and
        // would make `resolve` walk forever).
        if len > 0 && samples.is_empty() {
            return Err(SerializeError::Malformed("sample count"));
        }
        if verify_prefix {
            let mut acc = 0u32;
            for (w, &p) in words.iter().zip(prefix.iter().skip(1)) {
                acc = acc.wrapping_add(w.count_ones());
                if p != acc {
                    return Err(SerializeError::Malformed("rank directory"));
                }
            }
        }
        Ok(SampledSuffixArray {
            marked: BitRank { words, prefix, len },
            samples,
            rate,
        })
    }

    /// The mark-bitmap words (for the v3 section writer).
    pub(crate) fn mark_words_raw(&self) -> &[u64] {
        &self.marked.words
    }

    /// The rank-directory prefix counts (for the v3 section writer —
    /// stored so a zero-copy open needs no O(n) rebuild).
    pub(crate) fn prefix_raw(&self) -> &[u32] {
        &self.marked.prefix
    }

    /// The retained SA samples (for the v3 section writer).
    pub(crate) fn samples_raw(&self) -> &[u32] {
        &self.samples
    }

    /// Rows covered by the mark bitmap (== the indexed text length).
    pub(crate) fn marked_len(&self) -> usize {
        self.marked.len
    }

    /// True when any backing array borrows an index file region.
    pub fn is_borrowed(&self) -> bool {
        self.marked.words.is_borrowed() || self.samples.is_borrowed()
    }

    /// If `row` is sampled, its SA value.
    #[inline]
    pub fn get(&self, row: usize) -> Option<u32> {
        if self.marked.get(row) {
            Some(self.samples[self.marked.rank(row) as usize])
        } else {
            None
        }
    }

    /// Resolve `SA[row]` by walking `lf` until a sampled row is found.
    /// `lf(row)` must map a row to the row of the preceding suffix.
    pub fn resolve(&self, mut row: usize, lf: impl Fn(usize) -> usize) -> u32 {
        let mut steps = 0u32;
        loop {
            if let Some(v) = self.get(row) {
                return v + steps;
            }
            row = lf(row);
            steps += 1;
            debug_assert!(
                (steps as usize) <= self.rate,
                "locate walked further than the sampling rate"
            );
        }
    }

    /// Configured sampling rate.
    pub fn rate(&self) -> usize {
        self.rate
    }

    /// Heap bytes used by samples + marks.
    pub fn heap_bytes(&self) -> usize {
        self.samples.len() * 4 + self.marked.words.len() * 8 + self.marked.prefix.len() * 4
    }

    /// Serialize into a [`SerWriter`](crate::serialize::SerWriter) stream.
    pub fn write_to<W: std::io::Write>(
        &self,
        w: &mut crate::serialize::SerWriter<W>,
    ) -> std::io::Result<()> {
        w.u64(self.rate as u64)?;
        w.u64(self.marked.len as u64)?;
        w.vec_u64(&self.marked.words)?;
        w.vec_u32(&self.samples)
    }

    /// Deserialize from a [`SerReader`](crate::serialize::SerReader) stream.
    pub fn read_from<R: std::io::Read>(
        r: &mut crate::serialize::SerReader<R>,
    ) -> Result<Self, crate::serialize::SerializeError> {
        use crate::serialize::SerializeError;
        let rate = r.u64()? as usize;
        if rate == 0 {
            return Err(SerializeError::Malformed("sa sampling rate"));
        }
        let len = r.u64()? as usize;
        let words = r.vec_u64()?;
        if words.len() != len.div_ceil(64) {
            return Err(SerializeError::Malformed("mark bitmap length"));
        }
        // Rebuild the rank directory from the words.
        let mut prefix = Vec::with_capacity(words.len() + 1);
        let mut acc = 0u32;
        prefix.push(0);
        for &w in &words {
            acc += w.count_ones();
            prefix.push(acc);
        }
        let samples = r.vec_u32()?;
        if samples.len() != acc as usize {
            return Err(SerializeError::Malformed("sample count"));
        }
        Ok(SampledSuffixArray {
            marked: BitRank {
                words: words.into(),
                prefix: prefix.into(),
                len,
            },
            samples: samples.into(),
            rate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitrank_matches_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let n = rng.gen_range(0..300);
            let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.3)).collect();
            let br = BitRank::new(&bits);
            assert_eq!(br.len(), n);
            let mut acc = 0u32;
            for (i, &bit) in bits.iter().enumerate() {
                assert_eq!(br.rank(i), acc);
                assert_eq!(br.get(i), bit);
                if bit {
                    acc += 1;
                }
            }
            assert_eq!(br.rank(n), acc);
        }
    }

    #[test]
    fn full_sampling_is_identity() {
        let sa = vec![7u32, 6, 4, 0, 2, 5, 1, 3];
        let s = SampledSuffixArray::new(&sa, 1);
        for (row, &v) in sa.iter().enumerate() {
            assert_eq!(s.get(row), Some(v));
        }
    }

    #[test]
    fn sparse_sampling_marks_multiples() {
        let sa = vec![7u32, 6, 4, 0, 2, 5, 1, 3];
        let s = SampledSuffixArray::new(&sa, 4);
        // Values 0 and 4 are multiples of 4.
        assert_eq!(s.get(3), Some(0));
        assert_eq!(s.get(2), Some(4));
        assert_eq!(s.get(0), None);
        assert_eq!(s.rate(), 4);
    }

    #[test]
    fn resolve_via_lf_on_real_text() {
        // Build a real BWT + LF over the paper's text and check resolve
        // reproduces the full SA at every rate.
        let text = kmm_dna::encode_text(b"acagacagattaca").unwrap();
        let sa = kmm_suffix::suffix_array(&text, kmm_dna::SIGMA);
        let l = crate::bwt::bwt_from_sa(&text, &sa);
        // LF via counting (reference implementation).
        let sigma = kmm_dna::SIGMA;
        let mut c = vec![0usize; sigma + 1];
        for &x in &l {
            c[x as usize + 1] += 1;
        }
        for i in 0..sigma {
            c[i + 1] += c[i];
        }
        let mut seen = vec![0usize; sigma];
        let mut lf = vec![0usize; l.len()];
        for (i, &x) in l.iter().enumerate() {
            lf[i] = c[x as usize] + seen[x as usize];
            seen[x as usize] += 1;
        }
        for rate in [1usize, 2, 4, 8] {
            let s = SampledSuffixArray::new(&sa, rate);
            for (row, &v) in sa.iter().enumerate() {
                assert_eq!(s.resolve(row, |r| lf[r]), v, "rate {rate} row {row}");
            }
        }
    }

    #[test]
    fn sparse_uses_less_space() {
        let sa: Vec<u32> = (0..10_000u32).rev().collect();
        let dense = SampledSuffixArray::new(&sa, 1);
        let sparse = SampledSuffixArray::new(&sa, 32);
        assert!(sparse.heap_bytes() < dense.heap_bytes() / 4);
    }

    #[test]
    #[should_panic(expected = "rate must be >= 1")]
    fn rejects_zero_rate() {
        SampledSuffixArray::new(&[0], 0);
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for n in [1usize, 63, 64, 65, 500, 4096] {
            // A permutation-like SA stand-in: distinct values in 0..n.
            let mut sa: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                sa.swap(i, rng.gen_range(0..=i));
            }
            for rate in [1usize, 4, 16] {
                let mut serial_bytes = Vec::new();
                SampledSuffixArray::new(&sa, rate)
                    .write_to(&mut crate::serialize::SerWriter::new(&mut serial_bytes))
                    .unwrap();
                for threads in [2usize, 3, 8] {
                    let par = SampledSuffixArray::new_with(&sa, rate, &ThreadPool::new(threads));
                    let mut par_bytes = Vec::new();
                    par.write_to(&mut crate::serialize::SerWriter::new(&mut par_bytes))
                        .unwrap();
                    assert_eq!(
                        par_bytes, serial_bytes,
                        "n={n} rate={rate} threads={threads}"
                    );
                    assert_eq!(par.get(0), SampledSuffixArray::new(&sa, rate).get(0));
                }
            }
        }
        assert!(SampledSuffixArray::try_new(&[0, 1, 2], 2).is_ok());
    }
}
