//! The "rankall" occurrence structure over the BWT's `L` column.
//!
//! Section III-A of the paper stores, for each base `x`, an array `A_x`
//! with `A_x[k]` = number of occurrences of `x` in `L[1..k]`, sampled every
//! few positions to trade space for scan time ("we can also create
//! rankalls only for part of the elements to reduce the space overhead,
//! but at cost of some more searches", Fig. 2). The experiments use 2 bits
//! per `L` character and one 32-bit rankall row every 4 elements.
//!
//! [`RankAll`] stores `L` in *cache-interleaved blocks*, the layout BWA
//! popularised for its occ arrays: each block holds the four `u32`
//! checkpoint counts immediately followed by the 2-bit packed `L` words it
//! covers, so resolving an `occ` touches one contiguous run of memory — a
//! single cache miss — instead of a checkpoint row and a packed word in
//! two unrelated arrays. The tail scan is branch-free XOR/popcount word
//! counting, answering `occ(c, i) = |{ j < i : L[j] = c }|` in
//! `O(block_span/32)` word steps, and [`RankAll::occ_all`] resolves all
//! four bases in one sweep of the same block.

use kmm_dna::{BASES, SENTINEL, SIGMA};
use kmm_par::{aligned_spans, ThreadPool};
use kmm_telemetry::cost::{self, CostKind};

use crate::limits::{check_text_len, TextTooLarge};
use crate::mmap::U64Store;
use crate::simd;

/// Symbols stored per `u64` word (2 bits each).
const SLOTS_PER_WORD: usize = 32;

/// Words of checkpoint header per block: four `u32` counts in two words.
const HEADER_WORDS: usize = 2;

/// Least common multiple; block spans must sit on both the packed word
/// grid and the checkpoint grid.
fn lcm(a: usize, b: usize) -> usize {
    fn gcd(mut a: usize, mut b: usize) -> usize {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    a / gcd(a, b) * b
}

/// Per-segment output of the parallel build's scan pass.
struct SegScan {
    /// Interleaved blocks covering the segment (block-aligned start),
    /// headers holding counts relative to the segment start.
    blocks: Vec<u64>,
    /// Per-symbol totals within the segment (sentinel included).
    counts: [u32; SIGMA],
    /// Sentinel positions seen (globally there must be exactly one).
    dollars: Vec<usize>,
}

/// Rank structure over an `L` column, stored as cache-interleaved blocks.
///
/// Every block is `HEADER_WORDS + block_span/32` words: the four base
/// checkpoint counts (occurrences in `L[0 .. block_start)`) packed as two
/// `u64`s, then the 2-bit packed `L` slice the block covers. The sentinel
/// slot is packed as base 0 (`a`) and excluded from counts via
/// `dollar_pos`.
#[derive(Debug, Clone)]
pub struct RankAll {
    /// Interleaved blocks, `blocks_len() * block_words` words — owned
    /// after a build, possibly borrowed from a mapped v3 index file.
    blocks: U64Store,
    /// Configured checkpoint rate (kept for the API and serialization;
    /// the effective span is `lcm(rate, 32)`).
    rate: usize,
    /// Positions covered per block (`lcm(rate, SLOTS_PER_WORD)`).
    block_span: usize,
    /// Words per block (`HEADER_WORDS + block_span / SLOTS_PER_WORD`).
    block_words: usize,
    /// Position of the unique sentinel in `L`.
    dollar_pos: usize,
    /// Total length of `L`.
    len: usize,
    /// Total per-symbol counts (for `count(c)` and validation).
    totals: [u32; SIGMA],
}

// The per-word popcount tallies live in `crate::simd`: one shared
// [`simd::plane_counts`] helper feeds the scalar kernel, the AVX2 kernel,
// and (through [`simd::count_all`]) both `occ` and `occ_all` here, so the
// per-base and fused paths — and the scalar and SIMD paths — cannot
// drift apart.

impl RankAll {
    /// Build over an `L` column containing exactly one sentinel.
    ///
    /// `rate` must be a positive multiple of 4; the paper's layout
    /// corresponds to `rate = 4`, the default index uses 64.
    pub fn new(l: &[u8], rate: usize) -> Self {
        Self::new_with(l, rate, &ThreadPool::serial())
    }

    /// [`Self::new`] on a thread pool; panics on oversized inputs.
    pub fn new_with(l: &[u8], rate: usize, pool: &ThreadPool) -> Self {
        match Self::try_new_with(l, rate, pool) {
            Ok(rank) => rank,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible single-threaded build (see [`Self::try_new_with`]).
    pub fn try_new(l: &[u8], rate: usize) -> Result<Self, TextTooLarge> {
        Self::try_new_with(l, rate, &ThreadPool::serial())
    }

    /// Build over an `L` column, rejecting inputs too long for the `u32`
    /// checkpoint/total layout instead of silently wrapping counts.
    ///
    /// The build is data-parallel over `pool`: segment boundaries are
    /// aligned to the block span, so every interleaved block is produced
    /// by exactly one worker; a serial fix-up then promotes the block
    /// headers from segment-local to global counts. The merged structure
    /// is bit-identical to the serial build at any thread count.
    pub fn try_new_with(l: &[u8], rate: usize, pool: &ThreadPool) -> Result<Self, TextTooLarge> {
        assert!(
            rate >= 4 && rate.is_multiple_of(4),
            "rate must be a positive multiple of 4"
        );
        check_text_len(l.len())?;
        let n = l.len();
        let block_span = lcm(rate, SLOTS_PER_WORD);
        let block_words = HEADER_WORDS + block_span / SLOTS_PER_WORD;

        // Pass 1 (parallel): pack and count whole blocks, headers relative
        // to the segment start. The sentinel packs as code 0 wherever it
        // is, so the pass needs no global information.
        let spans = aligned_spans(n, pool.threads() * 4, block_span);
        let segs = pool.par_map(&spans, |_, span| {
            let len = span.end - span.start;
            let mut blocks = vec![0u64; len.div_ceil(block_span) * block_words];
            let mut counts = [0u32; SIGMA];
            let mut running = [0u32; BASES];
            let mut dollars = Vec::new();
            for (off, &c) in l[span.clone()].iter().enumerate() {
                let i = span.start + off;
                assert!((c as usize) < SIGMA, "symbol {c} out of alphabet");
                let base = off / block_span * block_words;
                if off.is_multiple_of(block_span) {
                    blocks[base] = running[0] as u64 | (running[1] as u64) << 32;
                    blocks[base + 1] = running[2] as u64 | (running[3] as u64) << 32;
                }
                counts[c as usize] += 1;
                let two = if c == SENTINEL {
                    dollars.push(i);
                    0
                } else {
                    running[(c - 1) as usize] += 1;
                    (c - 1) as u64
                };
                let word = base + HEADER_WORDS + (off % block_span) / SLOTS_PER_WORD;
                blocks[word] |= two << ((off % SLOTS_PER_WORD) * 2);
            }
            SegScan {
                blocks,
                counts,
                dollars,
            }
        });

        let mut totals = [0u32; SIGMA];
        let mut dollars = Vec::new();
        for seg in &segs {
            for (t, &c) in totals.iter_mut().zip(&seg.counts) {
                *t += c;
            }
            dollars.extend_from_slice(&seg.dollars);
        }
        assert!(!dollars.is_empty(), "L must contain the sentinel");
        assert_eq!(dollars.len(), 1, "L must contain exactly one sentinel");
        let dollar_pos = dollars[0];

        // Pass 2 (serial, O(blocks)): concatenate and promote block
        // headers to global counts with an exclusive prefix of the
        // per-segment totals. Two word writes per block — not worth
        // fanning out, and trivially deterministic.
        let mut blocks = Vec::with_capacity(n.div_ceil(block_span) * block_words);
        let mut base = [0u32; BASES];
        for seg in &segs {
            let first = blocks.len();
            blocks.extend_from_slice(&seg.blocks);
            for header in blocks[first..].chunks_exact_mut(block_words) {
                header[0] += base[0] as u64 | (base[1] as u64) << 32;
                header[1] += base[2] as u64 | (base[3] as u64) << 32;
            }
            for (lane, b) in base.iter_mut().enumerate() {
                *b += seg.counts[lane + 1];
            }
        }
        debug_assert_eq!(blocks.len(), n.div_ceil(block_span) * block_words);

        Ok(RankAll {
            blocks: blocks.into(),
            rate,
            block_span,
            block_words,
            dollar_pos,
            len: n,
            totals,
        })
    }

    /// Length of `L`.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if `L` is empty (never the case after `new`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Position of the sentinel in `L`.
    #[inline]
    pub fn dollar_pos(&self) -> usize {
        self.dollar_pos
    }

    /// The four checkpoint counts of the block containing position `i`.
    #[inline]
    fn header(&self, base: usize) -> [u32; 4] {
        let (w0, w1) = (self.blocks[base], self.blocks[base + 1]);
        [w0 as u32, (w0 >> 32) as u32, w1 as u32, (w1 >> 32) as u32]
    }

    /// The symbol `L[i]`.
    #[inline]
    pub fn symbol(&self, i: usize) -> u8 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        if i == self.dollar_pos {
            SENTINEL
        } else {
            let word = i / self.block_span * self.block_words
                + HEADER_WORDS
                + (i % self.block_span) / SLOTS_PER_WORD;
            cost::bump2(CostKind::RankBlocks, 1, CostKind::RankBytes, 8);
            ((self.blocks[word] >> ((i % SLOTS_PER_WORD) * 2)) & 0b11) as u8 + 1
        }
    }

    /// Bytes of block data a rank at offset `off` into its block reads:
    /// the checkpoint header plus every packed word the tail scan
    /// touches. Deterministic — this is the unit `search.rank_bytes_
    /// scanned` is reported in.
    #[inline]
    fn scan_bytes(off: usize) -> u64 {
        (HEADER_WORDS * 8 + off.div_ceil(SLOTS_PER_WORD) * 8) as u64
    }

    /// Tally of the block containing `i` up to `i` (exclusive): the
    /// block's checkpoint header plus the packed-word counts of
    /// `[block_start, i)` via the shared (dispatching) kernel, with the
    /// sentinel slot cancelled out of lane 0. `i` must be `< len`.
    /// Both `occ` and `occ_all` — and the pair fusion — reduce to this.
    #[inline]
    fn block_counts_upto(&self, i: usize) -> [u32; 4] {
        let block = i / self.block_span;
        let start = block * self.block_span;
        let base = block * self.block_words;
        let mut counts = self.header(base);
        let payload = &self.blocks[base + HEADER_WORDS..base + self.block_words];
        simd::count_all(payload, i - start, &mut counts);
        // The sentinel slot was packed as base 0; cancel it if counted in
        // the scanned region (headers already exclude it).
        if self.dollar_pos >= start && self.dollar_pos < i {
            counts[0] -= 1;
        }
        counts
    }

    /// Number of occurrences of base `c` (codes 1..=4) in `L[0..i)`.
    ///
    /// This is the paper's `A_c[i - 1]` (their arrays are 1-based). One
    /// block visit: header counts and the packed tail share a block.
    #[inline]
    pub fn occ(&self, c: u8, i: usize) -> u32 {
        debug_assert!(
            c >= 1 && (c as usize) < SIGMA,
            "occ is defined for bases only"
        );
        debug_assert!(i <= self.len, "occ index {i} beyond len {}", self.len);
        if i == self.len {
            return self.totals[c as usize];
        }
        cost::bump2(
            CostKind::RankBlocks,
            1,
            CostKind::RankBytes,
            Self::scan_bytes(i % self.block_span),
        );
        self.block_counts_upto(i)[(c - 1) as usize]
    }

    /// Occurrence counts of all four bases in `L[0..i)` — the fused form
    /// of four `occ` calls, resolved with the same single block visit:
    /// `occ_all(i)[c - 1] == occ(c, i)` for every base code `c`.
    #[inline]
    pub fn occ_all(&self, i: usize) -> [u32; 4] {
        debug_assert!(i <= self.len, "occ index {i} beyond len {}", self.len);
        if i == self.len {
            return std::array::from_fn(|lane| self.totals[lane + 1]);
        }
        cost::bump2(
            CostKind::RankBlocks,
            1,
            CostKind::RankBytes,
            Self::scan_bytes(i % self.block_span),
        );
        self.block_counts_upto(i)
    }

    /// `(occ_all(lo), occ_all(hi))` with the block visit shared when both
    /// boundaries land in the same interleaved block — the common case
    /// for the narrow intervals a backward search spends its time in.
    /// One block visit instead of two; bit-identical results.
    #[inline]
    pub fn occ_all_pair(&self, lo: usize, hi: usize) -> ([u32; 4], [u32; 4]) {
        debug_assert!(lo <= hi, "interval boundaries out of order");
        debug_assert!(hi <= self.len, "occ index {hi} beyond len {}", self.len);
        if lo == hi {
            let c = self.occ_all(lo);
            return (c, c);
        }
        if hi == self.len || lo / self.block_span != hi / self.block_span {
            return (self.occ_all(lo), self.occ_all(hi));
        }
        cost::bump2(
            CostKind::RankBlocks,
            1,
            CostKind::RankBytes,
            Self::scan_bytes(hi % self.block_span),
        );
        cost::bump(CostKind::OccPairFused, 1);
        (self.block_counts_upto(lo), self.block_counts_upto(hi))
    }

    /// Hint the block holding position `i` into cache. A prefetch is a
    /// latency hint, not a rank lookup, so it leaves `RankBlocks` /
    /// `RankBytes` untouched — but the *issue count* is a deterministic
    /// function of the search path (counted before any kernel dispatch,
    /// so `KMM_NO_SIMD` cannot change it) and feeds the EXPLAIN
    /// engine's `prefetch_issued` attribution. Out-of-range positions
    /// are ignored, so callers can pass tentative LF targets freely.
    #[inline]
    pub fn prefetch(&self, i: usize) {
        if i < self.len {
            cost::bump(CostKind::PrefetchIssued, 1);
            let base = i / self.block_span * self.block_words;
            simd::prefetch_read(self.blocks[base..].as_ptr() as *const u8);
        }
    }

    /// Total number of occurrences of symbol `c` in `L`.
    #[inline]
    pub fn count(&self, c: u8) -> u32 {
        self.totals[c as usize]
    }

    /// Number of interleaved blocks.
    #[inline]
    fn blocks_len(&self) -> usize {
        self.blocks.len() / self.block_words
    }

    /// Heap bytes used (the interleaved block array), for the space
    /// ablation. Equals [`Self::payload_bytes`] + [`Self::overhead_bytes`].
    pub fn heap_bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<u64>()
    }

    /// Bytes holding 2-bit packed `L` payload (incl. tail padding).
    pub fn payload_bytes(&self) -> usize {
        self.blocks_len() * (self.block_words - HEADER_WORDS) * std::mem::size_of::<u64>()
    }

    /// Bytes of per-block checkpoint headers — the rank acceleration
    /// overhead on top of the packed text.
    pub fn overhead_bytes(&self) -> usize {
        self.blocks_len() * HEADER_WORDS * std::mem::size_of::<u64>()
    }

    /// The configured checkpoint rate.
    pub fn rate(&self) -> usize {
        self.rate
    }

    /// Positions covered per interleaved block (`lcm(rate, 32)`).
    pub fn block_span(&self) -> usize {
        self.block_span
    }

    /// The raw interleaved block words (for the v3 section writer).
    pub(crate) fn block_words_raw(&self) -> &[u64] {
        &self.blocks
    }

    /// True when the block array borrows a mapped/owned byte region
    /// instead of owning a `Vec` (i.e. the index was opened zero-copy).
    pub fn is_borrowed(&self) -> bool {
        self.blocks.is_borrowed()
    }

    /// Assemble from storage already validated against a v3 section:
    /// `blocks` may borrow the index file. Validation mirrors
    /// [`Self::read_from`] and must reject every inconsistency that
    /// could index out of bounds later.
    pub(crate) fn from_store(
        blocks: U64Store,
        rate: usize,
        dollar_pos: usize,
        len: usize,
        totals: [u32; SIGMA],
    ) -> Result<Self, crate::serialize::SerializeError> {
        use crate::serialize::SerializeError;
        if rate < 4 || !rate.is_multiple_of(4) {
            return Err(SerializeError::Malformed("rankall rate"));
        }
        if dollar_pos >= len {
            return Err(SerializeError::Malformed("sentinel position"));
        }
        let block_span = lcm(rate, SLOTS_PER_WORD);
        let block_words = HEADER_WORDS + block_span / SLOTS_PER_WORD;
        if blocks.len() != len.div_ceil(block_span) * block_words {
            return Err(SerializeError::Malformed("block array length"));
        }
        Ok(RankAll {
            blocks,
            rate,
            block_span,
            block_words,
            dollar_pos,
            len,
            totals,
        })
    }

    /// Serialize into a [`SerWriter`](crate::serialize::SerWriter) stream.
    pub fn write_to<W: std::io::Write>(
        &self,
        w: &mut crate::serialize::SerWriter<W>,
    ) -> std::io::Result<()> {
        w.u64(self.len as u64)?;
        w.u64(self.rate as u64)?;
        w.u64(self.dollar_pos as u64)?;
        for &t in &self.totals {
            w.u32(t)?;
        }
        w.vec_u64(&self.blocks)
    }

    /// Deserialize from a [`SerReader`](crate::serialize::SerReader) stream.
    pub fn read_from<R: std::io::Read>(
        r: &mut crate::serialize::SerReader<R>,
    ) -> Result<Self, crate::serialize::SerializeError> {
        use crate::serialize::SerializeError;
        let len = r.u64()? as usize;
        let rate = r.u64()? as usize;
        let dollar_pos = r.u64()? as usize;
        if rate < 4 || !rate.is_multiple_of(4) {
            return Err(SerializeError::Malformed("rankall rate"));
        }
        if dollar_pos >= len {
            return Err(SerializeError::Malformed("sentinel position"));
        }
        let mut totals = [0u32; SIGMA];
        for t in totals.iter_mut() {
            *t = r.u32()?;
        }
        let block_span = lcm(rate, SLOTS_PER_WORD);
        let block_words = HEADER_WORDS + block_span / SLOTS_PER_WORD;
        let blocks = r.vec_u64()?;
        if blocks.len() != len.div_ceil(block_span) * block_words {
            return Err(SerializeError::Malformed("block array length"));
        }
        Ok(RankAll {
            blocks: blocks.into(),
            rate,
            block_span,
            block_words,
            dollar_pos,
            len,
            totals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_occ(l: &[u8], c: u8, i: usize) -> u32 {
        l[..i].iter().filter(|&&x| x == c).count() as u32
    }

    fn check_all(l: &[u8], rate: usize) {
        let r = RankAll::new(l, rate);
        assert_eq!(r.len(), l.len());
        for i in 0..=l.len() {
            let fused = r.occ_all(i);
            for c in 1..SIGMA as u8 {
                assert_eq!(
                    r.occ(c, i),
                    naive_occ(l, c, i),
                    "occ({c}, {i}) rate {rate} l={l:?}"
                );
                assert_eq!(
                    fused[(c - 1) as usize],
                    r.occ(c, i),
                    "occ_all({i})[{}] rate {rate} l={l:?}",
                    c - 1
                );
            }
        }
        for (i, &c) in l.iter().enumerate() {
            assert_eq!(r.symbol(i), c, "symbol({i})");
        }
        // The pair fusion agrees with two independent lookups for every
        // boundary combination (same-block, cross-block, len, empty).
        for lo in (0..=l.len()).step_by(3) {
            for hi in (lo..=l.len()).step_by(5) {
                assert_eq!(
                    r.occ_all_pair(lo, hi),
                    (r.occ_all(lo), r.occ_all(hi)),
                    "pair({lo}, {hi}) rate {rate}"
                );
            }
        }
    }

    #[test]
    fn paper_figure2_values() {
        // Fig. 2: L = BWT(acagaca$) = acg$caaa, rankall rows every 4.
        let mut l = kmm_dna::encode(b"acg").unwrap();
        l.push(0);
        l.extend(kmm_dna::encode(b"caaa").unwrap());
        assert_eq!(kmm_dna::decode_string(&l), "acg$caaa");
        let r = RankAll::new(&l, 4);
        assert_eq!(r.occ(1, 8), 4);
        assert_eq!(r.occ(2, 8), 2);
        assert_eq!(r.occ(3, 8), 1);
        assert_eq!(r.occ(4, 8), 0);
        // Paper's example: A_g[5] = A_g[7] = 1 (1-based) means no g within
        // L[6..7] (1-based) = rows 5..=6 (0-based).
        assert_eq!(r.occ(3, 5), 1);
        assert_eq!(r.occ(3, 7), 1);
        // And c does occur within L[1..5]: [A_c[0]+1, A_c[5]] = [1, 2].
        assert_eq!(r.occ(2, 0), 0);
        assert_eq!(r.occ(2, 5), 2);
        assert_eq!(r.dollar_pos(), 3);
        assert_eq!(r.occ_all(8), [4, 2, 1, 0]);
    }

    #[test]
    fn exhaustive_small_cases() {
        for n in 1usize..=6 {
            for dollar in 0..n {
                let mut l = vec![0u8; n];
                for variant in 0..3 {
                    for (i, slot) in l.iter_mut().enumerate() {
                        if i == dollar {
                            *slot = 0;
                        } else {
                            *slot = match variant {
                                0 => ((i * 7 + 1) % 4 + 1) as u8,
                                1 => 1,
                                _ => ((i % 2) + 3) as u8,
                            };
                        }
                    }
                    check_all(&l, 4);
                }
            }
        }
    }

    #[test]
    fn random_columns_all_rates() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for rate in [4usize, 8, 16, 64, 128] {
            for _ in 0..20 {
                let n = rng.gen_range(1..500);
                let dollar = rng.gen_range(0..n);
                let l: Vec<u8> = (0..n)
                    .map(|i| if i == dollar { 0 } else { rng.gen_range(1..=4) })
                    .collect();
                check_all(&l, rate);
            }
        }
    }

    #[test]
    fn word_boundary_cases() {
        // Lengths straddling the 32-slot word boundary, with the sentinel
        // on either side of it.
        for n in [31usize, 32, 33, 63, 64, 65, 96] {
            for dollar in [0, n / 2, n - 1] {
                let l: Vec<u8> = (0..n)
                    .map(|i| if i == dollar { 0 } else { ((i % 4) + 1) as u8 })
                    .collect();
                check_all(&l, 4);
                check_all(&l, 64);
            }
        }
    }

    #[test]
    fn occ_at_boundaries() {
        let mut l = vec![1u8; 64];
        l[63] = 0;
        let r = RankAll::new(&l, 4);
        assert_eq!(r.occ(1, 0), 0);
        assert_eq!(r.occ(1, 64), 63);
        assert_eq!(r.occ(1, 63), 63);
        assert_eq!(r.occ(2, 64), 0);
        assert_eq!(r.occ_all(0), [0, 0, 0, 0]);
        assert_eq!(r.occ_all(64), [63, 0, 0, 0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// `occ_all(i)[c - 1] == occ(c, i)` on random columns at every
        /// checkpoint rate, including the exact boundary positions
        /// {0, len, dollar_pos - 1, dollar_pos, dollar_pos + 1}.
        #[test]
        fn occ_all_agrees_with_occ(
            bases in proptest::collection::vec(1u8..=4, 1..300),
            dollar in any::<prop::sample::Index>(),
        ) {
            let mut l = bases;
            let dollar_pos = dollar.index(l.len());
            l[dollar_pos] = 0;
            for rate in [4usize, 32, 64, 128] {
                let r = RankAll::new(&l, rate);
                let mut probes = vec![0, l.len(), dollar_pos, dollar_pos + 1];
                if dollar_pos > 0 {
                    probes.push(dollar_pos - 1);
                }
                probes.extend((0..=l.len()).step_by(7));
                for i in probes {
                    prop_assert!(i <= l.len());
                    let fused = r.occ_all(i);
                    for c in 1..=4u8 {
                        prop_assert_eq!(
                            fused[(c - 1) as usize],
                            r.occ(c, i),
                            "rate={} i={} c={}", rate, i, c
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pair_fusion_spends_fewer_block_visits() {
        use kmm_telemetry::cost::{CostKind, CostSnapshot};
        let blocks_since =
            |before: &CostSnapshot| CostSnapshot::now().delta(before).get(CostKind::RankBlocks);
        let mut l: Vec<u8> = (0..4096).map(|i| (i % 4 + 1) as u8).collect();
        l[4095] = 0;
        let r = RankAll::new(&l, 64);
        // Narrow same-block interval: the pair costs one visit, the two
        // independent lookups cost two — with identical answers.
        let before = CostSnapshot::now();
        let pair = r.occ_all_pair(130, 140);
        let pair_blocks = blocks_since(&before);
        let fused = CostSnapshot::now()
            .delta(&before)
            .get(CostKind::OccPairFused);
        let before = CostSnapshot::now();
        let split = (r.occ_all(130), r.occ_all(140));
        let split_blocks = blocks_since(&before);
        assert_eq!(pair, split);
        assert_eq!(pair_blocks, 1);
        assert_eq!(split_blocks, 2);
        // The shared-visit win is itself a deterministic counter.
        assert_eq!(fused, 1);
        // Cross-block boundaries still cost two and fuse nothing.
        let before = CostSnapshot::now();
        let _ = r.occ_all_pair(10, 1000);
        assert_eq!(blocks_since(&before), 2);
        assert_eq!(
            CostSnapshot::now()
                .delta(&before)
                .get(CostKind::OccPairFused),
            0
        );
        // Prefetch is free on the rank counters but its issue count is
        // tracked (in-range targets only).
        let before = CostSnapshot::now();
        r.prefetch(130);
        r.prefetch(usize::MAX);
        assert_eq!(blocks_since(&before), 0);
        assert_eq!(
            CostSnapshot::now()
                .delta(&before)
                .get(CostKind::PrefetchIssued),
            1
        );
    }

    #[test]
    fn higher_rate_uses_less_space() {
        let mut l: Vec<u8> = (0..1000).map(|i| (i % 4 + 1) as u8).collect();
        l[999] = 0;
        let fine = RankAll::new(&l, 4);
        let coarse = RankAll::new(&l, 128);
        assert!(coarse.heap_bytes() < fine.heap_bytes());
        assert_eq!(fine.rate(), 4);
        assert_eq!(coarse.rate(), 128);
    }

    #[test]
    fn byte_accounting_is_exact() {
        let mut l: Vec<u8> = (0..1000).map(|i| (i % 4 + 1) as u8).collect();
        l[999] = 0;
        for rate in [4usize, 64, 128] {
            let r = RankAll::new(&l, rate);
            assert_eq!(r.heap_bytes(), r.payload_bytes() + r.overhead_bytes());
            let blocks = 1000usize.div_ceil(r.block_span());
            assert_eq!(r.overhead_bytes(), blocks * HEADER_WORDS * 8);
            assert_eq!(r.payload_bytes(), blocks * (r.block_span() / 32) * 8);
        }
    }

    #[test]
    fn totals_are_right() {
        let mut l = kmm_dna::encode(b"acgtacgtaa").unwrap();
        l.push(0);
        let r = RankAll::new(&l, 4);
        assert_eq!(r.count(1), 4);
        assert_eq!(r.count(2), 2);
        assert_eq!(r.count(3), 2);
        assert_eq!(r.count(4), 2);
        assert_eq!(r.count(0), 1);
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for rate in [4usize, 64] {
            // Lengths around the word, block, and segment boundaries.
            for n in [1usize, 5, 31, 32, 33, 127, 128, 500, 2048] {
                let dollar = rng.gen_range(0..n);
                let l: Vec<u8> = (0..n)
                    .map(|i| if i == dollar { 0 } else { rng.gen_range(1..=4) })
                    .collect();
                let mut serial_bytes = Vec::new();
                RankAll::new(&l, rate)
                    .write_to(&mut crate::serialize::SerWriter::new(&mut serial_bytes))
                    .unwrap();
                for threads in [2usize, 3, 8] {
                    let par = RankAll::new_with(&l, rate, &ThreadPool::new(threads));
                    let mut par_bytes = Vec::new();
                    par.write_to(&mut crate::serialize::SerWriter::new(&mut par_bytes))
                        .unwrap();
                    assert_eq!(
                        par_bytes, serial_bytes,
                        "n={n} rate={rate} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn serialization_roundtrip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 700;
        let dollar = rng.gen_range(0..n);
        let l: Vec<u8> = (0..n)
            .map(|i| if i == dollar { 0 } else { rng.gen_range(1..=4) })
            .collect();
        for rate in [4usize, 64] {
            let r = RankAll::new(&l, rate);
            let mut bytes = Vec::new();
            r.write_to(&mut crate::serialize::SerWriter::new(&mut bytes))
                .unwrap();
            let loaded =
                RankAll::read_from(&mut crate::serialize::SerReader::new(&bytes[..])).unwrap();
            for i in (0..=n).step_by(13) {
                assert_eq!(loaded.occ_all(i), r.occ_all(i));
            }
            assert_eq!(loaded.heap_bytes(), r.heap_bytes());
        }
    }

    #[test]
    fn try_new_accepts_small_texts() {
        let l = [1u8, 0, 2, 3, 4];
        let rank = RankAll::try_new(&l, 4).unwrap();
        assert_eq!(rank.len(), 5);
        // The u32 boundary itself is exercised arithmetically in
        // `crate::limits` — a real 4 GiB allocation has no place in tests.
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn rejects_bad_rate() {
        RankAll::new(&[0], 3);
    }

    #[test]
    #[should_panic(expected = "exactly one sentinel")]
    fn rejects_two_sentinels() {
        RankAll::new(&[0, 1, 0], 4);
    }
}
