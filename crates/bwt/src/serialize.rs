//! Versioned binary serialization for the index structures.
//!
//! The paper's protocol builds the index once and reuses it across read
//! batches ("once it is created, it can be repeatedly used", Section V);
//! persisting it is the practical counterpart. The format is deliberately
//! simple: a magic tag, a format version, length-prefixed primitive
//! arrays, and a running FNV checksum verified on load — no external
//! serialization dependency.
//!
//! Version history:
//!
//! - **v1** — separate checkpoint-row and packed-`L` arrays.
//! - **v2** (current) — `RankAll` stores interleaved cache-line blocks
//!   (four `u32` checkpoint counts + the packed `L` words they cover).
//!   v1 files are incompatible and are refused with
//!   [`SerializeError::BadVersion`]; rebuild the index with `kmm index`.

use std::io::{self, Read, Write};

/// Errors raised when loading a serialized index.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the expected magic tag.
    BadMagic,
    /// The format version is not supported by this build.
    BadVersion {
        /// Version found in the stream.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// The checksum did not match — the stream is corrupt or truncated.
    Corrupt,
    /// A length or enum field held an implausible value.
    Malformed(&'static str),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "index i/o error: {e}"),
            SerializeError::BadMagic => write!(f, "not a kmm index file (bad magic)"),
            SerializeError::BadVersion { found, expected } => {
                write!(f, "unsupported index version {found} (expected {expected})")
            }
            SerializeError::Corrupt => write!(f, "index checksum mismatch (corrupt file)"),
            SerializeError::Malformed(what) => write!(f, "malformed index field: {what}"),
        }
    }
}

impl std::error::Error for SerializeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SerializeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SerializeError {
    fn from(e: io::Error) -> Self {
        SerializeError::Io(e)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Checksumming little-endian writer.
pub struct SerWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> SerWriter<W> {
    /// Wrap a writer.
    pub fn new(inner: W) -> Self {
        SerWriter {
            inner,
            hash: FNV_OFFSET,
        }
    }

    fn mix(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    /// Write raw bytes (checksummed).
    pub fn bytes(&mut self, b: &[u8]) -> io::Result<()> {
        self.mix(b);
        self.inner.write_all(b)
    }

    /// Write a `u32`.
    pub fn u32(&mut self, v: u32) -> io::Result<()> {
        self.bytes(&v.to_le_bytes())
    }

    /// Write a `u64`.
    pub fn u64(&mut self, v: u64) -> io::Result<()> {
        self.bytes(&v.to_le_bytes())
    }

    /// Write a length-prefixed `u32` slice.
    pub fn vec_u32(&mut self, v: &[u32]) -> io::Result<()> {
        self.u64(v.len() as u64)?;
        for &x in v {
            self.u32(x)?;
        }
        Ok(())
    }

    /// Write a length-prefixed `u64` slice.
    pub fn vec_u64(&mut self, v: &[u64]) -> io::Result<()> {
        self.u64(v.len() as u64)?;
        for &x in v {
            self.u64(x)?;
        }
        Ok(())
    }

    /// Append the checksum (not itself checksummed) and flush.
    pub fn finish(mut self) -> io::Result<()> {
        let h = self.hash;
        self.inner.write_all(&h.to_le_bytes())?;
        self.inner.flush()
    }
}

/// Checksumming little-endian reader.
pub struct SerReader<R: Read> {
    inner: R,
    hash: u64,
}

impl<R: Read> SerReader<R> {
    /// Wrap a reader.
    pub fn new(inner: R) -> Self {
        SerReader {
            inner,
            hash: FNV_OFFSET,
        }
    }

    fn mix(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    /// Read exactly `buf.len()` bytes (checksummed).
    pub fn bytes(&mut self, buf: &mut [u8]) -> Result<(), SerializeError> {
        self.inner.read_exact(buf)?;
        self.mix(buf);
        Ok(())
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SerializeError> {
        let mut b = [0u8; 4];
        self.bytes(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SerializeError> {
        let mut b = [0u8; 8];
        self.bytes(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Initial capacity cap for length-prefixed vectors: a corrupt
    /// length prefix must fail with an I/O error when the stream runs
    /// dry, not commit gigabytes up front. Genuine vectors longer than
    /// this simply grow amortised as their elements arrive.
    const PREALLOC_CAP: usize = 1 << 20;

    /// Read a length-prefixed `u32` vector, with a sanity cap on length.
    pub fn vec_u32(&mut self) -> Result<Vec<u32>, SerializeError> {
        let len = self.u64()? as usize;
        if len > (1usize << 34) {
            return Err(SerializeError::Malformed("u32 vector length"));
        }
        let mut v = Vec::with_capacity(len.min(Self::PREALLOC_CAP));
        for _ in 0..len {
            v.push(self.u32()?);
        }
        Ok(v)
    }

    /// Read a length-prefixed `u64` vector, with a sanity cap on length.
    pub fn vec_u64(&mut self) -> Result<Vec<u64>, SerializeError> {
        let len = self.u64()? as usize;
        if len > (1usize << 33) {
            return Err(SerializeError::Malformed("u64 vector length"));
        }
        let mut v = Vec::with_capacity(len.min(Self::PREALLOC_CAP));
        for _ in 0..len {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    /// Read and verify the trailing checksum.
    pub fn finish(mut self) -> Result<(), SerializeError> {
        let expected = self.hash;
        let mut b = [0u8; 8];
        self.inner.read_exact(&mut b)?;
        if u64::from_le_bytes(b) != expected {
            return Err(SerializeError::Corrupt);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut buf = Vec::new();
        let mut w = SerWriter::new(&mut buf);
        w.u32(7).unwrap();
        w.u64(u64::MAX).unwrap();
        w.vec_u32(&[1, 2, 3]).unwrap();
        w.vec_u64(&[9, 8]).unwrap();
        w.finish().unwrap();

        let mut r = SerReader::new(&buf[..]);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.vec_u32().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.vec_u64().unwrap(), vec![9, 8]);
        r.finish().unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        let mut w = SerWriter::new(&mut buf);
        w.vec_u32(&[1, 2, 3, 4]).unwrap();
        w.finish().unwrap();
        // Flip one payload byte.
        buf[10] ^= 0x40;
        let mut r = SerReader::new(&buf[..]);
        let _ = r.vec_u32().unwrap();
        assert!(matches!(r.finish(), Err(SerializeError::Corrupt)));
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        let mut w = SerWriter::new(&mut buf);
        w.vec_u64(&[1, 2, 3]).unwrap();
        w.finish().unwrap();
        buf.truncate(buf.len() - 9);
        let mut r = SerReader::new(&buf[..]);
        // Truncation surfaces either while reading the payload or at the
        // missing checksum.
        match r.vec_u64() {
            Err(SerializeError::Io(_)) => {}
            Ok(_) => assert!(r.finish().is_err()),
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn absurd_lengths_are_rejected() {
        let mut buf = Vec::new();
        let mut w = SerWriter::new(&mut buf);
        w.u64(u64::MAX).unwrap(); // fake length prefix
        w.finish().unwrap();
        let mut r = SerReader::new(&buf[..]);
        assert!(matches!(
            r.vec_u32(),
            Err(SerializeError::Malformed("u32 vector length"))
        ));
    }

    #[test]
    fn error_display() {
        assert!(SerializeError::BadMagic.to_string().contains("magic"));
        assert!(SerializeError::BadVersion {
            found: 9,
            expected: 1
        }
        .to_string()
        .contains('9'));
    }
}
