//! Versioned binary serialization for the index structures.
//!
//! The paper's protocol builds the index once and reuses it across read
//! batches ("once it is created, it can be repeatedly used", Section V);
//! persisting it is the practical counterpart. The format is deliberately
//! simple: a magic tag, a format version, length-prefixed primitive
//! arrays, and a running FNV checksum verified on load — no external
//! serialization dependency.
//!
//! Version history:
//!
//! - **v1** — separate checkpoint-row and packed-`L` arrays.
//! - **v2** — `RankAll` stores interleaved cache-line blocks (four
//!   `u32` checkpoint counts + the packed `L` words they cover), still
//!   as one length-prefixed stream deserialised into owned `Vec`s.
//! - **v3** (current) — a zero-copy *container*: magic + version +
//!   section table (id / offset / length / FNV checksum per section,
//!   offsets 64-byte aligned) followed by the raw little-endian section
//!   bytes. Every large structure (rank blocks, sampled-SA bitmap and
//!   rank directory, SA samples) is loadable *by reference* from the
//!   mapped or read file. v1 and v2 files are refused with
//!   [`SerializeError::BadVersion`]; v2 files can be converted in place
//!   with `kmm index upgrade`, v1 files must be rebuilt with
//!   `kmm index`.
//!
//! The stream primitives ([`SerWriter`]/[`SerReader`]) remain for the
//! v2 compatibility reader; the v3 container is produced and parsed by
//! the section-table helpers in this module.

use std::io::{self, Read, Write};

/// Errors raised when loading a serialized index.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the expected magic tag.
    BadMagic,
    /// The format version is not supported by this build.
    BadVersion {
        /// Version found in the stream.
        found: u32,
        /// Human-readable list of versions this build can read, with
        /// the migration path for old files.
        supported: &'static str,
    },
    /// The checksum did not match — the stream is corrupt or truncated.
    Corrupt,
    /// A length or enum field held an implausible value.
    Malformed(&'static str),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "index i/o error: {e}"),
            SerializeError::BadMagic => write!(f, "not a kmm index file (bad magic)"),
            SerializeError::BadVersion { found, supported } => {
                write!(
                    f,
                    "unsupported index version {found}; this build reads {supported}"
                )
            }
            SerializeError::Corrupt => write!(f, "index checksum mismatch (corrupt file)"),
            SerializeError::Malformed(what) => write!(f, "malformed index field: {what}"),
        }
    }
}

impl std::error::Error for SerializeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SerializeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SerializeError {
    fn from(e: io::Error) -> Self {
        SerializeError::Io(e)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Checksumming little-endian writer.
pub struct SerWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> SerWriter<W> {
    /// Wrap a writer.
    pub fn new(inner: W) -> Self {
        SerWriter {
            inner,
            hash: FNV_OFFSET,
        }
    }

    fn mix(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    /// Write raw bytes (checksummed).
    pub fn bytes(&mut self, b: &[u8]) -> io::Result<()> {
        self.mix(b);
        self.inner.write_all(b)
    }

    /// Write a `u32`.
    pub fn u32(&mut self, v: u32) -> io::Result<()> {
        self.bytes(&v.to_le_bytes())
    }

    /// Write a `u64`.
    pub fn u64(&mut self, v: u64) -> io::Result<()> {
        self.bytes(&v.to_le_bytes())
    }

    /// Write a length-prefixed `u32` slice.
    pub fn vec_u32(&mut self, v: &[u32]) -> io::Result<()> {
        self.u64(v.len() as u64)?;
        for &x in v {
            self.u32(x)?;
        }
        Ok(())
    }

    /// Write a length-prefixed `u64` slice.
    pub fn vec_u64(&mut self, v: &[u64]) -> io::Result<()> {
        self.u64(v.len() as u64)?;
        for &x in v {
            self.u64(x)?;
        }
        Ok(())
    }

    /// Append the checksum (not itself checksummed) and flush.
    pub fn finish(mut self) -> io::Result<()> {
        let h = self.hash;
        self.inner.write_all(&h.to_le_bytes())?;
        self.inner.flush()
    }
}

/// Checksumming little-endian reader.
pub struct SerReader<R: Read> {
    inner: R,
    hash: u64,
}

impl<R: Read> SerReader<R> {
    /// Wrap a reader.
    pub fn new(inner: R) -> Self {
        SerReader {
            inner,
            hash: FNV_OFFSET,
        }
    }

    fn mix(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    /// Read exactly `buf.len()` bytes (checksummed).
    pub fn bytes(&mut self, buf: &mut [u8]) -> Result<(), SerializeError> {
        self.inner.read_exact(buf)?;
        self.mix(buf);
        Ok(())
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SerializeError> {
        let mut b = [0u8; 4];
        self.bytes(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SerializeError> {
        let mut b = [0u8; 8];
        self.bytes(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Initial capacity cap for length-prefixed vectors: a corrupt
    /// length prefix must fail with an I/O error when the stream runs
    /// dry, not commit gigabytes up front. Genuine vectors longer than
    /// this simply grow amortised as their elements arrive.
    const PREALLOC_CAP: usize = 1 << 20;

    /// Read a length-prefixed `u32` vector, with a sanity cap on length.
    pub fn vec_u32(&mut self) -> Result<Vec<u32>, SerializeError> {
        let len = self.u64()? as usize;
        if len > (1usize << 34) {
            return Err(SerializeError::Malformed("u32 vector length"));
        }
        let mut v = Vec::with_capacity(len.min(Self::PREALLOC_CAP));
        for _ in 0..len {
            v.push(self.u32()?);
        }
        Ok(v)
    }

    /// Read a length-prefixed `u64` vector, with a sanity cap on length.
    pub fn vec_u64(&mut self) -> Result<Vec<u64>, SerializeError> {
        let len = self.u64()? as usize;
        if len > (1usize << 33) {
            return Err(SerializeError::Malformed("u64 vector length"));
        }
        let mut v = Vec::with_capacity(len.min(Self::PREALLOC_CAP));
        for _ in 0..len {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    /// Read and verify the trailing checksum.
    pub fn finish(mut self) -> Result<(), SerializeError> {
        let expected = self.hash;
        let mut b = [0u8; 8];
        self.inner.read_exact(&mut b)?;
        if u64::from_le_bytes(b) != expected {
            return Err(SerializeError::Corrupt);
        }
        Ok(())
    }
}

/// FNV-1a of a byte slice (the container's section checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

// ---------------------------------------------------------------------
// The v3 section-table container.
//
// Layout (all integers little-endian):
//
//   [0, 8)                   magic
//   [8, 12)                  format version (u32)
//   [12, 16)                 section count (u32)
//   [16, 16 + 32 * count)    section table, one 32-byte entry each:
//                              id (u32), reserved (u32 = 0),
//                              offset (u64, bytes, 64-aligned),
//                              length (u64, bytes),
//                              FNV-1a checksum of the section bytes (u64)
//   [table_end, +8)          FNV-1a checksum of [0, table_end)
//   ...                      zero padding to each section's offset
//   [offset_i, +length_i)    raw section bytes
//
// Offsets are 64-byte aligned so a page- or word-aligned base address
// makes every section borrowable as &[u64]/&[u32] without copying.
// ---------------------------------------------------------------------

/// Required alignment of every section offset.
pub const SECTION_ALIGN: usize = 64;

/// Bytes per section-table entry.
pub const TABLE_ENTRY_BYTES: usize = 32;

/// Upper bound on the section count a parser will accept; real files
/// carry fewer than ten sections, so anything bigger is corruption.
pub const MAX_SECTIONS: usize = 64;

/// One section's payload, fed to [`write_container`]. Multi-byte
/// elements are serialized little-endian regardless of host order.
pub enum SectionPayload<'a> {
    /// Raw bytes, written verbatim.
    Bytes(&'a [u8]),
    /// A `u32` array.
    U32s(&'a [u32]),
    /// A `u64` array.
    U64s(&'a [u64]),
}

impl SectionPayload<'_> {
    /// Serialized byte length.
    pub fn byte_len(&self) -> usize {
        match self {
            SectionPayload::Bytes(b) => b.len(),
            SectionPayload::U32s(v) => v.len() * 4,
            SectionPayload::U64s(v) => v.len() * 8,
        }
    }

    /// FNV-1a over the serialized (little-endian) bytes.
    fn checksum(&self) -> u64 {
        let mut hash = FNV_OFFSET;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        match self {
            SectionPayload::Bytes(b) => mix(b),
            SectionPayload::U32s(v) => v.iter().for_each(|x| mix(&x.to_le_bytes())),
            SectionPayload::U64s(v) => v.iter().for_each(|x| mix(&x.to_le_bytes())),
        }
        hash
    }

    /// Write the serialized bytes.
    fn write_into<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            SectionPayload::Bytes(b) => w.write_all(b),
            SectionPayload::U32s(v) => {
                for x in *v {
                    w.write_all(&x.to_le_bytes())?;
                }
                Ok(())
            }
            SectionPayload::U64s(v) => {
                for x in *v {
                    w.write_all(&x.to_le_bytes())?;
                }
                Ok(())
            }
        }
    }
}

/// Write a complete v3-style container: header, checksummed section
/// table, aligned checksummed sections.
pub fn write_container<W: Write>(
    mut w: W,
    magic: &[u8; 8],
    version: u32,
    sections: &[(u32, SectionPayload<'_>)],
) -> io::Result<()> {
    assert!(sections.len() <= MAX_SECTIONS, "too many sections");
    let table_end = 16 + sections.len() * TABLE_ENTRY_BYTES;
    // Lay the sections out 64-byte aligned after the table checksum.
    let mut offsets = Vec::with_capacity(sections.len());
    let mut cursor = (table_end + 8).next_multiple_of(SECTION_ALIGN);
    for (_, payload) in sections {
        offsets.push(cursor);
        cursor += payload.byte_len();
        cursor = cursor.next_multiple_of(SECTION_ALIGN);
    }
    let mut header = Vec::with_capacity(table_end);
    header.extend_from_slice(magic);
    header.extend_from_slice(&version.to_le_bytes());
    header.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for ((id, payload), off) in sections.iter().zip(&offsets) {
        header.extend_from_slice(&id.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        header.extend_from_slice(&(*off as u64).to_le_bytes());
        header.extend_from_slice(&(payload.byte_len() as u64).to_le_bytes());
        header.extend_from_slice(&payload.checksum().to_le_bytes());
    }
    debug_assert_eq!(header.len(), table_end);
    w.write_all(&header)?;
    w.write_all(&fnv1a(&header).to_le_bytes())?;
    let mut pos = table_end + 8;
    const ZEROS: [u8; SECTION_ALIGN] = [0; SECTION_ALIGN];
    for ((_, payload), off) in sections.iter().zip(&offsets) {
        w.write_all(&ZEROS[..off - pos])?;
        payload.write_into(&mut w)?;
        pos = off + payload.byte_len();
    }
    w.flush()
}

/// One parsed entry of a container's section table, bounds- and
/// alignment-validated against the file it came from.
#[derive(Debug, Clone, Copy)]
pub struct SectionEntry {
    /// Section id (what the bytes hold).
    pub id: u32,
    /// Byte offset of the section in the file.
    pub offset: usize,
    /// Byte length of the section.
    pub len: usize,
    /// FNV-1a checksum of the section bytes.
    pub checksum: u64,
}

/// A parsed container header: format version plus its section table.
#[derive(Debug)]
pub struct SectionTable {
    /// Format version from the header.
    pub version: u32,
    /// Validated section entries, in file order.
    pub entries: Vec<SectionEntry>,
}

impl SectionTable {
    /// Parse and validate a container header over `bytes`. Checks the
    /// magic, the header checksum, and every entry's alignment and
    /// bounds — everything needed to make borrowing sections memory-safe
    /// — but does *not* checksum section data (see
    /// [`SectionEntry::verify`]; the read path verifies every section,
    /// the mmap path defers to the O(1) header check).
    ///
    /// The version is returned, not judged: callers dispatch v1/v2
    /// legacy streams (which share the magic + version prefix) before
    /// expecting a table.
    pub fn parse(bytes: &[u8], magic: &[u8; 8]) -> Result<SectionTable, SerializeError> {
        if bytes.len() < 8 || &bytes[..8] != magic {
            return Err(SerializeError::BadMagic);
        }
        if bytes.len() < 16 {
            return Err(SerializeError::Malformed("container header"));
        }
        let at_u32 = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let version = at_u32(8);
        let count = at_u32(12) as usize;
        if count > MAX_SECTIONS {
            return Err(SerializeError::Malformed("section count"));
        }
        let table_end = 16 + count * TABLE_ENTRY_BYTES;
        if bytes.len() < table_end + 8 {
            return Err(SerializeError::Malformed("section table"));
        }
        let stored = u64::from_le_bytes(bytes[table_end..table_end + 8].try_into().unwrap());
        if fnv1a(&bytes[..table_end]) != stored {
            return Err(SerializeError::Corrupt);
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let at = 16 + i * TABLE_ENTRY_BYTES;
            let id = at_u32(at);
            let offset = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap());
            let checksum = u64::from_le_bytes(bytes[at + 24..at + 32].try_into().unwrap());
            let (Ok(offset), Ok(len)) = (usize::try_from(offset), usize::try_from(len)) else {
                return Err(SerializeError::Malformed("section bounds"));
            };
            if !offset.is_multiple_of(SECTION_ALIGN) {
                return Err(SerializeError::Malformed("section alignment"));
            }
            let Some(end) = offset.checked_add(len) else {
                return Err(SerializeError::Malformed("section bounds"));
            };
            if offset < table_end + 8 || end > bytes.len() {
                return Err(SerializeError::Malformed("section bounds"));
            }
            entries.push(SectionEntry {
                id,
                offset,
                len,
                checksum,
            });
        }
        Ok(SectionTable { version, entries })
    }

    /// The entry for section `id`, or a typed "missing section" error.
    pub fn section(&self, id: u32) -> Result<&SectionEntry, SerializeError> {
        self.find(id)
            .ok_or(SerializeError::Malformed("missing section"))
    }

    /// The entry for section `id` if present. Optional sections (ids
    /// appended after a format was first shipped) are probed with this
    /// so their absence reads as "feature unavailable", not corruption.
    pub fn find(&self, id: u32) -> Option<&SectionEntry> {
        self.entries.iter().find(|e| e.id == id)
    }
}

impl SectionEntry {
    /// The section's bytes within the file image.
    pub fn bytes<'a>(&self, file: &'a [u8]) -> &'a [u8] {
        &file[self.offset..self.offset + self.len]
    }

    /// Verify the section's data checksum ([`SerializeError::Corrupt`]
    /// on mismatch). O(len) — the full-verification read path runs this
    /// for every section; the O(1) mmap open skips it.
    pub fn verify(&self, file: &[u8]) -> Result<(), SerializeError> {
        if fnv1a(self.bytes(file)) != self.checksum {
            return Err(SerializeError::Corrupt);
        }
        Ok(())
    }

    /// Element count if the section holds an array of `elem_size`-byte
    /// values; `Malformed` if the length is not a whole multiple.
    pub fn elems(&self, elem_size: usize) -> Result<usize, SerializeError> {
        if !self.len.is_multiple_of(elem_size) {
            return Err(SerializeError::Malformed("section element size"));
        }
        Ok(self.len / elem_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut buf = Vec::new();
        let mut w = SerWriter::new(&mut buf);
        w.u32(7).unwrap();
        w.u64(u64::MAX).unwrap();
        w.vec_u32(&[1, 2, 3]).unwrap();
        w.vec_u64(&[9, 8]).unwrap();
        w.finish().unwrap();

        let mut r = SerReader::new(&buf[..]);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.vec_u32().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.vec_u64().unwrap(), vec![9, 8]);
        r.finish().unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        let mut w = SerWriter::new(&mut buf);
        w.vec_u32(&[1, 2, 3, 4]).unwrap();
        w.finish().unwrap();
        // Flip one payload byte.
        buf[10] ^= 0x40;
        let mut r = SerReader::new(&buf[..]);
        let _ = r.vec_u32().unwrap();
        assert!(matches!(r.finish(), Err(SerializeError::Corrupt)));
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        let mut w = SerWriter::new(&mut buf);
        w.vec_u64(&[1, 2, 3]).unwrap();
        w.finish().unwrap();
        buf.truncate(buf.len() - 9);
        let mut r = SerReader::new(&buf[..]);
        // Truncation surfaces either while reading the payload or at the
        // missing checksum.
        match r.vec_u64() {
            Err(SerializeError::Io(_)) => {}
            Ok(_) => assert!(r.finish().is_err()),
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn absurd_lengths_are_rejected() {
        let mut buf = Vec::new();
        let mut w = SerWriter::new(&mut buf);
        w.u64(u64::MAX).unwrap(); // fake length prefix
        w.finish().unwrap();
        let mut r = SerReader::new(&buf[..]);
        assert!(matches!(
            r.vec_u32(),
            Err(SerializeError::Malformed("u32 vector length"))
        ));
    }

    #[test]
    fn error_display() {
        assert!(SerializeError::BadMagic.to_string().contains("magic"));
        let msg = SerializeError::BadVersion {
            found: 9,
            supported: "v3 (v2 via `kmm index upgrade`)",
        }
        .to_string();
        // Names both the found version and the supported set.
        assert!(msg.contains('9'), "{msg}");
        assert!(msg.contains("v3"), "{msg}");
        assert!(msg.contains("upgrade"), "{msg}");
    }

    const MAGIC: &[u8; 8] = b"TESTMAGC";

    fn sample_container() -> Vec<u8> {
        let mut buf = Vec::new();
        write_container(
            &mut buf,
            MAGIC,
            3,
            &[
                (1, SectionPayload::Bytes(&[9, 9, 9])),
                (2, SectionPayload::U32s(&[1, 2, 3, 4, 5])),
                (3, SectionPayload::U64s(&[u64::MAX, 7])),
            ],
        )
        .unwrap();
        buf
    }

    #[test]
    fn container_roundtrip_with_aligned_sections() {
        let buf = sample_container();
        let table = SectionTable::parse(&buf, MAGIC).unwrap();
        assert_eq!(table.version, 3);
        assert_eq!(table.entries.len(), 3);
        for entry in &table.entries {
            assert_eq!(entry.offset % SECTION_ALIGN, 0);
            entry.verify(&buf).unwrap();
        }
        assert_eq!(table.section(1).unwrap().bytes(&buf), &[9, 9, 9]);
        let u32s = table.section(2).unwrap();
        assert_eq!(u32s.elems(4).unwrap(), 5);
        assert_eq!(&u32s.bytes(&buf)[..4], &1u32.to_le_bytes());
        let u64s = table.section(3).unwrap();
        assert_eq!(u64s.elems(8).unwrap(), 2);
        // The 3-byte section is not an array of 8-byte values.
        assert!(matches!(
            table.section(1).unwrap().elems(8),
            Err(SerializeError::Malformed("section element size"))
        ));
        assert!(matches!(
            table.section(99),
            Err(SerializeError::Malformed("missing section"))
        ));
    }

    #[test]
    fn container_header_flips_are_typed_errors() {
        let good = sample_container();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            SectionTable::parse(&bad, MAGIC),
            Err(SerializeError::BadMagic)
        ));
        // Header/table corruption (checksum over [0, table_end)).
        for at in [8usize, 12, 16, 24, 40] {
            let mut bad = good.clone();
            bad[at] ^= 0x01;
            assert!(
                matches!(
                    SectionTable::parse(&bad, MAGIC),
                    Err(SerializeError::Corrupt)
                ),
                "flip at {at}"
            );
        }
        // Truncations: mid-table, mid-section.
        for keep in [4usize, 15, 20, 70] {
            let mut bad = good.clone();
            bad.truncate(keep);
            assert!(SectionTable::parse(&bad, MAGIC).is_err(), "truncate {keep}");
        }
        // Data corruption passes the header parse but fails verify().
        let table = SectionTable::parse(&good, MAGIC).unwrap();
        let entry = *table.section(2).unwrap();
        let mut bad = good.clone();
        bad[entry.offset] ^= 0x10;
        let reparsed = SectionTable::parse(&bad, MAGIC).unwrap();
        assert!(matches!(
            reparsed.section(2).unwrap().verify(&bad),
            Err(SerializeError::Corrupt)
        ));
    }

    #[test]
    fn container_rejects_hostile_tables() {
        // Hand-build a header whose entry is misaligned / out of bounds,
        // with a *valid* header checksum, to prove the structural checks
        // fire independently of the checksum.
        let build = |offset: u64, len: u64| -> Vec<u8> {
            let mut h = Vec::new();
            h.extend_from_slice(MAGIC);
            h.extend_from_slice(&3u32.to_le_bytes());
            h.extend_from_slice(&1u32.to_le_bytes());
            h.extend_from_slice(&7u32.to_le_bytes());
            h.extend_from_slice(&0u32.to_le_bytes());
            h.extend_from_slice(&offset.to_le_bytes());
            h.extend_from_slice(&len.to_le_bytes());
            h.extend_from_slice(&0u64.to_le_bytes());
            let sum = fnv1a(&h);
            h.extend_from_slice(&sum.to_le_bytes());
            h.resize(256, 0);
            h
        };
        assert!(matches!(
            SectionTable::parse(&build(65, 8), MAGIC),
            Err(SerializeError::Malformed("section alignment"))
        ));
        assert!(matches!(
            SectionTable::parse(&build(192, 1000), MAGIC),
            Err(SerializeError::Malformed("section bounds"))
        ));
        assert!(matches!(
            SectionTable::parse(&build(u64::MAX - 63, 8), MAGIC),
            Err(SerializeError::Malformed("section bounds"))
        ));
        // A section overlapping the header is rejected too.
        assert!(matches!(
            SectionTable::parse(&build(0, 8), MAGIC),
            Err(SerializeError::Malformed("section bounds"))
        ));
    }
}
