//! The Burrows–Wheeler transform and its inverse.
//!
//! Section III-B of the paper derives `BWT(s)` (the last column `L` of the
//! sorted rotation matrix, Fig. 1) from the suffix array `H` via
//!
//! ```text
//! L[i] = $           if H[i] = 1        (1-based)
//! L[i] = s[H[i] - 1] otherwise
//! ```
//!
//! which in 0-based terms is `L[i] = text[SA[i] - 1]` with wrap-around to
//! the sentinel when `SA[i] = 0`.

use kmm_par::{aligned_spans, ThreadPool};
use kmm_suffix::sais::suffix_array;

/// Compute `BWT(text)` from scratch (builds the suffix array internally).
pub fn bwt(text: &[u8], sigma: usize) -> Vec<u8> {
    let sa = suffix_array(text, sigma);
    bwt_from_sa(text, &sa)
}

/// Compute the BWT given a precomputed suffix array.
pub fn bwt_from_sa(text: &[u8], sa: &[u32]) -> Vec<u8> {
    bwt_from_sa_with(text, sa, &ThreadPool::serial())
}

/// [`bwt_from_sa`] with the gather split across a thread pool. Each
/// position of `L` depends only on `SA[i]`, so chunks are independent
/// and the merged result is identical at any thread count.
pub fn bwt_from_sa_with(text: &[u8], sa: &[u32], pool: &ThreadPool) -> Vec<u8> {
    assert_eq!(text.len(), sa.len(), "text/SA length mismatch");
    let gather = |&p: &u32| {
        if p == 0 {
            text[text.len() - 1]
        } else {
            text[p as usize - 1]
        }
    };
    if pool.is_serial() {
        return sa.iter().map(gather).collect();
    }
    let spans = aligned_spans(sa.len(), pool.threads() * 4, 1);
    let chunks = pool.par_map(&spans, |_, span| {
        sa[span.clone()].iter().map(gather).collect::<Vec<u8>>()
    });
    let mut out = Vec::with_capacity(sa.len());
    for chunk in chunks {
        out.extend_from_slice(&chunk);
    }
    out
}

/// Invert a BWT back to the original sentinel-terminated text.
///
/// Uses the rank-correspondence property (paper Eq. (1)): the i-th
/// occurrence of a symbol in `F` is the i-th occurrence of that symbol in
/// `L`, so repeated LF-stepping from the sentinel row reconstructs the text
/// right to left.
pub fn inverse_bwt(l: &[u8], sigma: usize) -> Vec<u8> {
    let n = l.len();
    if n == 0 {
        return Vec::new();
    }
    // C[c] = number of symbols < c, i.e. the F-column start of c's block.
    let mut counts = vec![0usize; sigma + 1];
    for &c in l {
        counts[c as usize + 1] += 1;
    }
    for c in 0..sigma {
        counts[c + 1] += counts[c];
    }
    // LF[i] = C[L[i]] + rank_{L[i]}(i): row of the predecessor symbol.
    let mut seen = vec![0usize; sigma];
    let mut lf = vec![0u32; n];
    for (i, &c) in l.iter().enumerate() {
        lf[i] = (counts[c as usize] + seen[c as usize]) as u32;
        seen[c as usize] += 1;
    }
    // Row 0 of the rotation matrix starts with the sentinel, so L[0] is the
    // text's last real symbol. Fill right to left, sentinel first.
    let mut out = vec![0u8; n];
    out[n - 1] = 0;
    let mut row = 0usize;
    for i in (0..n - 1).rev() {
        out[i] = l[row];
        row = lf[row] as usize;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure_example() {
        // Fig. 1(c): s = acagaca$ => BWT(s) = acg$caaa.
        let text = kmm_dna::encode_text(b"acagaca").unwrap();
        let l = bwt(&text, kmm_dna::SIGMA);
        assert_eq!(kmm_dna::decode_string(&l), "acg$caaa");
    }

    #[test]
    fn reversed_paper_text() {
        // The index in Section IV is BWT of the *reverse* of s.
        let mut rev: Vec<u8> = kmm_dna::encode(b"acagaca").unwrap();
        rev.reverse();
        rev.push(0);
        let l = bwt(&rev, kmm_dna::SIGMA);
        assert_eq!(inverse_bwt(&l, kmm_dna::SIGMA), rev);
    }

    #[test]
    fn inverse_roundtrip_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..60 {
            let n = rng.gen_range(1..300);
            let mut text: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4)).collect();
            text.push(0);
            let l = bwt(&text, kmm_dna::SIGMA);
            assert_eq!(inverse_bwt(&l, kmm_dna::SIGMA), text);
        }
    }

    #[test]
    fn bwt_is_permutation_of_text() {
        let text = kmm_dna::encode_text(b"gattacagattaca").unwrap();
        let mut l = bwt(&text, kmm_dna::SIGMA);
        let mut t = text.clone();
        l.sort_unstable();
        t.sort_unstable();
        assert_eq!(l, t);
    }

    #[test]
    fn sentinel_only_text() {
        let l = bwt(&[0], kmm_dna::SIGMA);
        assert_eq!(l, vec![0]);
        assert_eq!(inverse_bwt(&l, kmm_dna::SIGMA), vec![0]);
    }

    #[test]
    fn empty_inverse() {
        assert_eq!(inverse_bwt(&[], kmm_dna::SIGMA), Vec::<u8>::new());
    }

    #[test]
    fn parallel_bwt_matches_serial() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        for n in [1usize, 2, 65, 300, 1024] {
            let mut text: Vec<u8> = (0..n - 1).map(|_| rng.gen_range(1..=4)).collect();
            text.push(0);
            let sa = suffix_array(&text, kmm_dna::SIGMA);
            let serial = bwt_from_sa(&text, &sa);
            for threads in [2usize, 3, 8] {
                let par = bwt_from_sa_with(&text, &sa, &ThreadPool::new(threads));
                assert_eq!(par, serial, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn bwt_groups_equal_context_symbols() {
        // For a highly repetitive text the BWT should contain long runs.
        let text = kmm_dna::encode_text(&b"ac".repeat(50)).unwrap();
        let l = bwt(&text, kmm_dna::SIGMA);
        let runs = l.windows(2).filter(|w| w[0] != w[1]).count() + 1;
        assert!(runs <= 6, "expected few runs, got {runs}");
    }
}
