//! Guard rails for the index's `u32` representation.
//!
//! Every row and position in the index is a `u32`: suffix-array entries,
//! rankall checkpoint counts and `totals`, sampled-SA values, the `C`
//! array, and `Interval` bounds. A text of length `n` needs `n` itself to
//! be representable (the whole-index interval is `[0, n)`), so texts of
//! `u32::MAX` characters or more cannot be indexed. Before this module
//! the builders would silently wrap counts on such inputs; now every
//! build path checks [`check_text_len`] up front and reports
//! [`TextTooLarge`] (the panicking constructors panic with its message).

use std::fmt;

/// Largest indexable text length, sentinel included. One less than
/// `u32::MAX` so the exclusive upper bound of the whole-index interval
/// and every per-symbol count stay representable.
pub const MAX_TEXT_LEN: usize = u32::MAX as usize - 1;

/// Build error: the input is too long for the index's `u32` layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextTooLarge {
    /// Length of the rejected input.
    pub len: usize,
}

impl fmt::Display for TextTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "text of {} characters exceeds the u32-indexed maximum of {} \
             (suffix-array rows, rankall counts and locate samples are all 32-bit)",
            self.len, MAX_TEXT_LEN
        )
    }
}

impl std::error::Error for TextTooLarge {}

/// Check that a text/BWT/SA of `len` elements fits the `u32` layout.
#[inline]
pub fn check_text_len(len: usize) -> Result<(), TextTooLarge> {
    if len > MAX_TEXT_LEN {
        Err(TextTooLarge { len })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_is_exact() {
        // The guard is pure arithmetic on the length, so the boundary is
        // testable without allocating a 4 GiB text.
        assert!(check_text_len(0).is_ok());
        assert!(check_text_len(1_000_000).is_ok());
        assert!(check_text_len(MAX_TEXT_LEN).is_ok());
        assert_eq!(
            check_text_len(MAX_TEXT_LEN + 1),
            Err(TextTooLarge {
                len: MAX_TEXT_LEN + 1
            })
        );
        assert!(check_text_len(u32::MAX as usize).is_err());
        assert!(check_text_len(usize::MAX).is_err());
    }

    #[test]
    fn error_message_names_the_limit() {
        let err = check_text_len(usize::MAX).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("u32"), "{msg}");
        assert!(msg.contains(&MAX_TEXT_LEN.to_string()), "{msg}");
        let _: &dyn std::error::Error = &err;
    }
}
