//! Run-length encoded BWT (RLE-BWT).
//!
//! The BWT of a repetitive text consists of long symbol runs (that is the
//! whole point of BWT compression, and why the paper's Section II reports
//! 0.5–2 bits/char for BWT indexes against 7–9 bytes/char for suffix
//! trees). This module stores `L` as its run sequence — `O(r)` space for
//! `r` runs — with rank/access by binary search, `O(log r)` per query.
//!
//! It is the classic space end of the rankall trade-off: slower per query
//! than [`crate::occ::RankAll`], drastically smaller on repetitive
//! targets. The suite uses it for the space ablation and as an
//! independent oracle for the rankall structure.

use kmm_dna::SIGMA;

/// Run-length encoded `L` column with rank support.
#[derive(Debug, Clone)]
pub struct RleBwt {
    /// Start position of each run.
    starts: Vec<u32>,
    /// Symbol of each run.
    syms: Vec<u8>,
    /// `cum[run][c]` = occurrences of symbol `c` in `L[0 .. starts[run])`.
    cum: Vec<[u32; SIGMA]>,
    /// Total occurrences per symbol.
    totals: [u32; SIGMA],
    /// Length of `L`.
    len: usize,
}

impl RleBwt {
    /// Encode an `L` column.
    pub fn new(l: &[u8]) -> Self {
        let mut starts = Vec::new();
        let mut syms = Vec::new();
        let mut cum = Vec::new();
        let mut running = [0u32; SIGMA];
        let mut prev: Option<u8> = None;
        for (i, &c) in l.iter().enumerate() {
            assert!((c as usize) < SIGMA, "symbol {c} out of alphabet");
            if prev != Some(c) {
                starts.push(i as u32);
                syms.push(c);
                cum.push(running);
                prev = Some(c);
            }
            running[c as usize] += 1;
        }
        RleBwt {
            starts,
            syms,
            cum,
            totals: running,
            len: l.len(),
        }
    }

    /// Number of runs (`r`).
    pub fn run_count(&self) -> usize {
        self.starts.len()
    }

    /// Length of `L`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty column.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index of the run containing position `i`.
    #[inline]
    fn run_of(&self, i: usize) -> usize {
        debug_assert!(i < self.len);
        self.starts.partition_point(|&s| s as usize <= i) - 1
    }

    /// The symbol `L[i]`.
    #[inline]
    pub fn symbol(&self, i: usize) -> u8 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.syms[self.run_of(i)]
    }

    /// Occurrences of symbol `c` in `L[0..i)` (any symbol, sentinel
    /// included — unlike `RankAll`, runs make it free).
    #[inline]
    pub fn occ(&self, c: u8, i: usize) -> u32 {
        debug_assert!((c as usize) < SIGMA);
        debug_assert!(i <= self.len);
        if i == 0 {
            return 0;
        }
        let run = self.run_of(i - 1);
        let mut count = self.cum[run][c as usize];
        if self.syms[run] == c {
            count += (i as u32) - self.starts[run];
        }
        count
    }

    /// Occurrence counts of all four bases in `L[0..i)` — the fused form
    /// of four [`Self::occ`] calls sharing one run lookup:
    /// `occ_all(i)[c - 1] == occ(c, i)` for base codes 1..=4.
    #[inline]
    pub fn occ_all(&self, i: usize) -> [u32; 4] {
        debug_assert!(i <= self.len);
        if i == 0 {
            return [0; 4];
        }
        let run = self.run_of(i - 1);
        let cum = &self.cum[run];
        let mut counts = [cum[1], cum[2], cum[3], cum[4]];
        let sym = self.syms[run];
        if sym >= 1 {
            counts[(sym - 1) as usize] += (i as u32) - self.starts[run];
        }
        counts
    }

    /// Total occurrences of `c`.
    pub fn count(&self, c: u8) -> u32 {
        self.totals[c as usize]
    }

    /// Heap bytes used.
    pub fn heap_bytes(&self) -> usize {
        self.starts.len() * 4
            + self.syms.len()
            + self.cum.len() * std::mem::size_of::<[u32; SIGMA]>()
    }

    /// Decode back to the plain `L` column.
    pub fn decode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for (r, &start) in self.starts.iter().enumerate() {
            let end = self
                .starts
                .get(r + 1)
                .map(|&s| s as usize)
                .unwrap_or(self.len);
            out.extend(std::iter::repeat_n(self.syms[r], end - start as usize));
        }
        out
    }
}

/// Run statistics of a BWT — the `n / r` ratio is the standard measure of
/// a text's BWT-compressibility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Column length `n`.
    pub n: usize,
    /// Number of runs `r`.
    pub r: usize,
    /// Mean run length `n / r`.
    pub mean_run: f64,
}

/// Compute run statistics for an `L` column.
pub fn run_stats(l: &[u8]) -> RunStats {
    let r = if l.is_empty() {
        0
    } else {
        1 + l.windows(2).filter(|w| w[0] != w[1]).count()
    };
    RunStats {
        n: l.len(),
        r,
        mean_run: if r == 0 {
            0.0
        } else {
            l.len() as f64 / r as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bwt::bwt;
    use crate::occ::RankAll;
    use kmm_dna::SENTINEL;

    fn bwt_of(ascii: &[u8]) -> Vec<u8> {
        bwt(&kmm_dna::encode_text(ascii).unwrap(), SIGMA)
    }

    #[test]
    fn encodes_paper_bwt() {
        // BWT(acagaca$) = acg$caaa: runs a|c|g|$|c|aaa.
        let l = bwt_of(b"acagaca");
        let rle = RleBwt::new(&l);
        assert_eq!(rle.run_count(), 6);
        assert_eq!(rle.len(), 8);
        assert_eq!(rle.decode(), l);
    }

    #[test]
    fn occ_matches_rankall_everywhere() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..40 {
            let n = rng.gen_range(1..300);
            let ascii: Vec<u8> = (0..n).map(|_| b"acgt"[rng.gen_range(0..4usize)]).collect();
            let l = bwt_of(&ascii);
            let rle = RleBwt::new(&l);
            let ra = RankAll::new(&l, 4);
            for i in 0..=l.len() {
                for c in 1..SIGMA as u8 {
                    assert_eq!(rle.occ(c, i), ra.occ(c, i), "occ({c}, {i})");
                }
                assert_eq!(rle.occ_all(i), ra.occ_all(i), "occ_all({i})");
            }
            for (i, &c) in l.iter().enumerate() {
                assert_eq!(rle.symbol(i), c);
            }
        }
    }

    #[test]
    fn sentinel_rank_is_supported() {
        let l = bwt_of(b"acagaca");
        let rle = RleBwt::new(&l);
        // Exactly one sentinel; cumulative count flips at its position.
        let dollar_pos = l.iter().position(|&c| c == SENTINEL).unwrap();
        assert_eq!(rle.occ(SENTINEL, dollar_pos), 0);
        assert_eq!(rle.occ(SENTINEL, dollar_pos + 1), 1);
        assert_eq!(rle.count(SENTINEL), 1);
    }

    #[test]
    fn repetitive_text_compresses() {
        let l = bwt_of(&b"acgt".repeat(500));
        let rle = RleBwt::new(&l);
        let ra = RankAll::new(&l, 4);
        let stats = run_stats(&l);
        assert!(stats.mean_run > 50.0, "mean run {}", stats.mean_run);
        assert!(
            rle.heap_bytes() < ra.heap_bytes() / 4,
            "rle {} vs rankall {}",
            rle.heap_bytes(),
            ra.heap_bytes()
        );
    }

    #[test]
    fn random_text_does_not_compress() {
        let g = kmm_dna::genome::uniform(2_000, 7);
        let l = bwt_of(&kmm_dna::decode(&g));
        let stats = run_stats(&l);
        assert!(stats.mean_run < 3.0, "mean run {}", stats.mean_run);
    }

    #[test]
    fn backward_search_via_rle_matches_fm() {
        use crate::fm_index::{FmBuildConfig, FmIndex};
        let text = kmm_dna::encode_text(b"acagacagattacaggatacca").unwrap();
        let fm = FmIndex::new(&text, FmBuildConfig::default());
        let l = bwt(&text, SIGMA);
        let rle = RleBwt::new(&l);
        // C array from totals.
        let mut c = [0u32; SIGMA + 1];
        for sym in 0..SIGMA {
            c[sym + 1] = c[sym] + rle.count(sym as u8);
        }
        let pat = kmm_dna::encode(b"aca").unwrap();
        // Fused step: one occ_all per boundary resolves all four bases;
        // the searched symbol's lane must agree with the plain occ path.
        let (mut lo, mut hi) = (0u32, text.len() as u32);
        for &sym in pat.iter().rev() {
            let lane = (sym - 1) as usize;
            let lo_all = rle.occ_all(lo as usize);
            let hi_all = rle.occ_all(hi as usize);
            assert_eq!(lo_all[lane], rle.occ(sym, lo as usize));
            assert_eq!(hi_all[lane], rle.occ(sym, hi as usize));
            lo = c[sym as usize] + lo_all[lane];
            hi = c[sym as usize] + hi_all[lane];
        }
        let iv = fm.backward_search(&pat);
        assert_eq!((lo, hi), (iv.lo, iv.hi));
    }

    #[test]
    fn run_stats_edge_cases() {
        assert_eq!(run_stats(&[]).r, 0);
        assert_eq!(run_stats(&[1]).r, 1);
        assert_eq!(run_stats(&[1, 1, 2]).r, 2);
        let s = run_stats(&[1, 1, 1, 1]);
        assert_eq!(s.mean_run, 4.0);
    }
}
