//! # kmm-faults — deterministic fault injection
//!
//! A zero-dependency failpoint layer. Production code names its failure
//! sites once:
//!
//! ```
//! # fn load() -> std::io::Result<()> {
//! kmm_faults::io_gate("index.load.io")?; // no-op unless armed
//! # Ok(())
//! # }
//! ```
//!
//! and tests (or an operator, via `KMM_FAILPOINTS` / `--failpoints`) arm
//! them with a deterministic trigger and an action:
//!
//! ```
//! kmm_faults::arm("index.load.io=err").unwrap();          // always fail
//! kmm_faults::arm("serve.handler.slow=sleep50").unwrap(); // 50 ms stall
//! kmm_faults::arm("serve.handler.err=1in3.err").unwrap(); // every 3rd hit
//! kmm_faults::arm("pool.worker.panic=after2.panic").unwrap(); // 3rd hit on
//! kmm_faults::disarm_all();
//! ```
//!
//! ## Grammar
//!
//! `SPEC      := site '=' [trigger '.'] action`
//! `trigger   := '1in' N   (deterministic: hits where a seeded counter`
//! `                        stream says so, exactly 1-in-N on average)`
//! `           | 'after' N (dormant for the first N hits, then always)`
//! `action    := 'err' | 'panic' | 'sleep' MS | 'off'`
//!
//! Multiple specs may be joined with `;`. `site=off` disarms one site.
//!
//! ## Registered sites
//!
//! Sites exist by being checked; the suite currently exercises:
//!
//! | site | where it fires |
//! |---|---|
//! | `index.load.io` | index deserialisation I/O |
//! | `index.save.io` | index serialisation I/O |
//! | `pool.worker.panic` | worker entry, before the request handler |
//! | `serve.handler.slow` | HTTP route entry (the sleep action stalls the handler) |
//! | `serve.handler.err` | HTTP route entry (err → 500, panic → isolation path) |
//! | `serve.conn.stall` | connection accept: the connection is admitted but never read, so the idle-timeout eviction (408, `serve.shed_stall`) fires deterministically — a synthetic slow-loris |
//! | `serve.conn.reset` | connection accept: the connection is dropped on the floor, simulating an abrupt client reset |
//!
//! ## Cost when disarmed
//!
//! One relaxed load of a global [`AtomicBool`] that is `false` unless
//! *some* site is armed — the registry mutex is never touched on the
//! common path, and no strings are hashed.
//!
//! ## Determinism
//!
//! `1inN` does not roll dice: each site keeps a hit counter and fires
//! when `splitmix64(seed ^ hit/N-block) % N` selects the hit within its
//! block, so the same arming + same hit sequence always fires on the
//! same hits. `afterN` is a plain threshold. There is no wall-clock or
//! OS randomness anywhere.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Fast-path guard: true iff at least one site is armed.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Registry of armed sites. Only locked when [`ARMED`] is true (or when
/// arming/disarming/inspecting).
static REGISTRY: Mutex<Vec<Site>> = Mutex::new(Vec::new());

#[derive(Debug, Clone)]
struct Site {
    name: String,
    trigger: Trigger,
    action: Action,
    /// Total times the site was evaluated while armed.
    hits: u64,
    /// Times the action actually fired.
    fired: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on a deterministic 1-in-N subset of hits.
    OneIn(u64),
    /// Dormant for the first N hits, then fire on every hit.
    After(u64),
}

/// What an armed site does when its trigger fires. Returned to the call
/// site, which interprets it (sleeps are performed by [`check`] itself;
/// `Err`/`Panic` are surfaced so the caller can fail through its own
/// error path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Stall for the given number of milliseconds (already performed by
    /// the time [`check`] returns it).
    Sleep(u64),
    /// The caller should fail with an injected error.
    Err,
    /// The caller should panic (or [`check`] panics for it via
    /// [`panic_gate`]).
    Panic,
}

/// Errors from [`arm`]: the offending spec fragment plus a reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    pub spec: String,
    pub reason: &'static str,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad failpoint spec '{}': {}", self.spec, self.reason)
    }
}

impl std::error::Error for SpecError {}

/// splitmix64: tiny, seedable, statistically fine for trigger selection.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Seed folded into the `1inN` stream so distinct sites fire on
/// distinct hit indices even when armed identically.
fn site_seed(name: &str) -> u64 {
    // FNV-1a, matching the serializer's checksum style.
    let mut h = 0xcbf29ce484222325u64;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Trigger {
    fn fires(self, seed: u64, hit: u64) -> bool {
        match self {
            Trigger::Always => true,
            Trigger::After(n) => hit >= n,
            Trigger::OneIn(n) => {
                // Partition hits into blocks of N; fire on exactly one
                // deterministic position per block.
                let block = hit / n;
                hit % n == splitmix64(seed ^ block) % n
            }
        }
    }
}

/// Parse and arm one or more `;`-separated specs. Re-arming a site
/// replaces its trigger/action and resets its counters; `site=off`
/// disarms that site.
pub fn arm(specs: &str) -> Result<(), SpecError> {
    let err = |spec: &str, reason| {
        Err(SpecError {
            spec: spec.to_string(),
            reason,
        })
    };
    let mut parsed: Vec<(String, Option<(Trigger, Action)>)> = Vec::new();
    for spec in specs.split(';').map(str::trim).filter(|s| !s.is_empty()) {
        let Some((site, rhs)) = spec.split_once('=') else {
            return err(spec, "expected site=action");
        };
        let (site, rhs) = (site.trim(), rhs.trim());
        if site.is_empty() {
            return err(spec, "empty site name");
        }
        if rhs == "off" {
            parsed.push((site.to_string(), None));
            continue;
        }
        // Optional "trigger." prefix — but "sleep50" contains no '.'
        // and actions never do, so split on the first '.' only.
        let (trigger, action) = match rhs.split_once('.') {
            Some((t, a)) => {
                let t = t.trim();
                let trigger = if let Some(n) = t.strip_prefix("1in") {
                    match n.trim().parse::<u64>() {
                        Ok(n) if n >= 1 => Trigger::OneIn(n),
                        _ => return err(spec, "1inN needs N >= 1"),
                    }
                } else if let Some(n) = t.strip_prefix("after") {
                    match n.trim().parse::<u64>() {
                        Ok(n) => Trigger::After(n),
                        _ => return err(spec, "afterN needs an integer N"),
                    }
                } else {
                    return err(spec, "unknown trigger (want 1inN or afterN)");
                };
                (trigger, a.trim())
            }
            None => (Trigger::Always, rhs),
        };
        let action = if action == "err" {
            Action::Err
        } else if action == "panic" {
            Action::Panic
        } else if let Some(ms) = action.strip_prefix("sleep") {
            match ms
                .trim()
                .trim_start_matches('(')
                .trim_end_matches(')')
                .parse::<u64>()
            {
                Ok(ms) => Action::Sleep(ms),
                _ => return err(spec, "sleepMS needs an integer millisecond count"),
            }
        } else {
            return err(spec, "unknown action (want err, panic, sleepMS, or off)");
        };
        parsed.push((site.to_string(), Some((trigger, action))));
    }

    let mut reg = REGISTRY.lock().unwrap();
    for (name, armed) in parsed {
        reg.retain(|s| s.name != name);
        if let Some((trigger, action)) = armed {
            reg.push(Site {
                name,
                trigger,
                action,
                hits: 0,
                fired: 0,
            });
        }
    }
    ARMED.store(!reg.is_empty(), Ordering::Relaxed);
    Ok(())
}

/// Arm from the `KMM_FAILPOINTS` environment variable, if set. Returns
/// the parse error (if any) so `main` can report it; an unset variable
/// is fine.
pub fn arm_from_env() -> Result<(), SpecError> {
    match std::env::var("KMM_FAILPOINTS") {
        Ok(specs) if !specs.trim().is_empty() => arm(&specs),
        _ => Ok(()),
    }
}

/// Disarm every site and reset all counters.
pub fn disarm_all() {
    let mut reg = REGISTRY.lock().unwrap();
    reg.clear();
    ARMED.store(false, Ordering::Relaxed);
}

/// Evaluate the failpoint `site`. Disarmed (the overwhelmingly common
/// case): one relaxed atomic load, no locks, returns `None`. Armed:
/// advances the site's deterministic trigger; [`Action::Sleep`] is
/// performed here and still returned (so callers can count it), while
/// `Err`/`Panic` are returned for the caller to enact.
#[inline]
pub fn check(site: &str) -> Option<Action> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    check_slow(site)
}

#[cold]
fn check_slow(site: &str) -> Option<Action> {
    let action = {
        let mut reg = REGISTRY.lock().unwrap();
        let s = reg.iter_mut().find(|s| s.name == site)?;
        let hit = s.hits;
        s.hits += 1;
        if !s.trigger.fires(site_seed(&s.name), hit) {
            return None;
        }
        s.fired += 1;
        s.action
    }; // drop the lock before sleeping
    if let Action::Sleep(ms) = action {
        std::thread::sleep(Duration::from_millis(ms));
    }
    Some(action)
}

/// [`check`] specialised for I/O paths: fires `Err` as an
/// `io::Error` (kind `Other`, message naming the site), panics on
/// `Panic`, and sleeps through `Sleep`.
#[inline]
pub fn io_gate(site: &str) -> std::io::Result<()> {
    match check(site) {
        None | Some(Action::Sleep(_)) => Ok(()),
        Some(Action::Err) => Err(std::io::Error::other(format!(
            "injected fault at failpoint '{site}'"
        ))),
        Some(Action::Panic) => panic!("injected panic at failpoint '{site}'"),
    }
}

/// [`check`] for sites whose only meaningful actions are `Panic` (which
/// panics here) and `Sleep`; `Err` is treated as a panic too, so arming
/// the wrong action is loud rather than silent.
#[inline]
pub fn panic_gate(site: &str) {
    match check(site) {
        None | Some(Action::Sleep(_)) => {}
        Some(Action::Err) | Some(Action::Panic) => {
            panic!("injected panic at failpoint '{site}'")
        }
    }
}

/// How many times `site` has fired (not merely been evaluated) since it
/// was last (re-)armed. Zero for unknown/disarmed sites.
pub fn fired(site: &str) -> u64 {
    REGISTRY
        .lock()
        .unwrap()
        .iter()
        .find(|s| s.name == site)
        .map_or(0, |s| s.fired)
}

/// How many times `site` has been evaluated while armed.
pub fn hits(site: &str) -> u64 {
    REGISTRY
        .lock()
        .unwrap()
        .iter()
        .find(|s| s.name == site)
        .map_or(0, |s| s.hits)
}

/// Names of all currently armed sites (for diagnostics / `serve` logs).
pub fn armed_sites() -> Vec<String> {
    REGISTRY
        .lock()
        .unwrap()
        .iter()
        .map(|s| s.name.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The registry is process-global; serialize the tests that touch it.
    static LOCK: Mutex<()> = Mutex::new(());
    fn exclusive() -> MutexGuard<'static, ()> {
        let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        disarm_all();
        g
    }

    #[test]
    fn disarmed_is_none() {
        let _g = exclusive();
        assert_eq!(check("index.load.io"), None);
        assert!(io_gate("index.load.io").is_ok());
        panic_gate("pool.worker.panic");
    }

    #[test]
    fn always_err_fires_every_time() {
        let _g = exclusive();
        arm("index.load.io=err").unwrap();
        for _ in 0..3 {
            assert_eq!(check("index.load.io"), Some(Action::Err));
        }
        assert!(io_gate("index.load.io").is_err());
        assert_eq!(fired("index.load.io"), 4);
        disarm_all();
        assert_eq!(check("index.load.io"), None);
    }

    #[test]
    fn after_n_is_dormant_then_fires() {
        let _g = exclusive();
        arm("pool.worker.panic=after3.err").unwrap();
        let fires: Vec<bool> = (0..6)
            .map(|_| check("pool.worker.panic").is_some())
            .collect();
        assert_eq!(fires, [false, false, false, true, true, true]);
        disarm_all();
    }

    #[test]
    fn one_in_n_is_deterministic_and_exact_per_block() {
        let _g = exclusive();
        let run = |n: usize| -> Vec<bool> {
            arm("serve.handler.err=1in4.err").unwrap();
            let v = (0..n)
                .map(|_| check("serve.handler.err").is_some())
                .collect();
            disarm_all();
            v
        };
        let a = run(40);
        let b = run(40);
        assert_eq!(a, b, "same arming must fire on the same hits");
        // Exactly one firing per block of 4.
        for block in a.chunks(4) {
            assert_eq!(block.iter().filter(|&&f| f).count(), 1);
        }
    }

    #[test]
    fn distinct_sites_have_distinct_streams() {
        let _g = exclusive();
        arm("a.site=1in8.err;b.site=1in8.err").unwrap();
        let a: Vec<bool> = (0..64).map(|_| check("a.site").is_some()).collect();
        let b: Vec<bool> = (0..64).map(|_| check("b.site").is_some()).collect();
        assert_ne!(a, b, "seeded per-site streams should differ");
        disarm_all();
    }

    #[test]
    fn sleep_action_sleeps_and_reports() {
        let _g = exclusive();
        arm("serve.handler.slow=sleep20").unwrap();
        let t = std::time::Instant::now();
        assert_eq!(check("serve.handler.slow"), Some(Action::Sleep(20)));
        assert!(t.elapsed() >= Duration::from_millis(20));
        // Parenthesised form parses too.
        arm("serve.handler.slow=sleep(5)").unwrap();
        assert_eq!(check("serve.handler.slow"), Some(Action::Sleep(5)));
        disarm_all();
    }

    #[test]
    fn off_disarms_one_site_only() {
        let _g = exclusive();
        arm("a.site=err;b.site=err").unwrap();
        arm("a.site=off").unwrap();
        assert_eq!(check("a.site"), None);
        assert_eq!(check("b.site"), Some(Action::Err));
        disarm_all();
    }

    #[test]
    fn rearming_resets_counters() {
        let _g = exclusive();
        arm("x=err").unwrap();
        check("x");
        check("x");
        assert_eq!(fired("x"), 2);
        arm("x=after1.err").unwrap();
        assert_eq!(fired("x"), 0);
        assert_eq!(check("x"), None, "counter restarted, first hit dormant");
        assert_eq!(check("x"), Some(Action::Err));
        disarm_all();
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _g = exclusive();
        for bad in [
            "no-equals",
            "=err",
            "x=1in0.err",
            "x=1inQ.err",
            "x=afterQ.err",
            "x=frob",
            "x=sleepQ",
            "x=sometimes.err",
        ] {
            assert!(arm(bad).is_err(), "spec '{bad}' should be rejected");
        }
        // A rejected batch must not half-arm.
        assert!(arm("good=err;x=frob").is_err());
        assert_eq!(check("good"), None);
        disarm_all();
    }

    #[test]
    fn env_arming_handles_absence() {
        let _g = exclusive();
        std::env::remove_var("KMM_FAILPOINTS");
        assert!(arm_from_env().is_ok());
        assert!(armed_sites().is_empty());
        disarm_all();
    }
}
