//! Enhanced suffix array: SA + rank + LCP + RMQ in one structure.
//!
//! Supports exact pattern search (binary search over the SA) and O(1)
//! longest-common-extension queries after linear preprocessing — the two
//! operations the baseline matchers need.

use crate::lcp::{lcp_array, rank_array};
use crate::rmq::SparseTableRmq;
use crate::sais::suffix_array;

/// An enhanced suffix array over an owned encoded text.
#[derive(Debug, Clone)]
pub struct EnhancedSuffixArray {
    text: Vec<u8>,
    sa: Vec<u32>,
    rank: Vec<u32>,
    lcp: Vec<u32>,
    rmq: SparseTableRmq,
}

impl EnhancedSuffixArray {
    /// Build over `text` (must end with the unique sentinel 0).
    pub fn new(text: Vec<u8>, sigma: usize) -> Self {
        let sa = suffix_array(&text, sigma);
        let rank = rank_array(&sa);
        let lcp = lcp_array(&text, &sa);
        let rmq = SparseTableRmq::new(lcp.clone());
        EnhancedSuffixArray {
            text,
            sa,
            rank,
            lcp,
            rmq,
        }
    }

    /// The indexed text, sentinel included.
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// The suffix array.
    pub fn sa(&self) -> &[u32] {
        &self.sa
    }

    /// The inverse suffix array.
    pub fn rank(&self) -> &[u32] {
        &self.rank
    }

    /// The LCP array.
    pub fn lcp(&self) -> &[u32] {
        &self.lcp
    }

    /// Text length including the sentinel.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True only for the degenerate empty structure (never produced by
    /// `new`, which requires a sentinel).
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Longest common extension of the suffixes starting at text positions
    /// `i` and `j` (number of equal symbols before the first difference).
    #[inline]
    pub fn lce(&self, i: usize, j: usize) -> usize {
        let n = self.text.len();
        if i >= n || j >= n {
            return 0;
        }
        if i == j {
            return n - i;
        }
        let (ri, rj) = (self.rank[i] as usize, self.rank[j] as usize);
        let (lo, hi) = if ri < rj { (ri + 1, rj) } else { (rj + 1, ri) };
        self.rmq.min_value(lo, hi) as usize
    }

    /// The half-open SA range `[lo, hi)` of suffixes starting with
    /// `pattern`, found by binary search in `O(m log n)`.
    pub fn find(&self, pattern: &[u8]) -> (usize, usize) {
        // lo: first suffix >= pattern; hi: first suffix that neither starts
        // with pattern nor compares below it.
        let lo = self.partition_point(|suf| suf < pattern);
        let hi = self.partition_point(|suf| {
            suf.len() >= pattern.len() && &suf[..pattern.len()] == pattern || suf < pattern
        });
        (lo, hi)
    }

    fn partition_point(&self, pred: impl Fn(&[u8]) -> bool) -> usize {
        let mut l = 0;
        let mut r = self.sa.len();
        while l < r {
            let mid = (l + r) / 2;
            if pred(&self.text[self.sa[mid] as usize..]) {
                l = mid + 1;
            } else {
                r = mid;
            }
        }
        l
    }

    /// All start positions of exact occurrences of `pattern`, sorted.
    pub fn locate(&self, pattern: &[u8]) -> Vec<usize> {
        if pattern.is_empty() {
            return (0..self.text.len()).collect();
        }
        let (lo, hi) = self.find(pattern);
        let mut positions: Vec<usize> = self.sa[lo..hi].iter().map(|&p| p as usize).collect();
        positions.sort_unstable();
        positions
    }

    /// Number of exact occurrences of `pattern`.
    pub fn count(&self, pattern: &[u8]) -> usize {
        if pattern.is_empty() {
            return self.text.len();
        }
        let (lo, hi) = self.find(pattern);
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esa(ascii: &[u8]) -> EnhancedSuffixArray {
        EnhancedSuffixArray::new(kmm_dna::encode_text(ascii).unwrap(), kmm_dna::SIGMA)
    }

    fn naive_locate(text: &[u8], pattern: &[u8]) -> Vec<usize> {
        if pattern.is_empty() || pattern.len() > text.len() {
            return vec![];
        }
        (0..=text.len() - pattern.len())
            .filter(|&i| &text[i..i + pattern.len()] == pattern)
            .collect()
    }

    #[test]
    fn paper_search_example() {
        // Section III-A: r = aca in s = acagaca$ occurs at positions 1 and 5
        // (1-based) = 0 and 4 (0-based).
        let idx = esa(b"acagaca");
        let pat = kmm_dna::encode(b"aca").unwrap();
        assert_eq!(idx.locate(&pat), vec![0, 4]);
        assert_eq!(idx.count(&pat), 2);
    }

    #[test]
    fn absent_pattern() {
        let idx = esa(b"acagaca");
        let pat = kmm_dna::encode(b"tt").unwrap();
        assert_eq!(idx.locate(&pat), Vec::<usize>::new());
        assert_eq!(idx.count(&pat), 0);
    }

    #[test]
    fn random_locate_matches_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..50 {
            let n = rng.gen_range(1..300);
            let ascii: Vec<u8> = (0..n).map(|_| b"acgt"[rng.gen_range(0..4usize)]).collect();
            let idx = esa(&ascii);
            let text = kmm_dna::encode(&ascii).unwrap();
            for _ in 0..20 {
                let m = rng.gen_range(1..8.min(n + 1));
                let pat: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
                assert_eq!(idx.locate(&pat), naive_locate(&text, &pat));
            }
        }
    }

    #[test]
    fn lce_matches_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let ascii: Vec<u8> = (0..200)
            .map(|_| b"acgt"[rng.gen_range(0..4usize)])
            .collect();
        let idx = esa(&ascii);
        let text = idx.text().to_vec();
        for _ in 0..500 {
            let i = rng.gen_range(0..text.len());
            let j = rng.gen_range(0..text.len());
            let mut h = 0;
            while i + h < text.len() && j + h < text.len() && text[i + h] == text[j + h] {
                h += 1;
            }
            assert_eq!(idx.lce(i, j), h, "lce({i},{j})");
        }
    }

    #[test]
    fn lce_identity() {
        let idx = esa(b"acgtacgt");
        assert_eq!(idx.lce(0, 0), 9); // whole text incl. sentinel
        assert_eq!(idx.lce(0, 4), 4); // acgt$ vs acgt...
    }

    #[test]
    fn pattern_longer_than_text() {
        let idx = esa(b"ac");
        let pat = kmm_dna::encode(b"acgt").unwrap();
        assert_eq!(idx.count(&pat), 0);
    }

    #[test]
    fn repetitive_text_counts() {
        let idx = esa(b"aaaaaa");
        let a = kmm_dna::encode(b"aa").unwrap();
        assert_eq!(idx.count(&a), 5);
        assert_eq!(idx.locate(&a), vec![0, 1, 2, 3, 4]);
    }
}
