//! Linear-time suffix array construction (SA-IS).
//!
//! The paper builds `BWT(s̄)` through the suffix array of the reversed text
//! (Section III-B), citing the linear-time constructions of \[15\]. We
//! implement the induced-sorting algorithm of Nong, Zhang & Chan (SA-IS),
//! which runs in `O(n)` time and `O(n)` working space and is the approach
//! used by virtually all modern read aligners.
//!
//! The entry point [`suffix_array`] takes an encoded text that ends with
//! the unique, smallest sentinel (`$`, code 0) and returns the permutation
//! `H` with `H[i]` = start of the i-th smallest suffix (so `H[0]` is always
//! the sentinel position `n-1`).

/// Build the suffix array of `text`.
///
/// Requirements (checked): `text` is non-empty, its last symbol is `0`,
/// `0` occurs nowhere else, and all symbols are `< sigma`.
pub fn suffix_array(text: &[u8], sigma: usize) -> Vec<u32> {
    assert!(!text.is_empty(), "text must be non-empty");
    assert_eq!(
        *text.last().unwrap(),
        0,
        "text must end with the sentinel 0"
    );
    assert!(
        !text[..text.len() - 1].contains(&0),
        "sentinel 0 must be unique"
    );
    assert!(
        text.iter().all(|&c| (c as usize) < sigma),
        "all symbols must be < sigma"
    );
    assert!(
        text.len() <= u32::MAX as usize,
        "texts larger than u32::MAX are not supported"
    );
    let text_usize: Vec<usize> = text.iter().map(|&c| c as usize).collect();
    let mut sa = vec![0u32; text.len()];
    sais(&text_usize, sigma, &mut sa);
    sa
}

/// Core SA-IS over a `usize` string (used recursively on reduced strings).
/// `s` must end with a unique smallest sentinel 0.
fn sais(s: &[usize], sigma: usize, sa: &mut [u32]) {
    let n = s.len();
    debug_assert_eq!(sa.len(), n);
    if n == 1 {
        sa[0] = 0;
        return;
    }
    if n == 2 {
        // "x$": suffixes are "$" then "x$".
        sa[0] = 1;
        sa[1] = 0;
        return;
    }

    // --- classify suffixes: true = S-type, false = L-type -----------------
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    // --- bucket boundaries -------------------------------------------------
    let mut bucket_sizes = vec![0u32; sigma];
    for &c in s {
        bucket_sizes[c] += 1;
    }
    let bucket_heads = |sizes: &[u32]| {
        let mut heads = vec![0u32; sigma];
        let mut sum = 0u32;
        for c in 0..sigma {
            heads[c] = sum;
            sum += sizes[c];
        }
        heads
    };
    let bucket_tails = |sizes: &[u32]| {
        let mut tails = vec![0u32; sigma];
        let mut sum = 0u32;
        for c in 0..sigma {
            sum += sizes[c];
            tails[c] = sum; // exclusive end
        }
        tails
    };

    const EMPTY: u32 = u32::MAX;

    // Induced sort: given LMS positions placed at bucket tails, derive the
    // full (approximate) order of all suffixes.
    let induce = |sa: &mut [u32], lms_seed: &dyn Fn(&mut [u32], &mut [u32])| {
        sa.fill(EMPTY);
        // Step 1: place seeds (LMS suffixes) at bucket tails.
        let mut tails = bucket_tails(&bucket_sizes);
        lms_seed(sa, &mut tails);
        // Step 2: induce L-type from left to right.
        let mut heads = bucket_heads(&bucket_sizes);
        for i in 0..n {
            let j = sa[i];
            if j == EMPTY || j == 0 {
                continue;
            }
            let j = j as usize - 1;
            if !is_s[j] {
                let c = s[j];
                sa[heads[c] as usize] = j as u32;
                heads[c] += 1;
            }
        }
        // Step 3: induce S-type from right to left.
        let mut tails = bucket_tails(&bucket_sizes);
        for i in (0..n).rev() {
            let j = sa[i];
            if j == EMPTY || j == 0 {
                continue;
            }
            let j = j as usize - 1;
            if is_s[j] {
                let c = s[j];
                tails[c] -= 1;
                sa[tails[c] as usize] = j as u32;
            }
        }
    };

    // --- first pass: sort LMS suffixes approximately -----------------------
    let lms_positions: Vec<u32> = (1..n).filter(|&i| is_lms(i)).map(|i| i as u32).collect();
    induce(sa, &|sa, tails| {
        for &p in &lms_positions {
            let c = s[p as usize];
            tails[c] -= 1;
            sa[tails[c] as usize] = p;
        }
    });

    // --- name LMS substrings ------------------------------------------------
    // Collect LMS suffixes in their induced order.
    let sorted_lms: Vec<u32> = sa
        .iter()
        .copied()
        .filter(|&p| p != EMPTY && is_lms(p as usize))
        .collect();
    debug_assert_eq!(sorted_lms.len(), lms_positions.len());

    // Compare consecutive LMS substrings to assign names.
    let lms_substring_end = |i: usize| {
        // The LMS substring starting at i ends at the next LMS position
        // (inclusive), or at the sentinel.
        let mut j = i + 1;
        while j < n && !is_lms(j) {
            j += 1;
        }
        j.min(n - 1)
    };
    let mut names = vec![EMPTY; n];
    let mut name_count: u32 = 0;
    let mut prev: Option<usize> = None;
    for &p in &sorted_lms {
        let p = p as usize;
        let equal = match prev {
            None => false,
            Some(q) => {
                let (pe, qe) = (lms_substring_end(p), lms_substring_end(q));
                pe - p == qe - q && s[p..=pe] == s[q..=qe]
            }
        };
        if !equal {
            name_count += 1;
        }
        names[p] = name_count - 1;
        prev = Some(p);
    }

    if (name_count as usize) < lms_positions.len() {
        // Names are not yet unique: recurse on the reduced string.
        let mut reduced: Vec<usize> = Vec::with_capacity(lms_positions.len());
        for &p in &lms_positions {
            reduced.push(names[p as usize] as usize);
        }
        // Reduced string already ends with the unique smallest name (the
        // sentinel's LMS suffix is the single smallest LMS suffix), but we
        // normalise: shift names by +1 and append 0 to satisfy the
        // precondition, keeping linear size (reduced.len() <= n/2).
        let mut shifted: Vec<usize> = reduced.iter().map(|&x| x + 1).collect();
        shifted.push(0);
        let mut sub_sa = vec![0u32; shifted.len()];
        sais(&shifted, name_count as usize + 2, &mut sub_sa);
        // sub_sa[0] is the appended sentinel; skip it.
        let order: Vec<u32> = sub_sa[1..]
            .iter()
            .map(|&i| lms_positions[i as usize])
            .collect();
        induce(sa, &|sa, tails| {
            for &p in order.iter().rev() {
                let c = s[p as usize];
                tails[c] -= 1;
                sa[tails[c] as usize] = p;
            }
        });
    } else {
        // All LMS substrings distinct: sorted_lms is the exact LMS order.
        let order = sorted_lms;
        induce(sa, &|sa, tails| {
            for &p in order.iter().rev() {
                let c = s[p as usize];
                tails[c] -= 1;
                sa[tails[c] as usize] = p;
            }
        });
    }

    debug_assert!(sa.iter().all(|&x| x != EMPTY));
}

/// Reference `O(n^2 log n)` construction by direct suffix sorting.
/// Used only in tests and as a cross-check for small inputs.
pub fn suffix_array_naive(text: &[u8]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(ascii: &[u8]) {
        let text = kmm_dna::encode_text(ascii).unwrap();
        let fast = suffix_array(&text, kmm_dna::SIGMA);
        let slow = suffix_array_naive(&text);
        assert_eq!(
            fast,
            slow,
            "mismatch for {:?}",
            String::from_utf8_lossy(ascii)
        );
    }

    #[test]
    fn paper_example() {
        // s = acagaca$ from Fig. 1/2: sorted rotations give SA order
        // $, a$, aca$, acagaca$, agaca$, ca$, caga..., gaca$.
        let text = kmm_dna::encode_text(b"acagaca").unwrap();
        let sa = suffix_array(&text, kmm_dna::SIGMA);
        assert_eq!(sa, vec![7, 6, 4, 0, 2, 5, 1, 3]);
    }

    #[test]
    fn tiny_texts() {
        check(b"");
        check(b"a");
        check(b"aa");
        check(b"ab".map(|_| b'a').as_ref());
        check(b"ac");
        check(b"ca");
    }

    #[test]
    fn repetitive_texts() {
        check(b"aaaaaaaaaa");
        check(b"acacacacac");
        check(b"aacaacaacaac");
        check(
            b"abracadabra"
                .iter()
                .map(|_| b'a')
                .collect::<Vec<_>>()
                .as_ref(),
        );
        check(b"gtgtgtgtgtg");
    }

    #[test]
    fn mississippi_style() {
        // 'mississippi' transliterated into DNA: m->a i->c s->g p->t
        check(b"acggcggcttc");
    }

    #[test]
    fn random_texts_match_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let len = rng.gen_range(1..200);
            let ascii: Vec<u8> = (0..len)
                .map(|_| b"acgt"[rng.gen_range(0..4usize)])
                .collect();
            check(&ascii);
        }
    }

    #[test]
    fn long_random_text() {
        let g = kmm_dna::genome::uniform(50_000, 12);
        let ascii = kmm_dna::decode(&g);
        check(&ascii);
    }

    #[test]
    fn long_repetitive_text() {
        let mut ascii = b"acgtacgga".repeat(2000);
        ascii.extend_from_slice(b"ttt");
        check(&ascii);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn rejects_missing_sentinel() {
        suffix_array(&[1, 2, 3], 5);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn rejects_interior_sentinel() {
        suffix_array(&[1, 0, 2, 0], 5);
    }

    #[test]
    fn sentinel_only() {
        assert_eq!(suffix_array(&[0], 5), vec![0]);
    }

    #[test]
    fn suffix_array_is_permutation() {
        let g = kmm_dna::genome::markov(10_000, &kmm_dna::genome::MarkovConfig::default(), 5);
        let mut text = g;
        text.push(0);
        let sa = suffix_array(&text, kmm_dna::SIGMA);
        let mut seen = vec![false; text.len()];
        for &p in &sa {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
        // Suffixes strictly increasing.
        for w in sa.windows(2) {
            assert!(text[w[0] as usize..] < text[w[1] as usize..]);
        }
    }
}
