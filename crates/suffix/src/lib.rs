//! # kmm-suffix
//!
//! Suffix structures for the `bwt-kmismatch` suite: linear-time suffix
//! arrays (SA-IS), Kasai LCP arrays, sparse-table RMQ, an enhanced suffix
//! array with O(1) longest-common-extension queries, and a suffix tree
//! built from SA + LCP.
//!
//! These are the substrates behind the paper's index construction
//! (Section III-B builds `BWT(s̄)` from a suffix array) and behind two of
//! its baselines (Cole's suffix-tree search and the kangaroo verification
//! used by Amir's method).

pub mod lcp;
pub mod lcp_intervals;
pub mod rmq;
pub mod sais;
pub mod suffix_array;
pub mod suffix_tree;
pub mod traverse;

pub use lcp::{lcp_array, rank_array};
pub use lcp_intervals::{lcp_intervals, repeat_summary, LcpInterval, RepeatSummary};
pub use rmq::SparseTableRmq;
pub use sais::{suffix_array, suffix_array_naive};
pub use suffix_array::EnhancedSuffixArray;
pub use suffix_tree::{StNode, SuffixTree, NO_NODE};
pub use traverse::{SuffixTreeExt, TreeShape};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::sais::{suffix_array, suffix_array_naive};
    use crate::suffix_tree::SuffixTree;

    fn dna_text() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(1u8..=4, 0..120).prop_map(|mut v| {
            v.push(0);
            v
        })
    }

    proptest! {
        #[test]
        fn sais_matches_naive(text in dna_text()) {
            prop_assert_eq!(suffix_array(&text, 5), suffix_array_naive(&text));
        }

        #[test]
        fn suffix_tree_always_validates(text in dna_text()) {
            let t = SuffixTree::new(text, 5);
            prop_assert!(t.validate().is_ok());
        }

        #[test]
        fn lce_symmetry(text in dna_text(), i in 0usize..130, j in 0usize..130) {
            let esa = crate::EnhancedSuffixArray::new(text.clone(), 5);
            let i = i % text.len();
            let j = j % text.len();
            prop_assert_eq!(esa.lce(i, j), esa.lce(j, i));
        }
    }
}
