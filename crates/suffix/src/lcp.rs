//! Longest-common-prefix arrays (Kasai's algorithm).
//!
//! `lcp[i]` is the length of the longest common prefix of the suffixes
//! ranked `i-1` and `i` in the suffix array (`lcp[0] = 0`). Together with a
//! range-minimum structure this yields O(1) longest-common-extension
//! queries, the engine behind the kangaroo jumps used by the Amir /
//! Landau–Vishkin baselines (paper Section II, refs [2, 19]).

/// Inverse permutation of a suffix array: `rank[p]` is the lexicographic
/// rank of the suffix starting at text position `p`.
pub fn rank_array(sa: &[u32]) -> Vec<u32> {
    let mut rank = vec![0u32; sa.len()];
    for (r, &p) in sa.iter().enumerate() {
        rank[p as usize] = r as u32;
    }
    rank
}

/// Kasai's linear-time LCP construction.
pub fn lcp_array(text: &[u8], sa: &[u32]) -> Vec<u32> {
    assert_eq!(text.len(), sa.len(), "text and suffix array lengths differ");
    let n = text.len();
    let mut lcp = vec![0u32; n];
    if n == 0 {
        return lcp;
    }
    let rank = rank_array(sa);
    let mut h = 0usize;
    for p in 0..n {
        let r = rank[p] as usize;
        if r == 0 {
            h = 0;
            continue;
        }
        let q = sa[r - 1] as usize;
        while p + h < n && q + h < n && text[p + h] == text[q + h] {
            h += 1;
        }
        lcp[r] = h as u32;
        h = h.saturating_sub(1);
    }
    lcp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sais::{suffix_array, suffix_array_naive};

    fn naive_lcp(text: &[u8], sa: &[u32]) -> Vec<u32> {
        let mut lcp = vec![0u32; sa.len()];
        for i in 1..sa.len() {
            let (a, b) = (sa[i - 1] as usize, sa[i] as usize);
            let mut h = 0;
            while a + h < text.len() && b + h < text.len() && text[a + h] == text[b + h] {
                h += 1;
            }
            lcp[i] = h as u32;
        }
        lcp
    }

    #[test]
    fn paper_example() {
        let text = kmm_dna::encode_text(b"acagaca").unwrap();
        let sa = suffix_array(&text, kmm_dna::SIGMA);
        // SA = [7,6,4,0,2,5,1,3]; suffixes: $, a$, aca$, acagaca$, agaca$,
        // ca$, cagaca$, gaca$. LCPs: 0,0,1,3,1,0,2,0.
        assert_eq!(lcp_array(&text, &sa), vec![0, 0, 1, 3, 1, 0, 2, 0]);
    }

    #[test]
    fn rank_is_inverse() {
        let text = kmm_dna::encode_text(b"gattaca").unwrap();
        let sa = suffix_array(&text, kmm_dna::SIGMA);
        let rank = rank_array(&sa);
        for (r, &p) in sa.iter().enumerate() {
            assert_eq!(rank[p as usize] as usize, r);
        }
    }

    #[test]
    fn random_matches_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let len = rng.gen_range(1..150);
            let mut text: Vec<u8> = (0..len).map(|_| rng.gen_range(1..=4)).collect();
            text.push(0);
            let sa = suffix_array_naive(&text);
            assert_eq!(lcp_array(&text, &sa), naive_lcp(&text, &sa));
        }
    }

    #[test]
    fn empty_and_sentinel_only() {
        assert_eq!(lcp_array(&[], &[]), Vec::<u32>::new());
        assert_eq!(lcp_array(&[0], &[0]), vec![0]);
    }

    #[test]
    fn all_same_char() {
        let text = kmm_dna::encode_text(b"aaaa").unwrap();
        let sa = suffix_array(&text, kmm_dna::SIGMA);
        // suffixes: $, a$, aa$, aaa$, aaaa$ -> lcp 0,0,1,2,3
        assert_eq!(lcp_array(&text, &sa), vec![0, 0, 1, 2, 3]);
    }
}
