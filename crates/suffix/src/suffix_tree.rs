//! Suffix trees, built in linear time from the suffix array and LCP array.
//!
//! The paper's "Cole's" baseline (Section V) performs a brute-force
//! k-mismatch search over a suffix tree of the target (the authors used the
//! `gsuffix` C library). This module provides our own suffix tree with the
//! traversal hooks that search needs: children indexed by first edge
//! symbol, edge labels as text slices, and the SA leaf range under every
//! node for occurrence reporting.

use kmm_dna::SIGMA;

use crate::lcp::lcp_array;
use crate::sais::suffix_array;

/// Sentinel meaning "no node".
pub const NO_NODE: u32 = u32::MAX;

/// One suffix-tree node. The edge *into* the node is labelled by
/// `text[label_start..label_end]`; `depth` is the total string depth at the
/// bottom of that edge.
#[derive(Debug, Clone)]
pub struct StNode {
    /// Parent node id (`NO_NODE` for the root).
    pub parent: u32,
    /// Start of this node's incoming edge label in the text.
    pub label_start: u32,
    /// End (exclusive) of the incoming edge label.
    pub label_end: u32,
    /// String depth at this node.
    pub depth: u32,
    /// Children indexed by the first symbol of their edge label.
    pub children: [u32; SIGMA],
    /// Leaf range `[sa_lo, sa_hi)` in the suffix array covered by this
    /// subtree.
    pub sa_lo: u32,
    /// Exclusive end of the leaf range.
    pub sa_hi: u32,
    /// For leaves, the suffix start position; `NO_NODE` for internal nodes.
    pub suffix: u32,
}

impl StNode {
    fn new(parent: u32, label_start: u32, label_end: u32, depth: u32) -> Self {
        StNode {
            parent,
            label_start,
            label_end,
            depth,
            children: [NO_NODE; SIGMA],
            sa_lo: 0,
            sa_hi: 0,
            suffix: NO_NODE,
        }
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.suffix != NO_NODE
    }
}

/// A suffix tree over an owned encoded text (sentinel-terminated).
#[derive(Debug, Clone)]
pub struct SuffixTree {
    text: Vec<u8>,
    sa: Vec<u32>,
    nodes: Vec<StNode>,
}

impl SuffixTree {
    /// Build the suffix tree of `text` (must end with the unique sentinel 0).
    pub fn new(text: Vec<u8>, sigma: usize) -> Self {
        let sa = suffix_array(&text, sigma);
        let lcp = lcp_array(&text, &sa);
        Self::from_sa_lcp(text, sa, &lcp)
    }

    /// Build from precomputed SA and LCP arrays.
    pub fn from_sa_lcp(text: Vec<u8>, sa: Vec<u32>, lcp: &[u32]) -> Self {
        let n = text.len();
        let mut nodes: Vec<StNode> = Vec::with_capacity(2 * n.max(1));
        nodes.push(StNode::new(NO_NODE, 0, 0, 0)); // root
                                                   // Stack of node ids on the rightmost path, depths strictly
                                                   // increasing from the root.
        let mut stack: Vec<u32> = vec![0];

        for (i, &suf) in sa.iter().enumerate() {
            let h = if i == 0 { 0 } else { lcp[i] };
            let mut last_popped: u32 = NO_NODE;
            while nodes[*stack.last().unwrap() as usize].depth > h {
                last_popped = stack.pop().unwrap();
            }
            let top = *stack.last().unwrap();
            let attach_to = if nodes[top as usize].depth == h {
                top
            } else {
                // Split the edge into `last_popped` at depth h.
                debug_assert!(last_popped != NO_NODE);
                let parent_depth = nodes[top as usize].depth;
                let child_start = nodes[last_popped as usize].label_start;
                let take = h - parent_depth;
                let mid_id = nodes.len() as u32;
                let mut mid = StNode::new(top, child_start, child_start + take, h);
                // Re-hang last_popped under the new internal node.
                let first_sym = text[child_start as usize] as usize;
                nodes[top as usize].children[first_sym] = mid_id;
                let lp = &mut nodes[last_popped as usize];
                lp.parent = mid_id;
                lp.label_start += take;
                let lp_sym = text[lp.label_start as usize] as usize;
                mid.children[lp_sym] = last_popped;
                nodes.push(mid);
                stack.push(mid_id);
                mid_id
            };
            // Attach the new leaf for suffix `suf`.
            let leaf_id = nodes.len() as u32;
            let mut leaf = StNode::new(attach_to, suf + h, n as u32, (n as u32) - suf);
            leaf.suffix = suf;
            leaf.sa_lo = i as u32;
            leaf.sa_hi = i as u32 + 1;
            let sym = text[(suf + h) as usize] as usize;
            nodes[attach_to as usize].children[sym] = leaf_id;
            nodes.push(leaf);
            stack.push(leaf_id);
        }

        let mut tree = SuffixTree { text, sa, nodes };
        tree.compute_ranges();
        tree
    }

    /// Fill `sa_lo`/`sa_hi` for internal nodes by an iterative post-order
    /// walk (leaves already carry their rank).
    fn compute_ranges(&mut self) {
        // Children were attached in SA order, so each internal node's range
        // is the union of its children's. Process nodes in reverse creation
        // order: children are always created after their parent, except for
        // re-hung split children — handle with an explicit post-order.
        let mut order: Vec<u32> = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<u32> = vec![0];
        while let Some(v) = stack.pop() {
            order.push(v);
            for &c in &self.nodes[v as usize].children {
                if c != NO_NODE {
                    stack.push(c);
                }
            }
        }
        for &v in order.iter().rev() {
            if self.nodes[v as usize].is_leaf() {
                continue;
            }
            let mut lo = u32::MAX;
            let mut hi = 0u32;
            for &c in &self.nodes[v as usize].children {
                if c != NO_NODE {
                    lo = lo.min(self.nodes[c as usize].sa_lo);
                    hi = hi.max(self.nodes[c as usize].sa_hi);
                }
            }
            let node = &mut self.nodes[v as usize];
            node.sa_lo = lo;
            node.sa_hi = hi;
        }
    }

    /// The indexed text (sentinel included).
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// The underlying suffix array.
    pub fn sa(&self) -> &[u32] {
        &self.sa
    }

    /// All nodes; index 0 is the root.
    pub fn nodes(&self) -> &[StNode] {
        &self.nodes
    }

    /// The root node id.
    pub fn root(&self) -> u32 {
        0
    }

    /// Edge label of `node` as a text slice.
    pub fn label(&self, node: u32) -> &[u8] {
        let n = &self.nodes[node as usize];
        &self.text[n.label_start as usize..n.label_end as usize]
    }

    /// Child of `node` whose edge starts with `sym`, if any.
    pub fn child(&self, node: u32, sym: u8) -> Option<u32> {
        let c = self.nodes[node as usize].children[sym as usize];
        (c != NO_NODE).then_some(c)
    }

    /// Number of leaves (= text length).
    pub fn leaf_count(&self) -> usize {
        self.sa.len()
    }

    /// Exact occurrences of `pattern`, sorted — used for cross-checking.
    pub fn locate(&self, pattern: &[u8]) -> Vec<usize> {
        let mut node = 0u32;
        let mut matched = 0usize;
        'outer: while matched < pattern.len() {
            let Some(c) = self.child(node, pattern[matched]) else {
                return vec![];
            };
            let label = self.label(c);
            for &sym in label {
                if matched == pattern.len() {
                    node = c;
                    break 'outer;
                }
                if sym != pattern[matched] {
                    return vec![];
                }
                matched += 1;
            }
            node = c;
        }
        let nd = &self.nodes[node as usize];
        let mut out: Vec<usize> = self.sa[nd.sa_lo as usize..nd.sa_hi as usize]
            .iter()
            .map(|&p| p as usize)
            .collect();
        out.sort_unstable();
        out
    }

    /// Structural sanity check used by tests: every non-root internal node
    /// has >= 2 children, depths increase along edges, labels concatenate to
    /// the suffixes.
    pub fn validate(&self) -> Result<(), String> {
        for (id, node) in self.nodes.iter().enumerate() {
            let id = id as u32;
            if id == 0 {
                continue;
            }
            let parent = &self.nodes[node.parent as usize];
            if node.depth != parent.depth + (node.label_end - node.label_start) {
                return Err(format!("node {id}: depth inconsistent"));
            }
            if !node.is_leaf() {
                let kids = node.children.iter().filter(|&&c| c != NO_NODE).count();
                if kids < 2 {
                    return Err(format!("internal node {id} has {kids} children"));
                }
            }
        }
        // Each leaf's root-to-leaf labels spell its suffix.
        for (id, node) in self.nodes.iter().enumerate() {
            if !node.is_leaf() {
                continue;
            }
            let mut parts: Vec<&[u8]> = Vec::new();
            let mut v = id as u32;
            while v != 0 {
                parts.push(self.label(v));
                v = self.nodes[v as usize].parent;
            }
            parts.reverse();
            let spelled: Vec<u8> = parts.concat();
            if spelled != self.text[node.suffix as usize..] {
                return Err(format!("leaf {id} spells the wrong suffix"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(ascii: &[u8]) -> SuffixTree {
        SuffixTree::new(kmm_dna::encode_text(ascii).unwrap(), kmm_dna::SIGMA)
    }

    #[test]
    fn paper_text_tree_is_valid() {
        let t = tree(b"acagaca");
        t.validate().unwrap();
        assert_eq!(t.leaf_count(), 8);
    }

    #[test]
    fn locate_matches_paper_example() {
        let t = tree(b"acagaca");
        let pat = kmm_dna::encode(b"aca").unwrap();
        assert_eq!(t.locate(&pat), vec![0, 4]);
    }

    #[test]
    fn locate_within_edge() {
        let t = tree(b"acagaca");
        // "ag" ends in the middle of an edge.
        let pat = kmm_dna::encode(b"ag").unwrap();
        assert_eq!(t.locate(&pat), vec![2]);
        // "gac" likewise.
        let pat = kmm_dna::encode(b"gac").unwrap();
        assert_eq!(t.locate(&pat), vec![3]);
    }

    #[test]
    fn absent_patterns() {
        let t = tree(b"acagaca");
        for p in [&b"tt"[..], b"acagt", b"caca", b"gg", b"acagacaa"] {
            let pat = kmm_dna::encode(p).unwrap();
            assert_eq!(t.locate(&pat), Vec::<usize>::new(), "pattern {p:?}");
        }
    }

    #[test]
    fn random_trees_validate_and_locate() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..40 {
            let n = rng.gen_range(1..200);
            let ascii: Vec<u8> = (0..n).map(|_| b"acgt"[rng.gen_range(0..4usize)]).collect();
            let t = tree(&ascii);
            t.validate().unwrap();
            let text = kmm_dna::encode(&ascii).unwrap();
            for _ in 0..10 {
                let m = rng.gen_range(1..10.min(n + 2));
                let pat: Vec<u8> = (0..m).map(|_| rng.gen_range(1..=4)).collect();
                let naive: Vec<usize> = if m > text.len() {
                    vec![]
                } else {
                    (0..=text.len() - m)
                        .filter(|&i| text[i..i + m] == pat[..])
                        .collect()
                };
                assert_eq!(t.locate(&pat), naive);
            }
        }
    }

    #[test]
    fn repetitive_tree() {
        let t = tree(b"aaaaaaa");
        t.validate().unwrap();
        let pat = kmm_dna::encode(b"aaa").unwrap();
        assert_eq!(t.locate(&pat), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_char_text() {
        let t = tree(b"a");
        t.validate().unwrap();
        assert_eq!(t.leaf_count(), 2);
        let pat = kmm_dna::encode(b"a").unwrap();
        assert_eq!(t.locate(&pat), vec![0]);
    }

    #[test]
    fn node_count_is_linear() {
        let t = tree(&kmm_dna::decode(&kmm_dna::genome::uniform(2000, 4)));
        // At most 2n nodes for n leaves.
        assert!(t.nodes().len() <= 2 * t.leaf_count());
    }
}
