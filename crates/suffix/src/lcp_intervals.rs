//! LCP-interval enumeration (the "enhanced suffix array" view).
//!
//! An *LCP interval* `ℓ-[i..j]` is a maximal suffix-array range whose
//! suffixes share a prefix of length `ℓ` — exactly the internal nodes of
//! the suffix tree. Enumerating them from the LCP array with one stack
//! pass (Abouelhoda et al.) gives suffix-tree-shaped analyses without
//! building the tree: the suite uses it to characterise repeat structure
//! (every LCP interval with `ℓ >= w` is a repeated `w`-mer) and to
//! cross-validate the suffix tree construction.

/// One LCP interval: the suffixes `sa[begin..end)` share a prefix of
/// length `lcp`, and no longer prefix is shared by the whole range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LcpInterval {
    /// Shared-prefix length.
    pub lcp: u32,
    /// Range start (inclusive) in suffix-array order.
    pub begin: u32,
    /// Range end (exclusive).
    pub end: u32,
}

impl LcpInterval {
    /// Number of suffixes in the interval.
    pub fn count(&self) -> u32 {
        self.end - self.begin
    }
}

/// Enumerate every internal LCP interval (`lcp > 0`, `count >= 2`) in
/// bottom-up order, via the classic stack sweep over the LCP array.
#[allow(clippy::needless_range_loop)] // lcp[i] pairs rank i-1 with rank i; indices are the clearest form
pub fn lcp_intervals(lcp: &[u32]) -> Vec<LcpInterval> {
    let n = lcp.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    // Stack of (lcp value, left boundary).
    let mut stack: Vec<(u32, u32)> = vec![(0, 0)];
    for i in 1..=n {
        let l = if i < n { lcp[i] } else { 0 };
        // lcp[i] relates ranks i-1 and i, so a freshly opened interval
        // starts at i-1.
        let mut left = (i - 1) as u32;
        while stack.last().is_some_and(|&(top, _)| top > l) {
            let (top, begin) = stack.pop().expect("stack checked non-empty");
            out.push(LcpInterval {
                lcp: top,
                begin,
                end: i as u32,
            });
            left = begin;
        }
        if stack.last().is_none_or(|&(top, _)| top < l) {
            stack.push((l, left));
        }
    }
    out.retain(|iv| iv.lcp > 0 && iv.count() >= 2);
    out
}

/// Repeat statistics derived from the LCP interval structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepeatSummary {
    /// Number of maximal repeated substrings (internal LCP intervals).
    pub repeat_classes: usize,
    /// Longest repeated substring length (max LCP value).
    pub longest_repeat: u32,
    /// Largest occurrence count of any repeated substring.
    pub max_multiplicity: u32,
}

/// Summarise repeats of a text from its LCP array.
pub fn repeat_summary(lcp: &[u32]) -> RepeatSummary {
    let ivs = lcp_intervals(lcp);
    RepeatSummary {
        repeat_classes: ivs.len(),
        longest_repeat: ivs.iter().map(|iv| iv.lcp).max().unwrap_or(0),
        max_multiplicity: ivs.iter().map(|iv| iv.count()).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcp::lcp_array;
    use crate::sais::suffix_array;

    fn intervals_of(ascii: &[u8]) -> (Vec<LcpInterval>, Vec<u32>, Vec<u8>) {
        let text = kmm_dna::encode_text(ascii).unwrap();
        let sa = suffix_array(&text, kmm_dna::SIGMA);
        let lcp = lcp_array(&text, &sa);
        (lcp_intervals(&lcp), sa, text)
    }

    #[test]
    fn paper_text_intervals() {
        // s = acagaca$: LCP = [0,0,1,3,1,0,2,0].
        let (ivs, _, _) = intervals_of(b"acagaca");
        // Expected internal intervals: "a" over ranks 1..5 (1-[1..5)),
        // "aca" over ranks 2..4, "ca" over ranks 5..7.
        let mut sorted = ivs.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec![
                LcpInterval {
                    lcp: 1,
                    begin: 1,
                    end: 5
                },
                LcpInterval {
                    lcp: 2,
                    begin: 5,
                    end: 7
                },
                LcpInterval {
                    lcp: 3,
                    begin: 2,
                    end: 4
                },
            ]
        );
    }

    #[test]
    fn intervals_describe_real_repeats() {
        let (ivs, sa, text) = intervals_of(b"acgtacgtacgaa");
        for iv in ivs {
            // All suffixes in the range share exactly `lcp` symbols.
            let first = sa[iv.begin as usize] as usize;
            let prefix = &text[first..first + iv.lcp as usize];
            for r in iv.begin..iv.end {
                let p = sa[r as usize] as usize;
                assert_eq!(&text[p..p + iv.lcp as usize], prefix);
            }
            // Maximality: the symbol after the prefix is not constant.
            let nexts: std::collections::HashSet<u8> = (iv.begin..iv.end)
                .map(|r| {
                    let p = sa[r as usize] as usize + iv.lcp as usize;
                    text.get(p).copied().unwrap_or(0)
                })
                .collect();
            assert!(nexts.len() > 1, "interval {iv:?} is not right-maximal");
        }
    }

    #[test]
    fn interval_count_matches_suffix_tree_internal_nodes() {
        use crate::suffix_tree::SuffixTree;
        for ascii in [&b"acagaca"[..], b"aaaaaa", b"acgtacgt", b"gattacagattaca"] {
            let (ivs, _, _) = intervals_of(ascii);
            let text = kmm_dna::encode_text(ascii).unwrap();
            let tree = SuffixTree::new(text, kmm_dna::SIGMA);
            // Internal suffix-tree nodes (excluding the root) correspond
            // one-to-one with internal LCP intervals.
            let internal = tree
                .nodes()
                .iter()
                .enumerate()
                .filter(|(id, n)| *id != 0 && !n.is_leaf())
                .count();
            assert_eq!(ivs.len(), internal, "text {ascii:?}");
        }
    }

    #[test]
    fn repetitive_text_summary() {
        let text = kmm_dna::encode_text(&b"ac".repeat(20)).unwrap();
        let sa = suffix_array(&text, kmm_dna::SIGMA);
        let lcp = lcp_array(&text, &sa);
        let s = repeat_summary(&lcp);
        assert!(s.longest_repeat >= 36);
        assert!(s.max_multiplicity >= 19);
        assert!(s.repeat_classes > 10);
    }

    #[test]
    fn random_text_has_short_repeats_only() {
        let g = kmm_dna::genome::uniform(5_000, 3);
        let mut text = g;
        text.push(0);
        let sa = suffix_array(&text, kmm_dna::SIGMA);
        let lcp = lcp_array(&text, &sa);
        let s = repeat_summary(&lcp);
        // log4(5000) ~ 6; repeats beyond ~4x that are vanishingly unlikely.
        assert!(
            s.longest_repeat < 30,
            "unexpected repeat of {}",
            s.longest_repeat
        );
    }

    #[test]
    fn empty_and_trivial() {
        assert!(lcp_intervals(&[]).is_empty());
        assert!(lcp_intervals(&[0]).is_empty());
        let (ivs, _, _) = intervals_of(b"a");
        assert!(ivs.is_empty());
    }
}
