//! Sparse-table range-minimum queries.
//!
//! `O(n log n)` preprocessing, `O(1)` queries. Used for constant-time
//! longest-common-extension queries over LCP arrays (kangaroo jumps).

/// Immutable sparse table answering `min(values[l..=r])` in O(1).
#[derive(Debug, Clone)]
pub struct SparseTableRmq {
    /// `table[j][i]` = index of the minimum in `values[i .. i + 2^j]`.
    table: Vec<Vec<u32>>,
    values: Vec<u32>,
}

impl SparseTableRmq {
    /// Build a table over `values`.
    pub fn new(values: Vec<u32>) -> Self {
        let n = values.len();
        let levels = if n <= 1 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize + 1
        };
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push((0..n as u32).collect());
        let mut j = 1;
        while (1usize << j) <= n {
            let half = 1usize << (j - 1);
            let prev = &table[j - 1];
            let mut row = Vec::with_capacity(n - (1 << j) + 1);
            for i in 0..=(n - (1 << j)) {
                let a = prev[i];
                let b = prev[i + half];
                row.push(if values[a as usize] <= values[b as usize] {
                    a
                } else {
                    b
                });
            }
            table.push(row);
            j += 1;
        }
        SparseTableRmq { table, values }
    }

    /// Number of values indexed.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no values are indexed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Index of the leftmost minimum in the inclusive range `l..=r`.
    ///
    /// # Panics
    /// Panics if `l > r` or `r >= len()`.
    #[inline]
    pub fn min_index(&self, l: usize, r: usize) -> usize {
        assert!(l <= r && r < self.values.len(), "bad rmq range {l}..={r}");
        let span = r - l + 1;
        let j = (usize::BITS - 1 - span.leading_zeros()) as usize; // floor(log2)
        let a = self.table[j][l];
        let b = self.table[j][r + 1 - (1 << j)];
        if self.values[a as usize] <= self.values[b as usize] {
            a as usize
        } else {
            b as usize
        }
    }

    /// Minimum value in the inclusive range `l..=r`.
    #[inline]
    pub fn min_value(&self, l: usize, r: usize) -> u32 {
        self.values[self.min_index(l, r)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_min(v: &[u32], l: usize, r: usize) -> u32 {
        *v[l..=r].iter().min().unwrap()
    }

    #[test]
    fn single_element() {
        let rmq = SparseTableRmq::new(vec![7]);
        assert_eq!(rmq.min_value(0, 0), 7);
        assert_eq!(rmq.min_index(0, 0), 0);
        assert_eq!(rmq.len(), 1);
    }

    #[test]
    fn known_sequence() {
        let v = vec![5, 2, 8, 1, 9, 1, 3];
        let rmq = SparseTableRmq::new(v.clone());
        assert_eq!(rmq.min_value(0, 6), 1);
        assert_eq!(rmq.min_index(0, 6), 3); // leftmost minimum
        assert_eq!(rmq.min_value(4, 6), 1);
        assert_eq!(rmq.min_index(4, 6), 5);
        assert_eq!(rmq.min_value(0, 2), 2);
        assert_eq!(rmq.min_value(2, 2), 8);
    }

    #[test]
    fn all_ranges_match_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let n = rng.gen_range(1..80);
            let v: Vec<u32> = (0..n).map(|_| rng.gen_range(0..50)).collect();
            let rmq = SparseTableRmq::new(v.clone());
            for l in 0..n {
                for r in l..n {
                    assert_eq!(rmq.min_value(l, r), naive_min(&v, l, r));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad rmq range")]
    fn rejects_bad_range() {
        let rmq = SparseTableRmq::new(vec![1, 2, 3]);
        rmq.min_value(2, 1);
    }

    #[test]
    #[should_panic(expected = "bad rmq range")]
    fn rejects_out_of_bounds() {
        let rmq = SparseTableRmq::new(vec![1, 2, 3]);
        rmq.min_value(0, 3);
    }

    #[test]
    fn empty_table() {
        let rmq = SparseTableRmq::new(vec![]);
        assert!(rmq.is_empty());
    }
}
