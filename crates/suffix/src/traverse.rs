//! Suffix-tree traversal utilities: iterators and structural statistics.
//!
//! The Cole-style search walks the tree ad hoc; these helpers give
//! library users the standard traversals (preorder, leaves-under) and the
//! shape statistics (depth histogram, branching profile) used when sizing
//! experiments.

use crate::suffix_tree::{SuffixTree, NO_NODE};

/// Preorder (depth-first, children in symbol order) iterator over node
/// ids.
pub struct Preorder<'t> {
    tree: &'t SuffixTree,
    stack: Vec<u32>,
}

impl<'t> Iterator for Preorder<'t> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        let id = self.stack.pop()?;
        let node = &self.tree.nodes()[id as usize];
        // Push children in reverse symbol order so iteration yields them
        // in ascending order.
        for &c in node.children.iter().rev() {
            if c != NO_NODE {
                self.stack.push(c);
            }
        }
        Some(id)
    }
}

/// Extension trait with the traversal helpers.
pub trait SuffixTreeExt {
    /// Preorder iterator from the root.
    fn preorder(&self) -> Preorder<'_>;
    /// Suffix start positions of all leaves under `node`, in SA order.
    fn leaf_positions(&self, node: u32) -> Vec<u32>;
    /// Structural statistics.
    fn shape(&self) -> TreeShape;
}

/// Structural statistics of a suffix tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeShape {
    /// Total nodes (root included).
    pub nodes: usize,
    /// Leaf count.
    pub leaves: usize,
    /// Internal nodes (root included).
    pub internal: usize,
    /// Maximum string depth over all nodes.
    pub max_depth: u32,
    /// Histogram of child counts for internal nodes (index = #children,
    /// 0..=4 plus sentinel edge possibilities; length 6).
    pub branching: [usize; 6],
}

impl SuffixTreeExt for SuffixTree {
    fn preorder(&self) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![self.root()],
        }
    }

    fn leaf_positions(&self, node: u32) -> Vec<u32> {
        let n = &self.nodes()[node as usize];
        self.sa()[n.sa_lo as usize..n.sa_hi as usize].to_vec()
    }

    fn shape(&self) -> TreeShape {
        let mut shape = TreeShape {
            nodes: 0,
            leaves: 0,
            internal: 0,
            max_depth: 0,
            branching: [0; 6],
        };
        for id in self.preorder() {
            let node = &self.nodes()[id as usize];
            shape.nodes += 1;
            shape.max_depth = shape.max_depth.max(node.depth);
            if node.is_leaf() {
                shape.leaves += 1;
            } else {
                shape.internal += 1;
                let kids = node.children.iter().filter(|&&c| c != NO_NODE).count();
                shape.branching[kids.min(5)] += 1;
            }
        }
        shape
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suffix_tree::SuffixTree;

    fn tree(ascii: &[u8]) -> SuffixTree {
        SuffixTree::new(kmm_dna::encode_text(ascii).unwrap(), kmm_dna::SIGMA)
    }

    #[test]
    fn preorder_visits_every_node_once() {
        let t = tree(b"acagaca");
        let visited: Vec<u32> = t.preorder().collect();
        assert_eq!(visited.len(), t.nodes().len());
        let unique: std::collections::HashSet<u32> = visited.iter().copied().collect();
        assert_eq!(unique.len(), visited.len());
        assert_eq!(visited[0], t.root());
    }

    #[test]
    fn preorder_parent_before_child() {
        let t = tree(b"gattacagatta");
        let order: std::collections::HashMap<u32, usize> =
            t.preorder().enumerate().map(|(i, id)| (id, i)).collect();
        for id in t.preorder() {
            let node = &t.nodes()[id as usize];
            if node.parent != crate::suffix_tree::NO_NODE {
                assert!(order[&node.parent] < order[&id]);
            }
        }
    }

    #[test]
    fn leaf_positions_are_occurrence_sets() {
        let t = tree(b"acagaca");
        // Find the node for prefix "aca" via locate machinery: positions
        // {0, 4} must equal the leaf positions under that subtree.
        let pat = kmm_dna::encode(b"aca").unwrap();
        let occ = t.locate(&pat);
        assert_eq!(occ, vec![0, 4]);
        // Walk manually to the subtree and compare.
        let a = t.child(t.root(), 1).unwrap();
        let leaf_pos = t.leaf_positions(a);
        // Every occurrence of "a" prefixes; supersets of {0, 4}.
        assert!(occ.iter().all(|&p| leaf_pos.contains(&(p as u32))));
    }

    #[test]
    fn shape_invariants() {
        for ascii in [&b"a"[..], b"acgt", b"aaaaaaa", b"acagacagattaca"] {
            let t = tree(ascii);
            let s = t.shape();
            assert_eq!(s.nodes, t.nodes().len());
            assert_eq!(s.leaves, ascii.len() + 1); // one per suffix incl. $
            assert_eq!(s.internal + s.leaves, s.nodes);
            // Max depth = longest suffix = full text + sentinel.
            assert_eq!(s.max_depth as usize, ascii.len() + 1);
            // No internal node has < 2 children (root may, for tiny texts).
            let under_branched: usize = s.branching[..2].iter().sum();
            assert!(under_branched <= 1, "only the root may be unary");
        }
    }

    #[test]
    fn branching_histogram_sums_to_internal() {
        let t = tree(b"ctagctagcatgcat");
        let s = t.shape();
        assert_eq!(s.branching.iter().sum::<usize>(), s.internal);
    }
}
