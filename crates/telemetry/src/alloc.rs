//! Heap accounting: a counting [`GlobalAlloc`] wrapper and per-phase
//! attribution.
//!
//! [`CountingAlloc`] wraps the system allocator and maintains process
//! totals (live bytes, peak live bytes) plus a coarse per-phase ledger:
//! the binary marks what it is doing ([`MemPhase::Build`], `Load`,
//! `Search`, `Serve`) with [`phase_scope`], and every allocation is
//! charged to the phase active on *any* thread at that moment (the
//! phase register is a single process-wide atomic — the CLI's phases
//! are serial, and serve marks the whole daemon lifetime).
//!
//! The byte counting itself is feature-gated (`alloc-track`): with the
//! feature off the wrapper forwards straight to the system allocator
//! and every query here reports zeros with `enabled == false`, so call
//! sites need no `cfg` of their own — the API is Noop-compatible the
//! same way [`crate::NoopRecorder`] is. Binaries opt in by registering
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: kmm_telemetry::CountingAlloc = kmm_telemetry::CountingAlloc;
//! ```
//!
//! The hooks touch only relaxed atomics (no locks, no allocation), so
//! they are safe inside the allocator and cost a few nanoseconds per
//! malloc — and search results are bit-identical with or without the
//! wrapper, which `tests/telemetry.rs` pins.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// What the process is doing, for charging allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemPhase {
    /// Startup, argument parsing, anything unmarked.
    Other,
    /// Index construction (`kmm index`, in-process builds).
    Build,
    /// Index deserialisation from disk.
    Load,
    /// Query execution (search / map batches).
    Search,
    /// Daemon lifetime (`kmm serve`).
    Serve,
}

impl MemPhase {
    pub const COUNT: usize = 5;
    pub const ALL: [MemPhase; MemPhase::COUNT] = [
        MemPhase::Other,
        MemPhase::Build,
        MemPhase::Load,
        MemPhase::Search,
        MemPhase::Serve,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MemPhase::Other => "other",
            MemPhase::Build => "build",
            MemPhase::Load => "load",
            MemPhase::Search => "search",
            MemPhase::Serve => "serve",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static PHASE: AtomicUsize = AtomicUsize::new(0);
static PHASE_BYTES: [AtomicU64; MemPhase::COUNT] = [const { AtomicU64::new(0) }; MemPhase::COUNT];
static PHASE_ALLOCS: [AtomicU64; MemPhase::COUNT] = [const { AtomicU64::new(0) }; MemPhase::COUNT];
static PHASE_PEAK: [AtomicU64; MemPhase::COUNT] = [const { AtomicU64::new(0) }; MemPhase::COUNT];

/// System-allocator wrapper that counts bytes (when the `alloc-track`
/// feature is on; a transparent passthrough otherwise).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

#[inline]
fn on_alloc(bytes: u64) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
    let phase = PHASE.load(Ordering::Relaxed).min(MemPhase::COUNT - 1);
    PHASE_BYTES[phase].fetch_add(bytes, Ordering::Relaxed);
    PHASE_ALLOCS[phase].fetch_add(1, Ordering::Relaxed);
    PHASE_PEAK[phase].fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn on_dealloc(bytes: u64) {
    LIVE.fetch_sub(bytes, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if cfg!(feature = "alloc-track") && !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if cfg!(feature = "alloc-track") && !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if cfg!(feature = "alloc-track") {
            on_dealloc(layout.size() as u64);
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if cfg!(feature = "alloc-track") && !p.is_null() {
            on_dealloc(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        p
    }
}

/// Switch the process-wide charge phase, returning the previous one.
pub fn set_phase(phase: MemPhase) -> MemPhase {
    let prev = PHASE.swap(phase.index(), Ordering::Relaxed);
    MemPhase::ALL[prev.min(MemPhase::COUNT - 1)]
}

/// RAII guard restoring the previous charge phase on drop.
#[must_use = "the phase reverts when the guard drops"]
#[derive(Debug)]
pub struct PhaseGuard {
    prev: MemPhase,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        set_phase(self.prev);
    }
}

/// Charge allocations to `phase` until the returned guard drops.
pub fn phase_scope(phase: MemPhase) -> PhaseGuard {
    PhaseGuard {
        prev: set_phase(phase),
    }
}

/// Ledger for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemPhaseStats {
    /// Total bytes allocated while the phase was active (gross, not
    /// net: frees are not subtracted per phase).
    pub allocated_bytes: u64,
    /// Number of allocations charged to the phase.
    pub allocations: u64,
    /// Highest process-wide live-byte watermark seen while active.
    pub peak_live_bytes: u64,
}

/// Snapshot of the allocator's ledgers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Whether byte counting is compiled in **and** a [`CountingAlloc`]
    /// is registered (inferred: a tracked process has allocated).
    pub enabled: bool,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// Highest live-byte watermark since process start.
    pub peak_bytes: u64,
    /// Per-phase ledgers, indexed like [`MemPhase::ALL`].
    pub phases: [MemPhaseStats; MemPhase::COUNT],
}

impl MemStats {
    pub fn phase(&self, phase: MemPhase) -> &MemPhaseStats {
        &self.phases[phase.index()]
    }
}

/// Read the current ledgers.
pub fn mem_stats() -> MemStats {
    let peak = PEAK.load(Ordering::Relaxed);
    MemStats {
        enabled: cfg!(feature = "alloc-track") && peak > 0,
        live_bytes: LIVE.load(Ordering::Relaxed),
        peak_bytes: peak,
        phases: std::array::from_fn(|i| MemPhaseStats {
            allocated_bytes: PHASE_BYTES[i].load(Ordering::Relaxed),
            allocations: PHASE_ALLOCS[i].load(Ordering::Relaxed),
            peak_live_bytes: PHASE_PEAK[i].load(Ordering::Relaxed),
        }),
    }
}

/// Render bytes at a human scale (B/KiB/MiB/GiB).
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b < KIB {
        format!("{bytes}B")
    } else if b < KIB * KIB {
        format!("{:.1}KiB", b / KIB)
    } else if b < KIB * KIB * KIB {
        format!("{:.1}MiB", b / (KIB * KIB))
    } else {
        format!("{:.2}GiB", b / (KIB * KIB * KIB))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_scope_nests_and_restores() {
        set_phase(MemPhase::Other);
        {
            let _build = phase_scope(MemPhase::Build);
            assert_eq!(set_phase(MemPhase::Build), MemPhase::Build);
            {
                let _search = phase_scope(MemPhase::Search);
                assert_eq!(set_phase(MemPhase::Search), MemPhase::Search);
            }
            assert_eq!(set_phase(MemPhase::Build), MemPhase::Build);
        }
        assert_eq!(set_phase(MemPhase::Other), MemPhase::Other);
    }

    #[test]
    fn mem_stats_reads_every_phase() {
        // The test binary does not register CountingAlloc; the snapshot
        // must still be readable and indexable by every phase. (No
        // cross-ledger invariants asserted here: a sibling test drives
        // the hooks concurrently.)
        let stats = mem_stats();
        for phase in MemPhase::ALL {
            let _ = stats.phase(phase);
        }
    }

    #[test]
    fn counting_hooks_balance() {
        // Drive the hooks directly (registration is the binary's call).
        let base = LIVE.load(Ordering::Relaxed);
        on_alloc(1024);
        on_alloc(512);
        on_dealloc(512);
        assert_eq!(LIVE.load(Ordering::Relaxed), base + 1024);
        assert!(PEAK.load(Ordering::Relaxed) >= base + 1536);
        on_dealloc(1024);
        assert_eq!(LIVE.load(Ordering::Relaxed), base);
    }

    #[test]
    fn fmt_bytes_scales() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024 * 1024), "5.00GiB");
    }

    #[test]
    fn phase_names_are_distinct() {
        let mut names: Vec<&str> = MemPhase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MemPhase::COUNT);
    }
}
