//! The [`Recorder`] trait and its two implementations.
//!
//! Call sites are generic over `R: Recorder`; the default
//! [`NoopRecorder`] reports `enabled() == false` and every method is an
//! empty `#[inline]` body, so the monomorphised no-op path contains no
//! clock reads and no atomic operations. [`MetricsRecorder`] collects
//! everything with relaxed atomics and can be shared across threads by
//! plain `&` reference.

use std::time::Instant;

use crate::histogram::Histogram;
use crate::snapshot::{CounterSnapshot, MetricsSnapshot, PhaseSnapshot};
use crate::trace::TraceBundle;
use std::sync::atomic::{AtomicU64, Ordering};

/// Coarse grouping of phases, mirroring the pipeline of the paper's
/// method: build the FM-index, preprocess the pattern, then search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    Index,
    Preprocess,
    Search,
}

impl Stage {
    pub fn name(self) -> &'static str {
        match self {
            Stage::Index => "index",
            Stage::Preprocess => "preprocess",
            Stage::Search => "search",
        }
    }
}

/// A timed phase of the pipeline. Each variant corresponds to one
/// span-instrumented region of the codebase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Suffix-array construction over the reversed text.
    IndexSa,
    /// Deriving the BWT array L from the suffix array.
    IndexBwt,
    /// Building the rankall (occ) structure over L.
    IndexRankall,
    /// Building the sampled suffix array used to report positions.
    IndexSampledSa,
    /// Deserialising a prebuilt index from disk.
    IndexLoad,
    /// Building the pattern's R-arrays (mismatch tables), including
    /// the R1/R2 merge steps of Algorithm A's preprocessing.
    PreprocessRarray,
    /// Building the S-tree baseline's phi pruning table.
    PreprocessPhi,
    /// One top-level query: everything from pattern in to occurrences
    /// out (Algorithm A walk or S-tree DFS, including rank extensions,
    /// M-tree derivations, and resumes).
    SearchQuery,
    /// The tree walk inside one query (Algorithm A's mismatching-tree
    /// expansion or the S-tree DFS), excluding pattern preprocessing.
    SearchDescend,
    /// One mapped read: both strand queries plus best-hit selection.
    SearchRead,
}

impl Phase {
    pub const COUNT: usize = 10;
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::IndexSa,
        Phase::IndexBwt,
        Phase::IndexRankall,
        Phase::IndexSampledSa,
        Phase::IndexLoad,
        Phase::PreprocessRarray,
        Phase::PreprocessPhi,
        Phase::SearchQuery,
        Phase::SearchDescend,
        Phase::SearchRead,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Phase::IndexSa => "index.sa",
            Phase::IndexBwt => "index.bwt",
            Phase::IndexRankall => "index.rankall",
            Phase::IndexSampledSa => "index.sampled_sa",
            Phase::IndexLoad => "index.load",
            Phase::PreprocessRarray => "preprocess.rarray",
            Phase::PreprocessPhi => "preprocess.phi",
            Phase::SearchQuery => "search.query",
            Phase::SearchDescend => "search.descend",
            Phase::SearchRead => "search.read",
        }
    }

    pub fn stage(self) -> Stage {
        match self {
            Phase::IndexSa
            | Phase::IndexBwt
            | Phase::IndexRankall
            | Phase::IndexSampledSa
            | Phase::IndexLoad => Stage::Index,
            Phase::PreprocessRarray | Phase::PreprocessPhi => Stage::Preprocess,
            Phase::SearchQuery | Phase::SearchDescend | Phase::SearchRead => Stage::Search,
        }
    }

    /// Whether this phase roots one query's span tree (a search or a
    /// mapped read). Only traces rooted here compete for the slow-query
    /// flight recorder; other top-level phases (index load, standalone
    /// preprocessing) are still traced but never ranked as "queries".
    pub fn is_query_root(self) -> bool {
        matches!(self, Phase::SearchQuery | Phase::SearchRead)
    }

    /// Parse a dotted phase name back to the enum.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }

    pub(crate) fn index(self) -> usize {
        Phase::ALL.iter().position(|&p| p == self).unwrap()
    }
}

/// Monotonic event counters. The `search.*` group mirrors the fields of
/// `kmm_core::SearchStats` one-to-one; the rest cover the mapper and
/// multi-chromosome layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Top-level queries answered.
    Queries,
    /// Accepted leaves — the paper's n', the size of the answer-bearing
    /// frontier (Table 2).
    Leaves,
    /// Mismatching-tree nodes visited.
    NodesVisited,
    /// Nodes materialised with live BWT intervals.
    NodesMaterialized,
    /// Character-by-character backward-search (rankall) extensions.
    RankExtensions,
    /// Extensions answered from a shared pair / derived M-tree instead
    /// of live ranking.
    ReuseHits,
    /// R-array merge operations during pattern preprocessing.
    Merges,
    /// Suspended walks resumed after derivation.
    Resumes,
    /// Text occurrences reported.
    Occurrences,
    /// Subtrees cut by the phi heuristic.
    PhiPrunes,
    /// Reads that produced at least one hit (mapper).
    ReadsMapped,
    /// Reads processed (mapper).
    ReadsTotal,
    /// Hits dropped for straddling a chromosome boundary (multi).
    BoundaryFiltered,
    /// HTTP requests answered by `kmm serve`.
    ServeRequests,
    /// HTTP requests that failed (bad input, handler panic, i/o error).
    ServeErrors,
    /// Searches truncated by a deadline or cancellation before the walk
    /// finished (partial results were still returned).
    Timeouts,
    /// HTTP requests shed with 429 because the handoff queue was full.
    ServeShed,
    /// Fused 4-base occ sweeps (`occ_all`/`extend_all`): node expansions
    /// that resolved all children in one rank pass instead of four.
    OccFused,
    /// Per-node allocations avoided by reusing a per-query arena or
    /// pre-sized tree storage.
    AllocReused,
    /// Deterministic cost: interleaved rank blocks visited by
    /// `occ`/`occ_all`/`symbol` (see [`crate::cost`]).
    RankBlocksTouched,
    /// Deterministic cost: bytes of rank-block data examined (headers
    /// plus packed payload words).
    RankBytesScanned,
    /// Deterministic cost: R-array lookups (`shift` / `R_ij`).
    RarrayProbes,
    /// Deterministic cost: mismatching-tree nodes materialised.
    MtreeNodesBuilt,
    /// Deterministic cost: mismatching-tree pair-table hits that shared
    /// an existing node instead of building one.
    MtreeNodesReused,
    /// Bytes of 2-bit packed BWT payload in the loaded index's rank
    /// structure (gauge, set at load).
    RankPayloadBytes,
    /// Bytes of interleaved checkpoint headers in the loaded index's rank
    /// structure — the block overhead on top of the packed text.
    RankOverheadBytes,
    /// Bytes of the loaded index's sampled suffix array (gauge, set at
    /// load) — completes the per-structure byte attribution.
    SampledSaBytes,
    /// Bytes of the index file pulled through `read(2)` at load (gauge,
    /// set at load; 0 for a zero-copy mmap open).
    IndexLoadIoBytes,
    /// Bytes of the index file mapped into the address space at load
    /// (gauge, set at load; 0 for a buffered-read open).
    IndexLoadMappedBytes,
    /// How the index got into memory: 1 = buffered read (full checksum
    /// verification), 2 = mmap (zero-copy, table-only verification).
    /// Gauge, set at load.
    IndexLoadMode,
    /// Deterministic cost: `occ_all_pair` calls answered with a single
    /// shared block visit (lo and hi boundary landed in the same
    /// interleaved block) instead of two independent `occ_all` sweeps.
    OccPairFused,
    /// Deterministic cost: advisory rank-block prefetch hints issued
    /// ahead of backward extensions (LF-target warming).
    PrefetchIssued,
    /// Connections accepted by `kmm serve` (the open-connection gauge is
    /// `conns_opened - conns_closed`).
    ServeConnsOpened,
    /// Connections closed by `kmm serve`, for any reason.
    ServeConnsClosed,
    /// Keep-alive reuses: requests after the first on one connection.
    ServeKeepaliveReuses,
    /// Requests shed with 429 by the per-tenant token bucket.
    ServeShedTenant,
    /// Connections evicted for lack of progress (slow-loris defense:
    /// idle keep-alive or a stalled header/body never completing).
    ServeShedStall,
    /// Connections refused because `--max-conns` was reached.
    ServeShedConns,
}

impl Counter {
    pub const COUNT: usize = 38;
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Queries,
        Counter::Leaves,
        Counter::NodesVisited,
        Counter::NodesMaterialized,
        Counter::RankExtensions,
        Counter::ReuseHits,
        Counter::Merges,
        Counter::Resumes,
        Counter::Occurrences,
        Counter::PhiPrunes,
        Counter::ReadsMapped,
        Counter::ReadsTotal,
        Counter::BoundaryFiltered,
        Counter::ServeRequests,
        Counter::ServeErrors,
        Counter::Timeouts,
        Counter::ServeShed,
        Counter::OccFused,
        Counter::AllocReused,
        Counter::RankBlocksTouched,
        Counter::RankBytesScanned,
        Counter::RarrayProbes,
        Counter::MtreeNodesBuilt,
        Counter::MtreeNodesReused,
        Counter::RankPayloadBytes,
        Counter::RankOverheadBytes,
        Counter::SampledSaBytes,
        Counter::IndexLoadIoBytes,
        Counter::IndexLoadMappedBytes,
        Counter::IndexLoadMode,
        Counter::OccPairFused,
        Counter::PrefetchIssued,
        Counter::ServeConnsOpened,
        Counter::ServeConnsClosed,
        Counter::ServeKeepaliveReuses,
        Counter::ServeShedTenant,
        Counter::ServeShedStall,
        Counter::ServeShedConns,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Counter::Queries => "search.queries",
            Counter::Leaves => "search.leaves",
            Counter::NodesVisited => "search.nodes_visited",
            Counter::NodesMaterialized => "search.nodes_materialized",
            Counter::RankExtensions => "search.rank_extensions",
            Counter::ReuseHits => "search.reuse_hits",
            Counter::Merges => "search.merges",
            Counter::Resumes => "search.resumes",
            Counter::Occurrences => "search.occurrences",
            Counter::PhiPrunes => "search.phi_prunes",
            Counter::ReadsMapped => "map.reads_mapped",
            Counter::ReadsTotal => "map.reads_total",
            Counter::BoundaryFiltered => "multi.boundary_filtered",
            Counter::ServeRequests => "serve.requests",
            Counter::ServeErrors => "serve.errors",
            Counter::Timeouts => "search.timeouts",
            Counter::ServeShed => "serve.shed",
            Counter::OccFused => "search.occ_fused",
            Counter::AllocReused => "search.alloc_reused",
            Counter::RankBlocksTouched => "search.rank_blocks_touched",
            Counter::RankBytesScanned => "search.rank_bytes_scanned",
            Counter::RarrayProbes => "search.rarray_probes",
            Counter::MtreeNodesBuilt => "search.mtree_nodes_built",
            Counter::MtreeNodesReused => "search.mtree_nodes_reused",
            Counter::RankPayloadBytes => "index.rankall_payload_bytes",
            Counter::RankOverheadBytes => "index.rankall_block_overhead_bytes",
            Counter::SampledSaBytes => "index.sampled_sa_bytes",
            Counter::IndexLoadIoBytes => "index.load.io_bytes",
            Counter::IndexLoadMappedBytes => "index.load.bytes_mapped",
            Counter::IndexLoadMode => "index.load.mode",
            Counter::OccPairFused => "search.occ_pair_fused",
            Counter::PrefetchIssued => "search.prefetch_issued",
            Counter::ServeConnsOpened => "serve.conns_opened",
            Counter::ServeConnsClosed => "serve.conns_closed",
            Counter::ServeKeepaliveReuses => "serve.keepalive_reuses",
            Counter::ServeShedTenant => "serve.shed_tenant",
            Counter::ServeShedStall => "serve.shed_stall",
            Counter::ServeShedConns => "serve.shed_conns",
        }
    }

    pub(crate) fn index(self) -> usize {
        Counter::ALL.iter().position(|&c| c == self).unwrap()
    }
}

/// Value distributions tracked as log2 histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hist {
    /// Wall-clock nanoseconds per top-level query.
    SearchLatencyNs,
    /// Width of the BWT interval at each accepted leaf (occurrence
    /// multiplicity of the matched frontier).
    IntervalWidth,
    /// Pattern depth at which each mismatching-tree walk terminated.
    TerminationDepth,
}

impl Hist {
    pub const COUNT: usize = 3;
    pub const ALL: [Hist; Hist::COUNT] = [
        Hist::SearchLatencyNs,
        Hist::IntervalWidth,
        Hist::TerminationDepth,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Hist::SearchLatencyNs => "search.latency_ns",
            Hist::IntervalWidth => "search.interval_width",
            Hist::TerminationDepth => "search.termination_depth",
        }
    }

    fn index(self) -> usize {
        Hist::ALL.iter().position(|&h| h == self).unwrap()
    }
}

/// Why a DFS branch was abandoned, for depth-profile attribution.
///
/// The three causes partition every non-leaf termination of the
/// k-mismatch / k-errors walks: the extension does not exist in the
/// text (`EmptyInterval`), it exists but would exceed the mismatch /
/// edit budget (`Budget`), or a precomputed table proved the remainder
/// unmatchable — the S-tree's φ heuristic or a whole DP row above `k`
/// (`Cutoff`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruneCause {
    /// The child interval is empty: the extended substring is absent.
    EmptyInterval,
    /// Taking the branch would push mismatches / edits past `k`.
    Budget,
    /// A lookahead table (φ, mismatch-array / DP-row bound) killed the
    /// branch before its children were considered.
    Cutoff,
}

impl PruneCause {
    pub const COUNT: usize = 3;
    pub const ALL: [PruneCause; PruneCause::COUNT] = [
        PruneCause::EmptyInterval,
        PruneCause::Budget,
        PruneCause::Cutoff,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PruneCause::EmptyInterval => "empty_interval",
            PruneCause::Budget => "budget",
            PruneCause::Cutoff => "cutoff",
        }
    }

    /// Position of this cause in [`PruneCause::ALL`] — the index into
    /// [`crate::DepthRow::pruned`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Sink for telemetry events. All methods default to no-ops so a
/// recorder implementation only overrides what it collects.
pub trait Recorder {
    /// Whether events are being collected. Guards the `Instant::now()`
    /// in [`Recorder::span`], so a disabled recorder performs no clock
    /// reads at all.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Increment a counter.
    #[inline]
    fn add(&self, _counter: Counter, _delta: u64) {}

    /// Record a value into a histogram.
    #[inline]
    fn observe(&self, _hist: Hist, _value: u64) {}

    /// Credit `nanos` of elapsed time (one entry) to a phase. Usually
    /// called by [`PhaseSpan::drop`] rather than directly.
    #[inline]
    fn phase_add(&self, _phase: Phase, _nanos: u64) {}

    /// Fold a detached snapshot into this recorder. Parallel batch paths
    /// give each worker its own [`MetricsRecorder`] shard (so the query
    /// hot path touches no contended atomics) and absorb the shards into
    /// the caller's recorder after the join. Counters, phase totals and
    /// histogram buckets add; histogram min/max widen. The default is a
    /// no-op, matching [`NoopRecorder`].
    #[inline]
    fn absorb(&self, _snapshot: &MetricsSnapshot) {}

    /// Whether this recorder collects hierarchical span events. Guards
    /// per-span bookkeeping (and the per-query label allocations at call
    /// sites), so metrics-only recorders pay nothing for tracing.
    #[inline]
    fn wants_spans(&self) -> bool {
        false
    }

    /// The monotonic epoch span offsets are measured from, when this
    /// recorder traces. Worker shards are created against the parent's
    /// epoch so merged span timestamps share one timeline.
    #[inline]
    fn trace_epoch(&self) -> Option<Instant> {
        None
    }

    /// A span opened: called by [`Recorder::span`] before the clock read.
    /// Tracing recorders push onto their span stack here.
    #[inline]
    fn span_begin(&self, _phase: Phase) {}

    /// The matching close of [`Recorder::span_begin`]; called by
    /// [`PhaseSpan::drop`] after the phase time is credited. Closing the
    /// outermost span finalises one [`crate::QueryTrace`].
    #[inline]
    fn span_end(&self, _phase: Phase) {}

    /// Attach a label fragment to the current query trace (or to the
    /// next one, when no span is open). Callers should guard the label
    /// formatting with [`Recorder::wants_spans`].
    #[inline]
    fn annotate(&self, _label: &str) {}

    /// Fold a detached trace bundle (completed query traces plus
    /// flight-recorder candidates) into this recorder — the span-level
    /// sibling of [`Recorder::absorb`], fed by worker shards after a
    /// parallel batch. The default discards the bundle.
    #[inline]
    fn absorb_traces(&self, _bundle: TraceBundle) {}

    /// Whether this recorder collects per-depth expansion/prune rows.
    /// Hot loops guard [`Recorder::depth_expand`] / [`Recorder::depth_prune`]
    /// call sites with this, so metrics-only and no-op recorders pay
    /// nothing for depth attribution.
    #[inline]
    fn wants_depths(&self) -> bool {
        false
    }

    /// A node at `depth` (pattern symbols consumed so far) was expanded.
    #[inline]
    fn depth_expand(&self, _depth: usize) {}

    /// A branch toward `depth` was abandoned for `cause` without
    /// expanding its subtree.
    #[inline]
    fn depth_prune(&self, _depth: usize, _cause: PruneCause) {}

    /// Open a scoped timer for `phase`; time is credited when the
    /// returned guard drops.
    #[inline]
    fn span(&self, phase: Phase) -> PhaseSpan<'_, Self>
    where
        Self: Sized,
    {
        PhaseSpan {
            recorder: self,
            phase,
            start: if self.enabled() {
                self.span_begin(phase);
                Some(Instant::now())
            } else {
                None
            },
        }
    }
}

/// RAII guard crediting its phase with the wall-clock time between
/// construction and drop.
#[must_use = "a span records time when dropped; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct PhaseSpan<'r, R: Recorder> {
    recorder: &'r R,
    phase: Phase,
    start: Option<Instant>,
}

impl<R: Recorder> Drop for PhaseSpan<'_, R> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.recorder
                .phase_add(self.phase, start.elapsed().as_nanos() as u64);
            self.recorder.span_end(self.phase);
        }
    }
}

/// Recorder that collects nothing; the default for uninstrumented calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Concrete collector: atomic counters, per-phase timers, and log2
/// histograms. Share by `&` reference; snapshot at any time.
#[derive(Debug)]
pub struct MetricsRecorder {
    counters: [AtomicU64; Counter::COUNT],
    phase_nanos: [AtomicU64; Phase::COUNT],
    phase_entries: [AtomicU64; Phase::COUNT],
    hists: [Histogram; Hist::COUNT],
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRecorder {
    pub fn new() -> Self {
        MetricsRecorder {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_entries: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Current value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Total nanoseconds credited to one phase so far.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase.index()].load(Ordering::Relaxed)
    }

    /// Plain-data copy of everything collected so far. Every phase,
    /// counter, and histogram is present (zeroed if never touched), so
    /// downstream consumers can rely on the full key set.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            phases: Phase::ALL
                .iter()
                .map(|&p| PhaseSnapshot {
                    name: p.name().to_string(),
                    stage: p.stage().name().to_string(),
                    entries: self.phase_entries[p.index()].load(Ordering::Relaxed),
                    total_ns: self.phase_nanos[p.index()].load(Ordering::Relaxed),
                })
                .collect(),
            counters: Counter::ALL
                .iter()
                .map(|&c| CounterSnapshot {
                    name: c.name().to_string(),
                    value: self.counter(c),
                })
                .collect(),
            histograms: Hist::ALL
                .iter()
                .map(|&h| (h.name().to_string(), self.hists[h.index()].snapshot()))
                .collect(),
        }
    }
}

impl Recorder for MetricsRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn add(&self, counter: Counter, delta: u64) {
        self.counters[counter.index()].fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    fn observe(&self, hist: Hist, value: u64) {
        self.hists[hist.index()].observe(value);
    }

    #[inline]
    fn phase_add(&self, phase: Phase, nanos: u64) {
        self.phase_nanos[phase.index()].fetch_add(nanos, Ordering::Relaxed);
        self.phase_entries[phase.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Merge a shard snapshot: unknown names (from older/newer schema
    /// documents) are ignored rather than rejected.
    fn absorb(&self, snapshot: &MetricsSnapshot) {
        for p in &snapshot.phases {
            if let Some(phase) = Phase::ALL.iter().find(|x| x.name() == p.name) {
                let i = phase.index();
                if p.total_ns > 0 {
                    self.phase_nanos[i].fetch_add(p.total_ns, Ordering::Relaxed);
                }
                if p.entries > 0 {
                    self.phase_entries[i].fetch_add(p.entries, Ordering::Relaxed);
                }
            }
        }
        for c in &snapshot.counters {
            if c.value > 0 {
                if let Some(counter) = Counter::ALL.iter().find(|x| x.name() == c.name) {
                    self.add(*counter, c.value);
                }
            }
        }
        for (name, shard) in &snapshot.histograms {
            if let Some(hist) = Hist::ALL.iter().find(|x| x.name() == *name) {
                self.hists[hist.index()].absorb(shard);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_tables_are_consistent() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(p.name().starts_with(p.stage().name()));
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
        for (i, p) in PruneCause::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let mut names: Vec<&str> = PruneCause::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PruneCause::COUNT);
    }

    #[test]
    fn noop_recorder_is_disabled_and_spans_skip_the_clock() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        let span = rec.span(Phase::SearchQuery);
        assert!(span.start.is_none());
        drop(span);
        rec.add(Counter::Queries, 1);
        rec.observe(Hist::IntervalWidth, 7);
    }

    #[test]
    fn metrics_recorder_counts_and_times() {
        let rec = MetricsRecorder::new();
        rec.add(Counter::Leaves, 3);
        rec.add(Counter::Leaves, 2);
        assert_eq!(rec.counter(Counter::Leaves), 5);

        {
            let _s = rec.span(Phase::IndexSa);
            std::hint::black_box(());
        }
        {
            let _s = rec.span(Phase::IndexSa);
        }
        let snap = rec.snapshot();
        let p = snap.phase(Phase::IndexSa);
        assert_eq!(p.entries, 2);
        assert_eq!(p.total_ns, rec.phase_nanos(Phase::IndexSa));
    }

    #[test]
    fn timers_are_monotonic_across_spans() {
        // Each successive span can only grow the phase total, and an
        // enclosing measurement bounds the credited time from above.
        let rec = MetricsRecorder::new();
        let outer = Instant::now();
        let mut last = 0u64;
        for _ in 0..5 {
            {
                let _s = rec.span(Phase::SearchQuery);
                std::hint::black_box((0..100).sum::<u64>());
            }
            let now = rec.phase_nanos(Phase::SearchQuery);
            assert!(now > last, "phase total must strictly grow per span");
            last = now;
        }
        let wall = outer.elapsed().as_nanos() as u64;
        assert!(
            last <= wall,
            "credited {last}ns exceeds enclosing wall time {wall}ns"
        );
        assert_eq!(rec.snapshot().phase(Phase::SearchQuery).entries, 5);
    }

    #[test]
    fn absorbing_shards_equals_direct_recording() {
        // Two worker shards vs one recorder that saw every event.
        let direct = MetricsRecorder::new();
        let shard_a = MetricsRecorder::new();
        let shard_b = MetricsRecorder::new();
        for rec in [&direct, &shard_a] {
            rec.add(Counter::Queries, 2);
            rec.add(Counter::Occurrences, 7);
            rec.observe(Hist::SearchLatencyNs, 1500);
            rec.phase_add(Phase::SearchQuery, 1500);
        }
        for rec in [&direct, &shard_b] {
            rec.add(Counter::Queries, 1);
            rec.observe(Hist::SearchLatencyNs, 90);
            rec.observe(Hist::IntervalWidth, 4);
            rec.phase_add(Phase::SearchQuery, 90);
        }
        let merged = MetricsRecorder::new();
        merged.absorb(&shard_a.snapshot());
        merged.absorb(&shard_b.snapshot());
        merged.absorb(&MetricsRecorder::new().snapshot()); // empty no-op
        assert_eq!(merged.snapshot(), direct.snapshot());
        // NoopRecorder silently accepts the same call.
        NoopRecorder.absorb(&shard_a.snapshot());
    }

    #[test]
    fn shared_across_threads() {
        let rec = MetricsRecorder::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        rec.add(Counter::RankExtensions, 1);
                        rec.observe(Hist::IntervalWidth, 8);
                    }
                });
            }
        });
        assert_eq!(rec.counter(Counter::RankExtensions), 4000);
        let snap = rec.snapshot();
        assert_eq!(snap.histogram(Hist::IntervalWidth).unwrap().count, 4000);
    }
}
