//! Per-query cost attribution: the EXPLAIN engine's data model.
//!
//! A search explained is a search run once per method with an
//! [`ExplainRecorder`] armed: the recorder collects a depth-indexed
//! profile (nodes expanded and branches pruned per DFS depth, split by
//! [`PruneCause`]) while the method's deterministic counters and heap
//! ledger deltas are bracketed around the run. The resulting
//! [`ExplainReport`] renders as a query-plan-style table or as JSON
//! (schema [`EXPLAIN_SCHEMA`]) — and its verdict is computed from
//! deterministic work counters only, never from wall-clock, so the same
//! query explains byte-identically across thread widths, SIMD kernels,
//! and machine load (the property `tests/explain.rs` pins).
//!
//! Depth convention: `depth` is the number of pattern symbols consumed,
//! so the virtual root expands at depth 0 and an accepted leaf of an
//! m-symbol pattern sits at depth m. A prune at depth `d` means the
//! branch *toward* a node that would have consumed `d` symbols was
//! abandoned (for φ-style cutoffs the killed node is the current one).

use std::sync::Mutex;

use crate::alloc::MemStats;
use crate::json::Json;
use crate::recorder::{PruneCause, Recorder};

/// Schema tag of the EXPLAIN JSON document.
pub const EXPLAIN_SCHEMA: &str = "kmm-explain/v1";

/// One depth's share of a query's work: expansions plus prunes by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepthRow {
    /// Nodes expanded at this depth.
    pub expanded: u64,
    /// Branches abandoned toward this depth, indexed by
    /// [`PruneCause::index`].
    pub pruned: [u64; PruneCause::COUNT],
}

impl DepthRow {
    /// Prunes at this depth across all causes.
    pub fn pruned_total(&self) -> u64 {
        self.pruned.iter().sum()
    }

    /// Prunes at this depth of one cause.
    pub fn pruned_by(&self, cause: PruneCause) -> u64 {
        self.pruned[cause.index()]
    }

    /// Whether the row carries any activity at all.
    pub fn is_empty(&self) -> bool {
        self.expanded == 0 && self.pruned_total() == 0
    }
}

/// Recorder that collects the per-depth profile of one query.
///
/// `enabled()` stays `false` — spans read no clocks and counters pass
/// through untouched, so arming an `ExplainRecorder` cannot perturb the
/// search or introduce nondeterminism; only the `depth_*` hooks (guarded
/// by `wants_depths`) do work. Explain queries are one-shot and off the
/// hot path, so a `Mutex` (not sharded atomics) keeps the rows exact.
#[derive(Debug, Default)]
pub struct ExplainRecorder {
    depths: Mutex<Vec<DepthRow>>,
}

impl ExplainRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    fn with_row(&self, depth: usize, f: impl FnOnce(&mut DepthRow)) {
        let mut rows = self.depths.lock().expect("explain depth rows poisoned");
        if rows.len() <= depth {
            rows.resize(depth + 1, DepthRow::default());
        }
        f(&mut rows[depth]);
    }

    /// Drain the collected rows (index = depth), resetting the recorder.
    pub fn take(&self) -> Vec<DepthRow> {
        std::mem::take(&mut *self.depths.lock().expect("explain depth rows poisoned"))
    }
}

impl Recorder for ExplainRecorder {
    #[inline]
    fn wants_depths(&self) -> bool {
        true
    }

    fn depth_expand(&self, depth: usize) {
        self.with_row(depth, |row| row.expanded += 1);
    }

    fn depth_prune(&self, depth: usize, cause: PruneCause) {
        self.with_row(depth, |row| row.pruned[cause.index()] += 1);
    }
}

/// Heap ledger movement across one method's run, from the counting
/// allocator's [`MemStats`]. All zeros (with `enabled == false` in the
/// source stats) when no [`crate::CountingAlloc`] is registered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapDelta {
    /// Gross bytes allocated during the run (all phases).
    pub allocated_bytes: u64,
    /// Allocation count during the run.
    pub allocations: u64,
    /// Live bytes after minus before (retained allocations, e.g. a
    /// lazily built text or suffix tree charged to the first method
    /// that needed it).
    pub net_live_bytes: i64,
}

impl HeapDelta {
    /// Ledger movement from `before` to `after`.
    pub fn between(before: &MemStats, after: &MemStats) -> HeapDelta {
        let mut allocated = 0u64;
        let mut allocs = 0u64;
        for (b, a) in before.phases.iter().zip(after.phases.iter()) {
            allocated += a.allocated_bytes.wrapping_sub(b.allocated_bytes);
            allocs += a.allocations.wrapping_sub(b.allocations);
        }
        HeapDelta {
            allocated_bytes: allocated,
            allocations: allocs,
            net_live_bytes: after.live_bytes as i64 - before.live_bytes as i64,
        }
    }
}

/// One method's fully attributed cost on the explained query.
#[derive(Debug, Clone, Default)]
pub struct MethodCost {
    /// Display label, e.g. `A(.)` or `BWT`.
    pub label: String,
    /// Occurrences the method reported (all methods must agree).
    pub occurrences: u64,
    /// Deterministic counters, in `SearchStats::as_pairs` order.
    pub counters: Vec<(&'static str, u64)>,
    /// Depth profile (index = pattern symbols consumed).
    pub depths: Vec<DepthRow>,
    /// Heap ledger movement across the run.
    pub heap: HeapDelta,
}

impl MethodCost {
    /// Value of one counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The verdict's scalar: deterministic work units — rank blocks
    /// touched plus nodes visited plus R-array probes plus tree nodes
    /// built. Purely counter-derived; 0 means the method is not
    /// instrumented (text scanners), which excludes it from verdicts.
    pub fn work_units(&self) -> u64 {
        self.counter("rank_blocks_touched")
            + self.counter("nodes_visited")
            + self.counter("rarray_probes")
            + self.counter("mtree_nodes_built")
    }

    /// Total branches pruned across every depth and cause.
    pub fn pruned_total(&self) -> u64 {
        self.depths.iter().map(DepthRow::pruned_total).sum()
    }

    /// Total prunes of one cause across every depth.
    pub fn pruned_by(&self, cause: PruneCause) -> u64 {
        self.depths.iter().map(|r| r.pruned[cause.index()]).sum()
    }
}

/// The winner and the counter-derived reasoning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Label of the cheapest instrumented method.
    pub winner: String,
    /// One-line justification in deterministic units.
    pub why: String,
}

/// The full EXPLAIN result for one (pattern, k) query.
#[derive(Debug, Clone, Default)]
pub struct ExplainReport {
    /// The query pattern, rendered as ASCII bases.
    pub pattern: String,
    /// Pattern length.
    pub m: usize,
    /// Mismatch budget.
    pub k: usize,
    /// One entry per compared method, in comparison order.
    pub methods: Vec<MethodCost>,
}

impl ExplainReport {
    /// Pick the cheapest instrumented method by deterministic work
    /// units. `None` when no compared method is instrumented.
    pub fn verdict(&self) -> Option<Verdict> {
        let mut ranked: Vec<&MethodCost> =
            self.methods.iter().filter(|m| m.work_units() > 0).collect();
        ranked.sort_by_key(|m| m.work_units());
        let winner = ranked.first()?;
        let why = match ranked.get(1) {
            Some(next) => format!(
                "fewest deterministic work units: {} \
                 (rank_blocks={}, nodes={}, pruned={}) vs {} at {}",
                winner.work_units(),
                winner.counter("rank_blocks_touched"),
                winner.counter("nodes_visited"),
                winner.pruned_total(),
                next.label,
                next.work_units(),
            ),
            None => format!(
                "only instrumented method: {} work units \
                 (rank_blocks={}, nodes={}, pruned={})",
                winner.work_units(),
                winner.counter("rank_blocks_touched"),
                winner.counter("nodes_visited"),
                winner.pruned_total(),
            ),
        };
        Some(Verdict {
            winner: winner.label.clone(),
            why,
        })
    }

    /// The report as a [`EXPLAIN_SCHEMA`] JSON document.
    pub fn to_json(&self) -> Json {
        let methods: Vec<Json> = self
            .methods
            .iter()
            .map(|m| {
                let counters = Json::Obj(
                    m.counters
                        .iter()
                        .map(|&(n, v)| (n.to_string(), Json::UInt(v)))
                        .collect(),
                );
                let depths: Vec<Json> = m
                    .depths
                    .iter()
                    .enumerate()
                    .filter(|(_, row)| !row.is_empty())
                    .map(|(d, row)| {
                        let mut fields = vec![
                            ("depth".to_string(), Json::UInt(d as u64)),
                            ("expanded".to_string(), Json::UInt(row.expanded)),
                        ];
                        for cause in PruneCause::ALL {
                            fields.push((
                                format!("pruned_{}", cause.name()),
                                Json::UInt(row.pruned[cause.index()]),
                            ));
                        }
                        Json::Obj(fields)
                    })
                    .collect();
                Json::obj([
                    ("method", Json::Str(m.label.clone())),
                    ("occurrences", Json::UInt(m.occurrences)),
                    ("work_units", Json::UInt(m.work_units())),
                    ("counters", counters),
                    ("depths", Json::Arr(depths)),
                    (
                        "heap",
                        Json::obj([
                            ("allocated_bytes", Json::UInt(m.heap.allocated_bytes)),
                            ("allocations", Json::UInt(m.heap.allocations)),
                            ("net_live_bytes", Json::Int(m.heap.net_live_bytes)),
                        ]),
                    ),
                ])
            })
            .collect();
        let verdict = match self.verdict() {
            Some(v) => Json::obj([("winner", Json::Str(v.winner)), ("why", Json::Str(v.why))]),
            None => Json::Null,
        };
        Json::obj([
            ("schema", Json::Str(EXPLAIN_SCHEMA.to_string())),
            ("pattern", Json::Str(self.pattern.clone())),
            ("m", Json::UInt(self.m as u64)),
            ("k", Json::UInt(self.k as u64)),
            ("methods", Json::Arr(methods)),
            ("verdict", verdict),
        ])
    }

    /// Query-plan-style plain-text rendering: a method summary table,
    /// one depth-profile block per instrumented method, and the verdict.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "EXPLAIN pattern={} m={} k={}\n\n",
            self.pattern, self.m, self.k
        ));
        let headers = [
            "method",
            "occ",
            "work",
            "rank_blocks",
            "nodes",
            "leaves",
            "pr.empty",
            "pr.budget",
            "pr.cutoff",
            "heap_alloc",
        ];
        let rows: Vec<Vec<String>> = self
            .methods
            .iter()
            .map(|m| {
                vec![
                    m.label.clone(),
                    m.occurrences.to_string(),
                    m.work_units().to_string(),
                    m.counter("rank_blocks_touched").to_string(),
                    m.counter("nodes_visited").to_string(),
                    m.counter("leaves").to_string(),
                    m.pruned_by(PruneCause::EmptyInterval).to_string(),
                    m.pruned_by(PruneCause::Budget).to_string(),
                    m.pruned_by(PruneCause::Cutoff).to_string(),
                    m.heap.allocated_bytes.to_string(),
                ]
            })
            .collect();
        render_columns(&mut out, &headers, &rows);
        for m in &self.methods {
            if m.depths.iter().all(DepthRow::is_empty) {
                continue;
            }
            out.push_str(&format!(
                "\n{} depth profile (expanded | empty/budget/cutoff):\n",
                m.label
            ));
            let peak = m
                .depths
                .iter()
                .map(|r| r.expanded)
                .max()
                .unwrap_or(0)
                .max(1);
            for (d, row) in m.depths.iter().enumerate() {
                if row.is_empty() {
                    continue;
                }
                let bar_len = ((row.expanded * 32).div_ceil(peak)) as usize;
                out.push_str(&format!(
                    "  d{:02}  {:<32}  {:>8} | {}/{}/{}\n",
                    d,
                    "#".repeat(bar_len.min(32)),
                    row.expanded,
                    row.pruned[PruneCause::EmptyInterval.index()],
                    row.pruned[PruneCause::Budget.index()],
                    row.pruned[PruneCause::Cutoff.index()],
                ));
            }
        }
        match self.verdict() {
            Some(v) => out.push_str(&format!("\nverdict: {} — {}\n", v.winner, v.why)),
            None => out.push_str("\nverdict: none (no instrumented method compared)\n"),
        }
        out
    }
}

/// Column-aligned table: headers then rows, two-space gutters.
fn render_columns(out: &mut String, headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    for (i, h) in headers.iter().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        out.push_str(&format!("{:<width$}", h, width = widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                out.push_str(&format!("{:<width$}", cell, width = widths[i]));
            } else {
                out.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn method(label: &str, blocks: u64, nodes: u64) -> MethodCost {
        MethodCost {
            label: label.to_string(),
            occurrences: 2,
            counters: vec![
                ("rank_blocks_touched", blocks),
                ("nodes_visited", nodes),
                ("leaves", 3),
            ],
            depths: vec![
                DepthRow {
                    expanded: 1,
                    pruned: [0, 0, 0],
                },
                DepthRow {
                    expanded: nodes.saturating_sub(1),
                    pruned: [2, 1, 0],
                },
            ],
            heap: HeapDelta::default(),
        }
    }

    #[test]
    fn recorder_collects_rows_by_depth() {
        let rec = ExplainRecorder::new();
        assert!(rec.wants_depths());
        assert!(!rec.enabled());
        rec.depth_expand(0);
        rec.depth_expand(2);
        rec.depth_expand(2);
        rec.depth_prune(1, PruneCause::Budget);
        rec.depth_prune(2, PruneCause::EmptyInterval);
        rec.depth_prune(2, PruneCause::Cutoff);
        let rows = rec.take();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].expanded, 1);
        assert_eq!(rows[1].pruned[PruneCause::Budget.index()], 1);
        assert_eq!(rows[2].expanded, 2);
        assert_eq!(rows[2].pruned[PruneCause::EmptyInterval.index()], 1);
        assert_eq!(rows[2].pruned[PruneCause::Cutoff.index()], 1);
        // take() resets.
        assert!(rec.take().is_empty());
    }

    #[test]
    fn verdict_prefers_fewest_work_units_and_skips_uninstrumented() {
        let report = ExplainReport {
            pattern: "acag".into(),
            m: 4,
            k: 1,
            methods: vec![
                MethodCost {
                    label: "Naive".into(),
                    occurrences: 2,
                    ..Default::default()
                },
                method("BWT", 100, 40),
                method("A(.)", 60, 30),
            ],
        };
        let v = report.verdict().expect("two instrumented methods");
        assert_eq!(v.winner, "A(.)");
        assert!(v.why.contains("vs BWT"), "{}", v.why);
    }

    #[test]
    fn verdict_absent_when_nothing_instrumented() {
        let report = ExplainReport {
            pattern: "a".into(),
            m: 1,
            k: 0,
            methods: vec![MethodCost {
                label: "Naive".into(),
                ..Default::default()
            }],
        };
        assert!(report.verdict().is_none());
        assert!(report.render_table().contains("verdict: none"));
        assert_eq!(report.to_json().get("verdict"), Some(&Json::Null));
    }

    #[test]
    fn json_round_trips_and_carries_depth_rows() {
        let report = ExplainReport {
            pattern: "tcaca".into(),
            m: 5,
            k: 2,
            methods: vec![method("BWT", 100, 40)],
        };
        let doc = report.to_json();
        let text = doc.to_pretty();
        let back = Json::parse(&text).expect("explain JSON parses");
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some(EXPLAIN_SCHEMA)
        );
        let methods = back.get("methods").and_then(Json::as_array).unwrap();
        assert_eq!(methods.len(), 1);
        let depths = methods[0].get("depths").and_then(Json::as_array).unwrap();
        assert_eq!(depths.len(), 2);
        assert_eq!(
            depths[1]
                .get("pruned_empty_interval")
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            back.get("verdict")
                .and_then(|v| v.get("winner"))
                .and_then(Json::as_str),
            Some("BWT")
        );
    }

    #[test]
    fn table_renders_summary_and_depth_bars() {
        let report = ExplainReport {
            pattern: "tcaca".into(),
            m: 5,
            k: 2,
            methods: vec![method("BWT", 100, 40), method("A(.)", 60, 30)],
        };
        let table = report.render_table();
        assert!(table.contains("EXPLAIN pattern=tcaca m=5 k=2"), "{table}");
        assert!(table.contains("rank_blocks"), "{table}");
        assert!(table.contains("depth profile"), "{table}");
        assert!(table.contains('#'), "{table}");
        assert!(table.contains("verdict: A(.)"), "{table}");
    }

    #[test]
    fn heap_delta_between_ledgers() {
        use crate::alloc::{MemPhaseStats, MemStats};
        let before = MemStats {
            enabled: true,
            live_bytes: 1000,
            peak_bytes: 2000,
            phases: [MemPhaseStats {
                allocated_bytes: 10,
                allocations: 1,
                peak_live_bytes: 0,
            }; 5],
        };
        let mut after = before;
        after.live_bytes = 900;
        after.phases[3].allocated_bytes = 110;
        after.phases[3].allocations = 6;
        let delta = HeapDelta::between(&before, &after);
        assert_eq!(delta.allocated_bytes, 100);
        assert_eq!(delta.allocations, 5);
        assert_eq!(delta.net_live_bytes, -100);
    }
}
