//! Deterministic cost counters for the hot search paths.
//!
//! Wall-clock timings (the `Phase` spans) answer *how long* a query
//! took; these counters answer *how much work* it did, in units the
//! paper's cost model is stated in: rank blocks touched, packed-BWT
//! bytes scanned, R-array probes, and mismatching-tree nodes built or
//! shared. The counts are pure functions of (index, pattern, k,
//! method) — no clocks, no sampling — so two runs on the same corpus
//! and seed produce bit-identical numbers, which is what lets
//! `kmm bench diff` gate on them in CI where timings are noise.
//!
//! The counters are plain thread-local [`Cell`]s, always on: a bump is
//! an unsynchronised add (~1 ns), cheap enough for `occ` itself, and
//! keeping them unconditional means the numbers exist even under a
//! [`crate::NoopRecorder`] — observation never changes the work, and
//! the work is always observable. Each query runs on exactly one
//! thread, so a caller brackets a query with [`CostSnapshot::now`] and
//! [`CostSnapshot::delta`] to attribute the work to that query.

use std::cell::Cell;

use crate::recorder::Counter;

/// One deterministic work metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostKind {
    /// Interleaved rank blocks visited by `occ` / `occ_all` / `symbol`.
    RankBlocks,
    /// Bytes of rank-block data examined (checkpoint headers plus the
    /// packed 2-bit payload words the tail scan touched).
    RankBytes,
    /// R-array lookups (`shift` / `R_ij` derivations) during pattern
    /// preprocessing and tree descent.
    RarrayProbes,
    /// Mismatching-tree nodes materialised into the arena.
    MtreeBuilt,
    /// Mismatching-tree node hits answered by the pair table instead of
    /// materialising a new node.
    MtreeReused,
    /// `occ_all_pair` calls resolved with a single shared block visit
    /// because both interval boundaries fell in the same interleaved
    /// block — the fusion win over two independent `occ_all` sweeps.
    OccPairFused,
    /// Advisory rank-block prefetch hints issued for in-range LF
    /// targets. A pure function of the search path (issued before any
    /// kernel dispatch), so it stays deterministic under `KMM_NO_SIMD`.
    PrefetchIssued,
}

impl CostKind {
    pub const COUNT: usize = 7;
    pub const ALL: [CostKind; CostKind::COUNT] = [
        CostKind::RankBlocks,
        CostKind::RankBytes,
        CostKind::RarrayProbes,
        CostKind::MtreeBuilt,
        CostKind::MtreeReused,
        CostKind::OccPairFused,
        CostKind::PrefetchIssued,
    ];

    /// Stable dotted name (matches the `search.*` counter family).
    pub fn name(self) -> &'static str {
        self.counter().name()
    }

    /// The aggregate [`Counter`] this metric feeds.
    pub fn counter(self) -> Counter {
        match self {
            CostKind::RankBlocks => Counter::RankBlocksTouched,
            CostKind::RankBytes => Counter::RankBytesScanned,
            CostKind::RarrayProbes => Counter::RarrayProbes,
            CostKind::MtreeBuilt => Counter::MtreeNodesBuilt,
            CostKind::MtreeReused => Counter::MtreeNodesReused,
            CostKind::OccPairFused => Counter::OccPairFused,
            CostKind::PrefetchIssued => Counter::PrefetchIssued,
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

thread_local! {
    static COSTS: [Cell<u64>; CostKind::COUNT] = const {
        [
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
            Cell::new(0),
        ]
    };
}

/// Add `delta` to one cost counter on this thread.
#[inline]
pub fn bump(kind: CostKind, delta: u64) {
    COSTS.with(|c| {
        let cell = &c[kind.index()];
        cell.set(cell.get().wrapping_add(delta));
    });
}

/// Add to two counters with a single thread-local access (the `occ`
/// hot path bumps blocks and bytes together).
#[inline]
pub fn bump2(a: CostKind, da: u64, b: CostKind, db: u64) {
    COSTS.with(|c| {
        let ca = &c[a.index()];
        ca.set(ca.get().wrapping_add(da));
        let cb = &c[b.index()];
        cb.set(cb.get().wrapping_add(db));
    });
}

/// Point-in-time reading of this thread's cost counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    values: [u64; CostKind::COUNT],
}

impl CostSnapshot {
    /// Capture the current counter values of this thread.
    #[inline]
    pub fn now() -> CostSnapshot {
        CostSnapshot {
            values: COSTS.with(|c| std::array::from_fn(|i| c[i].get())),
        }
    }

    /// Work done between `earlier` and `self` (same thread). The
    /// counters only grow, so wrapping subtraction is exact.
    pub fn delta(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            values: std::array::from_fn(|i| self.values[i].wrapping_sub(earlier.values[i])),
        }
    }

    /// Value of one metric.
    #[inline]
    pub fn get(&self, kind: CostKind) -> u64 {
        self.values[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bumps_are_visible_in_deltas() {
        let before = CostSnapshot::now();
        bump(CostKind::RankBlocks, 3);
        bump2(CostKind::RankBlocks, 1, CostKind::RankBytes, 24);
        bump(CostKind::MtreeBuilt, 2);
        let delta = CostSnapshot::now().delta(&before);
        assert_eq!(delta.get(CostKind::RankBlocks), 4);
        assert_eq!(delta.get(CostKind::RankBytes), 24);
        assert_eq!(delta.get(CostKind::MtreeBuilt), 2);
        assert_eq!(delta.get(CostKind::MtreeReused), 0);
    }

    #[test]
    fn counters_are_thread_local() {
        let before = CostSnapshot::now();
        std::thread::spawn(|| bump(CostKind::RarrayProbes, 1_000_000))
            .join()
            .unwrap();
        let delta = CostSnapshot::now().delta(&before);
        assert_eq!(delta.get(CostKind::RarrayProbes), 0);
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let mut names: Vec<&str> = CostKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CostKind::COUNT);
        for kind in CostKind::ALL {
            assert!(kind.name().starts_with("search."), "{}", kind.name());
        }
    }
}
