//! Per-query span tracing and the slow-query flight recorder.
//!
//! [`TraceRecorder`] is a [`Recorder`] that, on top of the metrics a
//! [`MetricsRecorder`] collects, records **hierarchical spans**: every
//! [`Recorder::span`] region becomes a [`SpanEvent`] with an id, a parent
//! id, a phase, a thread tag, and monotonic start/duration offsets
//! measured from the recorder's epoch. Spans nest through an explicit
//! stack; when the outermost span of a stack closes, the completed tree
//! is packaged as one [`QueryTrace`] together with the counter deltas
//! observed while it was open (the per-query `SearchStats`).
//!
//! Completed traces feed two sinks:
//!
//! * a bounded buffer of full traces, exportable as a Chrome trace-event
//!   JSON document ([`chrome_trace_json`]) that loads directly in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev);
//! * a fixed-capacity [`FlightRecorder`] that retains only the K slowest
//!   queries, dumpable at any time (`kmm serve`'s `/slow.json`).
//!
//! Parallel batches give each worker its own `TraceRecorder` shard
//! (created against the parent's epoch so all offsets share a timeline)
//! and merge with [`TraceRecorder::drain`] +
//! [`Recorder::absorb_traces`], mirroring the metrics `absorb` path.
//! Because every shard keeps its own K-slowest set, the merged flight
//! recorder is exactly the global K-slowest of the whole batch.
//!
//! All interior locks recover from poisoning: a query that panics
//! mid-span can only lose its own partial trace, never wedge the
//! recorder for subsequent queries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use crate::json::Json;
use crate::recorder::{Counter, MetricsRecorder, Phase, Recorder};
use crate::snapshot::MetricsSnapshot;

/// One closed span: a timed region of the pipeline inside a query trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// 1-based id, unique within its [`QueryTrace`].
    pub id: u32,
    /// Id of the enclosing span; 0 for the root.
    pub parent: u32,
    /// What the region was doing.
    pub phase: Phase,
    /// Worker tag (0 = the recorder's owning thread).
    pub thread: u32,
    /// Start offset from the recorder epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
}

impl SpanEvent {
    /// End offset from the recorder epoch, nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::UInt(self.id as u64)),
            ("parent", Json::UInt(self.parent as u64)),
            ("phase", Json::Str(self.phase.name().to_string())),
            ("thread", Json::UInt(self.thread as u64)),
            ("start_ns", Json::UInt(self.start_ns)),
            ("dur_ns", Json::UInt(self.dur_ns)),
        ])
    }
}

/// The complete span tree of one top-level traced region (one search
/// query, or one mapped read), plus the counter deltas it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// Free-form label accumulated from [`Recorder::annotate`] calls
    /// (e.g. `"q=17 m=100 k=5 method=A(.)"`).
    pub label: String,
    /// Worker tag of the thread that ran the query.
    pub thread: u32,
    /// Root start offset from the recorder epoch, nanoseconds.
    pub start_ns: u64,
    /// Root duration, nanoseconds.
    pub dur_ns: u64,
    /// The span tree; `spans[0]` is the root (id 1, parent 0) and
    /// children always follow their parents.
    pub spans: Vec<SpanEvent>,
    /// Nonzero counter deltas recorded while the root was open — the
    /// per-query `SearchStats` (nodes expanded, merges, reuse hits, …).
    pub counters: Vec<(&'static str, u64)>,
}

impl QueryTrace {
    /// The root span's phase.
    pub fn root_phase(&self) -> Phase {
        self.spans[0].phase
    }

    /// Value of one per-query counter delta (0 when absent).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(name, _)| *name == counter.name())
            .map_or(0, |(_, v)| *v)
    }

    /// Serialise for `/slow.json` and flight-recorder dumps.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::Str(self.label.clone())),
            ("thread", Json::UInt(self.thread as u64)),
            ("start_ns", Json::UInt(self.start_ns)),
            ("dur_ns", Json::UInt(self.dur_ns)),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(name, v)| (name.to_string(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "spans",
                Json::Arr(self.spans.iter().map(SpanEvent::to_json).collect()),
            ),
        ])
    }
}

/// Detached tracing state handed from a worker shard to its parent via
/// [`Recorder::absorb_traces`].
#[derive(Debug, Default)]
pub struct TraceBundle {
    /// Completed traces retained by the shard's full-trace buffer.
    pub traces: Vec<QueryTrace>,
    /// The shard's K-slowest set (disjoint storage from `traces`).
    pub slowest: Vec<QueryTrace>,
    /// Traces finished but not retained because the buffer was full.
    pub dropped: u64,
}

/// Capacity knobs for a [`TraceRecorder`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Max completed traces retained for full export (oldest-first; the
    /// flight recorder still sees every query after the cap is hit).
    pub max_traces: usize,
    /// How many slowest queries the flight recorder retains.
    pub flight_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            max_traces: 65_536,
            flight_capacity: 16,
        }
    }
}

/// Lock a mutex, recovering the data from a poisoned lock — a panicking
/// query must never wedge telemetry for everyone else.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Fixed-capacity ring of the K slowest query traces seen so far.
///
/// `offer` is O(K) in the worst case but exits with one comparison for
/// queries faster than the current K-th slowest — cheap on the hot path.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    /// Sorted ascending by `dur_ns`; index 0 is the eviction candidate.
    entries: Mutex<Vec<QueryTrace>>,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Retained-entry count.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.entries).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of slow-query entries retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offer a completed trace; it is cloned in only if it ranks among
    /// the K slowest seen so far.
    pub fn offer(&self, trace: &QueryTrace) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = lock_unpoisoned(&self.entries);
        if entries.len() >= self.capacity {
            if trace.dur_ns <= entries[0].dur_ns {
                return;
            }
            entries.remove(0);
        }
        let at = entries.partition_point(|e| e.dur_ns <= trace.dur_ns);
        entries.insert(at, trace.clone());
    }

    /// The retained traces, slowest first.
    pub fn slowest(&self) -> Vec<QueryTrace> {
        let entries = lock_unpoisoned(&self.entries);
        entries.iter().rev().cloned().collect()
    }

    /// Move the retained traces out (slowest first), leaving the
    /// recorder empty.
    pub fn drain(&self) -> Vec<QueryTrace> {
        let mut entries = std::mem::take(&mut *lock_unpoisoned(&self.entries));
        entries.reverse();
        entries
    }
}

/// Span bookkeeping for the recorder's single collection lane. A
/// `TraceRecorder` is owned by one logical worker at a time (parallel
/// batches shard per worker), so this mutex is effectively uncontended.
#[derive(Debug)]
struct TraceState {
    /// Ids of currently open spans, outermost first.
    stack: Vec<u32>,
    /// Spans of the in-flight root, completed and open (open spans have
    /// `dur_ns == 0` until their end is recorded).
    spans: Vec<SpanEvent>,
    /// Counter deltas since the current root opened.
    counters: [u64; Counter::COUNT],
    /// Label for the current root.
    label: String,
    /// Label queued for the next root (annotate before span_begin).
    pending_label: String,
}

// Written out by hand: the std `Default` derive only covers arrays up
// to 32 elements, and `counters` tracks every `Counter` variant.
impl Default for TraceState {
    fn default() -> Self {
        TraceState {
            stack: Vec::new(),
            spans: Vec::new(),
            counters: [0; Counter::COUNT],
            label: String::new(),
            pending_label: String::new(),
        }
    }
}

/// A [`Recorder`] collecting metrics *and* per-query span traces.
///
/// Delegates every metrics event to an embedded [`MetricsRecorder`] (so
/// [`TraceRecorder::snapshot`] is exactly what a metrics-only run would
/// have produced), and additionally maintains the span stack, the
/// bounded full-trace buffer, and the slow-query [`FlightRecorder`].
#[derive(Debug)]
pub struct TraceRecorder {
    metrics: MetricsRecorder,
    epoch: Instant,
    thread: u32,
    collect: bool,
    max_traces: usize,
    state: Mutex<TraceState>,
    traces: Mutex<Vec<QueryTrace>>,
    dropped: AtomicU64,
    flight: FlightRecorder,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A tracing recorder with default capacities, epoch = now.
    pub fn new() -> Self {
        Self::with_config(TraceConfig::default())
    }

    /// A tracing recorder with explicit capacities, epoch = now.
    pub fn with_config(config: TraceConfig) -> Self {
        Self::build(config, Instant::now(), 0, true)
    }

    /// A per-worker shard: shares the parent's `epoch` (one timeline
    /// across workers) and tags its spans with `thread`. When `collect`
    /// is false the shard degrades to a plain metrics collector — the
    /// shape batch paths use under a non-tracing parent recorder.
    pub fn shard(epoch: Option<Instant>, thread: u32, collect: bool) -> Self {
        Self::build(
            TraceConfig::default(),
            epoch.unwrap_or_else(Instant::now),
            thread,
            collect,
        )
    }

    fn build(config: TraceConfig, epoch: Instant, thread: u32, collect: bool) -> Self {
        TraceRecorder {
            metrics: MetricsRecorder::new(),
            epoch,
            thread,
            collect,
            max_traces: config.max_traces,
            state: Mutex::new(TraceState::default()),
            traces: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            flight: FlightRecorder::new(config.flight_capacity),
        }
    }

    /// The embedded metrics collector.
    pub fn metrics(&self) -> &MetricsRecorder {
        &self.metrics
    }

    /// Plain-data copy of the metrics collected so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The slow-query flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Copy of the retained full traces, in completion order.
    pub fn traces(&self) -> Vec<QueryTrace> {
        lock_unpoisoned(&self.traces).clone()
    }

    /// Completed traces finished but dropped because the buffer was full.
    pub fn dropped_traces(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Move the tracing state out for a parent's
    /// [`Recorder::absorb_traces`] (metrics travel separately through
    /// [`Recorder::absorb`]).
    pub fn drain(&self) -> TraceBundle {
        TraceBundle {
            traces: std::mem::take(&mut *lock_unpoisoned(&self.traces)),
            slowest: self.flight.drain(),
            dropped: self.dropped.swap(0, Ordering::Relaxed),
        }
    }

    /// Chrome trace-event JSON of every retained trace; load the output
    /// in `chrome://tracing` or Perfetto.
    pub fn chrome_trace(&self) -> Json {
        chrome_trace_json(&lock_unpoisoned(&self.traces))
    }

    fn ns_since_epoch(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn finalize_root(&self, state: &mut TraceState) {
        let spans = std::mem::take(&mut state.spans);
        let root = &spans[0];
        let counters: Vec<(&'static str, u64)> = Counter::ALL
            .iter()
            .filter(|c| state.counters[c.index()] > 0)
            .map(|c| (c.name(), state.counters[c.index()]))
            .collect();
        state.counters = [0; Counter::COUNT];
        let trace = QueryTrace {
            label: std::mem::take(&mut state.label),
            thread: self.thread,
            start_ns: root.start_ns,
            dur_ns: root.dur_ns,
            spans,
            counters,
        };
        if trace.root_phase().is_query_root() {
            self.flight.offer(&trace);
        }
        let mut traces = lock_unpoisoned(&self.traces);
        if traces.len() < self.max_traces {
            traces.push(trace);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Recorder for TraceRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn add(&self, counter: Counter, delta: u64) {
        self.metrics.add(counter, delta);
        if self.collect {
            let mut state = lock_unpoisoned(&self.state);
            if !state.stack.is_empty() {
                state.counters[counter.index()] += delta;
            }
        }
    }

    #[inline]
    fn observe(&self, hist: crate::Hist, value: u64) {
        self.metrics.observe(hist, value);
    }

    #[inline]
    fn phase_add(&self, phase: Phase, nanos: u64) {
        self.metrics.phase_add(phase, nanos);
    }

    fn absorb(&self, snapshot: &MetricsSnapshot) {
        self.metrics.absorb(snapshot);
    }

    #[inline]
    fn wants_spans(&self) -> bool {
        self.collect
    }

    fn trace_epoch(&self) -> Option<Instant> {
        Some(self.epoch)
    }

    fn span_begin(&self, phase: Phase) {
        if !self.collect {
            return;
        }
        let start_ns = self.ns_since_epoch();
        let mut state = lock_unpoisoned(&self.state);
        if state.stack.is_empty() {
            // Opening a root: recover from any partial spans a panicking
            // query left behind, and consume the pending label.
            state.spans.clear();
            state.counters = [0; Counter::COUNT];
            state.label = std::mem::take(&mut state.pending_label);
        }
        let id = state.spans.len() as u32 + 1;
        let parent = state.stack.last().copied().unwrap_or(0);
        state.spans.push(SpanEvent {
            id,
            parent,
            phase,
            thread: self.thread,
            start_ns,
            dur_ns: 0,
        });
        state.stack.push(id);
    }

    fn span_end(&self, phase: Phase) {
        if !self.collect {
            return;
        }
        let end_ns = self.ns_since_epoch();
        let mut state = lock_unpoisoned(&self.state);
        let Some(id) = state.stack.pop() else {
            return; // unbalanced end after a recovered panic: ignore
        };
        let idx = id as usize - 1;
        debug_assert_eq!(state.spans[idx].phase, phase);
        state.spans[idx].dur_ns = end_ns.saturating_sub(state.spans[idx].start_ns);
        if state.stack.is_empty() {
            self.finalize_root(&mut state);
        }
    }

    fn annotate(&self, label: &str) {
        if !self.collect || label.is_empty() {
            return;
        }
        let mut state = lock_unpoisoned(&self.state);
        let target = if state.stack.is_empty() {
            &mut state.pending_label
        } else {
            &mut state.label
        };
        if !target.is_empty() {
            target.push(' ');
        }
        target.push_str(label);
    }

    fn absorb_traces(&self, bundle: TraceBundle) {
        for trace in &bundle.slowest {
            self.flight.offer(trace);
        }
        self.dropped.fetch_add(bundle.dropped, Ordering::Relaxed);
        let mut traces = lock_unpoisoned(&self.traces);
        for trace in bundle.traces {
            if traces.len() < self.max_traces {
                traces.push(trace);
            } else {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Render traces as a Chrome trace-event document (`"X"` complete
/// events, microsecond timestamps). Loadable in `chrome://tracing` and
/// [Perfetto](https://ui.perfetto.dev).
pub fn chrome_trace_json(traces: &[QueryTrace]) -> Json {
    let mut events = Vec::new();
    for trace in traces {
        for span in &trace.spans {
            let mut obj = vec![
                ("name".to_string(), Json::Str(span.phase.name().to_string())),
                (
                    "cat".to_string(),
                    Json::Str(span.phase.stage().name().to_string()),
                ),
                ("ph".to_string(), Json::Str("X".to_string())),
                ("ts".to_string(), Json::Float(span.start_ns as f64 / 1e3)),
                ("dur".to_string(), Json::Float(span.dur_ns as f64 / 1e3)),
                ("pid".to_string(), Json::UInt(0)),
                ("tid".to_string(), Json::UInt(span.thread as u64)),
            ];
            if span.parent == 0 && !trace.label.is_empty() {
                obj.push((
                    "args".to_string(),
                    Json::obj([("label", Json::Str(trace.label.clone()))]),
                ));
            }
            events.push(Json::Obj(obj));
        }
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
    ])
}

/// Render a flight-recorder dump (or any trace list) as the `/slow.json`
/// document.
pub fn slow_queries_json(slowest: &[QueryTrace]) -> Json {
    Json::obj([
        ("schema", Json::Str("kmm-trace/v1".to_string())),
        (
            "slowest",
            Json::Arr(slowest.iter().map(QueryTrace::to_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Hist;

    fn spin(n: u64) -> u64 {
        std::hint::black_box((0..n).fold(0u64, |a, b| a.wrapping_add(b)))
    }

    #[test]
    fn non_query_roots_are_traced_but_never_flight_ranked() {
        let rec = TraceRecorder::new();
        {
            let _load = rec.span(Phase::IndexLoad);
            spin(20_000); // make the non-query root the slowest trace
        }
        {
            let _root = rec.span(Phase::SearchQuery);
        }
        // Both top-level spans become traces (the Chrome export shows
        // index loads on the timeline)...
        assert_eq!(rec.traces().len(), 2);
        // ...but only the query competes for the slow-query ranking.
        let slowest = rec.flight().slowest();
        assert_eq!(slowest.len(), 1);
        assert_eq!(slowest[0].root_phase(), Phase::SearchQuery);
    }

    #[test]
    fn spans_nest_and_form_one_trace_per_root() {
        let rec = TraceRecorder::new();
        rec.annotate("q=0");
        {
            let _root = rec.span(Phase::SearchQuery);
            rec.annotate("m=8");
            {
                let _pre = rec.span(Phase::PreprocessRarray);
                spin(1000);
            }
            {
                let _walk = rec.span(Phase::SearchDescend);
                spin(1000);
            }
            rec.add(Counter::Leaves, 3);
        }
        let traces = rec.traces();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.label, "q=0 m=8");
        assert_eq!(t.root_phase(), Phase::SearchQuery);
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.spans[0].parent, 0);
        for child in &t.spans[1..] {
            assert_eq!(child.parent, t.spans[0].id);
            assert!(child.start_ns >= t.spans[0].start_ns);
            assert!(child.end_ns() <= t.spans[0].end_ns());
        }
        assert_eq!(t.counter(Counter::Leaves), 3);
        assert_eq!(t.counter(Counter::Merges), 0);
        // The embedded metrics recorder saw the same events.
        assert_eq!(rec.metrics().counter(Counter::Leaves), 3);
        assert_eq!(rec.snapshot().phase(Phase::SearchQuery).entries, 1);
    }

    #[test]
    fn sequential_roots_become_separate_traces() {
        let rec = TraceRecorder::new();
        for i in 0..3 {
            rec.annotate(&format!("q={i}"));
            let _root = rec.span(Phase::SearchQuery);
            spin(100);
        }
        let traces = rec.traces();
        assert_eq!(traces.len(), 3);
        assert_eq!(traces[2].label, "q=2");
        // Traces are disjoint in time and ordered by start.
        for pair in traces.windows(2) {
            assert!(pair[0].start_ns + pair[0].dur_ns <= pair[1].start_ns);
        }
    }

    #[test]
    fn flight_recorder_keeps_k_slowest() {
        let flight = FlightRecorder::new(3);
        let mk = |dur: u64| QueryTrace {
            label: format!("d{dur}"),
            thread: 0,
            start_ns: 0,
            dur_ns: dur,
            spans: vec![SpanEvent {
                id: 1,
                parent: 0,
                phase: Phase::SearchQuery,
                thread: 0,
                start_ns: 0,
                dur_ns: dur,
            }],
            counters: Vec::new(),
        };
        for dur in [50, 10, 99, 1, 70, 30, 85] {
            flight.offer(&mk(dur));
        }
        let slowest = flight.slowest();
        let durs: Vec<u64> = slowest.iter().map(|t| t.dur_ns).collect();
        assert_eq!(durs, vec![99, 85, 70]);
        // Zero-capacity recorder stays empty.
        let off = FlightRecorder::new(0);
        off.offer(&mk(5));
        assert!(off.is_empty());
    }

    #[test]
    fn shard_drain_absorb_merges_flight_globally() {
        let parent = TraceRecorder::with_config(TraceConfig {
            max_traces: 10,
            flight_capacity: 2,
        });
        let mk_shard = |thread: u32, queries: usize| {
            let shard = TraceRecorder::shard(Some(parent.epoch), thread, true);
            for _ in 0..queries {
                let _root = shard.span(Phase::SearchQuery);
            }
            shard
        };
        // Pin root durations after draining: measured wall time would
        // make the flight ranking depend on scheduler preemption.
        let pin = |mut bundle: TraceBundle, durs: &[u64]| {
            assert_eq!(bundle.traces.len(), durs.len());
            for (trace, &dur) in bundle.traces.iter_mut().zip(durs) {
                trace.dur_ns = dur;
                trace.spans[0].dur_ns = dur;
            }
            bundle.slowest = bundle.traces.clone();
            bundle
        };
        let a = mk_shard(1, 3);
        let b = mk_shard(2, 2);
        parent.absorb(&a.snapshot());
        parent.absorb(&b.snapshot());
        parent.absorb_traces(pin(a.drain(), &[10, 100_000, 20]));
        parent.absorb_traces(pin(b.drain(), &[200_000, 5]));
        assert_eq!(parent.traces().len(), 5);
        assert_eq!(parent.snapshot().phase(Phase::SearchQuery).entries, 5);
        let slowest = parent.flight().slowest();
        assert_eq!(slowest.len(), 2);
        assert!(slowest[0].dur_ns >= slowest[1].dur_ns);
        // The two retained entries are the heavy spins, one per shard.
        let threads: Vec<u32> = slowest.iter().map(|t| t.thread).collect();
        assert!(threads.contains(&1) && threads.contains(&2));
    }

    #[test]
    fn trace_buffer_cap_drops_but_flight_still_sees_everything() {
        let rec = TraceRecorder::with_config(TraceConfig {
            max_traces: 2,
            flight_capacity: 8,
        });
        for _ in 0..5 {
            let _root = rec.span(Phase::SearchQuery);
            spin(50);
        }
        assert_eq!(rec.traces().len(), 2);
        assert_eq!(rec.dropped_traces(), 3);
        assert_eq!(rec.flight().len(), 5);
    }

    #[test]
    fn non_collecting_shard_is_metrics_only() {
        let rec = TraceRecorder::shard(None, 7, false);
        assert!(!rec.wants_spans());
        {
            let _root = rec.span(Phase::SearchQuery);
            rec.add(Counter::Queries, 1);
            rec.observe(Hist::SearchLatencyNs, 10);
        }
        rec.annotate("ignored");
        assert!(rec.traces().is_empty());
        assert!(rec.flight().is_empty());
        assert_eq!(rec.metrics().counter(Counter::Queries), 1);
        assert_eq!(rec.snapshot().phase(Phase::SearchQuery).entries, 1);
    }

    #[test]
    fn chrome_export_has_one_event_per_span() {
        let rec = TraceRecorder::new();
        rec.annotate("q=0");
        {
            let _root = rec.span(Phase::SearchQuery);
            let _child = rec.span(Phase::SearchDescend);
        }
        let doc = rec.chrome_trace();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().is_some());
        }
        // The root carries the query label; the document round-trips
        // through the parser (i.e. it is well-formed JSON).
        let root = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("search.query"))
            .unwrap();
        assert_eq!(
            root.get("args").unwrap().get("label").unwrap().as_str(),
            Some("q=0")
        );
        let reparsed = Json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn slow_json_document_shape() {
        let rec = TraceRecorder::new();
        {
            let _root = rec.span(Phase::SearchQuery);
            rec.add(Counter::NodesVisited, 4);
        }
        let doc = slow_queries_json(&rec.flight().slowest());
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("kmm-trace/v1"));
        let entries = doc.get("slowest").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0]
                .get("counters")
                .unwrap()
                .get("search.nodes_visited")
                .unwrap()
                .as_u64(),
            Some(4)
        );
        assert!(Json::parse(&doc.to_pretty()).is_ok());
    }

    #[test]
    fn panicking_query_does_not_poison_the_recorder() {
        let rec = TraceRecorder::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _root = rec.span(Phase::SearchQuery);
            let _child = rec.span(Phase::SearchDescend);
            panic!("injected");
        }));
        assert!(r.is_err());
        // The interrupted query may leave partial state behind; the next
        // root recovers and records normally.
        {
            let _root = rec.span(Phase::SearchQuery);
            rec.add(Counter::Queries, 1);
        }
        let traces = rec.traces();
        let clean = traces.last().unwrap();
        assert_eq!(clean.root_phase(), Phase::SearchQuery);
        assert_eq!(clean.counter(Counter::Queries), 1);
        assert_eq!(clean.spans[0].parent, 0);
    }
}
