//! # kmm-telemetry
//!
//! Zero-dependency observability for the bwt-kmismatch workspace:
//! phase timers, counters, and log2-bucketed histograms, plus a
//! hand-written JSON emitter/parser and a plain-text table renderer.
//!
//! The central abstraction is the [`Recorder`] trait. Hot paths are
//! generic over `R: Recorder`, and the default [`NoopRecorder`] has
//! empty inlined methods with `enabled() == false`, so the fully
//! monomorphised no-op build carries no timing syscalls and no atomic
//! traffic — instrumentation compiles away. [`MetricsRecorder`] is the
//! concrete collector: lock-free (atomics only), shareable by `&`
//! reference across threads, snapshot-able at any point.
//!
//! Instrument a phase with a scoped span; the elapsed time is recorded
//! when the guard drops:
//!
//! ```
//! use kmm_telemetry::{MetricsRecorder, Phase, Recorder, Counter};
//!
//! let rec = MetricsRecorder::new();
//! {
//!     let _span = rec.span(Phase::IndexSa);
//!     // ... build the suffix array ...
//! }
//! rec.add(Counter::Queries, 1);
//! let snap = rec.snapshot();
//! assert_eq!(snap.phase(Phase::IndexSa).entries, 1);
//! println!("{}", snap.to_json().to_pretty());
//! ```

pub mod alloc;
pub mod cost;
pub mod events;
pub mod explain;
mod histogram;
pub mod json;
mod prometheus;
mod recorder;
mod snapshot;
mod trace;
mod window;

pub use alloc::{mem_stats, CountingAlloc, MemPhase, MemStats};
pub use cost::{CostKind, CostSnapshot};
pub use events::{EventLog, LogEvent, LogLevel};
pub use explain::{
    DepthRow, ExplainRecorder, ExplainReport, HeapDelta, MethodCost, Verdict, EXPLAIN_SCHEMA,
};
pub use histogram::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS,
};
pub use json::{Json, JsonError};
pub use prometheus::{prometheus_mem_text, prometheus_text};
pub use recorder::{
    Counter, Hist, MetricsRecorder, NoopRecorder, Phase, PhaseSpan, PruneCause, Recorder, Stage,
};
pub use snapshot::{CounterSnapshot, MetricsSnapshot, PhaseSnapshot, SCHEMA};
pub use trace::{
    chrome_trace_json, slow_queries_json, FlightRecorder, QueryTrace, SpanEvent, TraceBundle,
    TraceConfig, TraceRecorder,
};
pub use window::{SlidingWindow, WindowSummary};
