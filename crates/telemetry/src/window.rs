//! Sliding-window latency tracking for serving endpoints.
//!
//! A [`SlidingWindow`] buckets observations into fixed-width time slots
//! (seconds of a monotonic clock) and keeps only the most recent N
//! slots; [`SlidingWindow::summary`] merges the live slots into one
//! [`HistogramSnapshot`], so p50/p95/p99 over "the last minute" come
//! from the same log2-bucket interpolation the process-lifetime
//! histograms use. Old slots are pruned lazily on record/summary — no
//! background thread.
//!
//! One instance guards one endpoint; its single mutex is held only for
//! O(BUCKETS) work, which is negligible next to request handling.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use crate::histogram::{bucket_index, HistogramSnapshot, BUCKETS};

/// Per-slot accumulator (plain data; lives under the window's mutex).
#[derive(Debug, Clone)]
struct Slot {
    tick: u64,
    count: u64,
    errors: u64,
    buckets: [u64; BUCKETS],
    sum: u64,
    min: u64,
    max: u64,
}

impl Slot {
    fn new(tick: u64) -> Slot {
        Slot {
            tick,
            count: 0,
            errors: 0,
            buckets: [0; BUCKETS],
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Merged view of the window's live slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSummary {
    /// Observations in the window (errors included).
    pub count: u64,
    /// Error observations in the window.
    pub errors: u64,
    /// Value distribution over the window.
    pub hist: HistogramSnapshot,
}

impl WindowSummary {
    pub fn empty() -> WindowSummary {
        WindowSummary {
            count: 0,
            errors: 0,
            hist: HistogramSnapshot::empty(),
        }
    }
}

/// Rolling last-N-slots observation window.
#[derive(Debug)]
pub struct SlidingWindow {
    epoch: Instant,
    slot_secs: u64,
    slots: usize,
    inner: Mutex<VecDeque<Slot>>,
}

impl SlidingWindow {
    /// A window of `slots` slots, each `slot_secs` wide (e.g. 60 × 1s
    /// for a one-minute window). Both are clamped to at least 1.
    pub fn new(slot_secs: u64, slots: usize) -> SlidingWindow {
        SlidingWindow {
            epoch: Instant::now(),
            slot_secs: slot_secs.max(1),
            slots: slots.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    fn tick_now(&self) -> u64 {
        self.epoch.elapsed().as_secs() / self.slot_secs
    }

    /// Record one observation (a request latency in nanoseconds).
    pub fn record(&self, value: u64, is_error: bool) {
        self.record_at(self.tick_now(), value, is_error);
    }

    /// Merge the live slots.
    pub fn summary(&self) -> WindowSummary {
        self.summary_at(self.tick_now())
    }

    fn record_at(&self, tick: u64, value: u64, is_error: bool) {
        let mut slots = self.lock();
        self.prune(&mut slots, tick);
        let needs_new = slots.back().map_or(true, |s| s.tick != tick);
        if needs_new {
            slots.push_back(Slot::new(tick));
        }
        let slot = slots.back_mut().expect("slot just ensured");
        slot.count += 1;
        if is_error {
            slot.errors += 1;
        }
        slot.buckets[bucket_index(value)] += 1;
        slot.sum = slot.sum.saturating_add(value);
        slot.min = slot.min.min(value);
        slot.max = slot.max.max(value);
    }

    fn summary_at(&self, tick: u64) -> WindowSummary {
        let mut slots = self.lock();
        self.prune(&mut slots, tick);
        let mut summary = WindowSummary::empty();
        let mut min = u64::MAX;
        for slot in slots.iter() {
            summary.count += slot.count;
            summary.errors += slot.errors;
            for (i, &n) in slot.buckets.iter().enumerate() {
                summary.hist.buckets[i] += n;
            }
            summary.hist.count += slot.count;
            summary.hist.sum = summary.hist.sum.saturating_add(slot.sum);
            min = min.min(slot.min);
            summary.hist.max = summary.hist.max.max(slot.max);
        }
        if summary.hist.count > 0 {
            summary.hist.min = min;
        }
        summary
    }

    fn prune(&self, slots: &mut VecDeque<Slot>, tick: u64) {
        let oldest_live = tick.saturating_sub(self.slots as u64 - 1);
        while slots.front().is_some_and(|s| s.tick < oldest_live) {
            slots.pop_front();
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Slot>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_merge_across_live_slots() {
        let w = SlidingWindow::new(1, 3);
        w.record_at(0, 10, false);
        w.record_at(1, 20, true);
        w.record_at(2, 40, false);
        let s = w.summary_at(2);
        assert_eq!(s.count, 3);
        assert_eq!(s.errors, 1);
        assert_eq!(s.hist.count, 3);
        assert_eq!(s.hist.min, 10);
        assert_eq!(s.hist.max, 40);
        assert_eq!(s.hist.sum, 70);
        assert!(s.hist.percentile(0.5) >= 10.0);
    }

    #[test]
    fn old_slots_fall_out_of_the_window() {
        let w = SlidingWindow::new(1, 2);
        w.record_at(0, 100, true);
        w.record_at(1, 7, false);
        // At tick 2 the window covers ticks {1, 2}: the error at tick 0
        // is gone.
        let s = w.summary_at(2);
        assert_eq!(s.count, 1);
        assert_eq!(s.errors, 0);
        assert_eq!(s.hist.max, 7);
        // Far future: everything expired.
        assert_eq!(w.summary_at(100), WindowSummary::empty());
    }

    #[test]
    fn recording_after_a_gap_prunes_stale_slots() {
        let w = SlidingWindow::new(1, 2);
        w.record_at(0, 5, false);
        w.record_at(50, 9, false);
        let s = w.summary_at(50);
        assert_eq!(s.count, 1);
        assert_eq!(s.hist.min, 9);
    }

    #[test]
    fn live_clock_path_works() {
        let w = SlidingWindow::new(60, 5);
        w.record(1000, false);
        w.record(3000, true);
        let s = w.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.errors, 1);
    }
}
