//! Lock-free log2-bucketed histogram over `u64` values.
//!
//! Bucket 0 holds the value `0` exactly; bucket `b >= 1` covers the
//! half-open power-of-two range `[2^(b-1), 2^b)`. With 64-bit values the
//! top bucket index is 64 (values in `[2^63, u64::MAX]`), giving
//! [`BUCKETS`] = 65 buckets total. This resolution (~2x relative error)
//! is plenty for the quantities we track — per-read search latency in
//! nanoseconds, BWT interval widths, and mismatching-tree termination
//! depths — while keeping `observe` to one atomic increment.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit position.
pub const BUCKETS: usize = 65;

/// Map a value to its bucket index (0 for 0, else `64 - leading_zeros`).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Smallest value that lands in bucket `index`.
///
/// Buckets 0 and 1 both start at their only-or-lowest member (0 and 1);
/// bucket `b >= 1` starts at `2^(b-1)`.
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        b => 1u64 << (b - 1),
    }
}

/// Largest value that lands in bucket `index` (inclusive).
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// Concurrent histogram; all mutation is relaxed-atomic.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating sum: losing precision past u64::MAX total beats
        // wrapping to a nonsense mean.
        self.sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            })
            .ok();
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold a detached snapshot into this histogram (used to merge
    /// per-worker shards after a parallel batch). Equivalent to having
    /// observed the shard's values here: bucket counts and sums add,
    /// min/max widen. Empty snapshots are a no-op.
    pub fn absorb(&self, shard: &HistogramSnapshot) {
        if shard.count == 0 {
            return;
        }
        for (i, &n) in shard.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(shard.count, Ordering::Relaxed);
        self.sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(shard.sum))
            })
            .ok();
        self.min.fetch_min(shard.min, Ordering::Relaxed);
        self.max.fetch_max(shard.max, Ordering::Relaxed);
    }

    /// Consistent point-in-time copy (consistent only when no writer races).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Occurrence count per log2 bucket.
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Saturating sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

/// Normalise a quantile argument: clamp to [0,1], treating NaN as 0.
/// `f64::clamp` propagates NaN, which downstream turns every bucket-rank
/// comparison false and silently extrapolates to `max` — the opposite of
/// clamping.
#[inline]
fn clamp_q(q: f64) -> f64 {
    if q.is_nan() {
        0.0
    } else {
        q.clamp(0.0, 1.0)
    }
}

impl HistogramSnapshot {
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Arithmetic mean of observed values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in [0,1]) as the lower bound of the
    /// bucket containing the q-th observation.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((clamp_q(q) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_lower_bound(i);
            }
        }
        bucket_lower_bound(BUCKETS - 1)
    }

    /// Interpolated percentile (`q` in [0,1]).
    ///
    /// Finds the bucket containing the `q·count`-th observation and
    /// interpolates linearly between the bucket's bounds by the rank's
    /// position within it, then clamps to the observed `[min, max]` so a
    /// histogram whose values all share one bucket reports those values
    /// exactly (e.g. all-4s → `percentile(0.5) == 4.0`). Returns 0.0
    /// when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = clamp_q(q) * self.count as f64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = seen as f64;
            seen += n;
            if seen as f64 >= rank {
                let lo = bucket_lower_bound(i) as f64;
                let hi = bucket_upper_bound(i) as f64;
                let frac = ((rank - before) / n as f64).clamp(0.0, 1.0);
                let v = lo + frac * (hi - lo);
                return v.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_zero_one_and_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        // Each power of two opens a new bucket; its predecessor closes
        // the previous one.
        for b in 1..64usize {
            let p = 1u64 << b;
            assert_eq!(bucket_index(p), b + 1, "2^{b} should open bucket {}", b + 1);
            assert_eq!(bucket_index(p - 1), b, "2^{b}-1 should stay in bucket {b}");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(u64::MAX - 1), 64);
    }

    #[test]
    fn bucket_lower_bounds_invert_bucket_index() {
        for i in 0..BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i);
            if lo > 0 {
                assert_eq!(bucket_index(lo - 1), i - 1);
            }
        }
    }

    #[test]
    fn observe_extremes() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        // Sum saturates rather than wrapping.
        assert_eq!(s.sum, u64::MAX);
    }

    #[test]
    fn absorb_equals_direct_observation() {
        let whole = Histogram::new();
        let shard_a = Histogram::new();
        let shard_b = Histogram::new();
        for v in [0u64, 3, 3, 17, 1_000_000] {
            whole.observe(v);
            shard_a.observe(v);
        }
        for v in [1u64, 255, u64::MAX] {
            whole.observe(v);
            shard_b.observe(v);
        }
        let merged = Histogram::new();
        merged.absorb(&shard_a.snapshot());
        merged.absorb(&shard_b.snapshot());
        merged.absorb(&HistogramSnapshot::empty()); // no-op
        assert_eq!(merged.snapshot(), whole.snapshot());
    }

    #[test]
    fn empty_snapshot_is_well_defined() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
    }

    #[test]
    fn mean_and_quantiles() {
        let h = Histogram::new();
        for v in [4u64, 4, 4, 4, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.mean(), 1016.0 / 5.0);
        // 4 of 5 observations sit in bucket 3 ([4,8)): p50 reports its
        // lower bound, p99 reaches the bucket holding 1000 ([512,1024)).
        assert_eq!(s.quantile(0.5), 4);
        assert_eq!(s.quantile(0.99), 512);
    }

    #[test]
    fn percentile_clamps_to_observed_range_in_single_bucket() {
        // All observations identical: every percentile is that value,
        // not a point interpolated across the bucket's [4, 8) span.
        let h = Histogram::new();
        for _ in 0..5 {
            h.observe(4);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(0.0), 4.0);
        assert_eq!(s.percentile(0.5), 4.0);
        assert_eq!(s.percentile(1.0), 4.0);
    }

    #[test]
    fn percentile_at_bucket_boundaries() {
        // 1 lives in bucket 1 ([1,1]), 2 in bucket 2 ([2,3]).
        let h = Histogram::new();
        h.observe(1);
        h.observe(2);
        let s = h.snapshot();
        // rank(0.5) = 1.0 lands exactly on the last observation of
        // bucket 1; full interpolation across [1,1] stays at 1.
        assert_eq!(s.percentile(0.5), 1.0);
        // rank(1.0) = 2.0 fully crosses bucket 2 ([2,3]) but clamps to
        // the observed max.
        assert_eq!(s.percentile(1.0), 2.0);
    }

    #[test]
    fn percentile_interpolates_within_a_bucket() {
        // Four values in bucket 5 ([16, 31]): p50 sits halfway through
        // the bucket's occupants → lo + 0.5 * (hi - lo) = 23.5.
        let h = Histogram::new();
        for v in [16u64, 20, 25, 31] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), 23.5);
        assert_eq!(s.percentile(0.0), 16.0);
        assert_eq!(s.percentile(1.0), 31.0);
    }

    #[test]
    fn percentile_empty_and_extreme_buckets() {
        assert_eq!(HistogramSnapshot::empty().percentile(0.5), 0.0);
        let h = Histogram::new();
        h.observe(0);
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(1.0), u64::MAX as f64);
    }

    #[test]
    fn percentile_clamps_out_of_range_and_nan_q() {
        // 1 in bucket 1, 1000 in bucket 10: the extremes differ, so a
        // wrong lane (extrapolating to max) is visible.
        let h = Histogram::new();
        h.observe(1);
        h.observe(1000);
        let s = h.snapshot();
        assert_eq!(s.percentile(-0.1), s.percentile(0.0));
        assert_eq!(s.percentile(-0.1), 1.0);
        assert_eq!(s.percentile(1.5), s.percentile(1.0));
        assert_eq!(s.percentile(1.5), 1000.0);
        // NaN must clamp (to the low end), not fall through to max.
        assert_eq!(s.percentile(f64::NAN), s.percentile(0.0));
        assert_eq!(s.quantile(f64::NAN), s.quantile(0.0));
        assert_eq!(HistogramSnapshot::empty().percentile(f64::NAN), 0.0);
    }

    #[test]
    fn upper_bounds_invert_bucket_index() {
        for i in 0..BUCKETS {
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(hi), i);
            assert!(hi >= bucket_lower_bound(i));
        }
    }
}
