//! Minimal hand-written JSON value type, writer, and recursive-descent
//! parser. Exists because the build environment is offline and the
//! workspace policy is zero external dependencies — no serde.
//!
//! Numbers are kept in three lanes ([`Json::UInt`], [`Json::Int`],
//! [`Json::Float`]) so that `u64::MAX`-sized counters round-trip
//! exactly instead of losing precision through `f64`. Objects preserve
//! insertion order, which keeps emitted reports diff-stable.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Non-negative integer (the common lane for counters and timings).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from pairs (convenience for emitters).
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::UInt(v) => i64::try_from(v).ok(),
            Json::Int(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(v) => Some(v as f64),
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing
    /// newline, suitable for writing straight to a file.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // {:?} keeps a ".0" on integral floats, so the value
                    // re-parses as a float rather than an integer.
                    out.push_str(&format!("{v:?}"));
                } else {
                    // JSON has no NaN/Infinity.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one slice.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("dangling escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xdc00..0xe000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err(format!("invalid escape '\\{}'", c as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err(format!("invalid number '{text}'")))
        } else if let Some(digits) = text.strip_prefix('-') {
            // Keep negative integers exact; fall back to f64 below i64::MIN.
            match text.parse::<i64>() {
                Ok(v) => Ok(Json::Int(v)),
                Err(_) => digits
                    .parse::<f64>()
                    .map(|v| Json::Float(-v))
                    .map_err(|_| self.err(format!("invalid number '{text}'"))),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(Json::UInt(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err(format!("invalid number '{text}'"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::UInt(0)),
            ("42", Json::UInt(42)),
            ("18446744073709551615", Json::UInt(u64::MAX)),
            ("-7", Json::Int(-7)),
            ("-9223372036854775808", Json::Int(i64::MIN)),
            ("1.5", Json::Float(1.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            let parsed = Json::parse(text).unwrap();
            assert_eq!(parsed, value, "parsing {text}");
            assert_eq!(Json::parse(&parsed.to_compact()).unwrap(), value);
        }
    }

    #[test]
    fn u64_max_survives_exactly() {
        let j = Json::obj([("n", Json::UInt(u64::MAX))]);
        let back = Json::parse(&j.to_pretty()).unwrap();
        assert_eq!(back.get("n").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn integral_float_stays_float() {
        let j = Json::Float(3.0);
        assert_eq!(j.to_compact(), "3.0");
        assert_eq!(Json::parse("3.0").unwrap(), j);
    }

    #[test]
    fn nested_structure_round_trips() {
        let j = Json::obj([
            (
                "a",
                Json::Arr(vec![Json::UInt(1), Json::Null, Json::Bool(false)]),
            ),
            (
                "b",
                Json::obj([("nested", Json::Str("x \"y\"\n\t".into()))]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [j.to_compact(), j.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), j);
        }
    }

    #[test]
    fn object_preserves_insertion_order() {
        let j = Json::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = j
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""Aé😀""#).unwrap(), Json::Str("Aé😀".into()));
        // Control characters are re-escaped on output.
        let j = Json::Str("\u{1}".into());
        assert_eq!(j.to_compact(), "\"\\u0001\"");
        assert_eq!(Json::parse(&j.to_compact()).unwrap(), j);
    }

    #[test]
    fn parse_errors_carry_position() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "tru", "1 2", "01a"] {
            assert!(Json::parse(bad).is_err(), "expected error for {bad:?}");
        }
        let e = Json::parse("[1, @]").unwrap_err();
        assert_eq!(e.pos, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn nonfinite_floats_serialise_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"u":5,"i":-5,"f":2.5,"s":"x","b":true,"a":[1]}"#).unwrap();
        assert_eq!(j.get("u").unwrap().as_u64(), Some(5));
        assert_eq!(j.get("u").unwrap().as_i64(), Some(5));
        assert_eq!(j.get("i").unwrap().as_i64(), Some(-5));
        assert_eq!(j.get("i").unwrap().as_u64(), None);
        assert_eq!(j.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(j.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(j.get("missing").is_none());
    }
}
