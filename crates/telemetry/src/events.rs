//! Leveled, structured event log — the third observability layer next
//! to metrics (aggregates) and traces (per-query spans).
//!
//! An [`EventLog`] keeps the most recent events in a bounded ring
//! buffer, optionally mirrors each event as one JSON line to a sink
//! file (`--log-json PATH`), and — unless muted — renders a
//! human-readable line to stderr. Events are *occurrences* ("listening
//! on :8080", "request req-17 failed: bad k"), not samples; the hot
//! search paths never log.
//!
//! A process-wide instance is installed once by the binary
//! ([`init_global`]) from its `--log-level` / `--quiet` / `--log-json`
//! flags; library code reaches it through [`global`], which falls back
//! to a stderr-only Info logger so library messages are never silently
//! dropped before initialisation.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;

/// Event severity, in decreasing order of urgency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LogLevel {
    Error,
    Warn,
    Info,
    Debug,
}

impl LogLevel {
    pub const ALL: [LogLevel; 4] = [
        LogLevel::Error,
        LogLevel::Warn,
        LogLevel::Info,
        LogLevel::Debug,
    ];

    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }

    /// Parse a `--log-level` argument.
    pub fn from_name(name: &str) -> Option<LogLevel> {
        LogLevel::ALL.iter().copied().find(|l| l.name() == name)
    }
}

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEvent {
    /// Monotonic sequence number within the process.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    pub level: LogLevel,
    /// Dotted component name, e.g. `"serve.access"`.
    pub target: String,
    pub message: String,
    /// Structured key/value payload, in insertion order.
    pub fields: Vec<(String, String)>,
}

impl LogEvent {
    /// The event as a JSON object (one sink line).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::UInt(self.seq)),
            ("ts_ms", Json::UInt(self.unix_ms)),
            ("level", Json::Str(self.level.name().to_string())),
            ("target", Json::Str(self.target.clone())),
            ("msg", Json::Str(self.message.clone())),
            (
                "fields",
                Json::Obj(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable single line (the stderr rendering).
    pub fn render(&self) -> String {
        let mut line = format!("[{} {}] {}", self.level.name(), self.target, self.message);
        for (k, v) in &self.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        line
    }
}

/// Bounded, leveled event collector.
#[derive(Debug)]
pub struct EventLog {
    level: LogLevel,
    stderr: bool,
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<LogEvent>>,
    sink: Option<Mutex<BufWriter<File>>>,
}

impl EventLog {
    /// Default ring capacity (most recent events kept for inspection).
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A logger keeping events at or above `level`, echoing to stderr.
    pub fn new(level: LogLevel) -> EventLog {
        EventLog {
            level,
            stderr: true,
            capacity: Self::DEFAULT_CAPACITY,
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
            sink: None,
        }
    }

    /// Mute the human-readable stderr echo (`--quiet`); the ring and
    /// JSON sink still record.
    pub fn quiet(mut self) -> EventLog {
        self.stderr = false;
        self
    }

    /// Override the ring capacity.
    pub fn with_capacity(mut self, capacity: usize) -> EventLog {
        self.capacity = capacity.max(1);
        self
    }

    /// Mirror every accepted event as a JSON line appended to `path`
    /// (parent directories are created).
    pub fn with_json_sink(mut self, path: &Path) -> std::io::Result<EventLog> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let file = File::options().create(true).append(true).open(path)?;
        self.sink = Some(Mutex::new(BufWriter::new(file)));
        Ok(self)
    }

    /// The configured threshold.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// Whether events at `level` are accepted.
    #[inline]
    pub fn enabled(&self, level: LogLevel) -> bool {
        level <= self.level
    }

    /// Record one event. Returns its sequence number, or `None` when
    /// filtered out by level.
    pub fn log(
        &self,
        level: LogLevel,
        target: &str,
        message: impl Into<String>,
        fields: &[(&str, String)],
    ) -> Option<u64> {
        if !self.enabled(level) {
            return None;
        }
        let event = LogEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            unix_ms: unix_ms(),
            level,
            target: target.to_string(),
            message: message.into(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        if self.stderr {
            eprintln!("{}", event.render());
        }
        if let Some(sink) = &self.sink {
            let mut w = sink.lock().unwrap_or_else(|p| p.into_inner());
            // Line-buffered semantics: flush per event so a tail -f (or
            // a crash) sees every completed line.
            let _ = writeln!(w, "{}", event.to_json().to_compact());
            let _ = w.flush();
        }
        let seq = event.seq;
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
        Some(seq)
    }

    /// Copy of the retained ring, oldest first.
    pub fn recent(&self) -> Vec<LogEvent> {
        self.ring
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

static GLOBAL: OnceLock<EventLog> = OnceLock::new();

/// Install the process-wide logger. Returns `false` if one was already
/// installed (the existing logger stays).
pub fn init_global(log: EventLog) -> bool {
    GLOBAL.set(log).is_ok()
}

/// The process-wide logger (a stderr-only Info logger until
/// [`init_global`] runs).
pub fn global() -> &'static EventLog {
    GLOBAL.get_or_init(|| EventLog::new(LogLevel::Info))
}

/// Log at Error level on the global logger.
pub fn error(target: &str, message: impl Into<String>, fields: &[(&str, String)]) {
    global().log(LogLevel::Error, target, message, fields);
}

/// Log at Warn level on the global logger.
pub fn warn(target: &str, message: impl Into<String>, fields: &[(&str, String)]) {
    global().log(LogLevel::Warn, target, message, fields);
}

/// Log at Info level on the global logger.
pub fn info(target: &str, message: impl Into<String>, fields: &[(&str, String)]) {
    global().log(LogLevel::Info, target, message, fields);
}

/// Log at Debug level on the global logger.
pub fn debug(target: &str, message: impl Into<String>, fields: &[(&str, String)]) {
    global().log(LogLevel::Debug, target, message, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(LogLevel::Error < LogLevel::Warn);
        assert!(LogLevel::Warn < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
        for level in LogLevel::ALL {
            assert_eq!(LogLevel::from_name(level.name()), Some(level));
        }
        assert_eq!(LogLevel::from_name("verbose"), None);
    }

    #[test]
    fn level_filters_and_ring_bounds() {
        let log = EventLog::new(LogLevel::Warn).quiet().with_capacity(3);
        assert!(log.log(LogLevel::Debug, "t", "dropped", &[]).is_none());
        assert!(log.log(LogLevel::Info, "t", "dropped", &[]).is_none());
        for i in 0..5 {
            assert!(log
                .log(LogLevel::Warn, "t", format!("event {i}"), &[])
                .is_some());
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].message, "event 2");
        assert_eq!(recent[2].message, "event 4");
        // Sequence numbers are monotonic across the whole run.
        assert!(recent.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn json_lines_land_in_the_sink() {
        let dir = std::env::temp_dir().join(format!("kmm-events-{}", std::process::id()));
        let path = dir.join("nested/events.jsonl");
        let log = EventLog::new(LogLevel::Info)
            .quiet()
            .with_json_sink(&path)
            .unwrap();
        log.log(
            LogLevel::Info,
            "serve",
            "listening",
            &[("addr", "127.0.0.1:0".to_string())],
        );
        log.log(LogLevel::Error, "serve.access", "boom", &[]);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("level").and_then(Json::as_str), Some("info"));
        assert_eq!(first.get("target").and_then(Json::as_str), Some("serve"));
        assert_eq!(
            first
                .get("fields")
                .and_then(|f| f.get("addr"))
                .and_then(Json::as_str),
            Some("127.0.0.1:0")
        );
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("level").and_then(Json::as_str), Some("error"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn render_is_single_line_with_fields() {
        let event = LogEvent {
            seq: 7,
            unix_ms: 0,
            level: LogLevel::Warn,
            target: "serve.access".to_string(),
            message: "GET /metrics 200".to_string(),
            fields: vec![("req".to_string(), "req-7".to_string())],
        };
        let line = event.render();
        assert_eq!(line, "[warn serve.access] GET /metrics 200 req=req-7");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn global_logger_is_installed_once() {
        // Whichever test initialises first wins; afterwards init fails.
        let _ = global();
        assert!(!init_global(EventLog::new(LogLevel::Debug)));
    }
}
