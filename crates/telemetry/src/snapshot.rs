//! Plain-data snapshot of a [`crate::MetricsRecorder`], with JSON
//! emit/parse and a human-readable table renderer.

use crate::histogram::{HistogramSnapshot, BUCKETS};
use crate::json::Json;
use crate::recorder::{Counter, Hist, Phase};

/// Schema tag written into every emitted document.
pub const SCHEMA: &str = "kmm-telemetry/v1";

/// Accumulated time for one phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Dotted phase name, e.g. `"index.sa"`.
    pub name: String,
    /// Stage the phase belongs to: `"index"`, `"preprocess"`, or `"search"`.
    pub stage: String,
    /// Number of spans credited to this phase.
    pub entries: u64,
    /// Total nanoseconds across all spans.
    pub total_ns: u64,
}

/// Value of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// Everything a recorder collected, detached from the atomics.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub phases: Vec<PhaseSnapshot>,
    pub counters: Vec<CounterSnapshot>,
    /// `(name, histogram)` pairs in declaration order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Phase entry by enum (always present in recorder-made snapshots).
    pub fn phase(&self, phase: Phase) -> &PhaseSnapshot {
        self.phases
            .iter()
            .find(|p| p.name == phase.name())
            .expect("snapshot is missing a declared phase")
    }

    /// Counter value by enum, 0 if absent.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == counter.name())
            .map_or(0, |c| c.value)
    }

    /// Histogram by enum, if present.
    pub fn histogram(&self, hist: Hist) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(name, _)| name == hist.name())
            .map(|(_, h)| h)
    }

    /// Total nanoseconds across all phases of one stage
    /// (`"index"` / `"preprocess"` / `"search"`).
    pub fn stage_total_ns(&self, stage: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.stage == stage)
            .map(|p| p.total_ns)
            .sum()
    }

    /// Emit the full snapshot as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(SCHEMA.to_string())),
            (
                "phases",
                Json::Obj(
                    self.phases
                        .iter()
                        .map(|p| {
                            (
                                p.name.clone(),
                                Json::obj([
                                    ("stage", Json::Str(p.stage.clone())),
                                    ("entries", Json::UInt(p.entries)),
                                    ("total_ns", Json::UInt(p.total_ns)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|c| (c.name.clone(), Json::UInt(c.value)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(name, h)| {
                            (
                                name.clone(),
                                Json::obj([
                                    ("count", Json::UInt(h.count)),
                                    ("sum", Json::UInt(h.sum)),
                                    ("min", Json::UInt(h.min)),
                                    ("max", Json::UInt(h.max)),
                                    // Derived, recomputable fields for
                                    // consumers that don't want to walk
                                    // buckets; from_json ignores them.
                                    ("p50", Json::Float(h.percentile(0.50))),
                                    ("p95", Json::Float(h.percentile(0.95))),
                                    ("p99", Json::Float(h.percentile(0.99))),
                                    (
                                        "buckets",
                                        Json::Arr(
                                            h.buckets.iter().map(|&n| Json::UInt(n)).collect(),
                                        ),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuild a snapshot from a document produced by [`Self::to_json`].
    pub fn from_json(json: &Json) -> Result<MetricsSnapshot, String> {
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\" field")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?}, expected {SCHEMA:?}"
            ));
        }
        let u64_field = |obj: &Json, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field {key:?}"))
        };

        let mut phases = Vec::new();
        for (name, p) in json
            .get("phases")
            .and_then(Json::as_object)
            .ok_or("missing \"phases\" object")?
        {
            phases.push(PhaseSnapshot {
                name: name.clone(),
                stage: p
                    .get("stage")
                    .and_then(Json::as_str)
                    .ok_or("phase missing \"stage\"")?
                    .to_string(),
                entries: u64_field(p, "entries")?,
                total_ns: u64_field(p, "total_ns")?,
            });
        }

        let mut counters = Vec::new();
        for (name, v) in json
            .get("counters")
            .and_then(Json::as_object)
            .ok_or("missing \"counters\" object")?
        {
            counters.push(CounterSnapshot {
                name: name.clone(),
                value: v
                    .as_u64()
                    .ok_or_else(|| format!("counter {name:?} is not a u64"))?,
            });
        }

        let mut histograms = Vec::new();
        for (name, h) in json
            .get("histograms")
            .and_then(Json::as_object)
            .ok_or("missing \"histograms\" object")?
        {
            let raw = h
                .get("buckets")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("histogram {name:?} missing \"buckets\""))?;
            if raw.len() != BUCKETS {
                return Err(format!(
                    "histogram {name:?} has {} buckets, expected {BUCKETS}",
                    raw.len()
                ));
            }
            let mut buckets = [0u64; BUCKETS];
            for (i, v) in raw.iter().enumerate() {
                buckets[i] = v
                    .as_u64()
                    .ok_or_else(|| format!("histogram {name:?} bucket {i} is not a u64"))?;
            }
            histograms.push((
                name.clone(),
                HistogramSnapshot {
                    buckets,
                    count: u64_field(h, "count")?,
                    sum: u64_field(h, "sum")?,
                    min: u64_field(h, "min")?,
                    max: u64_field(h, "max")?,
                },
            ));
        }

        Ok(MetricsSnapshot {
            phases,
            counters,
            histograms,
        })
    }

    /// Render a human-readable table (phases with nonzero entries,
    /// nonzero counters, populated histograms).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("phase                     entries     total       mean\n");
        for stage in ["index", "preprocess", "search"] {
            for p in self.phases.iter().filter(|p| p.stage == stage) {
                if p.entries == 0 {
                    continue;
                }
                let mean = p.total_ns / p.entries;
                out.push_str(&format!(
                    "  {:<22} {:>8} {:>9} {:>10}\n",
                    p.name,
                    p.entries,
                    fmt_ns(p.total_ns),
                    fmt_ns(mean),
                ));
            }
            let total = self.stage_total_ns(stage);
            if total > 0 {
                out.push_str(&format!(
                    "  {:<22} {:>8} {:>9}\n",
                    format!("{stage} total"),
                    "",
                    fmt_ns(total)
                ));
            }
        }
        out.push_str("counter                     value\n");
        for c in &self.counters {
            if c.value > 0 {
                out.push_str(&format!("  {:<24} {:>7}\n", c.name, c.value));
            }
        }
        let populated: Vec<_> = self
            .histograms
            .iter()
            .filter(|(_, h)| h.count > 0)
            .collect();
        if !populated.is_empty() {
            out.push_str(
                "histogram                   count       min       p50       p95       p99       max\n",
            );
            for (name, h) in populated {
                out.push_str(&format!(
                    "  {:<24} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                    name,
                    h.count,
                    h.min,
                    fmt_f64(h.percentile(0.50)),
                    fmt_f64(h.percentile(0.95)),
                    fmt_f64(h.percentile(0.99)),
                    h.max,
                ));
            }
        }
        out
    }
}

/// Render an interpolated percentile compactly: integers without a
/// fraction, everything else with one decimal.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

/// Render nanoseconds at a human scale (ns/µs/ms/s).
fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{}µs", ns / 1_000)
    } else if ns < 10_000_000_000 {
        format!("{}ms", ns / 1_000_000)
    } else {
        format!("{:.1}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{MetricsRecorder, Recorder};

    fn populated_snapshot() -> MetricsSnapshot {
        let rec = MetricsRecorder::new();
        {
            let _s = rec.span(Phase::IndexSa);
        }
        {
            let _s = rec.span(Phase::PreprocessRarray);
        }
        {
            let _s = rec.span(Phase::SearchQuery);
        }
        rec.add(Counter::Queries, 1);
        rec.add(Counter::Leaves, 42);
        rec.add(Counter::Occurrences, u64::MAX);
        rec.observe(Hist::SearchLatencyNs, 0);
        rec.observe(Hist::SearchLatencyNs, 1);
        rec.observe(Hist::SearchLatencyNs, u64::MAX);
        rec.observe(Hist::IntervalWidth, 1024);
        rec.observe(Hist::TerminationDepth, 33);
        rec.snapshot()
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snap = populated_snapshot();
        let back =
            MetricsSnapshot::from_json(&Json::parse(&snap.to_json().to_pretty()).unwrap()).unwrap();
        assert_eq!(back, snap);
        // u64::MAX counter and histogram extremes survive exactly.
        assert_eq!(back.counter(Counter::Occurrences), u64::MAX);
        assert_eq!(back.histogram(Hist::SearchLatencyNs).unwrap().max, u64::MAX);
    }

    #[test]
    fn snapshot_contains_every_stage() {
        let snap = MetricsRecorder::new().snapshot();
        let json = snap.to_json();
        let phases = json.get("phases").and_then(Json::as_object).unwrap();
        for stage in ["index", "preprocess", "search"] {
            assert!(
                phases
                    .iter()
                    .any(|(_, p)| p.get("stage").and_then(Json::as_str) == Some(stage)),
                "no phase with stage {stage:?} in emitted JSON"
            );
        }
        for c in Counter::ALL {
            assert!(json.get("counters").unwrap().get(c.name()).is_some());
        }
        for h in Hist::ALL {
            assert!(json.get("histograms").unwrap().get(h.name()).is_some());
        }
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(MetricsSnapshot::from_json(&Json::parse("{}").unwrap()).is_err());
        let wrong_schema = Json::obj([("schema", Json::Str("other/v9".into()))]);
        assert!(MetricsSnapshot::from_json(&wrong_schema)
            .unwrap_err()
            .contains("unsupported schema"));
        // Truncated bucket array is rejected.
        let mut snap = populated_snapshot().to_json().to_compact();
        snap = snap.replacen("\"buckets\":[", "\"buckets\":[9,", 1);
        let reparsed = Json::parse(&snap).unwrap();
        assert!(MetricsSnapshot::from_json(&reparsed)
            .unwrap_err()
            .contains("buckets"));
    }

    #[test]
    fn render_shows_active_rows_only() {
        let text = populated_snapshot().render();
        assert!(text.contains("index.sa"));
        assert!(text.contains("preprocess.rarray"));
        assert!(text.contains("search.query"));
        assert!(text.contains("search.leaves"));
        assert!(text.contains("42"));
        assert!(text.contains("search.latency_ns"));
        // Untouched phases and counters stay out of the table.
        assert!(!text.contains("index.load"));
        assert!(!text.contains("map.reads_total"));
    }

    #[test]
    fn json_carries_derived_percentiles() {
        let snap = populated_snapshot();
        let json = snap.to_json();
        let h = json
            .get("histograms")
            .unwrap()
            .get("search.latency_ns")
            .unwrap();
        for (key, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            let emitted = h.get(key).unwrap().as_f64().unwrap();
            let expected = snap.histogram(Hist::SearchLatencyNs).unwrap().percentile(q);
            assert_eq!(emitted, expected, "{key} mismatch");
        }
        let text = snap.render();
        assert!(text.contains("p50"));
        assert!(text.contains("p95"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn stage_totals_sum_member_phases() {
        let snap = populated_snapshot();
        let index_sum: u64 = snap
            .phases
            .iter()
            .filter(|p| p.stage == "index")
            .map(|p| p.total_ns)
            .sum();
        assert_eq!(snap.stage_total_ns("index"), index_sum);
        assert_eq!(snap.stage_total_ns("nonexistent"), 0);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(25_000), "25µs");
        assert_eq!(fmt_ns(25_000_000), "25ms");
        assert_eq!(fmt_ns(12_500_000_000), "12.5s");
    }
}
